"""CARAT KOP reproduction: compiler-guarded kernel-module memory
protection, fully simulated in Python.

Reproduces Filipiuk et al., "CARAT KOP: Towards Protecting the Core HPC
Kernel from Linux Kernel Modules" (ROSS '23 / SC-W 2023).  See DESIGN.md
for the system inventory and EXPERIMENTS.md for paper-vs-measured results.

Quickstart::

    from repro import CaratKopSystem

    system = CaratKopSystem(machine="r350", protect=True)
    result = system.blast(size=128, count=1000)
    print(result.throughput_pps, system.guard_stats())
"""

from . import abi
from .core import (
    CaratKopSystem,
    CompileOptions,
    CompileStats,
    SystemConfig,
    compile_module,
)
from .kernel import CompiledModule, Kernel, KernelPanic, LoadError
from .policy import CaratPolicyModule, PolicyManager, Region, RegionTable
from .signing import SigningKey
from .vm import GuardViolation, MachineModel, get_machine, r350, r415

__version__ = "0.1.0"

__all__ = [
    "CaratKopSystem",
    "CaratPolicyModule",
    "CompileOptions",
    "CompileStats",
    "CompiledModule",
    "GuardViolation",
    "Kernel",
    "KernelPanic",
    "LoadError",
    "MachineModel",
    "PolicyManager",
    "Region",
    "RegionTable",
    "SigningKey",
    "SystemConfig",
    "abi",
    "compile_module",
    "get_machine",
    "r350",
    "r415",
    "__version__",
]
