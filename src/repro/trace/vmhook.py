"""The VM-side tracer: function stacks and guard-site attribution.

Both execution engines carry an optional ``tracer`` (``None`` while
tracing is off).  When attached, the engines call:

- :meth:`VMTracer.enter_function` / :meth:`VMTracer.exit_function`
  around every IR function frame, maintaining the call stack that guard
  events capture (the substrate for folded flamegraph stacks);
- :meth:`VMTracer.on_guard` after every allowed guard check, with the
  stable callsite id, the checked access, the entries scanned, and the
  simulated guard cost.

``on_guard`` feeds the guard-cost histogram and the per-callsite
profile unconditionally, and pushes a ``guard:check`` ring event when
that tracepoint is enabled.  Nothing here touches ``timing`` — the
tracer observes costs the engines already charged.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .. import abi
from ..ir.instructions import Br, Call, Ret, Switch, Unreachable

if TYPE_CHECKING:  # pragma: no cover
    from .subsystem import TraceSubsystem

_TERMINATORS = (Br, Ret, Switch, Unreachable)


def guard_site_id(module_name: str, fn_name: str, ordinal: int) -> str:
    """The stable callsite key: module, function, guard ordinal.

    The ordinal counts guard call sites in block order within the
    function (guard calls are void, so they carry no SSA name); both
    engines derive it from the same walk, so interp and compiled runs
    attribute costs to identical keys.
    """
    return f"{module_name}:@{fn_name}:g{ordinal}"


def is_guard_call(inst) -> bool:
    return type(inst) is Call and (
        inst.is_guard or inst.callee.name == abi.GUARD_SYMBOL
    )


class VMTracer:
    """Engine hooks feeding one :class:`TraceSubsystem`."""

    __slots__ = ("subsystem", "stack", "_site_ids")

    def __init__(self, subsystem: "TraceSubsystem"):
        self.subsystem = subsystem
        self.stack: list[str] = []
        # Guard instruction -> site id.  Keyed by the instruction object
        # itself (held strongly, so ids are never reused under us); the
        # interpreter resolves sites through this, the compiled engine
        # bakes the id into the closure at translate time.
        self._site_ids: dict = {}

    # -- function frames ----------------------------------------------------

    def enter_function(self, name: str) -> None:
        self.stack.append(name)

    def exit_function(self, name: str) -> None:
        stack = self.stack
        if stack and stack[-1] == name:
            stack.pop()

    # -- guard checks -------------------------------------------------------

    def site_for(self, module_name: str, inst) -> str:
        """Resolve (and memoize) the callsite id for a guard instruction.

        Walks the owning function counting guard call sites in block
        order, stopping at each block's terminator — the same traversal
        the compiled engine's translator performs, so ordinals agree.
        """
        site = self._site_ids.get(inst)
        if site is not None:
            return site
        fn = inst.function
        if fn is None:  # detached instruction (hand-built IR in tests)
            return guard_site_id(module_name, "?", 0)
        ordinal = 0
        found = None
        for block in fn.blocks:
            for candidate in block.instructions:
                if isinstance(candidate, _TERMINATORS):
                    break
                if is_guard_call(candidate):
                    if candidate is inst:
                        found = ordinal
                        break
                    ordinal += 1
            if found is not None:
                break
        site = guard_site_id(
            module_name, fn.name, found if found is not None else ordinal
        )
        self._site_ids[inst] = site
        return site

    def on_guard(self, site: str, addr: int, size: int, flags: int,
                 entries: int, cycles: float) -> None:
        sub = self.subsystem
        sub.guard_hist.record(cycles)
        sub.guard_sites.record(site, entries, cycles)
        tp = sub.tp_guard_check
        if tp.enabled:
            tp.emit_with_stack(
                {
                    "site": site,
                    "addr": addr,
                    "size": size,
                    "flags": flags,
                    "entries": entries,
                    "cycles": cycles,
                },
                tuple(self.stack),
            )


__all__ = ["VMTracer", "guard_site_id", "is_guard_call"]
