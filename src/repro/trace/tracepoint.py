"""Static tracepoints with static-key-style enable/disable.

A :class:`Tracepoint` is registered once per site (subsystems bind them
at ``__init__`` time) and checked on the hot path as one attribute load
plus one branch::

    tp = self._tp_fire
    if tp.enabled:
        tp.emit(timer_id=tid, handler=name)

That check is the whole disabled-tracing cost for interpreted sites —
the moral equivalent of Linux's static-key NOP.  The compiled engine
does one better for guard checks: the tracer's identity is part of a
translation's validity key, so closures generated while tracing is off
contain no trace code at all (see ``repro.vm.compiled``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from .subsystem import TraceSubsystem


class Tracepoint:
    """One named event source.  ``enabled`` is the static key."""

    __slots__ = ("name", "category", "enabled", "suppressed", "_subsystem")

    def __init__(self, name: str, category: str,
                 subsystem: "TraceSubsystem"):
        self.name = name
        self.category = category
        #: The hot-path gate: True only while the subsystem is enabled
        #: and the point is not individually suppressed.
        self.enabled = False
        #: Per-point operator override (survives enable/disable cycles).
        self.suppressed = False
        self._subsystem = subsystem

    def emit(self, **args) -> None:
        """Record one event.  Callers gate on ``enabled`` first, so the
        disabled path never builds the kwargs dict."""
        self._subsystem.record(self.name, args)

    def emit_with_stack(self, args: dict, stack: Optional[tuple]) -> None:
        self._subsystem.record(self.name, args, stack)


__all__ = ["Tracepoint"]
