"""repro.trace: the ftrace/perf-style observability layer.

Static tracepoints woven through every subsystem feed one per-kernel
:class:`TraceSubsystem`: a ring buffer of timestamped events, named
counters, BPF-style log2 histograms, and per-guard-callsite profiles.
Tracing is strictly *observational* — no tracepoint ever touches the
``timing`` accounting — so simulated results are bit-identical with
tracing enabled, disabled, or absent.  The compiled engine goes further
and specializes its guard closures on the tracer's identity (the Linux
static-key analogy): with tracing off, the generated code is exactly the
code an engine without the subsystem would generate.
"""

from .aggregate import CounterSet, GuardSiteStats, Log2Histogram
from .events import EVENT_SCHEMA, TraceEvent
from .exporters import (
    to_chrome_trace,
    to_folded,
    to_perf_script,
    validate_chrome_trace,
)
from .ring import RingBuffer
from .subsystem import TraceSubsystem
from .tracepoint import Tracepoint
from .vmhook import VMTracer, guard_site_id

__all__ = [
    "CounterSet",
    "EVENT_SCHEMA",
    "GuardSiteStats",
    "Log2Histogram",
    "RingBuffer",
    "TraceEvent",
    "TraceSubsystem",
    "Tracepoint",
    "VMTracer",
    "guard_site_id",
    "to_chrome_trace",
    "to_folded",
    "to_perf_script",
    "validate_chrome_trace",
]
