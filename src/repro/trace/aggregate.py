"""The aggregation layer: counters, log2 histograms, guard-site profiles.

Aggregates are cheap enough to update on every event even when the ring
is tiny, so ``/proc/trace_stat`` stays truthful after the ring has
wrapped — the counters saw everything the ring lost.
"""

from __future__ import annotations


class CounterSet:
    """Named monotonic counters (one per event name, plus ad-hoc ones)."""

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: dict[str, int] = {}

    def incr(self, name: str, n: int = 1) -> None:
        self._counts[name] = self._counts.get(name, 0) + n

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def as_dict(self) -> dict[str, int]:
        return dict(self._counts)

    def reset(self) -> None:
        self._counts.clear()

    def __len__(self) -> int:
        return len(self._counts)

    def render(self) -> str:
        width = max((len(n) for n in self._counts), default=0)
        return "\n".join(
            f"{name:<{width}}  {count}"
            for name, count in sorted(self._counts.items())
        )


class Log2Histogram:
    """Power-of-two bucketed value distribution, BPF-histogram style.

    Bucket ``b`` holds values in ``[2^(b-1), 2^b)``; bucket 0 holds
    zero.  Values are truncated to ints (guard costs are fractional
    cycles; sub-cycle precision is meaningless in a distribution).
    """

    __slots__ = ("name", "buckets", "count", "total")

    def __init__(self, name: str = ""):
        self.name = name
        self.buckets: dict[int, int] = {}
        self.count = 0
        self.total = 0.0

    def record(self, value: float) -> None:
        b = int(value).bit_length()
        self.buckets[b] = self.buckets.get(b, 0) + 1
        self.count += 1
        self.total += value

    def reset(self) -> None:
        self.buckets.clear()
        self.count = 0
        self.total = 0.0

    def render(self, width: int = 40) -> str:
        """The classic bpftrace bar chart."""
        if not self.buckets:
            return "(empty)"
        peak = max(self.buckets.values())
        lines = []
        for b in range(min(self.buckets), max(self.buckets) + 1):
            n = self.buckets.get(b, 0)
            lo = 0 if b == 0 else 1 << (b - 1)
            hi = 1 if b == 0 else (1 << b) - 1
            bar = "@" * max(1 if n else 0, round(n * width / peak))
            lines.append(f"[{lo:>10}, {hi:>10}]  {n:>8} |{bar:<{width}}|")
        mean = self.total / self.count if self.count else 0.0
        lines.append(f"count {self.count}, mean {mean:.1f}")
        return "\n".join(lines)


class GuardSiteStats:
    """Per-guard-callsite profile, keyed by IR callsite id.

    Site ids come from :func:`repro.trace.vmhook.guard_site_id` —
    ``module:@function:g<ordinal>`` — and are identical between the
    interpreter and the compiled engine, so profiles can be compared
    across engines.  ``cycles`` is the machine model's simulated guard
    cost attributed to the site, the figure-level "what do guards cost,
    and where" answer.
    """

    __slots__ = ("_sites",)

    def __init__(self) -> None:
        # site -> [hits, cycles, entries_scanned]
        self._sites: dict[str, list] = {}

    def record(self, site: str, entries: int, cycles: float) -> None:
        rec = self._sites.get(site)
        if rec is None:
            self._sites[site] = [1, cycles, entries]
        else:
            rec[0] += 1
            rec[1] += cycles
            rec[2] += entries

    def reset(self) -> None:
        self._sites.clear()

    def __len__(self) -> int:
        return len(self._sites)

    def total_cycles(self) -> float:
        return sum(rec[1] for rec in self._sites.values())

    def top(self, n: int = 10) -> list[dict]:
        """Hottest sites by attributed cycles (hits break ties)."""
        total = self.total_cycles()
        out = []
        ranked = sorted(
            self._sites.items(), key=lambda kv: (-kv[1][1], -kv[1][0], kv[0])
        )
        for site, (hits, cycles, entries) in ranked[:n]:
            out.append({
                "site": site,
                "hits": hits,
                "cycles": cycles,
                "entries_scanned": entries,
                "share": (cycles / total) if total else 0.0,
            })
        return out

    def as_dict(self) -> dict[str, dict]:
        return {
            site: {"hits": h, "cycles": c, "entries_scanned": e}
            for site, (h, c, e) in self._sites.items()
        }

    def render(self, n: int = 10) -> str:
        rows = self.top(n)
        if not rows:
            return "(no guard sites)"
        lines = [f"{'site':<40} {'hits':>10} {'cycles':>14} {'share':>7}"]
        for r in rows:
            lines.append(
                f"{r['site']:<40} {r['hits']:>10} {r['cycles']:>14.0f} "
                f"{r['share']:>6.1%}"
            )
        return "\n".join(lines)


__all__ = ["CounterSet", "GuardSiteStats", "Log2Histogram"]
