"""Per-CPU-model event ring buffers.

One ring per trace subsystem (the simulated machine has one CPU; a
multi-queue future grows this into a list).  Two full-buffer policies,
matching ftrace's ``overwrite`` option:

- ``overwrite`` (the default, like ftrace): the newest event replaces
  the oldest; ``lost`` counts evicted events.
- ``drop``: the buffer keeps the *oldest* events and discards new
  arrivals; ``lost`` counts the discards.

Either way ``total`` counts every event ever offered, so the operator
can tell "quiet system" from "tiny buffer" at a glance.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .events import TraceEvent

MODES = ("overwrite", "drop")


class RingBuffer:
    """Fixed-capacity event store with lost-event accounting."""

    __slots__ = ("capacity", "mode", "lost", "total", "_buf", "_head", "_n")

    def __init__(self, capacity: int = 65536, mode: str = "overwrite"):
        if capacity <= 0:
            raise ValueError("ring capacity must be positive")
        if mode not in MODES:
            raise ValueError(f"ring mode must be one of {MODES}, got {mode!r}")
        self.capacity = capacity
        self.mode = mode
        #: Events evicted (overwrite) or discarded (drop).
        self.lost = 0
        #: Events ever offered via :meth:`push`.
        self.total = 0
        self._buf: list = [None] * capacity
        self._head = 0  # index of the oldest stored event
        self._n = 0

    def __len__(self) -> int:
        return self._n

    def push(self, event: "TraceEvent") -> bool:
        """Store one event.  Returns False when drop mode discarded it."""
        self.total += 1
        cap = self.capacity
        if self._n < cap:
            self._buf[(self._head + self._n) % cap] = event
            self._n += 1
            return True
        if self.mode == "drop":
            self.lost += 1
            return False
        # overwrite: the new event replaces the oldest.
        self._buf[self._head] = event
        self._head = (self._head + 1) % cap
        self.lost += 1
        return True

    def snapshot(self) -> list:
        """A consistent oldest-to-newest copy of the stored events.

        The returned list is detached from the ring: events recorded
        after the snapshot never appear in it (SNAPSHOT-while-enabled
        is safe), and a subsequent :meth:`reset` does not clear it.
        """
        buf, head, cap = self._buf, self._head, self.capacity
        return [buf[(head + i) % cap] for i in range(self._n)]

    def reset(self) -> None:
        self._buf = [None] * self.capacity
        self._head = 0
        self._n = 0
        self.lost = 0
        self.total = 0

    def stats(self) -> dict[str, object]:
        return {
            "capacity": self.capacity,
            "mode": self.mode,
            "stored": self._n,
            "lost": self.lost,
            "total": self.total,
        }


__all__ = ["MODES", "RingBuffer"]
