"""The trace subsystem: tracepoint registry, ring, aggregates, control.

One :class:`TraceSubsystem` hangs off every kernel (``kernel.trace``),
created before the traced subsystems so they can bind their tracepoints
at construction time.  It owns:

- the :class:`~repro.trace.tracepoint.Tracepoint` registry, pre-seeded
  from :data:`~repro.trace.events.EVENT_SCHEMA`;
- the per-CPU-model event :class:`~repro.trace.ring.RingBuffer`;
- the aggregation layer (named counters, the guard cycle-cost log2
  histogram, per-guard-callsite profiles);
- the :class:`~repro.trace.vmhook.VMTracer` both execution engines
  attach while tracing is enabled.

Control flows through :meth:`enable` / :meth:`disable` /
:meth:`snapshot` / :meth:`reset` — reachable from the ``/dev/carat``
TRACE_* ioctls, the ``caratkop-trace`` CLI, and ``repro.bench``.

Tracing is observability only: nothing here reads or writes ``timing``
counters, so simulated results are bit-identical with tracing enabled,
disabled, or absent.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from .aggregate import CounterSet, GuardSiteStats, Log2Histogram
from .events import EVENT_SCHEMA, TraceEvent
from .ring import RingBuffer
from .tracepoint import Tracepoint
from .vmhook import VMTracer

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.kernel import Kernel


class TraceSubsystem:
    """Kernel-wide tracing control plane and event store."""

    def __init__(self, kernel: "Kernel", capacity: int = 65536,
                 mode: str = "overwrite"):
        self.kernel = kernel
        self.enabled = False
        self.ring = RingBuffer(capacity, mode)
        self.counters = CounterSet()
        self.guard_hist = Log2Histogram("guard cycles")
        self.guard_sites = GuardSiteStats()
        #: The persistent VM hook object.  Persistent on purpose: the
        #: compiled engine keys translations on tracer *identity*, so an
        #: enable -> disable -> enable cycle re-attaches the same object
        #: and rehydrates the traced translations from cache.
        self.vm_tracer = VMTracer(self)
        self._seq = 0
        self.points: dict[str, Tracepoint] = {}
        for name, (category, _fields) in EVENT_SCHEMA.items():
            self.points[name] = Tracepoint(name, category, self)
        #: Fast path for the hottest point (bound once, read per guard).
        self.tp_guard_check = self.points["guard:check"]

    # -- registry -------------------------------------------------------------------

    def point(self, name: str, category: Optional[str] = None) -> Tracepoint:
        """Get-or-create the tracepoint for ``name``.

        Subsystems call this once at construction and cache the result;
        unknown names register ad-hoc points (category defaults to the
        ``cat:`` prefix of the name).
        """
        tp = self.points.get(name)
        if tp is None:
            if category is None:
                category = name.split(":", 1)[0]
            tp = Tracepoint(name, category, self)
            tp.enabled = self.enabled and not tp.suppressed
            self.points[name] = tp
        return tp

    # -- the event sink -------------------------------------------------------------

    def record(self, name: str, args: dict,
               stack: Optional[tuple] = None) -> None:
        """Append one event (tracepoints land here when enabled)."""
        event = TraceEvent(self._seq, self.kernel.time_us(), name, args, stack)
        self._seq += 1
        self.counters.incr(name)
        self.ring.push(event)

    # -- control --------------------------------------------------------------------

    def enable(self) -> None:
        """Flip every non-suppressed static key on and attach the VM hook."""
        self.enabled = True
        for tp in self.points.values():
            tp.enabled = not tp.suppressed
        # Attaching the tracer changes the compiled engine's translation
        # key, so guard closures retranslate into their traced variants.
        self.kernel.vm.tracer = self.vm_tracer

    def disable(self) -> None:
        """Flip every static key off and detach the VM hook."""
        self.enabled = False
        for tp in self.points.values():
            tp.enabled = False
        vm = getattr(self.kernel, "_vm", None)
        if vm is not None:
            vm.tracer = None

    def suppress(self, name: str, suppressed: bool = True) -> None:
        """Per-point operator override (like echo 0 > events/.../enable)."""
        tp = self.point(name)
        tp.suppressed = suppressed
        tp.enabled = self.enabled and not suppressed

    def configure(self, capacity: Optional[int] = None,
                  mode: Optional[str] = None) -> None:
        """Rebuild the ring with a new capacity and/or overflow mode."""
        self.ring = RingBuffer(
            capacity if capacity is not None else self.ring.capacity,
            mode if mode is not None else self.ring.mode,
        )

    def snapshot(self) -> list:
        """A detached, consistent copy of the ring (safe while enabled)."""
        return self.ring.snapshot()

    def reset(self) -> None:
        """Clear the ring and every aggregate; sequence restarts at 0."""
        self.ring.reset()
        self.counters.reset()
        self.guard_hist.reset()
        self.guard_sites.reset()
        self._seq = 0

    def stats(self) -> dict[str, object]:
        return {
            "enabled": self.enabled,
            "ring": self.ring.stats(),
            "events": self.counters.as_dict(),
            "guard_checks": self.guard_hist.count,
            "guard_cycles": self.guard_hist.total,
            "guard_sites": len(self.guard_sites),
        }

    @property
    def freq_hz(self) -> Optional[float]:
        machine = self.kernel.machine
        return machine.freq_hz if machine is not None else None

    # -- operator surfaces (/proc/trace, /proc/trace_stat) --------------------------

    def render_trace(self) -> str:
        """The ``/proc/trace`` view: a perf-script dump of the ring."""
        from .exporters import to_perf_script

        header = (
            f"# tracer: caratkop  enabled={int(self.enabled)}  "
            f"entries={len(self.ring)}  lost={self.ring.lost}\n"
        )
        return header + to_perf_script(self.ring.snapshot())

    def render_stat(self) -> str:
        """The ``/proc/trace_stat`` view: counters, histogram, hot sites."""
        lines = [
            f"tracing: {'on' if self.enabled else 'off'}",
            "",
            "[ring]",
        ]
        for key, value in self.ring.stats().items():
            lines.append(f"{key:<10} {value}")
        lines += ["", "[events]"]
        counters = self.counters.render()
        lines.append(counters if counters else "(none)")
        lines += ["", "[guard cycle cost]", self.guard_hist.render()]
        lines += ["", "[guard sites]", self.guard_sites.render()]
        irq = getattr(self.kernel, "irq", None)
        if irq is not None:
            lines += ["", "[irq]"]
            actions = irq.actions()
            if actions:
                for line, action in sorted(actions.items()):
                    lines.append(
                        f"irq{line:<4} fired={action.fired} "
                        f"coalesced={action.coalesced} "
                        f"handler={action.module.name}:{action.handler_name}"
                    )
            else:
                lines.append("(no handlers)")
        return "\n".join(lines) + "\n"


__all__ = ["TraceSubsystem"]
