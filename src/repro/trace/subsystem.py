"""The trace subsystem: tracepoint registry, ring, aggregates, control.

One :class:`TraceSubsystem` hangs off every kernel (``kernel.trace``),
created before the traced subsystems so they can bind their tracepoints
at construction time.  It owns:

- the :class:`~repro.trace.tracepoint.Tracepoint` registry, pre-seeded
  from :data:`~repro.trace.events.EVENT_SCHEMA`;
- the per-CPU-model event :class:`~repro.trace.ring.RingBuffer`;
- the aggregation layer (named counters, the guard cycle-cost log2
  histogram, per-guard-callsite profiles);
- the :class:`~repro.trace.vmhook.VMTracer` both execution engines
  attach while tracing is enabled.

Control flows through :meth:`enable` / :meth:`disable` /
:meth:`snapshot` / :meth:`reset` — reachable from the ``/dev/carat``
TRACE_* ioctls, the ``caratkop-trace`` CLI, and ``repro.bench``.

Tracing is observability only: nothing here reads or writes ``timing``
counters, so simulated results are bit-identical with tracing enabled,
disabled, or absent.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from .aggregate import CounterSet, GuardSiteStats, Log2Histogram
from .events import EVENT_SCHEMA, TraceEvent
from .ring import RingBuffer
from .tracepoint import Tracepoint
from .vmhook import VMTracer

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.kernel import Kernel


class TraceSubsystem:
    """Kernel-wide tracing control plane and event store."""

    def __init__(self, kernel: "Kernel", capacity: int = 65536,
                 mode: str = "overwrite"):
        self.kernel = kernel
        self.enabled = False
        # One ring per simulated CPU (ftrace's per_cpu/cpuN/trace): an
        # event lands in the ring of the CPU it was recorded on, so CPUs
        # never contend on a shared buffer.  Single-CPU kernels keep the
        # historic shape: ``self.ring`` is CPU 0's ring.
        ncpus = getattr(kernel, "smp", None)
        self._ncpus = ncpus.ncpus if ncpus is not None else 1
        self.rings: list[RingBuffer] = [
            RingBuffer(capacity, mode) for _ in range(self._ncpus)
        ]
        self.counters = CounterSet()
        self.guard_hist = Log2Histogram("guard cycles")
        self.guard_sites = GuardSiteStats()
        #: The persistent VM hook object.  Persistent on purpose: the
        #: compiled engine keys translations on tracer *identity*, so an
        #: enable -> disable -> enable cycle re-attaches the same object
        #: and rehydrates the traced translations from cache.
        self.vm_tracer = VMTracer(self)
        self._seq = 0
        self.points: dict[str, Tracepoint] = {}
        for name, (category, _fields) in EVENT_SCHEMA.items():
            self.points[name] = Tracepoint(name, category, self)
        #: Fast path for the hottest point (bound once, read per guard).
        self.tp_guard_check = self.points["guard:check"]

    # -- registry -------------------------------------------------------------------

    def point(self, name: str, category: Optional[str] = None) -> Tracepoint:
        """Get-or-create the tracepoint for ``name``.

        Subsystems call this once at construction and cache the result;
        unknown names register ad-hoc points (category defaults to the
        ``cat:`` prefix of the name).
        """
        tp = self.points.get(name)
        if tp is None:
            if category is None:
                category = name.split(":", 1)[0]
            tp = Tracepoint(name, category, self)
            tp.enabled = self.enabled and not tp.suppressed
            self.points[name] = tp
        return tp

    # -- the event sink -------------------------------------------------------------

    @property
    def ring(self) -> RingBuffer:
        """CPU 0's ring — the whole story on single-CPU kernels.  Code
        that must see every CPU uses :meth:`rings`, :meth:`snapshot`, or
        :meth:`ring_stats` (the merged view)."""
        return self.rings[0]

    def record(self, name: str, args: dict,
               stack: Optional[tuple] = None) -> None:
        """Append one event to the recording CPU's ring."""
        cpu = self.kernel.smp.current
        event = TraceEvent(
            self._seq, self.kernel.time_us(), name, args, stack, cpu
        )
        self._seq += 1
        self.counters.incr(name)
        self.rings[cpu].push(event)

    # -- control --------------------------------------------------------------------

    def enable(self) -> None:
        """Flip every non-suppressed static key on and attach the VM hook."""
        self.enabled = True
        for tp in self.points.values():
            tp.enabled = not tp.suppressed
        # Attaching the tracer changes the compiled engine's translation
        # key, so guard closures retranslate into their traced variants.
        self.kernel.vm.tracer = self.vm_tracer

    def disable(self) -> None:
        """Flip every static key off and detach the VM hook."""
        self.enabled = False
        for tp in self.points.values():
            tp.enabled = False
        vm = getattr(self.kernel, "_vm", None)
        if vm is not None:
            vm.tracer = None

    def suppress(self, name: str, suppressed: bool = True) -> None:
        """Per-point operator override (like echo 0 > events/.../enable)."""
        tp = self.point(name)
        tp.suppressed = suppressed
        tp.enabled = self.enabled and not suppressed

    def configure(self, capacity: Optional[int] = None,
                  mode: Optional[str] = None) -> None:
        """Rebuild every per-CPU ring with a new capacity and/or mode."""
        capacity = capacity if capacity is not None else self.rings[0].capacity
        mode = mode if mode is not None else self.rings[0].mode
        self.rings = [
            RingBuffer(capacity, mode) for _ in range(self._ncpus)
        ]

    def snapshot(self) -> list:
        """A detached, consistent copy of every CPU's ring, merged in
        global event order (``seq`` is kernel-wide, so the merge is
        total and deterministic).  Safe while enabled."""
        if self._ncpus == 1:
            return self.rings[0].snapshot()
        events: list = []
        for ring in self.rings:
            events.extend(ring.snapshot())
        events.sort(key=lambda e: e.seq)
        return events

    def reset(self) -> None:
        """Clear every ring and aggregate; sequence restarts at 0."""
        for ring in self.rings:
            ring.reset()
        self.counters.reset()
        self.guard_hist.reset()
        self.guard_sites.reset()
        self._seq = 0

    def ring_stats(self) -> dict[str, object]:
        """Merged ring accounting across CPUs (plus the shared config)."""
        return {
            "capacity": self.rings[0].capacity,
            "mode": self.rings[0].mode,
            "stored": sum(len(r) for r in self.rings),
            "lost": sum(r.lost for r in self.rings),
            "total": sum(r.total for r in self.rings),
        }

    def stats(self) -> dict[str, object]:
        return {
            "enabled": self.enabled,
            "ring": self.ring_stats(),
            "events": self.counters.as_dict(),
            "guard_checks": self.guard_hist.count,
            "guard_cycles": self.guard_hist.total,
            "guard_sites": len(self.guard_sites),
        }

    @property
    def freq_hz(self) -> Optional[float]:
        machine = self.kernel.machine
        return machine.freq_hz if machine is not None else None

    # -- operator surfaces (/proc/trace, /proc/trace_stat) --------------------------

    def render_trace(self) -> str:
        """The ``/proc/trace`` view: a perf-script dump of the ring."""
        from .exporters import to_perf_script

        merged = self.ring_stats()
        header = (
            f"# tracer: caratkop  enabled={int(self.enabled)}  "
            f"entries={merged['stored']}  lost={merged['lost']}\n"
        )
        return header + to_perf_script(self.snapshot())

    def render_stat(self) -> str:
        """The ``/proc/trace_stat`` view: counters, histogram, hot sites."""
        lines = [
            f"tracing: {'on' if self.enabled else 'off'}",
            "",
            "[ring]",
        ]
        for key, value in self.ring_stats().items():
            lines.append(f"{key:<10} {value}")
        if self._ncpus > 1:
            for cpu, ring in enumerate(self.rings):
                st = ring.stats()
                lines.append(
                    f"cpu{cpu:<7} stored={st['stored']} lost={st['lost']} "
                    f"total={st['total']}"
                )
        lines += ["", "[events]"]
        counters = self.counters.render()
        lines.append(counters if counters else "(none)")
        lines += ["", "[guard cycle cost]", self.guard_hist.render()]
        lines += ["", "[guard sites]", self.guard_sites.render()]
        policy = getattr(self.kernel, "carat_policy", None)
        if policy is not None and getattr(policy, "driver_stats", None):
            rows = policy.driver_stats()
            if rows:
                # Runtime guard traffic attributed to each module (the
                # per-driver split of the site counts above).
                lines += ["", "[guard drivers]"]
                for name, row in rows.items():
                    lines.append(
                        f"{name:<12} checks={row['checks']} "
                        f"denied={row['denied']}"
                    )
        blk_queues = getattr(self.kernel, "blk_queue_stats", None)
        if blk_queues is not None:
            rows = blk_queues()
            if rows:
                # Per-queue device-side accounting (NVMe-style multi
                # queue): one row per queue block, admin queue first.
                # Pure host-side state — rendering never runs module
                # code or moves the simulated clock.
                lines += ["", "[blk queues]"]
                for row in rows:
                    kind = "admin" if row["queue"] == 0 else "io"
                    state = "created" if row["created"] else "absent"
                    lines.append(
                        f"q{row['queue']:<3} {kind:<6} {state:<8} "
                        f"doorbells={row['doorbells']} "
                        f"fetched={row['fetched']} "
                        f"completed={row['completed']} "
                        f"errors={row['errors']} "
                        f"in_flight={row['in_flight']}"
                    )
        loader = getattr(self.kernel, "loader", None)
        if loader is not None and loader.loaded:
            # Compile-time guard-optimizer work per module: how many
            # static guard sites each -O level eliminated/hoisted/merged
            # (context for the runtime site counts above).
            lines += ["", "[guard opt]"]
            for name, mod in sorted(loader.loaded.items()):
                compiled = mod.compiled
                if not compiled.is_protected:
                    lines.append(f"{name:<12} unprotected")
                    continue
                line = (
                    f"{name:<12} O{compiled.opt_level} "
                    f"guards={compiled.guard_count} "
                    f"removed={compiled.guards_removed} "
                    f"hoisted={compiled.guards_hoisted} "
                    f"coalesced={compiled.guards_coalesced}"
                )
                if compiled.is_verified:
                    line += (
                        f" proven={compiled.guards_proven}"
                        f" dynamic={compiled.guards_dynamic}"
                        f" elided={len(mod.elided_guards)}"
                    )
                if mod.verify_state:
                    line += f" verify={mod.verify_state}"
                lines.append(line)
        irq = getattr(self.kernel, "irq", None)
        if irq is not None:
            lines += ["", "[irq]"]
            actions = irq.actions()
            if actions:
                for line, action in sorted(actions.items()):
                    lines.append(
                        f"irq{line:<4} fired={action.fired} "
                        f"coalesced={action.coalesced} "
                        f"handler={action.module.name}:{action.handler_name}"
                    )
            else:
                lines.append("(no handlers)")
        return "\n".join(lines) + "\n"


__all__ = ["TraceSubsystem"]
