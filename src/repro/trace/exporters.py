"""Trace exporters: chrome://tracing JSON, perf-script text, folded stacks.

Three interchange formats over one event list:

- :func:`to_chrome_trace` — the Trace Event Format consumed by
  ``chrome://tracing`` and Perfetto.  ``syscall:enter``/``exit`` pairs
  become complete ("X") duration slices; ``guard:check`` events become
  slices whose duration is the simulated guard cost; everything else is
  an instant event.
- :func:`to_perf_script` — the ``perf script``-style one-line-per-event
  text dump (what ``/proc/trace`` renders).
- :func:`to_folded` — Brendan Gregg folded stacks for flamegraph.pl:
  one ``frame;frame;frame count`` line per distinct guard stack, with
  ``carat_guard`` as the leaf frame.
"""

from __future__ import annotations

from typing import Iterable, Optional

from .events import TraceEvent

#: Trace Event Format phase codes this exporter emits / the validator accepts.
_PHASES = {"X", "i", "I", "B", "E", "M", "C"}

_ROOT_FRAME = "caratkop"
_GUARD_FRAME = "carat_guard"


def to_chrome_trace(
    events: Iterable[TraceEvent],
    freq_hz: Optional[float] = None,
    process_name: str = "caratkop-sim",
) -> dict:
    """Render events as a Trace Event Format document (JSON-ready dict)."""
    out: list[dict] = [{
        "ph": "M",
        "name": "process_name",
        "pid": 0,
        "tid": 0,
        "ts": 0,
        "args": {"name": process_name},
    }]
    open_syscalls: list[TraceEvent] = []
    for ev in events:
        if ev.name == "syscall:enter":
            open_syscalls.append(ev)
            continue
        if ev.name == "syscall:exit" and open_syscalls:
            enter = open_syscalls.pop()
            out.append({
                "ph": "X",
                "name": str(enter.args.get("name", "syscall")),
                "cat": "syscall",
                "pid": 0,
                "tid": 0,
                "ts": enter.ts_us,
                "dur": max(ev.ts_us - enter.ts_us, 0.0),
                "args": {**enter.args, **ev.args},
            })
            continue
        if ev.name == "guard:check":
            cycles = float(ev.args.get("cycles", 0.0) or 0.0)
            dur = cycles / freq_hz * 1e6 if freq_hz else 0.0
            args = dict(ev.args)
            if ev.stack:
                args["stack"] = list(ev.stack)
            out.append({
                "ph": "X",
                "name": _GUARD_FRAME,
                "cat": "guard",
                "pid": 0,
                "tid": 0,
                "ts": ev.ts_us,
                "dur": dur,
                "args": args,
            })
            continue
        out.append({
            "ph": "i",
            "s": "t",
            "name": ev.name,
            "cat": ev.category,
            "pid": 0,
            "tid": 0,
            "ts": ev.ts_us,
            "args": dict(ev.args),
        })
    # Unbalanced enters (snapshot taken mid-call) surface as instants.
    for enter in open_syscalls:
        out.append({
            "ph": "i",
            "s": "t",
            "name": enter.name,
            "cat": "syscall",
            "pid": 0,
            "tid": 0,
            "ts": enter.ts_us,
            "args": dict(enter.args),
        })
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def validate_chrome_trace(doc: object) -> list[str]:
    """Schema-check a Trace Event Format document.

    Returns a list of problems; an empty list means the document is
    valid.  This is what the CI trace-smoke job runs against the
    artifact (``caratkop-trace validate``).
    """
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"top level must be an object, got {type(doc).__name__}"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-array 'traceEvents'"]
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        name = ev.get("name")
        if not isinstance(name, str) or not name:
            problems.append(f"{where}: missing 'name'")
        ph = ev.get("ph")
        if ph not in _PHASES:
            problems.append(f"{where}: bad phase {ph!r}")
            continue
        if ph != "M":
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)):
                problems.append(f"{where}: missing numeric 'ts'")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: 'X' event needs 'dur' >= 0")
        if ph in ("i", "I") and ev.get("s") not in (None, "t", "p", "g"):
            problems.append(f"{where}: bad instant scope {ev.get('s')!r}")
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                problems.append(f"{where}: missing integer {key!r}")
        if "args" in ev and not isinstance(ev["args"], dict):
            problems.append(f"{where}: 'args' must be an object")
    return problems


def to_perf_script(
    events: Iterable[TraceEvent], comm: str = "pktblast"
) -> str:
    """perf-script-style text: ``comm [cpu] time: name: k=v ...``."""
    lines = []
    for ev in events:
        args = " ".join(
            f"{k}={_fmt_value(k, v)}" for k, v in ev.args.items()
        )
        lines.append(
            f"{comm:>16} [000] {ev.ts_us / 1e6:12.6f}: {ev.name}: {args}"
        )
    return "\n".join(lines) + ("\n" if lines else "")


def _fmt_value(key: str, value) -> str:
    if key == "addr" and isinstance(value, int):
        return f"{value:#x}"
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)


def to_folded(events: Iterable[TraceEvent], weight: str = "hits") -> str:
    """Folded flamegraph stacks from guard:check events.

    ``weight`` is ``"hits"`` (one sample per check) or ``"cycles"``
    (samples proportional to attributed guard cost).  Every stack is
    rooted at ``caratkop`` and leafed at ``carat_guard``, so any
    rendered flamegraph's top frame set includes the guard itself.
    """
    if weight not in ("hits", "cycles"):
        raise ValueError("weight must be 'hits' or 'cycles'")
    folded: dict[str, int] = {}
    for ev in events:
        if ev.name != "guard:check":
            continue
        frames = [_ROOT_FRAME]
        if ev.stack:
            frames.extend(ev.stack)
        frames.append(_GUARD_FRAME)
        key = ";".join(frames)
        if weight == "hits":
            w = 1
        else:
            w = max(int(float(ev.args.get("cycles", 0.0) or 0.0)), 1)
        folded[key] = folded.get(key, 0) + w
    lines = [f"{stack} {count}" for stack, count in sorted(folded.items())]
    return "\n".join(lines) + ("\n" if lines else "")


__all__ = [
    "to_chrome_trace",
    "to_folded",
    "to_perf_script",
    "validate_chrome_trace",
]
