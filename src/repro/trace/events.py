"""Trace event objects and the static event schema.

Every tracepoint in the tree is declared here, with its category and the
argument fields it emits — the analogue of the format files under
``/sys/kernel/debug/tracing/events/``.  The schema is what
``caratkop-trace schema`` prints and what DESIGN.md documents; emitting
an event whose name is not in the schema is allowed (subsystems may grow
ad-hoc points), but every in-tree site should register here.
"""

from __future__ import annotations

from typing import Optional


class TraceEvent:
    """One recorded event: sequence number, timestamp, name, arguments.

    ``ts_us`` is the kernel's monotonic microsecond clock (the VM cycle
    counter scaled by the machine frequency, or the logical clock on
    untimed runs).  ``stack`` is the VM function-name stack at emission
    time for events recorded through the VM tracer (guard checks), else
    ``None``.  ``cpu`` is the simulated CPU the event was recorded on
    (always 0 on single-CPU kernels); the merged multi-ring snapshot is
    ordered by ``seq``, which is global across CPUs.  Events are
    immutable once recorded: ring-buffer snapshots stay consistent
    however much tracing continues afterwards.
    """

    __slots__ = ("seq", "ts_us", "name", "args", "stack", "cpu")

    def __init__(self, seq: int, ts_us: float, name: str, args: dict,
                 stack: Optional[tuple] = None, cpu: int = 0):
        self.seq = seq
        self.ts_us = ts_us
        self.name = name
        self.args = args
        self.stack = stack
        self.cpu = cpu

    @property
    def category(self) -> str:
        return self.name.split(":", 1)[0]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceEvent({self.seq}, {self.ts_us:.3f}, {self.name!r}, {self.args!r})"


#: name -> (category, argument fields).  The in-tree tracepoint catalog.
EVENT_SCHEMA: dict[str, tuple[str, tuple[str, ...]]] = {
    # VM guard hot path (both engines).
    "guard:check": ("guard", ("site", "addr", "size", "flags", "entries", "cycles")),
    # Policy-module denial (any guard flavour, any enforcement mode).
    "guard:deny": ("guard", ("module", "kind", "addr", "size", "flags", "index", "detail")),
    # Module lifecycle.
    "module:verify": ("module", ("module", "signed", "verified")),
    "module:link": ("module", ("module", "symbol", "owner")),
    "module:load": ("module", ("module", "base", "size", "protected", "guards")),
    "module:eject": ("module", ("module", "reason")),
    "journal:rollback": ("journal", ("module", "kind", "key")),
    # Interrupts and timers.
    "irq:raise": ("irq", ("line",)),
    "irq:dispatch": ("irq", ("line", "handler", "module")),
    "irq:coalesce": ("irq", ("line",)),
    "timer:fire": ("timer", ("timer_id", "handler", "module")),
    # Core-kernel memory natives.
    "mem:kmalloc": ("mem", ("addr", "size", "module")),
    "mem:kfree": ("mem", ("addr",)),
    # NIC DMA engine (TX descriptor fetch, DD write-back, RX DMA).
    "dma:fetch": ("dma", ("index", "addr", "len")),
    "dma:writeback": ("dma", ("index",)),
    "dma:rx": ("dma", ("index", "len")),
    # Block device queue engine (doorbell ring, descriptor fetch,
    # completion write-back) — every event carries its queue id.
    "vblk:doorbell": ("vblk", ("queue", "tail")),
    "vblk:fetch": ("vblk", ("queue", "index", "sector", "len", "op")),
    "vblk:complete": ("vblk", ("queue", "index", "status")),
    # The user/kernel boundary.
    "syscall:enter": ("syscall", ("name", "bytes")),
    "syscall:exit": ("syscall", ("name", "rc", "cycles", "stalled")),
    # Catastrophes and injected faults.
    "kernel:panic": ("kernel", ("reason",)),
    "fault:inject": ("fault", ("kind", "line", "offset", "cycles")),
    # Policy control plane (multi-tenant staged rollout).
    "cp:batch": ("cp", ("tenant", "ops", "regions")),
    "cp:stage": ("cp", ("generation", "tenant", "canary_cpus", "regions")),
    "cp:promote": ("cp", ("generation", "tenant", "canary_reads", "canary_ticks")),
    "cp:rollback": ("cp", ("generation", "tenant", "reason", "policy_ops")),
    "cp:publish_retry": ("cp", ("generation", "attempt", "backoff_us", "dropped", "stalled")),
    "cp:replica_repair": ("cp", ("cpu", "generation", "stale_generation")),
}


def describe_schema() -> str:
    """Human-readable schema dump (the ``caratkop-trace schema`` verb)."""
    lines = []
    current = None
    for name in sorted(EVENT_SCHEMA, key=lambda n: (EVENT_SCHEMA[n][0], n)):
        category, fields = EVENT_SCHEMA[name]
        if category != current:
            lines.append(f"[{category}]")
            current = category
        lines.append(f"  {name}({', '.join(fields)})")
    return "\n".join(lines) + "\n"


__all__ = ["EVENT_SCHEMA", "TraceEvent", "describe_schema"]
