"""Deterministic device- and driver-path fault injection.

Faults are *period-based*, not probabilistic: every Nth eligible event
faults (period 0 = never).  Runs are therefore exactly reproducible —
the property every differential test in this repo is built on — while
still interleaving faults with normal traffic.

Injection points (all hooks default to ``None`` on the host objects, so
a system without an attached injector pays nothing):

- :meth:`mmio_garble` — reads of telemetry-class NIC registers (packet
  and octet counters) return all-ones, the classic value a PCIe master
  abort feeds the CPU.  Control/ring registers are never garbled: a
  flaky *counter* models a marginal link without breaking the TX/RX
  protocol the soak's invariants depend on.
- :meth:`dma_stall_cycles` — extra wire-drain latency per DMA'd frame
  (a congested or retraining link), which is also how TX-ring-full
  storms are provoked: stalled drains back the ring up at line rate.
- :meth:`drop_irq` — swallow every Nth interrupt (lost edge).
- :meth:`xmit_transient` — the netdev layer reports EBUSY before even
  reaching the driver (qdisc backpressure).

vblk hooks (consumed by :class:`repro.vblk.device.VblkDevice`):

- :meth:`vblk_desc_garble` — every Nth descriptor fetch is torn: the
  device sees an inconsistent snapshot, rejects the request with an
  error status, and the driver's harvest path counts the error.  The
  request still completes, so the functional model never hangs.
- :meth:`vblk_completion_stall_cycles` — extra media-service latency
  per request (a device doing background garbage collection).
- :meth:`vblk_writeback_drop` — every Nth used-ring write-back is lost
  on the bus; the device's retry engine replays it once a beat later,
  preserving completion order.
- :meth:`vblk_doorbell_drop` — every Nth submission doorbell latches
  the new tail in the register file but the kick event is swallowed on
  the bus; the device's ring scan (any later sync, cause read, or
  doorbell) picks the posted work up, so no request is ever lost.
- :meth:`vblk_cq_stall_cycles` — every Nth completion-queue drain with
  matured entries hiccups: everything matured on that queue is
  deferred together (per-queue FIFO order preserved).  Untimed runs
  count the event but complete on the same pass, so the functional
  model never hangs.

Control-plane hooks (consumed by
:class:`repro.policy.controlplane.PolicyControlPlane`):

- :meth:`drop_publish` — every Nth per-CPU replica install silently
  fails (the slot keeps its old generation), forcing the publish
  watchdog to detect the partial publish and retry.
- :meth:`publish_stall` — every Nth grace-period wait stalls (the
  ``synchronize_rcu`` analog never completes for that attempt).
- :meth:`corrupt_replica` — every Nth successfully installed slot holds
  a torn payload under a valid generation stamp; the guard-side read
  path must detect and repair it before serving any decision.
- :meth:`torn_batch` — every Nth batch op dies mid-apply, exercising the
  journal's all-or-nothing rollback.
- :meth:`quota_race` — every Nth applied batch is immediately replayed
  by a simulated racing writer that must lose cleanly (quota/overlap
  errno) without perturbing state.
"""

from __future__ import annotations

from typing import Optional

from ..e1000e import regs

#: Registers eligible for garbling: pure telemetry counters.
_TELEMETRY_OFFSETS = frozenset(
    {regs.GPTC, regs.TOTL, regs.TOTH, regs.GPRC, regs.MPC}
)

_ALL_ONES = 0xFFFF_FFFF


class FaultInjector:
    """Deterministic fault schedules for the NIC, IRQ path, and netdev."""

    def __init__(
        self,
        *,
        mmio_garble_period: int = 0,
        dma_stall_period: int = 0,
        dma_stall_cycles: float = 50_000.0,
        irq_drop_period: int = 0,
        xmit_fail_period: int = 0,
        vblk_desc_garble_period: int = 0,
        vblk_stall_period: int = 0,
        vblk_stall_cycles: float = 30_000.0,
        vblk_writeback_drop_period: int = 0,
        vblk_doorbell_drop_period: int = 0,
        vblk_cq_stall_period: int = 0,
        vblk_cq_stall_cycles: float = 45_000.0,
        publish_drop_period: int = 0,
        publish_stall_period: int = 0,
        replica_corrupt_period: int = 0,
        torn_batch_period: int = 0,
        quota_race_period: int = 0,
    ):
        for name, period in (
            ("mmio_garble_period", mmio_garble_period),
            ("dma_stall_period", dma_stall_period),
            ("irq_drop_period", irq_drop_period),
            ("xmit_fail_period", xmit_fail_period),
            ("vblk_desc_garble_period", vblk_desc_garble_period),
            ("vblk_stall_period", vblk_stall_period),
            ("vblk_writeback_drop_period", vblk_writeback_drop_period),
            ("vblk_doorbell_drop_period", vblk_doorbell_drop_period),
            ("vblk_cq_stall_period", vblk_cq_stall_period),
            ("publish_drop_period", publish_drop_period),
            ("publish_stall_period", publish_stall_period),
            ("replica_corrupt_period", replica_corrupt_period),
            ("torn_batch_period", torn_batch_period),
            ("quota_race_period", quota_race_period),
        ):
            if period < 0:
                raise ValueError(f"{name} must be >= 0")
        self.mmio_garble_period = mmio_garble_period
        self.dma_stall_period = dma_stall_period
        self._dma_stall_cycles = float(dma_stall_cycles)
        self.irq_drop_period = irq_drop_period
        self.xmit_fail_period = xmit_fail_period
        self.vblk_desc_garble_period = vblk_desc_garble_period
        self.vblk_stall_period = vblk_stall_period
        self._vblk_stall_cycles = float(vblk_stall_cycles)
        self.vblk_writeback_drop_period = vblk_writeback_drop_period
        self.vblk_doorbell_drop_period = vblk_doorbell_drop_period
        self.vblk_cq_stall_period = vblk_cq_stall_period
        self._vblk_cq_stall_cycles = float(vblk_cq_stall_cycles)
        self.publish_drop_period = publish_drop_period
        self.publish_stall_period = publish_stall_period
        self.replica_corrupt_period = replica_corrupt_period
        self.torn_batch_period = torn_batch_period
        self.quota_race_period = quota_race_period
        # Eligible-event counters (the deterministic schedules).
        self._telemetry_reads = 0
        self._dma_frames = 0
        self._irqs = 0
        self._xmits = 0
        self._vblk_descs = 0
        self._vblk_completions = 0
        self._vblk_writebacks = 0
        self._vblk_doorbells = 0
        self._vblk_cq_drains = 0
        self._publish_installs = 0
        self._grace_waits = 0
        self._replica_installs = 0
        self._batch_ops = 0
        self._batches_applied = 0
        # Injected-fault counters for the report.
        self.garbled_reads = 0
        self.stalled_frames = 0
        self.dropped_irqs = 0
        self.failed_xmits = 0
        self.garbled_descriptors = 0
        self.stalled_completions = 0
        self.dropped_writebacks = 0
        self.dropped_doorbells = 0
        self.stalled_cqs = 0
        self.dropped_publishes = 0
        self.stalled_publishes = 0
        self.corrupted_replicas = 0
        self.torn_batches = 0
        self.quota_race_storms = 0
        # fault:inject tracepoint, bound by attach() (None while detached).
        self._tp = None

    def _emit(self, kind: str, **args) -> None:
        tp = self._tp
        if tp is not None and tp.enabled:
            tp.emit(kind=kind, **args)

    # -- hook implementations (called by the instrumented subsystems) -------

    def mmio_garble(self, offset: int) -> Optional[int]:
        """All-ones for every Nth telemetry read; None = read normally."""
        if self.mmio_garble_period == 0 or offset not in _TELEMETRY_OFFSETS:
            return None
        self._telemetry_reads += 1
        if self._telemetry_reads % self.mmio_garble_period == 0:
            self.garbled_reads += 1
            self._emit("mmio_garble", offset=offset)
            return _ALL_ONES
        return None

    def dma_stall_cycles(self, length: int) -> float:
        """Extra wire cycles for every Nth DMA'd frame."""
        if self.dma_stall_period == 0:
            return 0.0
        self._dma_frames += 1
        if self._dma_frames % self.dma_stall_period == 0:
            self.stalled_frames += 1
            self._emit("dma_stall", cycles=self._dma_stall_cycles)
            return self._dma_stall_cycles
        return 0.0

    def drop_irq(self, line: int) -> bool:
        """True = swallow this interrupt delivery."""
        if self.irq_drop_period == 0:
            return False
        self._irqs += 1
        if self._irqs % self.irq_drop_period == 0:
            self.dropped_irqs += 1
            self._emit("irq_drop", line=line)
            return True
        return False

    def xmit_transient(self) -> bool:
        """True = the stack reports a transient EBUSY for this frame."""
        if self.xmit_fail_period == 0:
            return False
        self._xmits += 1
        if self._xmits % self.xmit_fail_period == 0:
            self.failed_xmits += 1
            self._emit("xmit_transient")
            return True
        return False

    # -- vblk hooks ----------------------------------------------------------

    def vblk_desc_garble(self) -> bool:
        """True = this descriptor fetch observes a torn snapshot."""
        if self.vblk_desc_garble_period == 0:
            return False
        self._vblk_descs += 1
        if self._vblk_descs % self.vblk_desc_garble_period == 0:
            self.garbled_descriptors += 1
            self._emit("vblk_desc_garble")
            return True
        return False

    def vblk_completion_stall_cycles(self) -> float:
        """Extra media-service cycles for every Nth request."""
        if self.vblk_stall_period == 0:
            return 0.0
        self._vblk_completions += 1
        if self._vblk_completions % self.vblk_stall_period == 0:
            self.stalled_completions += 1
            self._emit("vblk_stall", cycles=self._vblk_stall_cycles)
            return self._vblk_stall_cycles
        return 0.0

    def vblk_writeback_drop(self) -> bool:
        """True = this used-ring write-back is lost and must be retried."""
        if self.vblk_writeback_drop_period == 0:
            return False
        self._vblk_writebacks += 1
        if self._vblk_writebacks % self.vblk_writeback_drop_period == 0:
            self.dropped_writebacks += 1
            self._emit("vblk_writeback_drop")
            return True
        return False

    def vblk_doorbell_drop(self) -> bool:
        """True = this submission doorbell's kick event is swallowed.

        The tail value still latches in the register file, so the
        device's next ring scan recovers the posted work — a lost
        *event*, never a lost *request*."""
        if self.vblk_doorbell_drop_period == 0:
            return False
        self._vblk_doorbells += 1
        if self._vblk_doorbells % self.vblk_doorbell_drop_period == 0:
            self.dropped_doorbells += 1
            self._emit("vblk_doorbell_drop")
            return True
        return False

    def vblk_cq_stall_cycles(self) -> float:
        """Extra write-back deferral for every Nth CQ drain that has
        matured completions pending (0.0 = drain normally)."""
        if self.vblk_cq_stall_period == 0:
            return 0.0
        self._vblk_cq_drains += 1
        if self._vblk_cq_drains % self.vblk_cq_stall_period == 0:
            self.stalled_cqs += 1
            self._emit("vblk_cq_stall", cycles=self._vblk_cq_stall_cycles)
            return self._vblk_cq_stall_cycles
        return 0.0

    # -- control-plane hooks -------------------------------------------------

    def drop_publish(self, cpu: int) -> bool:
        """True = this per-CPU replica install is silently lost."""
        if self.publish_drop_period == 0:
            return False
        self._publish_installs += 1
        if self._publish_installs % self.publish_drop_period == 0:
            self.dropped_publishes += 1
            self._emit("publish_drop", cpu=cpu)
            return True
        return False

    def publish_stall(self) -> bool:
        """True = this grace-period wait stalls (watchdog must retry)."""
        if self.publish_stall_period == 0:
            return False
        self._grace_waits += 1
        if self._grace_waits % self.publish_stall_period == 0:
            self.stalled_publishes += 1
            self._emit("publish_stall")
            return True
        return False

    def corrupt_replica(self, cpu: int) -> bool:
        """True = tear this freshly installed replica's payload."""
        if self.replica_corrupt_period == 0:
            return False
        self._replica_installs += 1
        if self._replica_installs % self.replica_corrupt_period == 0:
            self.corrupted_replicas += 1
            self._emit("replica_corrupt", cpu=cpu)
            return True
        return False

    def torn_batch(self) -> bool:
        """True = fail the batch at this op (mid-transaction tear)."""
        if self.torn_batch_period == 0:
            return False
        self._batch_ops += 1
        if self._batch_ops % self.torn_batch_period == 0:
            self.torn_batches += 1
            self._emit("torn_batch")
            return True
        return False

    def quota_race(self) -> bool:
        """True = replay this applied batch as a racing duplicate."""
        if self.quota_race_period == 0:
            return False
        self._batches_applied += 1
        if self._batches_applied % self.quota_race_period == 0:
            self.quota_race_storms += 1
            self._emit("quota_race")
            return True
        return False

    # -- wiring --------------------------------------------------------------

    def attach(self, system) -> "FaultInjector":
        """Hook into a :class:`~repro.core.system.CaratKopSystem`.

        Works for either driver stack: the NIC system exposes ``device``
        + ``netdev``, the vblk system ``device`` + ``blkdev``; whichever
        hosts exist get the injector."""
        for host in (system.device, getattr(system, "netdev", None)):
            if host is not None:
                host.fault_injector = self
        system.kernel.irq.fault_injector = self
        self._tp = system.kernel.trace.points["fault:inject"]
        return self

    def detach(self, system) -> None:
        for host in (
            system.device,
            getattr(system, "netdev", None),
            system.kernel.irq,
        ):
            if host is not None and host.fault_injector is self:
                host.fault_injector = None
        self._tp = None

    def report(self) -> dict[str, int]:
        return {
            "garbled_reads": self.garbled_reads,
            "stalled_frames": self.stalled_frames,
            "dropped_irqs": self.dropped_irqs,
            "failed_xmits": self.failed_xmits,
            "garbled_descriptors": self.garbled_descriptors,
            "stalled_completions": self.stalled_completions,
            "dropped_writebacks": self.dropped_writebacks,
            "dropped_doorbells": self.dropped_doorbells,
            "stalled_cqs": self.stalled_cqs,
            "dropped_publishes": self.dropped_publishes,
            "stalled_publishes": self.stalled_publishes,
            "corrupted_replicas": self.corrupted_replicas,
            "torn_batches": self.torn_batches,
            "quota_race_storms": self.quota_race_storms,
        }


__all__ = ["FaultInjector"]
