"""Fault injection and recovery soaking for the graceful-enforcement work.

:class:`FaultInjector` deterministically degrades the simulated hardware
and driver path (garbled telemetry MMIO reads, DMA wire stalls, dropped
IRQs, transient xmit failures); :func:`run_soak` drives repeated
violation -> eject -> rollback -> re-insmod cycles under that noise and
audits the kernel for leaks after every recovery.
"""

from .injector import FaultInjector
from .soak import HOSTILE_MODULE, run_soak

__all__ = ["FaultInjector", "HOSTILE_MODULE", "run_soak"]
