"""The violation -> eject -> rollback -> re-insmod recovery soak.

Drives a hostile module through repeated policy violations in ``eject``
mode while fault injection degrades the NIC underneath, and audits the
kernel after every ejection: zero leaked kmalloc bytes, zero orphaned
IRQ lines or timers, an empty journal, and a driver that still moves
packets.  This is the acceptance harness for the graceful-enforcement
subsystem (paper §5's "cleanly handle forbidden accesses", made
repeatable).

Each cycle also runs the same violation->eject->recovery arc on a
second system assembled around the vblk block stack (its own kernel,
its own fault schedule: torn descriptors, media stalls, dropped
used-ring write-backs, dropped doorbells, stalled completion queues),
so the soak certifies graceful enforcement on both guarded device
stacks, not just the NIC.  The vblk half runs multi-queue by default
(``blk_cpus`` CPUs, one I/O queue pair each) and audits after every
blast that every queue pair quiesced — no bio stranded on any
submission ring, none leaked in flight — despite the dropped doorbells
and CQ stalls underneath.  Pass ``vblk=False`` for the historic
NIC-only soak.
"""

from __future__ import annotations

from typing import Optional

from ..core.pipeline import CompileOptions, compile_module
from ..core.system import CaratKopSystem, SystemConfig
from ..kernel.module_loader import LoadError
from .injector import FaultInjector

#: A module that accrues every journal-tracked side-effect kind at init
#: (allocations, an IRQ line, a pending timer, an exported helper), then
#: violates the policy on demand: ``attack(addr)`` stores to a forbidden
#: address, tripping a guard mid-call with all that state live.
HOSTILE_MODULE = r"""
extern void *kmalloc(long size, int flags);
extern void kfree(void *p);
extern int request_irq(int line, char *handler);
extern long mod_timer(char *handler, long delay_us, long arg);
extern int printk(char *fmt, ...);

long *scratch;
long *stash;
long ticks;

__export void hostile_isr(long line) {
    scratch[0] = scratch[0] + 1;
}

__export void hostile_tick(long arg) {
    ticks = ticks + 1;
    mod_timer("hostile_tick", 1000, arg);
}

__export long hostile_ticks(void) { return ticks; }

int init_module(void) {
    scratch = (long *)kmalloc(256, 0);
    stash = (long *)kmalloc(1024, 0);
    if (scratch == null || stash == null) { return -1; }
    scratch[0] = 0;
    ticks = 0;
    if (request_irq(40, "hostile_isr") != 0) { return -1; }
    if (mod_timer("hostile_tick", 1000, 0) <= 0) { return -1; }
    printk("hostile: armed\n");
    return 0;
}

__export long attack(long addr) {
    long *p = (long *)addr;
    *p = 42;
    return *p;
}
"""

HOSTILE_NAME = "hostile"

#: A user-half address the two-region policy always denies.
ATTACK_ADDR = 0x1000

_EFAULT = 14


class SoakError(AssertionError):
    """An invariant failed mid-soak; the report so far is attached."""

    def __init__(self, message: str, report: dict):
        super().__init__(message)
        self.report = report


def run_soak(
    cycles: int = 50,
    machine: Optional[str] = None,
    engine: str = "compiled",
    blast_size: int = 128,
    blast_count: int = 20,
    injector: Optional[FaultInjector] = None,
    vblk: bool = True,
    blk_count: int = 16,
    vblk_injector: Optional[FaultInjector] = None,
    blk_cpus: int = 2,
    blk_queues="auto",
) -> dict:
    """Run ``cycles`` violation->eject->recovery cycles; returns a report.

    Raises :class:`SoakError` on the first violated invariant.
    """
    system = CaratKopSystem(SystemConfig(
        machine=machine, protect=True, enforce_mode="eject", engine=engine,
    ))
    kernel = system.kernel
    if injector is None:
        injector = FaultInjector(
            mmio_garble_period=7,
            dma_stall_period=13,
            irq_drop_period=5,
            xmit_fail_period=11,
        )
    injector.attach(system)
    system.socket.max_retries = 3

    hostile = compile_module(
        HOSTILE_MODULE,
        CompileOptions(module_name=HOSTILE_NAME, key=system.signing_key),
    )

    vsystem = vhostile = None
    if vblk:
        vsystem = CaratKopSystem(SystemConfig(
            machine=machine, driver="vblk", protect=True,
            enforce_mode="eject", engine=engine,
            cpus=blk_cpus, queues=blk_queues,
        ))
        if vblk_injector is None:
            vblk_injector = FaultInjector(
                vblk_desc_garble_period=9,
                vblk_stall_period=17,
                vblk_writeback_drop_period=23,
                vblk_doorbell_drop_period=27,
                vblk_cq_stall_period=31,
            )
        vblk_injector.attach(vsystem)
        vhostile = compile_module(
            HOSTILE_MODULE,
            CompileOptions(module_name=HOSTILE_NAME,
                           key=vsystem.signing_key),
        )

    report: dict = {
        "cycles_requested": cycles,
        "cycles_completed": 0,
        "ejections": 0,
        "leaked_bytes_total": 0,
        "delivered_frames": 0,
        "per_cycle": [],
    }
    if vblk:
        report["vblk_ejections"] = 0
        report["blk_ops_done"] = 0

    def check(condition: bool, message: str) -> None:
        if not condition:
            raise SoakError(message, report)

    def cycle_failed(cycle: int, exc: Exception) -> SoakError:
        """A cycle died mid-rollback (eject/unwind raised through).  Drain
        whatever the journal still holds, verify the drain took, and turn
        the crash into a structured nonzero exit instead of a traceback."""
        drained_modules = 0
        drained_records = 0
        kernels = [kernel]
        if vsystem is not None:
            kernels.append(vsystem.kernel)
        for k in kernels:
            for module in k.journal.modules():
                drained_records += k.journal.depth(module)
                k.journal.rollback(module, k)
                drained_modules += 1
        report["error"] = {
            "cycle": cycle,
            "type": type(exc).__name__,
            "detail": str(exc),
            "journal_drained_modules": drained_modules,
            "journal_drained_records": drained_records,
            "journal_empty_after_drain": not any(
                k.journal.modules() for k in kernels),
        }
        return SoakError(
            f"cycle {cycle} failed mid-rollback "
            f"({type(exc).__name__}: {exc}); journal drained "
            f"({drained_modules} module(s), {drained_records} record(s), "
            f"empty={report['error']['journal_empty_after_drain']})",
            report,
        )

    for cycle in range(cycles):
        try:
            _run_cycle(cycle, system, kernel, hostile, report, check,
                       blast_size, blast_count)
            if vsystem is not None:
                _run_vblk_cycle(cycle, vsystem, vhostile, report, check,
                                blk_count)
        except SoakError:
            raise
        except Exception as e:
            raise cycle_failed(cycle, e) from e

    report["violation_faults"] = kernel.violation_faults
    report["entry_refusals"] = kernel.entry_refusals
    report["irqs_dropped_by_injector"] = kernel.irq.dropped
    report["injector"] = injector.report()
    report["guard_stats"] = system.guard_stats()
    injector.detach(system)
    if vsystem is not None:
        report["vblk_violation_faults"] = vsystem.kernel.violation_faults
        report["vblk_injector"] = vblk_injector.report()
        report["vblk_guard_stats"] = vsystem.guard_stats()
        vblk_injector.detach(vsystem)
    return report


def _run_cycle(cycle, system, kernel, hostile, report, check,
               blast_size, blast_count) -> None:
    """One violation->eject->recovery cycle (invariants via ``check``)."""
    if cycle > 0:
        check(
            system.policy_manager.unquarantine(HOSTILE_NAME),
            f"cycle {cycle}: quarantine was not in place to lift",
        )
    alloc_base = kernel.kmalloc_allocator.snapshot()
    irq_base = len(kernel.irq._actions)
    timer_base = kernel.timers.pending()

    loaded = kernel.insmod(hostile)
    check(
        kernel.journal.depth(HOSTILE_NAME) >= 4,
        f"cycle {cycle}: journal missed the module's side effects",
    )

    rc = kernel.run_function(loaded, "attack", [ATTACK_ADDR])
    check(rc == -_EFAULT,
          f"cycle {cycle}: attack returned {rc}, wanted -EFAULT")
    check(HOSTILE_NAME not in kernel.lsmod(),
          f"cycle {cycle}: module still resident after eject")
    check(loaded.ejected, f"cycle {cycle}: eject flag not set")
    check(kernel.panicked is None,
          f"cycle {cycle}: kernel panicked ({kernel.panicked})")

    alloc_now = kernel.kmalloc_allocator.snapshot()
    leaked = alloc_now[1] - alloc_base[1]
    check(leaked == 0, f"cycle {cycle}: leaked {leaked} kmalloc bytes")
    check(alloc_now[0] == alloc_base[0],
          f"cycle {cycle}: leaked allocations "
          f"({alloc_now[0] - alloc_base[0]})")
    check(len(kernel.irq._actions) == irq_base,
          f"cycle {cycle}: orphaned IRQ lines")
    check(kernel.timers.pending() == timer_base,
          f"cycle {cycle}: orphaned timers")
    check(kernel.journal.depth(HOSTILE_NAME) == 0,
          f"cycle {cycle}: journal not drained")

    if cycle == 0:
        # The quarantine must hold until explicitly lifted.
        try:
            kernel.insmod(hostile)
        except LoadError:
            pass
        else:
            check(False, "quarantined module was allowed back in")

    sunk_before = system.sink.packets
    system.blast(size=blast_size, count=blast_count)
    delivered = system.sink.packets - sunk_before
    check(delivered == blast_count,
          f"cycle {cycle}: driver moved {delivered}/{blast_count} frames")
    report["delivered_frames"] += delivered

    report["ejections"] += 1
    report["cycles_completed"] = cycle + 1
    report["per_cycle"].append({
        "cycle": cycle,
        "rc": rc,
        "leaked_bytes": leaked,
        "delivered": delivered,
        "rollback": kernel.journal.rollbacks[-1],
    })


def _run_vblk_cycle(cycle, system, hostile, report, check,
                    blk_count) -> None:
    """The vblk half of a soak cycle: the same violation->eject arc on
    the block stack's own kernel, with a mixed blkblast as the
    driver-still-alive probe."""
    kernel = system.kernel
    if cycle > 0:
        check(
            system.policy_manager.unquarantine(HOSTILE_NAME),
            f"cycle {cycle}: vblk quarantine was not in place to lift",
        )
    alloc_base = kernel.kmalloc_allocator.snapshot()

    loaded = kernel.insmod(hostile)
    rc = kernel.run_function(loaded, "attack", [ATTACK_ADDR])
    check(rc == -_EFAULT,
          f"cycle {cycle}: vblk attack returned {rc}, wanted -EFAULT")
    check(HOSTILE_NAME not in kernel.lsmod(),
          f"cycle {cycle}: hostile still resident in the vblk kernel")
    check(loaded.ejected, f"cycle {cycle}: vblk eject flag not set")
    check(kernel.panicked is None,
          f"cycle {cycle}: vblk kernel panicked ({kernel.panicked})")
    alloc_now = kernel.kmalloc_allocator.snapshot()
    check(alloc_now[1] == alloc_base[1],
          f"cycle {cycle}: vblk kernel leaked "
          f"{alloc_now[1] - alloc_base[1]} kmalloc bytes")
    check(kernel.journal.depth(HOSTILE_NAME) == 0,
          f"cycle {cycle}: vblk journal not drained")

    res = system.blkblast(count=blk_count, nsect=2, pattern="rand",
                          seed=cycle + 1)
    check(res.ops_done == blk_count,
          f"cycle {cycle}: block stack moved {res.ops_done}/{blk_count} ops")
    # Multi-queue quiesce audit: after the blast (run under dropped
    # doorbells and stalled completion queues), every queue pair must
    # drain completely — no bio may be stranded on any submission ring
    # (avail head caught up to the doorbelled tail) or left in flight in
    # the device's completion engine.
    system.device.sync()
    for q in system.device.queues:
        check(not q.in_flight,
              f"cycle {cycle}: queue {q.qid} leaked "
              f"{len(q.in_flight)} in-flight bio(s)")
        if q.created:
            check(q.avh == q.avt,
                  f"cycle {cycle}: queue {q.qid} stranded "
                  f"{(q.avt - q.avh) & 0xFFFFFFFF} submitted bio(s)")
            check(q.fetched == q.completed,
                  f"cycle {cycle}: queue {q.qid} fetched {q.fetched} "
                  f"but completed {q.completed}")
    report["blk_ops_done"] += res.ops_done
    report["vblk_ejections"] += 1
    report["per_cycle"][-1]["vblk_rc"] = rc
    report["per_cycle"][-1]["blk_ops"] = res.ops_done


__all__ = ["ATTACK_ADDR", "HOSTILE_MODULE", "HOSTILE_NAME", "SoakError",
           "run_soak"]
