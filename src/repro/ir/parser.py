"""Parser for the textual IR format produced by :mod:`repro.ir.printer`.

The parser exists so that (a) IR can be written by hand in tests and
examples, and (b) the print/parse round trip can be property-tested,
which in turn validates the canonical serialization the signer hashes.
"""

from __future__ import annotations

import re
from typing import Callable, Optional

from .instructions import (
    BINOPS,
    CAST_OPS,
    Alloca,
    BinOp,
    Br,
    Call,
    Cast,
    FCmp,
    Gep,
    ICmp,
    InlineAsm,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    Switch,
    Unreachable,
)
from .module import BasicBlock, Function, Module
from .types import (
    ArrayType,
    FloatType,
    FunctionType,
    IRType,
    IntType,
    PointerType,
    StructType,
    VOID,
)
from .values import (
    ConstantFloat,
    ConstantInt,
    ConstantNull,
    ConstantString,
    GlobalVariable,
    UndefValue,
    Value,
)


class IRParseError(ValueError):
    """Raised on malformed IR text, with line information."""

    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>;[^\n]*)
  | (?P<string>c?"(?:[^"\\]|\\[0-9a-fA-F]{2})*")
  | (?P<number>-?\d+(?:\.\d+(?:e-?\d+)?)?)
  | (?P<lref>%[A-Za-z0-9_.$-]+)
  | (?P<gref>@[A-Za-z0-9_.$-]+)
  | (?P<meta>![A-Za-z_][A-Za-z0-9_.]*)
  | (?P<ellipsis>\.\.\.)
  | (?P<attr>\#[A-Za-z_][A-Za-z0-9_.]*)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_.]*)
  | (?P<punct>[=,(){}\[\]:*])
    """,
    re.VERBOSE,
)


class _Token:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind: str, text: str, line: int):
        self.kind = kind
        self.text = text
        self.line = line

    def __repr__(self) -> str:  # pragma: no cover
        return f"Token({self.kind}, {self.text!r})"


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    line = 1
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise IRParseError(f"unexpected character {text[pos]!r}", line)
        kind = m.lastgroup or ""
        value = m.group()
        line += value.count("\n")
        if kind not in ("ws", "comment"):
            tokens.append(_Token(kind, value, line))
        pos = m.end()
    tokens.append(_Token("eof", "", line))
    return tokens


def _unescape(body: str) -> bytes:
    out = bytearray()
    i = 0
    while i < len(body):
        c = body[i]
        if c == "\\":
            out.append(int(body[i + 1 : i + 3], 16))
            i += 3
        else:
            out.append(ord(c))
            i += 1
    return bytes(out)


class _Parser:
    def __init__(self, text: str):
        self.tokens = _tokenize(text)
        self.pos = 0
        self.module: Optional[Module] = None

    # -- token helpers --------------------------------------------------------

    @property
    def cur(self) -> _Token:
        return self.tokens[self.pos]

    def advance(self) -> _Token:
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def expect(self, kind: str, text: Optional[str] = None) -> _Token:
        tok = self.cur
        if tok.kind != kind or (text is not None and tok.text != text):
            want = text or kind
            raise IRParseError(f"expected {want!r}, got {tok.text!r}", tok.line)
        return self.advance()

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[_Token]:
        tok = self.cur
        if tok.kind == kind and (text is None or tok.text == text):
            return self.advance()
        return None

    def error(self, msg: str) -> IRParseError:
        return IRParseError(msg, self.cur.line)

    # -- types ------------------------------------------------------------------

    def parse_type(self) -> IRType:
        tok = self.cur
        base: IRType
        if tok.kind == "ident":
            text = tok.text
            if text == "void":
                self.advance()
                base = VOID
            elif text.startswith("i") and text[1:].isdigit():
                self.advance()
                base = IntType(int(text[1:]))
            elif text.startswith("f") and text[1:].isdigit():
                self.advance()
                base = FloatType(int(text[1:]))
            else:
                raise self.error(f"unknown type {text!r}")
        elif tok.kind == "lref":
            self.advance()
            name = tok.text[1:]
            assert self.module is not None
            try:
                base = self.module.structs[name]
            except KeyError:
                raise IRParseError(f"unknown struct %{name}", tok.line) from None
        elif tok.kind == "punct" and tok.text == "[":
            self.advance()
            count = int(self.expect("number").text)
            self.expect("ident", "x")
            elem = self.parse_type()
            self.expect("punct", "]")
            base = ArrayType(elem, count)
        else:
            raise self.error(f"expected type, got {tok.text!r}")
        while self.accept("punct", "*"):
            base = PointerType(base)
        return base

    # -- module-level ------------------------------------------------------------

    def parse_module(self) -> Module:
        self.expect("ident", "module")
        name_tok = self.expect("string")
        module = Module(_unescape(name_tok.text[1:-1]).decode())
        self.module = module
        while self.cur.kind != "eof":
            tok = self.cur
            if tok.kind == "meta":
                self.parse_metadata(module)
            elif tok.kind == "lref":
                self.parse_struct(module)
            elif tok.kind == "gref":
                self.parse_global(module)
            elif tok.kind == "ident" and tok.text in ("define", "declare"):
                self.parse_function(module)
            else:
                raise self.error(f"unexpected top-level token {tok.text!r}")
        return module

    def parse_metadata(self, module: Module) -> None:
        key = self.advance().text[1:]
        self.expect("punct", "=")
        tok = self.advance()
        value: object
        if tok.kind == "ident" and tok.text in ("true", "false"):
            value = tok.text == "true"
        elif tok.kind == "number":
            value = int(tok.text)
        elif tok.kind == "string":
            value = _unescape(tok.text[1:-1]).decode()
        else:
            raise IRParseError(f"bad metadata value {tok.text!r}", tok.line)
        module.metadata[key] = value

    def parse_struct(self, module: Module) -> None:
        name = self.advance().text[1:]
        self.expect("punct", "=")
        self.expect("ident", "type")
        self.expect("punct", "{")
        fields: list[IRType] = []
        if not self.accept("punct", "}"):
            fields.append(self.parse_type())
            while self.accept("punct", ","):
                fields.append(self.parse_type())
            self.expect("punct", "}")
        self.expect("ident", "fields")
        self.expect("punct", "(")
        names: list[str] = []
        if not self.accept("punct", ")"):
            names.append(self.expect("ident").text)
            while self.accept("punct", ","):
                names.append(self.expect("ident").text)
            self.expect("punct", ")")
        module.add_struct(StructType(name, fields, names))

    def parse_global(self, module: Module) -> None:
        line = self.cur.line
        try:
            self._parse_global_inner(module)
        except IRParseError:
            raise
        except (TypeError, ValueError) as e:
            raise IRParseError(str(e), line) from e

    def _parse_global_inner(self, module: Module) -> None:
        name = self.advance().text[1:]
        self.expect("punct", "=")
        linkage = self.expect("ident").text
        is_const = bool(self.accept("ident", "const"))
        self.expect("ident", "global")
        vtype = self.parse_type()
        tok = self.cur
        initializer: Optional[object]
        if tok.kind == "number":
            self.advance()
            if isinstance(vtype, FloatType) or "." in tok.text:
                initializer = ConstantFloat(vtype, float(tok.text))  # type: ignore[arg-type]
            else:
                initializer = ConstantInt(vtype, int(tok.text))  # type: ignore[arg-type]
        elif tok.kind == "string":
            self.advance()
            initializer = ConstantString(_unescape(tok.text[2:-1]))
        elif tok.kind == "ident" and tok.text == "null":
            self.advance()
            initializer = ConstantNull(vtype)  # type: ignore[arg-type]
        elif tok.kind == "ident" and tok.text == "zeroinit":
            self.advance()
            initializer = None
        else:
            raise self.error(f"bad global initializer {tok.text!r}")
        module.add_global(
            GlobalVariable(vtype, name, initializer, linkage, is_const)  # type: ignore[arg-type]
        )

    # -- functions ------------------------------------------------------------------

    def parse_function(self, module: Module) -> None:
        kind = self.advance().text  # define | declare
        linkage = self.expect("ident").text
        ret_type = self.parse_type()
        name = self.expect("gref").text[1:]
        self.expect("punct", "(")
        param_types: list[IRType] = []
        param_names: list[str] = []
        vararg = False
        if not self.accept("punct", ")"):
            while True:
                if self.accept("ellipsis"):
                    vararg = True
                    break
                param_types.append(self.parse_type())
                ptok = self.accept("lref")
                param_names.append(
                    ptok.text[1:] if ptok else f"arg{len(param_names)}"
                )
                if not self.accept("punct", ","):
                    break
            self.expect("punct", ")")
        ftype = FunctionType(ret_type, param_types, vararg)
        fn = Function(name, ftype, param_names, linkage)
        while self.cur.kind == "attr":
            fn.attributes.add(self.advance().text[1:])
        existing = module.functions.get(name)
        if existing is not None and existing.is_declaration and kind == "define":
            # A later definition replaces an earlier declaration.
            del module.functions[name]
        module.add_function(fn)
        if kind == "declare":
            return
        self.expect("punct", "{")
        self.parse_body(fn)
        self.expect("punct", "}")

    def parse_body(self, fn: Function) -> None:
        blocks: dict[str, BasicBlock] = {}

        def get_block(name: str) -> BasicBlock:
            if name not in blocks:
                blocks[name] = BasicBlock(name, fn)
            return blocks[name]

        # Values defined so far; forward references (legal through phis and
        # loop back-edges) parse as placeholders and are fixed at the end.
        self._late_values = {a.name: a for a in fn.args}
        self._phi_patches = []

        current: Optional[BasicBlock] = None
        while not (self.cur.kind == "punct" and self.cur.text == "}"):
            tok = self.cur
            if tok.kind == "ident" and self.tokens[self.pos + 1].text == ":":
                label = self.advance().text
                self.expect("punct", ":")
                block = get_block(label)
                if block in fn.blocks:
                    raise IRParseError(f"duplicate block {label!r}", tok.line)
                fn.blocks.append(block)
                current = block
                continue
            if current is None:
                raise self.error("instruction before first block label")
            inst = self.parse_instruction(get_block)
            inst.parent = current
            current.instructions.append(inst)
            if inst.name:
                if inst.name in self._late_values:
                    raise IRParseError(
                        f"redefinition of %{inst.name}", tok.line
                    )
                self._late_values[inst.name] = inst
        for fix in self._phi_patches:
            fix()

    # -- instructions ------------------------------------------------------------------

    def parse_instruction(
        self,
        get_block: Callable[[str], BasicBlock],
    ) -> Instruction:
        # Instruction/constant constructors type-check their operands and
        # raise TypeError/ValueError; surface those as parse diagnostics
        # with a line number instead of leaking internals.
        line = self.cur.line
        try:
            return self._parse_instruction_inner(get_block)
        except IRParseError:
            raise
        except (TypeError, ValueError) as e:
            raise IRParseError(str(e), line) from e

    def _parse_instruction_inner(
        self,
        get_block: Callable[[str], BasicBlock],
    ) -> Instruction:
        name = ""
        if self.cur.kind == "lref":
            name = self.advance().text[1:]
            self.expect("punct", "=")
        op_tok = self.expect("ident")
        op = op_tok.text

        if op == "alloca":
            atype = self.parse_type()
            self.expect("punct", ",")
            self.expect("ident", "count")
            count = int(self.expect("number").text)
            inst: Instruction = Alloca(atype, count, name)
        elif op == "load":
            inst = self._with_patched_operands(Load, 1, name)
        elif op == "store":
            inst = self._with_patched_operands(Store, 2, "")
        elif op == "gep":
            rtype = self.parse_type()
            self.expect("punct", ":")
            inst = self._gep_rest(rtype, name)
        elif op in BINOPS:
            inst = self._binop_rest(op, name)
        elif op == "icmp":
            pred = self.expect("ident").text
            inst = self._cmp_rest(ICmp, pred, name)
        elif op == "fcmp":
            pred = self.expect("ident").text
            inst = self._cmp_rest(FCmp, pred, name)
        elif op in CAST_OPS:
            v = self._parse_patchable_operand(0)
            self.expect("ident", "to")
            to_type = self.parse_type()
            inst = Cast(op, v[0], to_type, name)
            self._apply_patches(inst, v[1])
        elif op == "select":
            c = self._parse_patchable_operand(0)
            self.expect("punct", ",")
            a = self._parse_patchable_operand(1)
            self.expect("punct", ",")
            b = self._parse_patchable_operand(2)
            inst = Select(c[0], a[0], b[0], name)
            for v in (c, a, b):
                self._apply_patches(inst, v[1])
        elif op == "br":
            if self.cur.kind == "ident" and self.cur.text == "label":
                self.advance()
                target = get_block(self.expect("lref").text[1:])
                inst = Br(target)
            else:
                c = self._parse_patchable_operand(0)
                self.expect("punct", ",")
                self.expect("ident", "label")
                t = get_block(self.expect("lref").text[1:])
                self.expect("punct", ",")
                self.expect("ident", "label")
                f = get_block(self.expect("lref").text[1:])
                inst = Br(t, c[0], f)
                self._apply_patches(inst, c[1])
        elif op == "switch":
            v = self._parse_patchable_operand(0)
            self.expect("punct", ",")
            self.expect("ident", "default")
            self.expect("ident", "label")
            default = get_block(self.expect("lref").text[1:])
            self.expect("punct", "[")
            cases: list[tuple[int, BasicBlock]] = []
            if not self.accept("punct", "]"):
                while True:
                    cval = int(self.expect("number").text)
                    self.expect("punct", ":")
                    self.expect("ident", "label")
                    cases.append((cval, get_block(self.expect("lref").text[1:])))
                    if not self.accept("punct", ","):
                        break
                self.expect("punct", "]")
            inst = Switch(v[0], default, cases)
            self._apply_patches(inst, v[1])
        elif op == "ret":
            if self.cur.kind == "ident" and self.cur.text == "void":
                self.advance()
                inst = Ret()
            else:
                v = self._parse_patchable_operand(0)
                inst = Ret(v[0])
                self._apply_patches(inst, v[1])
        elif op == "unreachable":
            inst = Unreachable()
        elif op == "phi":
            ptype = self.parse_type()
            phi = Phi(ptype, name)
            phi.name = name
            while self.accept("punct", "["):
                v = self._parse_patchable_operand(len(phi.incoming))
                self.expect("punct", ",")
                blk = get_block(self.expect("lref").text[1:])
                self.expect("punct", "]")
                idx = len(phi.incoming)
                phi.incoming.append((v[0], blk))
                phi.operands.append(v[0])
                if v[1]:
                    pname = v[1]

                    def fix_phi(p=phi, i=idx, n=pname, b=blk):
                        real = self._late_values.get(n)
                        if real is None:
                            raise IRParseError(f"undefined %{n} in phi", 0)
                        p.incoming[i] = (real, b)
                        p.operands[i] = real

                    self._phi_patches.append(fix_phi)
                self.accept("punct", ",")
            inst = phi
        elif op in ("call", "call.guard"):
            ret_t = self.parse_type()
            callee_name = self.expect("gref").text[1:]
            assert self.module is not None
            callee = self.module.functions.get(callee_name)
            if callee is None:
                raise self.error(f"call to unknown function @{callee_name}")
            self.expect("punct", "(")
            args: list[Value] = []
            arg_patches: list[tuple[int, str]] = []
            if not self.accept("punct", ")"):
                while True:
                    v = self._parse_patchable_operand(len(args))
                    if v[1]:
                        arg_patches.append((len(args), v[1]))
                    args.append(v[0])
                    if not self.accept("punct", ","):
                        break
                self.expect("punct", ")")
            call = Call(callee, args, name)
            call.is_guard = op == "call.guard"
            for idx, vname in arg_patches:
                def fix_arg(c=call, i=idx, n=vname):
                    real = self._late_values.get(n)
                    if real is None:
                        raise IRParseError(f"undefined %{n} in call", 0)
                    c.operands[i] = real

                self._phi_patches.append(fix_arg)
            inst = call
        elif op == "asm":
            text_tok = self.expect("string")
            inst = InlineAsm(_unescape(text_tok.text[1:-1]).decode())
        else:
            raise IRParseError(f"unknown opcode {op!r}", op_tok.line)
        inst.name = name
        return inst

    # The operand-patching machinery: operands referencing values defined
    # later (legal through phis and loop back-edges) are parsed as
    # placeholders and fixed once the whole body is known.
    _late_values: dict[str, Value]
    _phi_patches: list[Callable[[], None]]

    def _parse_patchable_operand(self, index: int) -> tuple[Value, str]:
        """Parse an operand; returns (value, pending_name_or_empty)."""
        type = self.parse_type()
        tok = self.advance()
        if tok.kind == "number":
            if isinstance(type, FloatType) or "." in tok.text or "e" in tok.text:
                return ConstantFloat(type, float(tok.text)), ""  # type: ignore[arg-type]
            return ConstantInt(type, int(tok.text)), ""  # type: ignore[arg-type]
        if tok.kind == "lref":
            vname = tok.text[1:]
            v = self._late_values.get(vname)
            if v is not None:
                return v, ""
            return UndefValue(type, vname), vname
        if tok.kind == "gref":
            assert self.module is not None
            name = tok.text[1:]
            sym = self.module.functions.get(name) or self.module.globals.get(name)
            if sym is None:
                raise IRParseError(f"unknown global @{name}", tok.line)
            return sym, ""
        if tok.kind == "ident" and tok.text == "null":
            return ConstantNull(type), ""  # type: ignore[arg-type]
        if tok.kind == "ident" and tok.text == "undef":
            return UndefValue(type), ""
        raise IRParseError(f"bad operand {tok.text!r}", tok.line)

    def _apply_patches(self, inst: Instruction, pending_name: str) -> None:
        if not pending_name:
            return

        def fix(i=inst, n=pending_name):
            real = self._late_values.get(n)
            if real is None:
                raise IRParseError(f"undefined value %{n}", 0)
            for k, opv in enumerate(i.operands):
                if isinstance(opv, UndefValue) and opv.name == n:
                    i.operands[k] = real

        self._phi_patches.append(fix)

    def _with_patched_operands(self, cls, count: int, name: str) -> Instruction:
        vals: list[tuple[Value, str]] = []
        for i in range(count):
            if i:
                self.expect("punct", ",")
            vals.append(self._parse_patchable_operand(i))
        inst = cls(*[v for v, _ in vals], **({"name": name} if name else {}))
        for _, pending in vals:
            self._apply_patches(inst, pending)
        return inst

    def _binop_rest(self, op: str, name: str) -> Instruction:
        a = self._parse_patchable_operand(0)
        self.expect("punct", ",")
        b = self._parse_patchable_operand(1)
        inst = BinOp(op, a[0], b[0], name)
        self._apply_patches(inst, a[1])
        self._apply_patches(inst, b[1])
        return inst

    def _cmp_rest(self, cls, pred: str, name: str) -> Instruction:
        a = self._parse_patchable_operand(0)
        self.expect("punct", ",")
        b = self._parse_patchable_operand(1)
        inst = cls(pred, a[0], b[0], name)
        self._apply_patches(inst, a[1])
        self._apply_patches(inst, b[1])
        return inst

    def _gep_rest(self, rtype: IRType, name: str) -> Instruction:
        base = self._parse_patchable_operand(0)
        self.expect("punct", ",")
        index = self._parse_patchable_operand(1)
        self.expect("punct", ",")
        self.expect("ident", "scale")
        scale = int(self.expect("number").text)
        self.expect("punct", ",")
        self.expect("ident", "disp")
        disp = int(self.expect("number").text)
        inst = Gep(rtype, base[0], index[0], scale, disp, name)  # type: ignore[arg-type]
        self._apply_patches(inst, base[1])
        self._apply_patches(inst, index[1])
        return inst


def parse_module(text: str) -> Module:
    """Parse the canonical textual form back into a :class:`Module`."""
    parser = _Parser(text)
    return parser.parse_module()


__all__ = ["IRParseError", "parse_module"]
