"""Type system for the middle-end IR.

The IR models the slice of LLVM that matters for CARAT KOP: every memory
access is an explicit ``load`` or ``store`` whose pointer operand has a
:class:`PointerType`, so the guard-injection pass can compute the access
width from the pointee type alone.

Types are interned: constructing the same type twice returns the same
object, which makes equality checks cheap in the verifier and interpreter
hot paths (the optimization guide's "measure, then make the hot path
allocation-free" rule — type comparison happens on every executed
instruction).
"""

from __future__ import annotations

from typing import ClassVar, Iterable


class IRType:
    """Base class for all IR types.

    Subclasses are immutable and interned; identity comparison is
    therefore valid wherever equality is needed.
    """

    _interned: ClassVar[dict] = {}

    def size_bytes(self) -> int:
        """Size of a value of this type when stored in memory."""
        raise NotImplementedError

    def align_bytes(self) -> int:
        """Natural alignment of this type (power of two)."""
        return max(1, min(8, self.size_bytes()))

    @property
    def is_void(self) -> bool:
        return isinstance(self, VoidType)

    @property
    def is_integer(self) -> bool:
        return isinstance(self, IntType)

    @property
    def is_float(self) -> bool:
        return isinstance(self, FloatType)

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_aggregate(self) -> bool:
        return isinstance(self, (ArrayType, StructType))

    @property
    def is_first_class(self) -> bool:
        """True for types that can be SSA register values."""
        return not isinstance(self, (VoidType, FunctionType))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self}>"


class VoidType(IRType):
    """The ``void`` type; only valid as a function return type."""

    _instance: ClassVar["VoidType | None"] = None

    def __new__(cls) -> "VoidType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def size_bytes(self) -> int:
        raise TypeError("void has no size")

    def __str__(self) -> str:
        return "void"


class IntType(IRType):
    """Arbitrary fixed-width integer type (``i1``, ``i8``, ... ``i64``)."""

    __slots__ = ("bits",)

    def __new__(cls, bits: int) -> "IntType":
        if bits not in (1, 8, 16, 32, 64):
            raise ValueError(f"unsupported integer width: i{bits}")
        key = ("int", bits)
        inst = cls._interned.get(key)
        if inst is None:
            inst = super().__new__(cls)
            inst.bits = bits
            cls._interned[key] = inst
        return inst

    def size_bytes(self) -> int:
        return max(1, self.bits // 8)

    @property
    def max_unsigned(self) -> int:
        return (1 << self.bits) - 1

    @property
    def min_signed(self) -> int:
        return -(1 << (self.bits - 1)) if self.bits > 1 else 0

    @property
    def max_signed(self) -> int:
        return (1 << (self.bits - 1)) - 1 if self.bits > 1 else 1

    def wrap(self, value: int) -> int:
        """Truncate ``value`` to this width (two's complement, unsigned repr)."""
        return value & self.max_unsigned

    def to_signed(self, value: int) -> int:
        """Interpret an unsigned-repr value as signed two's complement."""
        value &= self.max_unsigned
        if self.bits > 1 and value > self.max_signed:
            value -= 1 << self.bits
        return value

    def __str__(self) -> str:
        return f"i{self.bits}"


class FloatType(IRType):
    """IEEE floating point (``f32`` or ``f64``)."""

    __slots__ = ("bits",)

    def __new__(cls, bits: int) -> "FloatType":
        if bits not in (32, 64):
            raise ValueError(f"unsupported float width: f{bits}")
        key = ("float", bits)
        inst = cls._interned.get(key)
        if inst is None:
            inst = super().__new__(cls)
            inst.bits = bits
            cls._interned[key] = inst
        return inst

    def size_bytes(self) -> int:
        return self.bits // 8

    def __str__(self) -> str:
        return f"f{self.bits}"


class PointerType(IRType):
    """Typed pointer. Pointers are 64-bit on the simulated machine."""

    __slots__ = ("pointee",)

    POINTER_SIZE: ClassVar[int] = 8

    def __new__(cls, pointee: IRType) -> "PointerType":
        key = ("ptr", id(pointee))
        inst = cls._interned.get(key)
        if inst is None:
            inst = super().__new__(cls)
            inst.pointee = pointee
            cls._interned[key] = inst
        return inst

    def size_bytes(self) -> int:
        return self.POINTER_SIZE

    def __str__(self) -> str:
        return f"{self.pointee}*"


class ArrayType(IRType):
    """Fixed-length array ``[N x T]``."""

    __slots__ = ("element", "count")

    def __new__(cls, element: IRType, count: int) -> "ArrayType":
        if count < 0:
            raise ValueError("array count must be non-negative")
        key = ("array", id(element), count)
        inst = cls._interned.get(key)
        if inst is None:
            inst = super().__new__(cls)
            inst.element = element
            inst.count = count
            cls._interned[key] = inst
        return inst

    def size_bytes(self) -> int:
        return self.element.size_bytes() * self.count

    def align_bytes(self) -> int:
        return self.element.align_bytes()

    def __str__(self) -> str:
        return f"[{self.count} x {self.element}]"


def _align_up(offset: int, align: int) -> int:
    return (offset + align - 1) & ~(align - 1)


class StructType(IRType):
    """Named struct with C-style field layout (natural alignment, padding).

    Structs are interned by name so a module has one canonical instance per
    struct; the layout is computed once at construction.
    """

    __slots__ = ("name", "fields", "field_names", "_offsets", "_size", "_align")

    def __new__(
        cls,
        name: str,
        fields: Iterable[IRType],
        field_names: Iterable[str] | None = None,
    ) -> "StructType":
        fields = tuple(fields)
        key = ("struct", name, tuple(id(f) for f in fields))
        inst = cls._interned.get(key)
        if inst is None:
            inst = super().__new__(cls)
            inst.name = name
            inst.fields = fields
            names = tuple(field_names) if field_names is not None else tuple(
                f"f{i}" for i in range(len(fields))
            )
            if len(names) != len(fields):
                raise ValueError("field_names length mismatch")
            inst.field_names = names
            offsets = []
            offset = 0
            align = 1
            for f in fields:
                a = f.align_bytes()
                align = max(align, a)
                offset = _align_up(offset, a)
                offsets.append(offset)
                offset += f.size_bytes()
            inst._offsets = tuple(offsets)
            inst._size = _align_up(offset, align) if fields else 0
            inst._align = align
            cls._interned[key] = inst
        return inst

    def size_bytes(self) -> int:
        return self._size

    def align_bytes(self) -> int:
        return self._align

    def field_offset(self, index: int) -> int:
        """Byte offset of field ``index`` within the struct."""
        return self._offsets[index]

    def field_index(self, name: str) -> int:
        """Index of the field called ``name`` (raises KeyError if absent)."""
        try:
            return self.field_names.index(name)
        except ValueError:
            raise KeyError(f"struct {self.name} has no field {name!r}") from None

    def __str__(self) -> str:
        return f"%{self.name}"


class FunctionType(IRType):
    """Function signature ``ret (params...)``."""

    __slots__ = ("ret", "params", "vararg")

    def __new__(
        cls, ret: IRType, params: Iterable[IRType], vararg: bool = False
    ) -> "FunctionType":
        params = tuple(params)
        key = ("fn", id(ret), tuple(id(p) for p in params), vararg)
        inst = cls._interned.get(key)
        if inst is None:
            inst = super().__new__(cls)
            inst.ret = ret
            inst.params = params
            inst.vararg = vararg
            cls._interned[key] = inst
        return inst

    def size_bytes(self) -> int:
        raise TypeError("function types have no size")

    def __str__(self) -> str:
        parts = [str(p) for p in self.params]
        if self.vararg:
            parts.append("...")
        return f"{self.ret} ({', '.join(parts)})"


# Canonical singletons used throughout the code base.
VOID = VoidType()
I1 = IntType(1)
I8 = IntType(8)
I16 = IntType(16)
I32 = IntType(32)
I64 = IntType(64)
F32 = FloatType(32)
F64 = FloatType(64)
I8PTR = PointerType(I8)


def ptr(t: IRType) -> PointerType:
    """Shorthand for :class:`PointerType` construction."""
    return PointerType(t)
