"""Instruction set of the middle-end IR.

The set is deliberately the minimum that (a) a C subset lowers to and
(b) makes every memory access explicit, because CARAT KOP's contribution
is a pass that walks exactly these ``load``/``store`` instructions and
prefixes each with a call to ``carat_guard`` (paper §3.3).

``InlineAsm`` exists so the signing stage has something to attest about:
the paper's compiler certifies the absence of inline assembly (§2, §5).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from .types import (
    VOID,
    FloatType,
    FunctionType,
    IRType,
    IntType,
    PointerType,
)
from .values import Value

if TYPE_CHECKING:  # pragma: no cover
    from .module import BasicBlock, Function


class Instruction(Value):
    """Base class.  An instruction is also the SSA value it produces."""

    __slots__ = ("operands", "parent")

    opcode: str = "?"
    is_terminator: bool = False
    has_side_effects: bool = False

    def __init__(self, type: IRType, operands: Sequence[Value], name: str = ""):
        super().__init__(type, name)
        self.operands: list[Value] = list(operands)
        self.parent: Optional["BasicBlock"] = None

    def ref(self) -> str:
        return f"{self.type} %{self.name}"

    def replace_operand(self, old: Value, new: Value) -> int:
        """Replace every occurrence of ``old`` in the operand list.

        Returns the number of replacements.
        """
        n = 0
        for i, op in enumerate(self.operands):
            if op is old:
                self.operands[i] = new
                n += 1
        return n

    @property
    def function(self) -> "Function | None":
        return self.parent.parent if self.parent is not None else None


# ---------------------------------------------------------------------------
# Memory instructions
# ---------------------------------------------------------------------------


class Alloca(Instruction):
    """Stack allocation in the current frame; yields a pointer."""

    __slots__ = ("allocated_type", "count")

    opcode = "alloca"
    has_side_effects = True  # frame layout

    def __init__(self, allocated_type: IRType, count: int = 1, name: str = ""):
        super().__init__(PointerType(allocated_type), [], name)
        self.allocated_type = allocated_type
        self.count = count

    @property
    def size_bytes(self) -> int:
        return self.allocated_type.size_bytes() * self.count


class Load(Instruction):
    """``load T, T* ptr`` — read ``sizeof(T)`` bytes from memory."""

    __slots__ = ()

    opcode = "load"
    has_side_effects = True  # may fault / touch MMIO

    def __init__(self, ptr: Value, name: str = ""):
        if not isinstance(ptr.type, PointerType):
            raise TypeError("load pointer operand must have pointer type")
        super().__init__(ptr.type.pointee, [ptr], name)

    @property
    def pointer(self) -> Value:
        return self.operands[0]

    @property
    def access_size(self) -> int:
        """Byte width of the access, as the guard pass reports it."""
        return self.type.size_bytes()


class Store(Instruction):
    """``store T val, T* ptr`` — write ``sizeof(T)`` bytes to memory."""

    __slots__ = ()

    opcode = "store"
    has_side_effects = True

    def __init__(self, value: Value, ptr: Value):
        if not isinstance(ptr.type, PointerType):
            raise TypeError("store pointer operand must have pointer type")
        if ptr.type.pointee is not value.type:
            raise TypeError(
                f"store type mismatch: {value.type} into {ptr.type}"
            )
        super().__init__(VOID, [value, ptr])

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def pointer(self) -> Value:
        return self.operands[1]

    @property
    def access_size(self) -> int:
        return self.value.type.size_bytes()


class Gep(Instruction):
    """``getelementptr``-style address arithmetic, pre-lowered to bytes.

    ``result = base + byte_offset`` where ``byte_offset`` may itself be a
    computed value (``index * scale + displacement``).  Lowering GEP to
    explicit byte arithmetic keeps the interpreter simple while retaining
    the property that address computation never touches memory.
    """

    __slots__ = ("scale", "displacement")

    opcode = "gep"

    def __init__(
        self,
        result_type: PointerType,
        base: Value,
        index: Value,
        scale: int,
        displacement: int = 0,
        name: str = "",
    ):
        if not isinstance(base.type, PointerType):
            raise TypeError("gep base must be a pointer")
        if not isinstance(index.type, IntType):
            raise TypeError("gep index must be an integer")
        super().__init__(result_type, [base, index], name)
        self.scale = scale
        self.displacement = displacement

    @property
    def base(self) -> Value:
        return self.operands[0]

    @property
    def index(self) -> Value:
        return self.operands[1]


# ---------------------------------------------------------------------------
# Arithmetic / logic
# ---------------------------------------------------------------------------

BINOPS = (
    "add",
    "sub",
    "mul",
    "sdiv",
    "udiv",
    "srem",
    "urem",
    "and",
    "or",
    "xor",
    "shl",
    "lshr",
    "ashr",
    "fadd",
    "fsub",
    "fmul",
    "fdiv",
)

_FLOAT_BINOPS = frozenset(op for op in BINOPS if op.startswith("f"))


class BinOp(Instruction):
    """Two-operand arithmetic; operands and result share one type."""

    __slots__ = ("op",)

    opcode = "binop"

    def __init__(self, op: str, lhs: Value, rhs: Value, name: str = ""):
        if op not in BINOPS:
            raise ValueError(f"unknown binop {op!r}")
        if lhs.type is not rhs.type:
            raise TypeError(f"binop operand mismatch: {lhs.type} vs {rhs.type}")
        if op in _FLOAT_BINOPS:
            if not isinstance(lhs.type, FloatType):
                raise TypeError(f"{op} requires float operands")
        else:
            if not isinstance(lhs.type, IntType):
                raise TypeError(f"{op} requires integer operands")
        super().__init__(lhs.type, [lhs, rhs], name)
        self.op = op

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]


ICMP_PREDICATES = ("eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ule", "ugt", "uge")
FCMP_PREDICATES = ("oeq", "one", "olt", "ole", "ogt", "oge")


class ICmp(Instruction):
    """Integer / pointer comparison producing an ``i1``."""

    __slots__ = ("pred",)

    opcode = "icmp"

    def __init__(self, pred: str, lhs: Value, rhs: Value, name: str = ""):
        if pred not in ICMP_PREDICATES:
            raise ValueError(f"unknown icmp predicate {pred!r}")
        if lhs.type is not rhs.type:
            raise TypeError(f"icmp operand mismatch: {lhs.type} vs {rhs.type}")
        if not isinstance(lhs.type, (IntType, PointerType)):
            raise TypeError("icmp requires integer or pointer operands")
        super().__init__(IntType(1), [lhs, rhs], name)
        self.pred = pred

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]


class FCmp(Instruction):
    """Float comparison producing an ``i1`` (ordered predicates only)."""

    __slots__ = ("pred",)

    opcode = "fcmp"

    def __init__(self, pred: str, lhs: Value, rhs: Value, name: str = ""):
        if pred not in FCMP_PREDICATES:
            raise ValueError(f"unknown fcmp predicate {pred!r}")
        if lhs.type is not rhs.type or not isinstance(lhs.type, FloatType):
            raise TypeError("fcmp requires matching float operands")
        super().__init__(IntType(1), [lhs, rhs], name)
        self.pred = pred


CAST_OPS = (
    "trunc",
    "zext",
    "sext",
    "bitcast",
    "ptrtoint",
    "inttoptr",
    "sitofp",
    "fptosi",
    "fpext",
    "fptrunc",
)


class Cast(Instruction):
    """Value conversions between first-class types."""

    __slots__ = ("op",)

    opcode = "cast"

    def __init__(self, op: str, value: Value, to_type: IRType, name: str = ""):
        if op not in CAST_OPS:
            raise ValueError(f"unknown cast {op!r}")
        _check_cast(op, value.type, to_type)
        super().__init__(to_type, [value], name)
        self.op = op

    @property
    def value(self) -> Value:
        return self.operands[0]


def _check_cast(op: str, src: IRType, dst: IRType) -> None:
    def need(cond: bool, msg: str) -> None:
        if not cond:
            raise TypeError(f"invalid {op}: {src} -> {dst} ({msg})")

    if op == "trunc":
        need(isinstance(src, IntType) and isinstance(dst, IntType), "int->int")
        need(src.bits > dst.bits, "must narrow")  # type: ignore[union-attr]
    elif op in ("zext", "sext"):
        need(isinstance(src, IntType) and isinstance(dst, IntType), "int->int")
        need(src.bits < dst.bits, "must widen")  # type: ignore[union-attr]
    elif op == "bitcast":
        need(isinstance(src, PointerType) and isinstance(dst, PointerType), "ptr->ptr")
    elif op == "ptrtoint":
        need(isinstance(src, PointerType) and isinstance(dst, IntType), "ptr->int")
    elif op == "inttoptr":
        need(isinstance(src, IntType) and isinstance(dst, PointerType), "int->ptr")
    elif op == "sitofp":
        need(isinstance(src, IntType) and isinstance(dst, FloatType), "int->float")
    elif op == "fptosi":
        need(isinstance(src, FloatType) and isinstance(dst, IntType), "float->int")
    elif op == "fpext":
        need(
            isinstance(src, FloatType)
            and isinstance(dst, FloatType)
            and src.bits < dst.bits,  # type: ignore[union-attr]
            "must widen",
        )
    elif op == "fptrunc":
        need(
            isinstance(src, FloatType)
            and isinstance(dst, FloatType)
            and src.bits > dst.bits,  # type: ignore[union-attr]
            "must narrow",
        )


class Select(Instruction):
    """``select i1 cond, T a, T b`` — branchless conditional."""

    __slots__ = ()

    opcode = "select"

    def __init__(self, cond: Value, a: Value, b: Value, name: str = ""):
        if not (isinstance(cond.type, IntType) and cond.type.bits == 1):
            raise TypeError("select condition must be i1")
        if a.type is not b.type:
            raise TypeError("select arm type mismatch")
        super().__init__(a.type, [cond, a, b], name)


# ---------------------------------------------------------------------------
# Control flow
# ---------------------------------------------------------------------------


class Br(Instruction):
    """Unconditional or conditional branch."""

    __slots__ = ("targets",)

    opcode = "br"
    is_terminator = True
    has_side_effects = True

    def __init__(
        self,
        target: "BasicBlock",
        cond: Optional[Value] = None,
        if_false: Optional["BasicBlock"] = None,
    ):
        if cond is not None:
            if if_false is None:
                raise ValueError("conditional branch needs a false target")
            if not (isinstance(cond.type, IntType) and cond.type.bits == 1):
                raise TypeError("branch condition must be i1")
            super().__init__(VOID, [cond])
            self.targets = [target, if_false]
        else:
            super().__init__(VOID, [])
            self.targets = [target]

    @property
    def is_conditional(self) -> bool:
        return len(self.targets) == 2

    @property
    def condition(self) -> Optional[Value]:
        return self.operands[0] if self.operands else None


class Switch(Instruction):
    """``switch`` over an integer value with a default target."""

    __slots__ = ("cases", "default")

    opcode = "switch"
    is_terminator = True
    has_side_effects = True

    def __init__(
        self,
        value: Value,
        default: "BasicBlock",
        cases: Sequence[tuple[int, "BasicBlock"]] = (),
    ):
        if not isinstance(value.type, IntType):
            raise TypeError("switch value must be an integer")
        super().__init__(VOID, [value])
        self.default = default
        self.cases: list[tuple[int, "BasicBlock"]] = list(cases)

    def add_case(self, const: int, target: "BasicBlock") -> None:
        self.cases.append((const, target))

    @property
    def targets(self) -> list["BasicBlock"]:
        return [self.default] + [b for _, b in self.cases]


class Ret(Instruction):
    """Function return, optionally with a value."""

    __slots__ = ()

    opcode = "ret"
    is_terminator = True
    has_side_effects = True

    def __init__(self, value: Optional[Value] = None):
        super().__init__(VOID, [value] if value is not None else [])

    @property
    def value(self) -> Optional[Value]:
        return self.operands[0] if self.operands else None

    @property
    def targets(self) -> list["BasicBlock"]:
        return []


class Unreachable(Instruction):
    """Marks statically unreachable control flow (e.g. after panic)."""

    __slots__ = ()

    opcode = "unreachable"
    is_terminator = True
    has_side_effects = True

    def __init__(self) -> None:
        super().__init__(VOID, [])

    @property
    def targets(self) -> list["BasicBlock"]:
        return []


class Phi(Instruction):
    """SSA phi node; incoming values keyed by predecessor block."""

    __slots__ = ("incoming",)

    opcode = "phi"

    def __init__(self, type: IRType, name: str = ""):
        super().__init__(type, [], name)
        self.incoming: list[tuple[Value, "BasicBlock"]] = []

    def add_incoming(self, value: Value, block: "BasicBlock") -> None:
        if value.type is not self.type:
            raise TypeError(
                f"phi incoming type mismatch: {value.type} vs {self.type}"
            )
        self.incoming.append((value, block))
        self.operands.append(value)

    def incoming_for(self, block: "BasicBlock") -> Value:
        for v, b in self.incoming:
            if b is block:
                return v
        raise KeyError(f"phi has no incoming edge from {block.name}")


class Call(Instruction):
    """Direct call to a function symbol.

    The callee is a :class:`repro.ir.module.Function`; cross-module calls
    are represented by calling a *declaration*, which the kernel's module
    linker later binds to a definition (paper §3.2: the protected module is
    linked against the policy module's ``carat_guard`` at insertion).
    """

    __slots__ = ("callee", "is_guard")

    opcode = "call"
    has_side_effects = True

    def __init__(self, callee: "Function", args: Sequence[Value], name: str = ""):
        ftype = callee.function_type
        if len(args) != len(ftype.params) and not ftype.vararg:
            raise TypeError(
                f"call to @{callee.name}: expected {len(ftype.params)} args, "
                f"got {len(args)}"
            )
        if ftype.vararg and len(args) < len(ftype.params):
            raise TypeError(f"call to @{callee.name}: too few args for vararg")
        for i, (a, p) in enumerate(zip(args, ftype.params)):
            if a.type is not p:
                raise TypeError(
                    f"call to @{callee.name}: arg {i} has type {a.type}, "
                    f"expected {p}"
                )
        super().__init__(ftype.ret, list(args), name)
        self.callee = callee
        # Set by the guard-injection pass so later passes / the verifier can
        # recognize guard calls without string comparison on hot paths.
        self.is_guard = False

    @property
    def args(self) -> list[Value]:
        return self.operands


class InlineAsm(Instruction):
    """Inline assembly marker.

    The simulated machine cannot execute this; its purpose is to exercise
    the attestation path: the CARAT KOP signer refuses to certify modules
    containing inline assembly (paper §2), and the loader refuses to insert
    uncertified modules.
    """

    __slots__ = ("asm_text",)

    opcode = "asm"
    has_side_effects = True

    def __init__(self, asm_text: str, name: str = ""):
        super().__init__(VOID, [], name)
        self.asm_text = asm_text


TERMINATORS = (Br, Switch, Ret, Unreachable)

__all__ = [
    "Alloca",
    "BINOPS",
    "BinOp",
    "Br",
    "CAST_OPS",
    "Call",
    "Cast",
    "FCMP_PREDICATES",
    "FCmp",
    "Gep",
    "ICMP_PREDICATES",
    "ICmp",
    "InlineAsm",
    "Instruction",
    "Load",
    "Phi",
    "Ret",
    "Select",
    "Store",
    "Switch",
    "TERMINATORS",
    "Unreachable",
]
