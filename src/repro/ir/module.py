"""Module / function / basic-block containers for the IR."""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from .instructions import Instruction, Phi
from .types import FunctionType, IRType, PointerType, StructType
from .values import Argument, GlobalValue, GlobalVariable


class BasicBlock:
    """A straight-line sequence of instructions ending in a terminator."""

    __slots__ = ("name", "instructions", "parent")

    def __init__(self, name: str, parent: Optional["Function"] = None):
        self.name = name
        self.instructions: list[Instruction] = []
        self.parent = parent

    # -- structural helpers -------------------------------------------------

    def append(self, inst: Instruction) -> Instruction:
        if self.terminator is not None:
            raise ValueError(
                f"block {self.name} already terminated; cannot append {inst.opcode}"
            )
        inst.parent = self
        self.instructions.append(inst)
        return inst

    def insert_before(self, inst: Instruction, before: Instruction) -> Instruction:
        """Insert ``inst`` immediately before ``before`` (which must be here)."""
        idx = self._index_of(before)
        inst.parent = self
        self.instructions.insert(idx, inst)
        return inst

    def remove(self, inst: Instruction) -> None:
        idx = self._index_of(inst)
        del self.instructions[idx]
        inst.parent = None

    def _index_of(self, inst: Instruction) -> int:
        for i, x in enumerate(self.instructions):
            if x is inst:
                return i
        raise ValueError(f"instruction not in block {self.name}")

    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    @property
    def successors(self) -> list["BasicBlock"]:
        term = self.terminator
        return list(getattr(term, "targets", [])) if term is not None else []

    def phis(self) -> Iterator[Phi]:
        for inst in self.instructions:
            if isinstance(inst, Phi):
                yield inst
            else:
                break

    def first_non_phi_index(self) -> int:
        for i, inst in enumerate(self.instructions):
            if not isinstance(inst, Phi):
                return i
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BasicBlock {self.name} ({len(self.instructions)} insts)>"


class Function(GlobalValue):
    """A function definition or declaration.

    Declarations (``is_declaration == True``) have no blocks; they are the
    import points the kernel module linker resolves at load time.
    """

    __slots__ = ("function_type", "args", "blocks", "attributes", "_name_counter")

    def __init__(
        self,
        name: str,
        function_type: FunctionType,
        arg_names: Optional[Iterable[str]] = None,
        linkage: str = "internal",
    ):
        super().__init__(PointerType(function_type), name, linkage)
        self.function_type = function_type
        names = list(arg_names) if arg_names is not None else [
            f"arg{i}" for i in range(len(function_type.params))
        ]
        if len(names) != len(function_type.params):
            raise ValueError("arg_names length mismatch")
        self.args = [
            Argument(t, n, i)
            for i, (t, n) in enumerate(zip(function_type.params, names))
        ]
        self.blocks: list[BasicBlock] = []
        self.attributes: set[str] = set()
        self._name_counter = 0

    @property
    def is_declaration(self) -> bool:
        return not self.blocks

    @property
    def return_type(self) -> IRType:
        return self.function_type.ret

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError(f"@{self.name} is a declaration")
        return self.blocks[0]

    def add_block(self, name: str = "") -> BasicBlock:
        if not name:
            name = self.unique_name("bb")
        if any(b.name == name for b in self.blocks):
            name = self.unique_name(name)
        block = BasicBlock(name, self)
        self.blocks.append(block)
        return block

    def block_named(self, name: str) -> BasicBlock:
        for b in self.blocks:
            if b.name == name:
                return b
        raise KeyError(f"@{self.name} has no block {name!r}")

    def unique_name(self, prefix: str = "t") -> str:
        self._name_counter += 1
        return f"{prefix}.{self._name_counter}"

    def instructions(self) -> Iterator[Instruction]:
        """All instructions in block order (the guard pass iterates this)."""
        for block in self.blocks:
            yield from block.instructions

    def predecessors(self) -> dict[BasicBlock, list[BasicBlock]]:
        """Map each block to its CFG predecessors."""
        preds: dict[BasicBlock, list[BasicBlock]] = {b: [] for b in self.blocks}
        for b in self.blocks:
            for s in b.successors:
                # Branches to blocks outside this function are a verifier
                # error, not a reason to crash the analysis itself.
                if s in preds:
                    preds[s].append(b)
        return preds

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "declare" if self.is_declaration else "define"
        return f"<Function {kind} @{self.name}>"


class Module:
    """A translation unit: globals, functions, struct types, metadata.

    ``metadata`` carries compilation facts the signer attests to — most
    importantly ``carat.guarded`` (set by the guard pass) and
    ``carat.has_inline_asm`` (set by the attestation scan).
    """

    def __init__(self, name: str):
        self.name = name
        self.functions: dict[str, Function] = {}
        self.globals: dict[str, GlobalVariable] = {}
        self.structs: dict[str, StructType] = {}
        self.metadata: dict[str, object] = {}
        #: Bumped whenever a pass (or any other IR surgery) rewrites the
        #: module; execution engines that cache per-function translations
        #: key their cache entries on this counter.
        self.generation = 0

    def bump_generation(self) -> int:
        """Mark the IR as changed, invalidating cached translations."""
        self.generation += 1
        return self.generation

    # -- functions ----------------------------------------------------------

    def add_function(self, fn: Function) -> Function:
        if fn.name in self.functions or fn.name in self.globals:
            raise ValueError(f"duplicate symbol @{fn.name}")
        self.functions[fn.name] = fn
        return fn

    def declare_function(
        self,
        name: str,
        function_type: FunctionType,
        linkage: str = "external",
    ) -> Function:
        """Get-or-create a declaration for an external symbol."""
        existing = self.functions.get(name)
        if existing is not None:
            if existing.function_type is not function_type:
                raise ValueError(
                    f"conflicting declaration of @{name}: "
                    f"{existing.function_type} vs {function_type}"
                )
            return existing
        fn = Function(name, function_type, linkage=linkage)
        self.functions[name] = fn
        return fn

    def get_function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise KeyError(f"module {self.name} has no function @{name}") from None

    # -- globals ------------------------------------------------------------

    def add_global(self, g: GlobalVariable) -> GlobalVariable:
        if g.name in self.globals or g.name in self.functions:
            raise ValueError(f"duplicate symbol @{g.name}")
        self.globals[g.name] = g
        return g

    def get_global(self, name: str) -> GlobalVariable:
        try:
            return self.globals[name]
        except KeyError:
            raise KeyError(f"module {self.name} has no global @{name}") from None

    # -- structs ------------------------------------------------------------

    def add_struct(self, st: StructType) -> StructType:
        existing = self.structs.get(st.name)
        if existing is not None and existing is not st:
            raise ValueError(f"conflicting struct %{st.name}")
        self.structs[st.name] = st
        return st

    # -- queries ------------------------------------------------------------

    def defined_functions(self) -> list[Function]:
        return [f for f in self.functions.values() if not f.is_declaration]

    def declarations(self) -> list[Function]:
        return [f for f in self.functions.values() if f.is_declaration]

    def exported_symbols(self) -> list[GlobalValue]:
        out: list[GlobalValue] = []
        for f in self.functions.values():
            if f.linkage == "exported" and not f.is_declaration:
                out.append(f)
        for g in self.globals.values():
            if g.linkage == "exported":
                out.append(g)
        return out

    def instruction_count(self) -> int:
        return sum(len(b) for f in self.defined_functions() for b in f.blocks)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Module {self.name}: {len(self.functions)} functions, "
            f"{len(self.globals)} globals>"
        )


__all__ = ["BasicBlock", "Function", "Module"]
