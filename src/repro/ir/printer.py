"""Textual IR printer.

The printed form is the *canonical serialization* used by the signing
stage (the signature covers exactly these bytes), so the printer is
deterministic: symbols print in insertion order and value names are taken
verbatim.  :mod:`repro.ir.parser` parses this format back; round-tripping
is covered by property tests.
"""

from __future__ import annotations

from .instructions import (
    Alloca,
    BinOp,
    Br,
    Call,
    Cast,
    FCmp,
    Gep,
    ICmp,
    InlineAsm,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    Switch,
    Unreachable,
)
from .module import BasicBlock, Function, Module
from .values import (
    Argument,
    ConstantFloat,
    ConstantInt,
    ConstantNull,
    ConstantString,
    GlobalValue,
    UndefValue,
    Value,
)


def _operand(v: Value) -> str:
    """Render an operand as ``<type> <ref>``."""
    if isinstance(v, ConstantInt):
        return f"{v.type} {v.signed}"
    if isinstance(v, ConstantFloat):
        return f"{v.type} {v.value!r}"
    if isinstance(v, ConstantNull):
        return f"{v.type} null"
    if isinstance(v, UndefValue):
        return f"{v.type} undef"
    if isinstance(v, ConstantString):
        return v.ref()
    if isinstance(v, GlobalValue):
        return f"{v.type} @{v.name}"
    if isinstance(v, (Argument, Instruction)):
        return f"{v.type} %{v.name}"
    raise TypeError(f"cannot print operand {v!r}")


def _escape_bytes(data: bytes) -> str:
    return "".join(
        chr(b) if 32 <= b < 127 and chr(b) not in '"\\' else f"\\{b:02x}"
        for b in data
    )


def print_instruction(inst: Instruction) -> str:
    """Render a single instruction (without indentation)."""
    lhs = f"%{inst.name} = " if inst.name and not inst.type.is_void else ""
    if isinstance(inst, Alloca):
        return f"{lhs}alloca {inst.allocated_type}, count {inst.count}"
    if isinstance(inst, Load):
        return f"{lhs}load {_operand(inst.pointer)}"
    if isinstance(inst, Store):
        return f"store {_operand(inst.value)}, {_operand(inst.pointer)}"
    if isinstance(inst, Gep):
        return (
            f"{lhs}gep {inst.type} : {_operand(inst.base)}, "
            f"{_operand(inst.index)}, scale {inst.scale}, disp {inst.displacement}"
        )
    if isinstance(inst, BinOp):
        return f"{lhs}{inst.op} {_operand(inst.lhs)}, {_operand(inst.rhs)}"
    if isinstance(inst, ICmp):
        return f"{lhs}icmp {inst.pred} {_operand(inst.lhs)}, {_operand(inst.rhs)}"
    if isinstance(inst, FCmp):
        return (
            f"{lhs}fcmp {inst.pred} {_operand(inst.operands[0])}, "
            f"{_operand(inst.operands[1])}"
        )
    if isinstance(inst, Cast):
        return f"{lhs}{inst.op} {_operand(inst.value)} to {inst.type}"
    if isinstance(inst, Select):
        ops = ", ".join(_operand(o) for o in inst.operands)
        return f"{lhs}select {ops}"
    if isinstance(inst, Br):
        if inst.is_conditional:
            return (
                f"br {_operand(inst.condition)}, "  # type: ignore[arg-type]
                f"label %{inst.targets[0].name}, label %{inst.targets[1].name}"
            )
        return f"br label %{inst.targets[0].name}"
    if isinstance(inst, Switch):
        cases = ", ".join(f"{c}: label %{b.name}" for c, b in inst.cases)
        return (
            f"switch {_operand(inst.operands[0])}, "
            f"default label %{inst.default.name} [ {cases} ]"
        )
    if isinstance(inst, Ret):
        return f"ret {_operand(inst.value)}" if inst.value is not None else "ret void"
    if isinstance(inst, Unreachable):
        return "unreachable"
    if isinstance(inst, Phi):
        arms = ", ".join(
            f"[ {_operand(v)}, %{b.name} ]" for v, b in inst.incoming
        )
        return f"{lhs}phi {inst.type} {arms}"
    if isinstance(inst, Call):
        args = ", ".join(_operand(a) for a in inst.args)
        op = "call.guard" if inst.is_guard else "call"
        if inst.type.is_void:
            return f"{op} void @{inst.callee.name}({args})"
        return f"{lhs}{op} {inst.type} @{inst.callee.name}({args})"
    if isinstance(inst, InlineAsm):
        return f'asm "{_escape_bytes(inst.asm_text.encode())}"'
    raise TypeError(f"cannot print instruction {inst!r}")


def print_block(block: BasicBlock) -> str:
    lines = [f"{block.name}:"]
    for inst in block.instructions:
        lines.append(f"  {print_instruction(inst)}")
    return "\n".join(lines)


def print_function(fn: Function) -> str:
    params = ", ".join(f"{a.type} %{a.name}" for a in fn.args)
    if fn.function_type.vararg:
        params = f"{params}, ..." if params else "..."
    sig = f"{fn.return_type} @{fn.name}({params})"
    attrs = "".join(f" #{a}" for a in sorted(fn.attributes))
    if fn.is_declaration:
        return f"declare {fn.linkage} {sig}{attrs}"
    body = "\n".join(print_block(b) for b in fn.blocks)
    return f"define {fn.linkage} {sig}{attrs} {{\n{body}\n}}"


def _print_metadata_value(v: object) -> str:
    if isinstance(v, bool):
        return "true" if v else "false"
    if isinstance(v, int):
        return str(v)
    if isinstance(v, str):
        return f'"{v}"'
    raise TypeError(f"unsupported metadata value {v!r}")


def print_module(module: Module) -> str:
    """Serialize a full module to its canonical textual form."""
    parts: list[str] = [f'module "{module.name}"']
    for key in sorted(module.metadata):
        parts.append(f"!{key} = {_print_metadata_value(module.metadata[key])}")
    for st in module.structs.values():
        fields = ", ".join(str(f) for f in st.fields)
        names = ", ".join(st.field_names)
        parts.append(f"%{st.name} = type {{ {fields} }} fields({names})")
    for g in module.globals.values():
        decl = f"@{g.name} = {g.linkage}"
        if g.is_const:
            decl += " const"
        decl += f" global {g.value_type}"
        init = g.initializer
        if init is not None:
            if isinstance(init, ConstantString):
                decl += f' c"{_escape_bytes(init.data)}"'
            elif isinstance(init, ConstantInt):
                decl += f" {init.signed}"
            elif isinstance(init, ConstantFloat):
                decl += f" {init.value!r}"
            elif isinstance(init, ConstantNull):
                decl += " null"
            else:
                raise TypeError(f"unsupported initializer {init!r}")
        else:
            decl += " zeroinit"
        parts.append(decl)
    # Declarations precede definitions so the parser can resolve every
    # direct call as it reads function bodies.
    for fn in module.functions.values():
        if fn.is_declaration:
            parts.append(print_function(fn))
    for fn in module.functions.values():
        if not fn.is_declaration:
            parts.append(print_function(fn))
    return "\n\n".join(parts) + "\n"


__all__ = ["print_block", "print_function", "print_instruction", "print_module"]
