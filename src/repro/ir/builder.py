"""IRBuilder: convenience API for constructing IR, used by the mini-C
code generator, the passes, and tests."""

from __future__ import annotations

from typing import Optional, Sequence

from .instructions import (
    Alloca,
    BinOp,
    Br,
    Call,
    Cast,
    FCmp,
    Gep,
    ICmp,
    InlineAsm,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    Switch,
    Unreachable,
)
from .module import BasicBlock, Function
from .types import (
    I1,
    I8,
    I32,
    I64,
    FloatType,
    IRType,
    IntType,
    PointerType,
)
from .values import ConstantFloat, ConstantInt, ConstantNull, Value


class IRBuilder:
    """Appends instructions at an insertion point, naming results."""

    def __init__(self, block: Optional[BasicBlock] = None):
        self.block = block

    # -- positioning ---------------------------------------------------------

    def position_at_end(self, block: BasicBlock) -> None:
        self.block = block

    @property
    def function(self) -> Function:
        if self.block is None or self.block.parent is None:
            raise ValueError("builder has no insertion point")
        return self.block.parent

    def _emit(self, inst: Instruction, name: str = "") -> Instruction:
        if self.block is None:
            raise ValueError("builder has no insertion point")
        if name:
            inst.name = name
        elif inst.type.is_first_class and not inst.type.is_void:
            inst.name = self.function.unique_name(inst.opcode)
        self.block.append(inst)
        return inst

    # -- constants -----------------------------------------------------------

    @staticmethod
    def const_int(type: IntType, value: int) -> ConstantInt:
        return ConstantInt(type, value)

    @staticmethod
    def const_i64(value: int) -> ConstantInt:
        return ConstantInt(I64, value)

    @staticmethod
    def const_i32(value: int) -> ConstantInt:
        return ConstantInt(I32, value)

    @staticmethod
    def const_i8(value: int) -> ConstantInt:
        return ConstantInt(I8, value)

    @staticmethod
    def const_bool(value: bool) -> ConstantInt:
        return ConstantInt(I1, int(value))

    @staticmethod
    def const_float(type: FloatType, value: float) -> ConstantFloat:
        return ConstantFloat(type, value)

    @staticmethod
    def null(ptr_type: PointerType) -> ConstantNull:
        return ConstantNull(ptr_type)

    # -- memory ---------------------------------------------------------------

    def alloca(self, type: IRType, count: int = 1, name: str = "") -> Alloca:
        return self._emit(Alloca(type, count), name)  # type: ignore[return-value]

    def load(self, ptr: Value, name: str = "") -> Load:
        return self._emit(Load(ptr), name)  # type: ignore[return-value]

    def store(self, value: Value, ptr: Value) -> Store:
        return self._emit(Store(value, ptr))  # type: ignore[return-value]

    def gep(
        self,
        result_type: PointerType,
        base: Value,
        index: Value,
        scale: int,
        displacement: int = 0,
        name: str = "",
    ) -> Gep:
        return self._emit(
            Gep(result_type, base, index, scale, displacement), name
        )  # type: ignore[return-value]

    def struct_field_ptr(
        self, base: Value, field_index: int, name: str = ""
    ) -> Gep:
        """Pointer to field ``field_index`` of ``*base`` (a struct pointer)."""
        st = base.type.pointee  # type: ignore[union-attr]
        field_type = st.fields[field_index]
        return self.gep(
            PointerType(field_type),
            base,
            self.const_i64(0),
            0,
            st.field_offset(field_index),
            name,
        )

    # -- arithmetic ------------------------------------------------------------

    def binop(self, op: str, lhs: Value, rhs: Value, name: str = "") -> BinOp:
        return self._emit(BinOp(op, lhs, rhs), name)  # type: ignore[return-value]

    def add(self, a: Value, b: Value, name: str = "") -> BinOp:
        return self.binop("add", a, b, name)

    def sub(self, a: Value, b: Value, name: str = "") -> BinOp:
        return self.binop("sub", a, b, name)

    def mul(self, a: Value, b: Value, name: str = "") -> BinOp:
        return self.binop("mul", a, b, name)

    def and_(self, a: Value, b: Value, name: str = "") -> BinOp:
        return self.binop("and", a, b, name)

    def or_(self, a: Value, b: Value, name: str = "") -> BinOp:
        return self.binop("or", a, b, name)

    def xor(self, a: Value, b: Value, name: str = "") -> BinOp:
        return self.binop("xor", a, b, name)

    def shl(self, a: Value, b: Value, name: str = "") -> BinOp:
        return self.binop("shl", a, b, name)

    def lshr(self, a: Value, b: Value, name: str = "") -> BinOp:
        return self.binop("lshr", a, b, name)

    def icmp(self, pred: str, lhs: Value, rhs: Value, name: str = "") -> ICmp:
        return self._emit(ICmp(pred, lhs, rhs), name)  # type: ignore[return-value]

    def fcmp(self, pred: str, lhs: Value, rhs: Value, name: str = "") -> FCmp:
        return self._emit(FCmp(pred, lhs, rhs), name)  # type: ignore[return-value]

    def cast(self, op: str, value: Value, to_type: IRType, name: str = "") -> Cast:
        return self._emit(Cast(op, value, to_type), name)  # type: ignore[return-value]

    def ptrtoint(self, value: Value, to_type: IntType = I64, name: str = "") -> Cast:
        return self.cast("ptrtoint", value, to_type, name)

    def inttoptr(self, value: Value, to_type: PointerType, name: str = "") -> Cast:
        return self.cast("inttoptr", value, to_type, name)

    def bitcast(self, value: Value, to_type: PointerType, name: str = "") -> Cast:
        if value.type is to_type:
            return value  # type: ignore[return-value]
        return self.cast("bitcast", value, to_type, name)

    def select(self, cond: Value, a: Value, b: Value, name: str = "") -> Select:
        return self._emit(Select(cond, a, b), name)  # type: ignore[return-value]

    # -- control flow -----------------------------------------------------------

    def br(self, target: BasicBlock) -> Br:
        return self._emit(Br(target))  # type: ignore[return-value]

    def cond_br(self, cond: Value, if_true: BasicBlock, if_false: BasicBlock) -> Br:
        return self._emit(Br(if_true, cond, if_false))  # type: ignore[return-value]

    def switch(
        self,
        value: Value,
        default: BasicBlock,
        cases: Sequence[tuple[int, BasicBlock]] = (),
    ) -> Switch:
        return self._emit(Switch(value, default, cases))  # type: ignore[return-value]

    def ret(self, value: Optional[Value] = None) -> Ret:
        return self._emit(Ret(value))  # type: ignore[return-value]

    def unreachable(self) -> Unreachable:
        return self._emit(Unreachable())  # type: ignore[return-value]

    def phi(self, type: IRType, name: str = "") -> Phi:
        """Insert a phi at the top of the current block."""
        if self.block is None:
            raise ValueError("builder has no insertion point")
        inst = Phi(type)
        inst.name = name or self.function.unique_name("phi")
        inst.parent = self.block
        self.block.instructions.insert(self.block.first_non_phi_index(), inst)
        return inst

    def call(self, callee: Function, args: Sequence[Value], name: str = "") -> Call:
        return self._emit(Call(callee, args), name)  # type: ignore[return-value]

    def inline_asm(self, asm_text: str) -> InlineAsm:
        return self._emit(InlineAsm(asm_text))  # type: ignore[return-value]


__all__ = ["IRBuilder"]
