"""IR well-formedness verifier.

The kernel-side loader runs this on every module before insertion
(paper §3.2: modules are validated at insmod time); the compiler pipeline
runs it after every pass.  A verification failure raises
:class:`VerificationError` listing every violation found.
"""

from __future__ import annotations

from .instructions import (
    Br,
    Call,
    Instruction,
    Load,
    Phi,
    Ret,
    Store,
    Switch,
)
from .module import BasicBlock, Function, Module
from .types import IntType, PointerType, VOID
from .values import Argument, Constant, GlobalValue, UndefValue


class VerificationError(ValueError):
    """One or more IR invariants are violated."""

    def __init__(self, errors: list[str]):
        super().__init__(
            f"{len(errors)} IR verification error(s):\n  " + "\n  ".join(errors)
        )
        self.errors = errors


def verify_module(module: Module) -> None:
    """Verify every function in the module; raise on any violation."""
    errors: list[str] = []
    for fn in module.defined_functions():
        errors.extend(_verify_function(fn, module))
    for fn in module.declarations():
        if fn.blocks:
            errors.append(f"@{fn.name}: declaration has a body")
    if errors:
        raise VerificationError(errors)


def verify_function(fn: Function, module: Module | None = None) -> None:
    errors = _verify_function(fn, module)
    if errors:
        raise VerificationError(errors)


def _verify_function(fn: Function, module: Module | None) -> list[str]:
    errors: list[str] = []
    where = f"@{fn.name}"

    if not fn.blocks:
        errors.append(f"{where}: definition has no blocks")
        return errors

    block_set = set(map(id, fn.blocks))
    names_seen: set[str] = set()
    defined: set[int] = {id(a) for a in fn.args}
    all_insts: set[int] = set()
    for block in fn.blocks:
        for inst in block.instructions:
            all_insts.add(id(inst))

    preds = fn.predecessors()

    for block in fn.blocks:
        bwhere = f"{where}:{block.name}"
        if block.parent is not fn:
            errors.append(f"{bwhere}: block parent link broken")
        term = block.terminator
        if term is None:
            errors.append(f"{bwhere}: block lacks a terminator")
        for i, inst in enumerate(block.instructions):
            iwhere = f"{bwhere}[{i}] ({inst.opcode})"
            if inst.parent is not block:
                errors.append(f"{iwhere}: parent link broken")
            if inst.is_terminator and i != len(block.instructions) - 1:
                errors.append(f"{iwhere}: terminator not last in block")
            if isinstance(inst, Phi) and i >= block.first_non_phi_index():
                errors.append(f"{iwhere}: phi after non-phi instruction")
            if inst.name:
                if inst.type.is_void:
                    errors.append(f"{iwhere}: void instruction has a name")
                elif inst.name in names_seen:
                    errors.append(f"{iwhere}: duplicate value name %{inst.name}")
                names_seen.add(inst.name)
            # Operand sanity: every operand must be a constant, an argument
            # of this function, a global, or an instruction of this function.
            for op in inst.operands:
                if isinstance(op, UndefValue):
                    if op.name:
                        errors.append(
                            f"{iwhere}: unresolved placeholder %{op.name}"
                        )
                    continue
                if isinstance(op, (Constant, GlobalValue)):
                    continue
                if isinstance(op, Argument):
                    if not any(op is a for a in fn.args):
                        errors.append(f"{iwhere}: foreign argument %{op.name}")
                    continue
                if isinstance(op, Instruction):
                    if id(op) not in all_insts:
                        errors.append(
                            f"{iwhere}: operand %{op.name} from another function"
                        )
                    continue
                errors.append(f"{iwhere}: bad operand kind {type(op).__name__}")
            errors.extend(_check_types(inst, iwhere, fn))
            if isinstance(inst, (Br, Switch)):
                for target in inst.targets:
                    if id(target) not in block_set:
                        errors.append(
                            f"{iwhere}: branch to foreign block {target.name}"
                        )
            if isinstance(inst, Phi):
                pred_names = sorted(b.name for b in preds[block])
                incoming_names = sorted(b.name for _, b in inst.incoming)
                if pred_names != incoming_names:
                    errors.append(
                        f"{iwhere}: phi incoming blocks {incoming_names} != "
                        f"predecessors {pred_names}"
                    )
            if isinstance(inst, Call) and module is not None:
                if inst.callee.name not in module.functions:
                    errors.append(
                        f"{iwhere}: callee @{inst.callee.name} not in module"
                    )

    # Straight-line def-before-use within each block (phis exempt).
    for block in fn.blocks:
        local_defined = set(defined)
        for inst in block.instructions:
            if not isinstance(inst, Phi):
                for op in inst.operands:
                    if (
                        isinstance(op, Instruction)
                        and op.parent is block
                        and id(op) not in local_defined
                        and _comes_after(op, inst, block)
                    ):
                        errors.append(
                            f"{where}:{block.name}: %{op.name or inst.opcode} "
                            f"used before defined in its own block"
                        )
            local_defined.add(id(inst))

    return errors


def _comes_after(a: Instruction, b: Instruction, block: BasicBlock) -> bool:
    """True if ``a`` appears strictly after ``b`` within ``block``."""
    seen_b = False
    for inst in block.instructions:
        if inst is b:
            seen_b = True
        if inst is a:
            return seen_b and a is not b
    return False


def _check_types(inst: Instruction, where: str, fn: Function) -> list[str]:
    errors: list[str] = []
    if isinstance(inst, Load):
        if not isinstance(inst.pointer.type, PointerType):
            errors.append(f"{where}: load from non-pointer")
        elif inst.pointer.type.pointee is not inst.type:
            errors.append(f"{where}: load result type mismatch")
    elif isinstance(inst, Store):
        pt = inst.pointer.type
        if not isinstance(pt, PointerType) or pt.pointee is not inst.value.type:
            errors.append(f"{where}: store type mismatch")
    elif isinstance(inst, Ret):
        want = fn.return_type
        if inst.value is None:
            if want is not VOID:
                errors.append(f"{where}: ret void from non-void function")
        elif inst.value.type is not want:
            errors.append(
                f"{where}: ret type {inst.value.type}, function returns {want}"
            )
    elif isinstance(inst, Br) and inst.is_conditional:
        cond = inst.condition
        assert cond is not None
        if not (isinstance(cond.type, IntType) and cond.type.bits == 1):
            errors.append(f"{where}: branch condition is not i1")
    return errors


__all__ = ["VerificationError", "verify_function", "verify_module"]
