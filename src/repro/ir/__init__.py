"""Middle-end IR: the substrate standing in for LLVM (paper §3.3).

Public surface::

    from repro.ir import (
        Module, Function, BasicBlock, IRBuilder,
        types, values, instructions,
        print_module, parse_module, verify_module,
    )
"""

from . import instructions, types, values
from .builder import IRBuilder
from .instructions import (
    Alloca,
    BinOp,
    Br,
    Call,
    Cast,
    FCmp,
    Gep,
    ICmp,
    InlineAsm,
    Instruction,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    Switch,
    Unreachable,
)
from .module import BasicBlock, Function, Module
from .parser import IRParseError, parse_module
from .printer import print_function, print_instruction, print_module
from .types import (
    F32,
    F64,
    I1,
    I8,
    I8PTR,
    I16,
    I32,
    I64,
    VOID,
    ArrayType,
    FloatType,
    FunctionType,
    IntType,
    IRType,
    PointerType,
    StructType,
    VoidType,
    ptr,
)
from .values import (
    Argument,
    Constant,
    ConstantFloat,
    ConstantInt,
    ConstantNull,
    ConstantString,
    GlobalValue,
    GlobalVariable,
    UndefValue,
    Value,
)
from .verifier import VerificationError, verify_function, verify_module

__all__ = [
    "Alloca", "ArrayType", "Argument", "BasicBlock", "BinOp", "Br", "Call",
    "Cast", "Constant", "ConstantFloat", "ConstantInt", "ConstantNull",
    "ConstantString", "F32", "F64", "FCmp", "FloatType", "Function",
    "FunctionType", "Gep", "GlobalValue", "GlobalVariable", "I1", "I16",
    "I32", "I64", "I8", "I8PTR", "ICmp", "InlineAsm", "IRBuilder",
    "IRParseError", "IRType", "Instruction", "IntType", "Load", "Module",
    "Phi", "PointerType", "Ret", "Select", "Store", "StructType", "Switch",
    "UndefValue", "Unreachable", "VOID", "Value", "VerificationError",
    "VoidType", "instructions", "parse_module", "print_function",
    "print_instruction", "print_module", "ptr", "types", "values",
    "verify_function", "verify_module",
]
