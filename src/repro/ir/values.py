"""Value hierarchy for the IR: constants, globals, arguments, instructions.

Everything that can appear as an instruction operand is a
:class:`Value`.  Instructions themselves are values (their result), as in
LLVM; they live in :mod:`repro.ir.instructions`.
"""

from __future__ import annotations

from typing import Optional

from .types import (
    ArrayType,
    FloatType,
    FunctionType,
    IRType,
    IntType,
    PointerType,
)


class Value:
    """Base class for everything that may be used as an operand."""

    __slots__ = ("type", "name")

    def __init__(self, type: IRType, name: str = ""):
        self.type = type
        self.name = name

    def ref(self) -> str:
        """Textual reference used when this value appears as an operand."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.ref()}: {self.type}>"


class Constant(Value):
    """Marker base for compile-time constants."""

    __slots__ = ()


class ConstantInt(Constant):
    """Integer literal.  The stored value is the *unsigned* bit pattern."""

    __slots__ = ("value",)

    def __init__(self, type: IntType, value: int):
        if not isinstance(type, IntType):
            raise TypeError("ConstantInt requires an IntType")
        super().__init__(type)
        self.value = type.wrap(int(value))

    @property
    def signed(self) -> int:
        """The value interpreted as signed two's complement."""
        return self.type.to_signed(self.value)  # type: ignore[union-attr]

    def ref(self) -> str:
        return f"{self.type} {self.signed}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ConstantInt)
            and other.type is self.type
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return hash((self.type, self.value))


class ConstantFloat(Constant):
    """Floating-point literal."""

    __slots__ = ("value",)

    def __init__(self, type: FloatType, value: float):
        if not isinstance(type, FloatType):
            raise TypeError("ConstantFloat requires a FloatType")
        super().__init__(type)
        self.value = float(value)

    def ref(self) -> str:
        return f"{self.type} {self.value!r}"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ConstantFloat)
            and other.type is self.type
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return hash((self.type, self.value))


class ConstantNull(Constant):
    """Null pointer constant."""

    __slots__ = ()

    def __init__(self, type: PointerType):
        if not isinstance(type, PointerType):
            raise TypeError("ConstantNull requires a PointerType")
        super().__init__(type)

    def ref(self) -> str:
        return f"{self.type} null"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ConstantNull) and other.type is self.type

    def __hash__(self) -> int:
        return hash(("null", self.type))


class UndefValue(Constant):
    """Undefined value of any first-class type."""

    __slots__ = ()

    def ref(self) -> str:
        return f"{self.type} undef"


class ConstantString(Constant):
    """A byte-string literal; becomes an ``[N x i8]`` initializer."""

    __slots__ = ("data",)

    def __init__(self, data: bytes):
        if not isinstance(data, (bytes, bytearray)):
            raise TypeError("ConstantString requires bytes")
        data = bytes(data)
        super().__init__(ArrayType(IntType(8), len(data)))
        self.data = data

    def ref(self) -> str:
        printable = "".join(
            chr(b) if 32 <= b < 127 and chr(b) not in '"\\' else f"\\{b:02x}"
            for b in self.data
        )
        return f'{self.type} c"{printable}"'


class Argument(Value):
    """A formal parameter of a function."""

    __slots__ = ("index",)

    def __init__(self, type: IRType, name: str, index: int):
        super().__init__(type, name)
        self.index = index

    def ref(self) -> str:
        return f"{self.type} %{self.name}"


class GlobalValue(Value):
    """Base for module-level symbols (globals and functions).

    ``linkage`` distinguishes symbols private to the module from symbols
    that participate in kernel-style linking (exported / imported), which
    is what the module loader resolves at insmod time.
    """

    __slots__ = ("linkage",)

    LINKAGES = ("internal", "external", "exported")

    def __init__(self, type: IRType, name: str, linkage: str = "internal"):
        if linkage not in self.LINKAGES:
            raise ValueError(f"bad linkage {linkage!r}")
        super().__init__(type, name)
        self.linkage = linkage

    def ref(self) -> str:
        return f"{self.type} @{self.name}"


class GlobalVariable(GlobalValue):
    """A module-level variable.  Its value *is a pointer* to its storage."""

    __slots__ = ("value_type", "initializer", "is_const")

    def __init__(
        self,
        value_type: IRType,
        name: str,
        initializer: Optional[Constant] = None,
        linkage: str = "internal",
        is_const: bool = False,
    ):
        super().__init__(PointerType(value_type), name, linkage)
        self.value_type = value_type
        self.initializer = initializer
        self.is_const = is_const


__all__ = [
    "Argument",
    "Constant",
    "ConstantFloat",
    "ConstantInt",
    "ConstantNull",
    "ConstantString",
    "GlobalValue",
    "GlobalVariable",
    "UndefValue",
    "Value",
]
