"""policy-manager: the user-space policy configuration tool (Figure 1).

"a root user can communicate with the policy module through an ioctl
system call to add or remove regions from the table using a simple
application, policy-manager" (§3.1).  This class is that application: it
only ever talks to the kernel through ``ioctl`` on ``/dev/carat``, with
packed binary payloads, exactly like its C counterpart would.
"""

from __future__ import annotations

import struct

from .. import abi
from ..kernel import layout
from ..kernel.kernel import Kernel
from ..kernel.module_loader import LoadedModule
from . import module as pm
from .region import Region


class PolicyManager:
    """User-space client for /dev/carat."""

    def __init__(self, kernel: Kernel, uid: int = 0):
        self.kernel = kernel
        self.uid = uid

    # -- raw ioctl wrappers --------------------------------------------------

    def _ioctl(self, cmd: int, arg: bytes = b"") -> bytes:
        return self.kernel.devices.ioctl(pm.DEVICE_PATH, cmd, arg, uid=self.uid)

    def add_region(self, base: int, length: int, prot: int) -> int:
        """Add a region; returns its table index."""
        out = self._ioctl(
            pm.CMD_ADD_REGION, struct.pack("<QQI", base, length, prot)
        )
        return struct.unpack("<I", out)[0]

    def remove_region(self, base: int, length: int) -> bool:
        out = self._ioctl(pm.CMD_DEL_REGION, struct.pack("<QQ", base, length))
        return bool(struct.unpack("<I", out)[0])

    def clear(self) -> None:
        self._ioctl(pm.CMD_CLEAR)

    def set_default(self, allow: bool) -> None:
        self._ioctl(pm.CMD_SET_DEFAULT, struct.pack("<I", int(allow)))

    def set_enforce(self, enforce: bool) -> None:
        self._ioctl(pm.CMD_SET_ENFORCE, struct.pack("<I", int(enforce)))

    def stats(self) -> dict[str, int]:
        out = self._ioctl(pm.CMD_GET_STATS)
        checks, allowed, denied, scanned, regions = struct.unpack("<QQQQQ", out)
        return {
            "checks": checks,
            "allowed": allowed,
            "denied": denied,
            "entries_scanned": scanned,
            "regions": regions,
        }

    def count(self) -> int:
        return struct.unpack("<I", self._ioctl(pm.CMD_COUNT))[0]

    def get_region(self, index: int) -> Region:
        out = self._ioctl(pm.CMD_GET_REGION, struct.pack("<I", index))
        base, length, prot = struct.unpack("<QQI", out)
        return Region(base, length, prot)

    def allow_intrinsic(self, name: str) -> None:
        self._ioctl(pm.CMD_ALLOW_INTRINSIC, name.encode() + b"\x00")

    def deny_intrinsic(self, name: str) -> None:
        self._ioctl(pm.CMD_DENY_INTRINSIC, name.encode() + b"\x00")

    def add_region_for(self, module_name: str, base: int, length: int,
                       prot: int) -> int:
        """Add a region to ``module_name``'s private policy table.

        A module with a private table is checked against it alone
        (default-deny); modules without one use the global policy."""
        name = module_name.encode()
        if len(name) > 32:
            raise ValueError("module name too long (32 bytes max)")
        payload = name.ljust(32, b"\x00") + struct.pack(
            "<QQI", base, length, prot
        )
        out = self._ioctl(pm.CMD_ADD_REGION_FOR, payload)
        return struct.unpack("<I", out)[0]

    def clear_module_policy(self, module_name: str) -> None:
        """Drop a module's private table (it reverts to the global one)."""
        self._ioctl(pm.CMD_CLEAR_FOR, module_name.encode() + b"\x00")

    def set_call_allowlist(self, enabled: bool) -> None:
        """Toggle the §5 kernel-call allowlist (off = allow-all)."""
        self._ioctl(pm.CMD_CALL_POLICY, struct.pack("<I", int(enabled)))

    def allow_call(self, name: str) -> None:
        self._ioctl(pm.CMD_ALLOW_CALL, name.encode() + b"\x00")

    def deny_call(self, name: str) -> None:
        self._ioctl(pm.CMD_DENY_CALL, name.encode() + b"\x00")

    # -- graceful enforcement --------------------------------------------------

    @staticmethod
    def _packed_name(module_name: str) -> bytes:
        name = module_name.encode()
        if len(name) > 32:
            raise ValueError("module name too long (32 bytes max)")
        return name.ljust(32, b"\x00")

    def set_mode(self, mode: str) -> None:
        """Set the global enforcement mode: audit/panic/eject/isolate."""
        code = pm.MODE_WIRE.get(mode)
        if code is None:
            raise ValueError(f"unknown enforcement mode {mode!r}")
        self._ioctl(pm.CMD_SET_MODE, struct.pack("<I", code))

    def set_module_mode(self, module_name: str, mode: str) -> None:
        """Per-module override; wins over the global mode."""
        code = pm.MODE_WIRE.get(mode)
        if code is None:
            raise ValueError(f"unknown enforcement mode {mode!r}")
        self._ioctl(
            pm.CMD_SET_MODE_FOR,
            self._packed_name(module_name) + struct.pack("<I", code),
        )

    def clear_module_mode(self, module_name: str) -> None:
        self._ioctl(
            pm.CMD_SET_MODE_FOR,
            self._packed_name(module_name) + struct.pack("<I", 4),
        )

    def get_mode(self, module_name: str | None = None) -> str:
        """The global mode, or the effective mode for ``module_name``."""
        arg = b"" if module_name is None else self._packed_name(module_name)
        out = self._ioctl(pm.CMD_GET_MODE, arg)
        return pm.MODE_CODES[struct.unpack("<I", out)[0]]

    def violations_for(self, module_name: str) -> int:
        out = self._ioctl(
            pm.CMD_GET_VIOLATIONS, self._packed_name(module_name)
        )
        return struct.unpack("<Q", out)[0]

    def unquarantine(self, module_name: str) -> bool:
        """Lift the re-insmod quarantine on an ejected module."""
        out = self._ioctl(
            pm.CMD_UNQUARANTINE, self._packed_name(module_name)
        )
        return bool(struct.unpack("<I", out)[0])

    # -- control plane (multi-tenant namespaces, staged rollout) --------------

    def create_tenant(self, name: str, max_regions: int = 256,
                      max_mutations_per_window: int = 1024,
                      violation_budget: int = 64) -> None:
        """Create a policy namespace with quotas (requires an attached
        control plane)."""
        self._ioctl(
            pm.CMD_TENANT_CREATE,
            self._packed_name(name) + struct.pack(
                "<III", max_regions, max_mutations_per_window,
                violation_budget,
            ),
        )

    def delete_tenant(self, name: str) -> None:
        self._ioctl(pm.CMD_TENANT_DELETE, self._packed_name(name))

    def batch_mutate(self, name: str, ops: list[tuple]) -> int:
        """Submit a transactional batch of ``(kind, base, length, prot)``
        ops (kind 0 = add, 1 = del) for tenant ``name``.  All-or-nothing;
        returns the staged generation number."""
        payload = self._packed_name(name) + struct.pack("<I", len(ops))
        for kind, base, length, prot in ops:
            payload += struct.pack("<IQQI", kind, base, length, prot)
        out = self._ioctl(pm.CMD_BATCH_MUTATE, payload)
        return struct.unpack("<Q", out)[0]

    def tenant_stats(self, name: str) -> dict[str, int]:
        out = self._ioctl(pm.CMD_TENANT_STATS, self._packed_name(name))
        fields = (
            "generation", "regions", "batches_applied", "batches_promoted",
            "batches_rejected", "rollbacks", "quota_denials",
            "overlap_rejections", "mutations_window",
        )
        return dict(zip(fields, struct.unpack("<QQQQQQQQQ", out)))

    def cp_status(self) -> dict[str, int]:
        out = self._ioctl(pm.CMD_CP_STATUS)
        fields = (
            "generation", "staged_generation", "tenants", "promotions",
            "rollbacks", "publishes", "publish_retries", "replica_repairs",
        )
        return dict(zip(fields, struct.unpack("<QQQQQQQQ", out)))

    def cp_tick(self) -> int:
        """Advance the control plane one tick; returns 0 (no change),
        1 (staged generation promoted) or 2 (auto-rolled back)."""
        return struct.unpack("<I", self._ioctl(pm.CMD_CP_TICK))[0]

    # -- convenience policies -------------------------------------------------

    def allow(self, base: int, length: int, read: bool = True,
              write: bool = True) -> int:
        prot = (abi.FLAG_READ if read else 0) | (abi.FLAG_WRITE if write else 0)
        return self.add_region(base, length, prot)

    def deny(self, base: int, length: int) -> int:
        return self.add_region(base, length, 0)

    def install_two_region_policy(self) -> None:
        """The paper's Figure 3/4 policy (§4.2 footnote 5): kernel
        addresses (the "high half") allowed, user addresses (the "low
        half") denied."""
        self.clear()
        self.allow(
            layout.KERNEL_SPACE_START,
            (1 << 64) - layout.KERNEL_SPACE_START,
        )
        self.deny(0, layout.USER_SPACE_END + 1)
        self.set_default(False)

    def install_n_region_policy(self, n: int) -> None:
        """The Figure 5 sweep policy: the same checks with ``n`` regions.

        The first ``n - 2`` entries are decoy device windows the driver
        never touches (so every guard scans past them — the worst case for
        the linear table); the final two are the standard pair that
        actually decides.
        """
        if n < 2:
            raise ValueError("need at least the two standard regions")
        self.clear()
        decoy_base = 0x2_0000_0000  # fake MMIO windows; never accessed
        for i in range(n - 2):
            self.allow(decoy_base + i * layout.PAGE_SIZE, layout.PAGE_SIZE)
        self.allow(
            layout.KERNEL_SPACE_START,
            (1 << 64) - layout.KERNEL_SPACE_START,
        )
        self.deny(0, layout.USER_SPACE_END + 1)
        self.set_default(False)

    def allow_module_region(self, loaded: LoadedModule) -> int:
        """Allow a module its own globals."""
        return self.allow(loaded.base, loaded.size)

    def describe(self) -> str:
        lines = []
        for i in range(self.count()):
            lines.append(f"{i:2d}: {self.get_region(i).describe()}")
        return "\n".join(lines) or "(empty policy)"


__all__ = ["PolicyManager"]
