"""The paper's policy structure: a flat table of at most 64 regions.

§3.1: "We use a table describing a maximum of 64 memory regions and thus
a permissions check has O(n) time complexity.  A table was chosen in
order to minimize pointer chasing, lending speedup over other
implementations like the Linux kernel's red-black tree ... Each entry
stores a region's lower bound, length, and protection flags.  When the
guard function is invoked, the policy module then simply walks the region
table and checks if the access should be permitted."

The check returns how many entries it scanned so the VM's timing model
can charge the machine-dependent per-entry cost (this is the quantity
Figure 5 varies).
"""

from __future__ import annotations

import hashlib
from typing import Optional

from .region import Decision, Region

MAX_REGIONS = 64


class PolicyTableFull(ValueError):
    """More than :data:`MAX_REGIONS` regions requested."""


class RegionTableReplica:
    """An immutable point-in-time copy of a :class:`RegionTable`.

    This is what the policy module publishes per-CPU under RCU: readers
    walk their CPU-local replica lock-free while writers mutate the
    master and publish a fresh snapshot behind a grace period.
    ``check`` is byte-for-byte the master's scan — same first-match
    semantics, same ``(allowed, scanned)`` counts — so replicated reads
    are indistinguishable from master reads in every simulated counter.

    ``(epoch, default_allow)`` is the staleness token: it matches the
    master's values at snapshot time, and a reader comparing it against
    the live master can tell whether the replica is current.
    """

    name = "linear-table-replica"
    pure_check = True

    __slots__ = ("default_allow", "epoch", "_regions")

    def __init__(self, regions: tuple, default_allow: bool, epoch: int):
        self._regions = regions
        self.default_allow = default_allow
        self.epoch = epoch

    def check(self, addr: int, size: int, flags: int) -> Decision:
        regions = self._regions
        for i, r in enumerate(regions):
            if r.base <= addr and addr + size <= r.base + r.length:
                return (r.prot & flags) == flags, i + 1
        return self.default_allow, len(regions)

    def regions(self) -> list[Region]:
        return list(self._regions)

    def __len__(self) -> int:
        return len(self._regions)


class RegionTable:
    """Linear-scan region table; first fully-covering region wins."""

    name = "linear-table"
    supports_overlap = True
    #: ``check`` neither mutates the structure nor keeps per-call state,
    #: so callers may memoize its decisions per :attr:`epoch`.
    pure_check = True

    def __init__(self, default_allow: bool = False,
                 max_regions: int = MAX_REGIONS):
        self.default_allow = default_allow
        self.max_regions = max_regions
        self._regions: list[Region] = []
        #: Bumped on every mutation; guard-decision caches key on it.
        self.epoch = 0

    # -- mutation ----------------------------------------------------------

    def add(self, region: Region) -> int:
        """Append a region; returns its index."""
        if len(self._regions) >= self.max_regions:
            raise PolicyTableFull(
                f"policy table is limited to {self.max_regions} regions"
            )
        self._regions.append(region)
        self.epoch += 1
        return len(self._regions) - 1

    def remove(self, base: int, length: int) -> bool:
        """Remove the first region exactly matching (base, length)."""
        for i, r in enumerate(self._regions):
            if r.base == base and r.length == length:
                del self._regions[i]
                self.epoch += 1
                return True
        return False

    def clear(self) -> None:
        self._regions.clear()
        self.epoch += 1

    # -- queries --------------------------------------------------------------

    def check(self, addr: int, size: int, flags: int) -> Decision:
        """The guard-path permission check.  Returns (allowed, scanned)."""
        regions = self._regions
        for i, r in enumerate(regions):
            if r.base <= addr and addr + size <= r.base + r.length:
                return (r.prot & flags) == flags, i + 1
        return self.default_allow, len(regions)

    def check_range(self, lo: int, hi: int, size: int, flags: int) -> bool:
        """Static range query for the load-time verifier: would ``check``
        allow *every* access ``[a, a + size)`` with ``a`` in ``[lo, hi]``?

        Exact under first-match semantics: walk the table in order,
        tracking the interval set of start addresses not yet decided by
        an earlier region.  A region decides the starts it fully covers;
        if any region that decides some starts denies ``flags``, the
        range is not provably allowed.  Starts no region covers fall
        through to ``default_allow``.
        """
        if size <= 0 or hi < lo:
            return False
        undecided = [(lo, hi)]
        for r in self._regions:
            if not undecided:
                break
            # Start addresses whose whole access fits inside this region.
            rlo = r.base
            rhi = r.base + r.length - size
            if rhi < rlo:
                continue
            remaining = []
            decided_any = False
            for ulo, uhi in undecided:
                ilo, ihi = max(ulo, rlo), min(uhi, rhi)
                if ilo > ihi:
                    remaining.append((ulo, uhi))
                    continue
                decided_any = True
                if ilo > ulo:
                    remaining.append((ulo, ilo - 1))
                if ihi < uhi:
                    remaining.append((ihi + 1, uhi))
            if decided_any and (r.prot & flags) != flags:
                return False
            undecided = remaining
        if undecided and not self.default_allow:
            return False
        return True

    def digest(self) -> str:
        """Canonical content digest (regions in table order + default).

        Index-structure independent: a linear table and an interval table
        holding the same regions produce the same digest, because their
        ``check`` decisions are identical.  Verification certificates
        record this to detect stale policy at insmod.
        """
        h = hashlib.sha256()
        for r in self._regions:
            h.update(f"{r.base:x}|{r.length:x}|{r.prot:x};".encode())
        h.update(f"default={int(self.default_allow)}".encode())
        return h.hexdigest()

    def overlapping(self, base: int, length: int) -> Optional[Region]:
        """The first region whose [base, base+length) intersects the
        given range (None if disjoint from every entry).  Namespace-scoped
        mutation paths use this to reject overlap/duplicate adds with
        ``-EEXIST`` instead of silently leaning on first-match priority."""
        if length <= 0:
            return None
        lo, hi = base, base + length
        for r in self._regions:
            if r.base < hi and lo < r.base + r.length:
                return r
        return None

    def find(self, addr: int, size: int) -> Optional[Region]:
        for r in self._regions:
            if r.covers(addr, size):
                return r
        return None

    def snapshot(self) -> RegionTableReplica:
        """An immutable replica of the current table (for RCU publish)."""
        return RegionTableReplica(
            tuple(self._regions), self.default_allow, self.epoch
        )

    def regions(self) -> list[Region]:
        return list(self._regions)

    def __len__(self) -> int:
        return len(self._regions)

    def describe(self) -> str:
        lines = [
            f"policy: {len(self._regions)} region(s), "
            f"default {'ALLOW' if self.default_allow else 'DENY'}"
        ]
        lines += [f"  {i:2d}: {r.describe()}" for i, r in enumerate(self._regions)]
        return "\n".join(lines)


__all__ = ["MAX_REGIONS", "PolicyTableFull", "RegionTable", "RegionTableReplica"]
