"""The CARAT KOP policy module (paper §3.1).

A native "kernel module" that:

- privately exports the single symbol ``carat_guard`` ("a callback to a
  CARAT CAKE runtime function that is privately exported from the
  kernel", §2),
- owns the policy index (the 64-entry region table by default, swappable
  for any structure in :mod:`repro.policy.structures`),
- registers ``/dev/carat`` and implements the ioctl protocol the
  ``policy-manager`` application speaks (Figure 1),
- on a forbidden access: logs and panics the kernel (§3.1), optionally
  audit-only for research runs.

It also exports ``carat_intrinsic_guard`` for the §5 privileged-intrinsic
extension.
"""

from __future__ import annotations

import struct
from typing import Optional

from .. import abi
from ..kernel.chardev import EEXIST, EINVAL, ENOSPC, ENOTTY, EPERM, IoctlError
from ..kernel.kernel import Kernel
from ..kernel.panic import ViolationFault
from ..kernel.smp import PerCpu
from ..vm.interp import GuardViolation
from .region import Region
from .table import PolicyTableFull, RegionTable

# ioctl command numbers (arbitrary but stable; think _IOW('k', n, ...)).
CMD_ADD_REGION = 0xC0DE0001
CMD_DEL_REGION = 0xC0DE0002
CMD_CLEAR = 0xC0DE0003
CMD_SET_DEFAULT = 0xC0DE0004
CMD_GET_STATS = 0xC0DE0005
CMD_GET_REGION = 0xC0DE0006
CMD_COUNT = 0xC0DE0007
CMD_SET_ENFORCE = 0xC0DE0008
CMD_ALLOW_INTRINSIC = 0xC0DE0009
CMD_DENY_INTRINSIC = 0xC0DE000A
CMD_ALLOW_CALL = 0xC0DE000B
CMD_DENY_CALL = 0xC0DE000C
CMD_CALL_POLICY = 0xC0DE000D  # arg: u32, 0 = allow-all, 1 = allowlist
#: Per-module region ops: payload = 32-byte NUL-padded module name,
#: then the same struct as the global variant.
CMD_ADD_REGION_FOR = 0xC0DE000E
CMD_CLEAR_FOR = 0xC0DE000F
# Graceful-enforcement ioctls (module ejection work).
CMD_SET_MODE = 0xC0DE0010      # arg: u32 mode code
CMD_SET_MODE_FOR = 0xC0DE0011  # arg: 32-byte name + u32 code (4 = clear)
CMD_GET_MODE = 0xC0DE0012      # arg: empty (global) or 32-byte name
CMD_GET_VIOLATIONS = 0xC0DE0013  # arg: 32-byte name -> u64 count
CMD_UNQUARANTINE = 0xC0DE0014  # arg: 32-byte name -> u32 lifted
# Tracing-subsystem ioctls (see repro.trace).
CMD_TRACE_ENABLE = 0xC0DE0015   # arg: empty
CMD_TRACE_DISABLE = 0xC0DE0016  # arg: empty
CMD_TRACE_SNAPSHOT = 0xC0DE0017  # arg: empty -> u64 stored, lost, total
CMD_TRACE_RESET = 0xC0DE0018    # arg: empty
# Control-plane ioctls (multi-tenant namespaces + staged rollout; see
# repro.policy.controlplane).  All require an attached control plane.
CMD_TENANT_CREATE = 0xC0DE0020  # 32-byte name + u32 x3 quota
CMD_TENANT_DELETE = 0xC0DE0021  # 32-byte name
CMD_BATCH_MUTATE = 0xC0DE0022   # 32-byte name + u32 count + ops -> u64 gen
CMD_TENANT_STATS = 0xC0DE0023   # 32-byte name -> u64 x9
CMD_CP_STATUS = 0xC0DE0024      # empty -> u64 x8
CMD_CP_TICK = 0xC0DE0025        # empty -> u32 event (0/1 promote/2 rollback)

_TRACE_STAT_FMT = "<QQQ"  # stored, lost, total
_BATCH_OP_FMT = "<IQQI"   # kind (0 add / 1 del), base, length, prot
_TENANT_QUOTA_FMT = "<III"  # max_regions, max_mutations_per_window, budget
_TENANT_STATS_FMT = "<QQQQQQQQQ"
_CP_STATUS_FMT = "<QQQQQQQQ"

_NAME_LEN = 32

#: Enforcement modes.  ``panic`` is the paper's behaviour (§3.1); the
#: others are this repo's §5 "cleanly handle forbidden accesses" work.
MODE_AUDIT = "audit"
MODE_PANIC = "panic"
MODE_EJECT = "eject"
MODE_ISOLATE = "isolate"
MODES = (MODE_AUDIT, MODE_PANIC, MODE_EJECT, MODE_ISOLATE)

#: Wire encoding of the modes for the ioctl protocol; code 4 on
#: CMD_SET_MODE_FOR clears a per-module override.
MODE_CODES = {0: MODE_AUDIT, 1: MODE_PANIC, 2: MODE_EJECT, 3: MODE_ISOLATE}
MODE_WIRE = {mode: code for code, mode in MODE_CODES.items()}
_CLEAR_MODE_CODE = 4

_REGION_FMT = "<QQI"  # base, length, prot
_STATS_FMT = "<QQQQQ"  # checks, allowed, denied, entries_scanned, regions

DEVICE_PATH = "/dev/carat"
MODULE_NAME = "carat_kop_policy"


class PolicyStats:
    __slots__ = ("checks", "allowed", "denied", "entries_scanned",
                 "comparisons", "structure_checks",
                 "intrinsic_checks", "intrinsic_denied",
                 "guard_cache_hits", "guard_cache_misses")

    def __init__(self) -> None:
        self.checks = 0
        self.allowed = 0
        self.denied = 0
        self.entries_scanned = 0
        # Comparisons actually performed by the policy structure (the
        # quantity abl1 compares): decision-cache hits charge scanned
        # entries for timing but perform no structure comparisons, so
        # ``comparisons / structure_checks`` is the operator-visible
        # mean cost of one real index walk (~n/2 linear, ~log2 n interval).
        self.comparisons = 0
        self.structure_checks = 0
        self.intrinsic_checks = 0
        self.intrinsic_denied = 0
        # Decision-cache traffic (only moves for pure_check indexes).
        self.guard_cache_hits = 0
        self.guard_cache_misses = 0

    def as_dict(self) -> dict[str, int]:
        return {s: getattr(self, s) for s in self.__slots__}


class _GuardCache:
    """Memoized guard decisions for one policy index.

    Valid only while the index's ``(epoch, default_allow)`` token and the
    policy's enforcement epoch are unchanged; any region add/remove/clear
    bumps the index epoch, and any enforcement-mode change (global or
    per-module) bumps the enforcement epoch — either way the next guard
    rebuilds from an empty dict.  Stores the full ``(allowed, scanned)``
    decision so the caller's stats and the machine model's per-entry
    guard cost are identical with and without the cache.
    """

    __slots__ = ("index", "epoch", "default_allow", "enforce_epoch",
                 "decisions")

    #: Safety valve for scan-everything workloads; steady-state driver
    #: loops touch a few dozen distinct (addr, size, flags) keys.
    MAX_ENTRIES = 1 << 16

    def __init__(self, index, enforce_epoch: int = 0):
        self.index = index
        self.epoch = index.epoch
        self.default_allow = index.default_allow
        self.enforce_epoch = enforce_epoch
        self.decisions: dict = {}


class CaratPolicyModule:
    """The policy module; one per kernel."""

    def __init__(
        self,
        kernel: Kernel,
        index=None,
        enforce: bool = True,
        mode: Optional[str] = None,
    ):
        self.kernel = kernel
        self.index = index if index is not None else RegionTable()
        if mode is None:
            mode = MODE_PANIC if enforce else MODE_AUDIT
        elif mode not in MODES:
            raise ValueError(f"unknown enforcement mode {mode!r}")
        #: Global enforcement mode; per-module overrides win over it.
        self.mode = mode
        self.module_modes: dict[str, str] = {}
        #: Per-module denied-access counts (every guard flavour, every
        #: mode — audit runs use this for the would-have-denied tally).
        self.violations: dict[str, int] = {}
        #: Bumped on any mode change; part of the guard cache's validity
        #: token, so stale decisions never outlive an enforcement switch.
        self._enforce_epoch = 0
        ncpus = kernel.smp.ncpus
        #: Per-CPU counters (DEFINE_PER_CPU style): each simulated CPU
        #: bumps only its own slot; :attr:`stats` merges on read.
        self._cpu_stats: PerCpu = PerCpu(ncpus, lambda cpu: PolicyStats())
        #: Per-CPU per-module guard traffic (name -> [checks, denied]).
        #: Separate from :class:`PolicyStats` so the SMP merge identity
        #: and the GET_STATS wire format are untouched; merged on read by
        #: :meth:`driver_stats` for the /proc views.
        self._cpu_module_stats: PerCpu = PerCpu(ncpus, lambda cpu: {})
        self.allowed_intrinsics: set[str] = set()
        #: Kernel symbols a module may call (paper §5 control-flow
        #: extension).  ``None`` = allow-all (the default, like stock
        #: CARAT KOP); a set = strict allowlist.
        self.allowed_calls: Optional[set[str]] = None
        #: Per-module region tables (paper §5: "a different policy table
        #: could be consulted" per module).  A module with an entry here
        #: is checked against ITS table; others use the global index.
        self.module_indexes: dict[str, object] = {}
        #: Guard-decision caches, per CPU and per pure-check index, keyed
        #: by ``id(index)`` (each cache holds a strong ref to its index,
        #: so ids cannot be reused while an entry is live; identity is
        #: re-verified on lookup anyway).  Per-CPU so the hot path never
        #: shares a dict between CPUs — the PR 2 epoch cache, sharded.
        self._guard_caches: PerCpu = PerCpu(ncpus, lambda cpu: {})
        # One-entry binding memo for the hot path, one per CPU: the last
        # index checked on that CPU and its cache (None for impure
        # indexes).  Re-resolved whenever a guard sees a different index.
        self._fast_index: PerCpu = PerCpu(ncpus, lambda cpu: None)
        self._fast_cache: PerCpu = PerCpu(ncpus, lambda cpu: None)
        #: RCU-published per-CPU ``(master, replica)`` slots for the
        #: global region table.  The guard reads its CPU's replica
        #: lock-free; ioctl mutations publish a fresh snapshot and wait a
        #: grace period before the old one is reclaimed.
        self._replicas: PerCpu = PerCpu(ncpus, lambda cpu: None)
        #: Attached :class:`repro.policy.controlplane.PolicyControlPlane`
        #: (``None`` = legacy single-namespace write path).  When set,
        #: the replica read path and mutation publishes delegate to it.
        self.controlplane = None
        self.replica_publishes = 0
        #: Lazy CPU-local rebuilds (master mutated without an RCU
        #: publish — e.g. a test poking ``policy.index`` directly).
        self.replica_refreshes = 0
        self._installed = False
        self._tp_deny = kernel.trace.points["guard:deny"]

    @property
    def stats(self) -> PolicyStats:
        """Merged counters across CPUs (the CPU-0 object itself on
        single-CPU kernels, so exact-count tests see the same object
        semantics as before the per-CPU split)."""
        cpu_stats = self._cpu_stats
        if len(cpu_stats) == 1:
            return cpu_stats[0]
        merged = PolicyStats()
        for s in cpu_stats:
            for field in PolicyStats.__slots__:
                setattr(merged, field, getattr(merged, field) + getattr(s, field))
        return merged

    def stats_per_cpu(self) -> list[dict[str, int]]:
        """Per-CPU counter breakdown (the /proc/carat per-CPU view)."""
        return [s.as_dict() for s in self._cpu_stats]

    def driver_stats(self) -> dict[str, dict[str, int]]:
        """Per-module guard traffic, merged across CPUs: which driver's
        loads/stores the guards are actually checking (and denying)."""
        merged: dict[str, list[int]] = {}
        for shard in self._cpu_module_stats:
            for name, counts in shard.items():
                m = merged.setdefault(name, [0, 0])
                m[0] += counts[0]
                m[1] += counts[1]
        return {
            name: {"checks": checks, "denied": denied}
            for name, (checks, denied) in sorted(merged.items())
        }

    def _record_violation(self, module_name: str, *, kind: str,
                          addr: int = 0, size: int = 0, flags: int = 0,
                          detail: str = "") -> None:
        """The single deny bookkeeping point: every guard flavour funnels
        its violation count (and the guard:deny tracepoint) through here."""
        self.violations[module_name] = self.violations.get(module_name, 0) + 1
        tp = self._tp_deny
        if tp.enabled:
            tp.emit(
                module=module_name,
                kind=kind,
                addr=addr,
                size=size,
                flags=flags,
                detail=detail,
            )

    # -- enforcement modes ----------------------------------------------------

    @property
    def enforce(self) -> bool:
        """Backwards-compatible view: enforcing means any non-audit mode.
        Assigning a bool selects panic (the paper default) or audit."""
        return self.mode != MODE_AUDIT

    @enforce.setter
    def enforce(self, value: bool) -> None:
        self._set_global_mode(MODE_PANIC if value else MODE_AUDIT)

    def _set_global_mode(self, mode: str) -> None:
        if mode not in MODES:
            raise ValueError(f"unknown enforcement mode {mode!r}")
        if mode != self.mode:
            self.mode = mode
            self._enforce_epoch += 1

    def set_mode(self, mode: str) -> None:
        """Switch the global enforcement mode (logged, unlike the legacy
        enforce flag, which stays silent for byte-compatible audit runs)."""
        previous = self.mode
        self._set_global_mode(mode)
        if self.mode != previous:
            self.kernel.dmesg(
                f"{MODULE_NAME}: enforcement mode {previous} -> {self.mode}"
            )

    def set_module_mode(self, module_name: str, mode: Optional[str]) -> None:
        """Set (or, with ``None``, clear) a per-module mode override."""
        if mode is None:
            if self.module_modes.pop(module_name, None) is not None:
                self._enforce_epoch += 1
                self.kernel.dmesg(
                    f"{MODULE_NAME}: mode override cleared for {module_name}"
                )
            return
        if mode not in MODES:
            raise ValueError(f"unknown enforcement mode {mode!r}")
        if self.module_modes.get(module_name) != mode:
            self.module_modes[module_name] = mode
            self._enforce_epoch += 1
            self.kernel.dmesg(
                f"{MODULE_NAME}: mode override {module_name} -> {mode}"
            )

    def mode_for(self, module_name: str) -> str:
        """The effective enforcement mode for a module."""
        if self.module_modes:
            return self.module_modes.get(module_name, self.mode)
        return self.mode

    def bump_guard_epoch(self) -> None:
        """Invalidate every per-CPU guard-decision cache.  The control
        plane calls this at stage/promote/rollback transitions: the
        master table's epoch does not move when the *composed* policy a
        CPU reads changes generation, so the enforcement epoch (already
        part of every cache's validity token) carries the bump."""
        self._enforce_epoch += 1

    # -- lifecycle ----------------------------------------------------------

    def install(self) -> "CaratPolicyModule":
        if self._installed:
            raise RuntimeError("policy module already installed")
        self.kernel.symbols.export_native(
            abi.GUARD_SYMBOL, self._guard, owner=MODULE_NAME, private=True
        )
        self.kernel.symbols.export_native(
            "carat_intrinsic_guard",
            self._intrinsic_guard,
            owner=MODULE_NAME,
            private=True,
        )
        self.kernel.symbols.export_native(
            "carat_call_guard",
            self._call_guard,
            owner=MODULE_NAME,
            private=True,
        )
        self.kernel.devices.register(DEVICE_PATH, self)
        self.kernel.carat_policy = self
        self.kernel.dmesg(
            f"{MODULE_NAME}: loaded (index={self.index.name}, "
            f"enforce={'on' if self.enforce else 'audit-only'})"
        )
        self._installed = True
        return self

    def uninstall(self) -> None:
        """Swap-out path (§3.2: guard implementations are swappable)."""
        if not self._installed:
            return
        self.kernel.retire_symbols(MODULE_NAME)
        self.kernel.devices.unregister(DEVICE_PATH)
        if self.kernel.carat_policy is self:
            self.kernel.carat_policy = None
        self.kernel.dmesg(f"{MODULE_NAME}: unloaded")
        self._installed = False

    # -- the guard (hot path) -------------------------------------------------

    def _bind_cache(self, index, cpu: int) -> Optional[_GuardCache]:
        """Resolve ``cpu``'s decision cache for ``index`` (``None`` if
        the index is impure) and memoize the binding for the next guard."""
        if getattr(index, "pure_check", False):
            caches = self._guard_caches[cpu]
            cache = caches.get(id(index))
            if cache is None or cache.index is not index:
                cache = _GuardCache(index, self._enforce_epoch)
                caches[id(index)] = cache
        else:
            cache = None
        self._fast_index[cpu] = index
        self._fast_cache[cpu] = cache
        return cache

    def _publish_replicas(self) -> None:
        """Write-side RCU discipline for region-table mutations: build a
        fresh immutable snapshot, publish it to every CPU, and reclaim
        the superseded replicas only after a full grace period (no
        reader can still hold them).  No-op for non-table indexes."""
        if self.controlplane is not None:
            # The control plane owns the replica surface: a master
            # mutation is a system-namespace change that recomposes and
            # publishes a fresh generation everywhere (preempting any
            # staged canary), keeping legacy ioctls immediately visible.
            self.controlplane.on_master_mutated()
            return
        index = self.index
        if not isinstance(index, RegionTable):
            return
        retired = [slot for slot in self._replicas if slot is not None]
        for cpu in self.kernel.smp.cpus():
            self._replicas[cpu] = (index, index.snapshot())
        self.replica_publishes += 1
        rcu = self.kernel.rcu
        if retired:
            rcu.call_rcu(retired.clear)
        rcu.synchronize()

    def _replica_check(self, index, cpu: int, addr: int, size: int,
                       flags: int):
        """Check against ``cpu``'s RCU replica when one applies.

        Only the global region table is replicated; per-module tables
        and non-table indexes go straight to the master.  A replica
        whose ``(master, epoch, default_allow)`` token mismatches the
        live master (someone mutated it without the ioctl write path)
        is rebuilt CPU-locally first.  Replica scans are byte-identical
        to master scans, so every simulated counter is unchanged."""
        if index is not self.index or not isinstance(index, RegionTable):
            return index.check(addr, size, flags)
        rcu = self.kernel.rcu
        cp = self.controlplane
        if cp is not None:
            # Composed multi-tenant policy: read this CPU's
            # generation-stamped slot (canary CPUs see the staged
            # generation; torn/partial slots are repaired before any
            # decision is served).
            rcu.read_lock(cpu)
            try:
                return cp.replica_for(cpu).check(addr, size, flags)
            finally:
                rcu.read_unlock(cpu)
        rcu.read_lock(cpu)
        try:
            slot = self._replicas[cpu]
            if (slot is None or slot[0] is not index
                    or slot[1].epoch != index.epoch
                    or slot[1].default_allow != index.default_allow):
                slot = (index, index.snapshot())
                self._replicas[cpu] = slot
                self.replica_refreshes += 1
            return slot[1].check(addr, size, flags)
        finally:
            rcu.read_unlock(cpu)

    def _guard(self, ctx, addr: int, size: int, flags: int,
               module_name: str = "?") -> int:
        """``carat_guard(addr, size, flags)``; returns entries scanned."""
        index = (
            self.module_indexes.get(module_name, self.index)
            if self.module_indexes else self.index
        )
        cpu = self.kernel.smp.current
        stats = self._cpu_stats[cpu]
        if index is self._fast_index[cpu]:
            cache = self._fast_cache[cpu]
        else:
            cache = self._bind_cache(index, cpu)
        if cache is not None:
            if (cache.epoch != index.epoch
                    or cache.default_allow != index.default_allow
                    or cache.enforce_epoch != self._enforce_epoch):
                cache.epoch = index.epoch
                cache.default_allow = index.default_allow
                cache.enforce_epoch = self._enforce_epoch
                cache.decisions.clear()
            key = (addr, size, flags)
            decision = cache.decisions.get(key)
            if decision is not None:
                stats.guard_cache_hits += 1
                allowed, scanned = decision
            else:
                stats.guard_cache_misses += 1
                allowed, scanned = self._replica_check(
                    index, cpu, addr, size, flags
                )
                stats.structure_checks += 1
                stats.comparisons += scanned
                if len(cache.decisions) >= cache.MAX_ENTRIES:
                    cache.decisions.clear()
                cache.decisions[key] = (allowed, scanned)
        else:
            allowed, scanned = self._replica_check(
                index, cpu, addr, size, flags
            )
            stats.structure_checks += 1
            stats.comparisons += scanned
        stats.checks += 1
        stats.entries_scanned += scanned
        mshard = self._cpu_module_stats[cpu]
        mstats = mshard.get(module_name)
        if mstats is None:
            mstats = mshard[module_name] = [0, 0]
        mstats[0] += 1
        if allowed:
            stats.allowed += 1
            return scanned
        stats.denied += 1
        mstats[1] += 1
        self._record_violation(
            module_name, kind="memory", addr=addr, size=size, flags=flags
        )
        self.kernel.dmesg(
            f"{MODULE_NAME}: DENY module={module_name} "
            f"{abi.flags_name(flags)} {addr:#018x} size={size}"
        )
        mode = self.mode_for(module_name)
        if mode == MODE_PANIC:
            violation = GuardViolation(addr, size, flags, f"module {module_name}")
            self.kernel.panicked = violation.reason
            self.kernel.dmesg(f"Kernel panic - not syncing: {violation.reason}")
            raise violation
        if mode != MODE_AUDIT:
            raise ViolationFault(addr, size, flags, module_name, mode)
        return scanned

    def _intrinsic_guard(self, ctx, name_ptr: int) -> int:
        """Guard for privileged intrinsics (paper §5 extension)."""
        name = self.kernel.address_space.read_cstring(int(name_ptr)).decode()
        module_name = (
            ctx.current_module.name
            if ctx is not None and ctx.current_module is not None
            else "?"
        )
        stats = self._cpu_stats[self.kernel.smp.current]
        stats.intrinsic_checks += 1
        if name in self.allowed_intrinsics:
            return 1
        stats.intrinsic_denied += 1
        self._record_violation(
            module_name, kind="intrinsic", flags=abi.FLAG_INTRINSIC,
            detail=name,
        )
        self.kernel.dmesg(
            f"{MODULE_NAME}: DENY-INTRINSIC module={module_name} {name}"
        )
        mode = self.mode_for(module_name)
        if mode == MODE_PANIC:
            violation = GuardViolation(
                0, 0, abi.FLAG_INTRINSIC, f"intrinsic {name} by {module_name}"
            )
            self.kernel.panicked = violation.reason
            self.kernel.dmesg(f"Kernel panic - not syncing: {violation.reason}")
            raise violation
        if mode != MODE_AUDIT:
            raise ViolationFault(
                0, 0, abi.FLAG_INTRINSIC, module_name, mode,
                detail=f"forbidden intrinsic {name} by module {module_name}",
            )
        return 1

    def _call_guard(self, ctx, name_ptr: int) -> int:
        """Guard for module->kernel calls (paper §5 control-flow extension)."""
        if self.allowed_calls is None:
            return 1  # allow-all mode
        name = self.kernel.address_space.read_cstring(int(name_ptr)).decode()
        if name in self.allowed_calls:
            return 1
        module_name = (
            ctx.current_module.name
            if ctx is not None and ctx.current_module is not None
            else "?"
        )
        self._record_violation(
            module_name, kind="call", flags=abi.FLAG_EXEC, detail=name
        )
        self.kernel.dmesg(
            f"{MODULE_NAME}: DENY-CALL module={module_name} -> {name}"
        )
        mode = self.mode_for(module_name)
        if mode == MODE_PANIC:
            violation = GuardViolation(
                0, 0, abi.FLAG_EXEC, f"call to {name} by {module_name}"
            )
            self.kernel.panicked = violation.reason
            self.kernel.dmesg(f"Kernel panic - not syncing: {violation.reason}")
            raise violation
        if mode != MODE_AUDIT:
            raise ViolationFault(
                0, 0, abi.FLAG_EXEC, module_name, mode,
                detail=f"forbidden call to {name} by module {module_name}",
            )
        return 1

    # -- ioctl interface ------------------------------------------------------

    def ioctl(self, cmd: int, arg: bytes, *, uid: int) -> bytes:
        if uid != 0:
            raise IoctlError(EPERM, "policy changes require root")
        if cmd == CMD_ADD_REGION:
            base, length, prot = self._unpack(_REGION_FMT, arg)
            try:
                idx = self.index.add(Region(base, length, prot))
            except PolicyTableFull as e:
                raise IoctlError(ENOSPC, str(e)) from e
            except ValueError as e:
                raise IoctlError(EINVAL, str(e)) from e
            self.kernel.dmesg(
                f"{MODULE_NAME}: region {idx} added "
                f"{Region(base, length, prot).describe()}"
            )
            self._publish_replicas()
            self.kernel.on_policy_mutated()
            return struct.pack("<I", idx)
        if cmd == CMD_DEL_REGION:
            base, length = self._unpack("<QQ", arg)
            ok = self.index.remove(base, length)
            if ok:
                self._publish_replicas()
                self.kernel.on_policy_mutated()
            return struct.pack("<I", int(ok))
        if cmd == CMD_CLEAR:
            self.index.clear()
            self._publish_replicas()
            self.kernel.on_policy_mutated()
            return b""
        if cmd == CMD_SET_DEFAULT:
            (flag,) = self._unpack("<I", arg)
            self.index.default_allow = bool(flag)
            self._publish_replicas()
            self.kernel.on_policy_mutated()
            return b""
        if cmd == CMD_SET_ENFORCE:
            (flag,) = self._unpack("<I", arg)
            self.enforce = bool(flag)
            return b""
        if cmd == CMD_GET_STATS:
            s = self.stats
            return struct.pack(
                _STATS_FMT, s.checks, s.allowed, s.denied,
                s.entries_scanned, len(self.index),
            )
        if cmd == CMD_GET_REGION:
            (idx,) = self._unpack("<I", arg)
            regions = self.index.regions()
            if idx >= len(regions):
                raise IoctlError(EINVAL, f"no region {idx}")
            r = regions[idx]
            return struct.pack(_REGION_FMT, r.base, r.length, r.prot)
        if cmd == CMD_COUNT:
            return struct.pack("<I", len(self.index))
        if cmd == CMD_ALLOW_INTRINSIC:
            self.allowed_intrinsics.add(self._decode_name(arg))
            return b""
        if cmd == CMD_DENY_INTRINSIC:
            self.allowed_intrinsics.discard(self._decode_name(arg))
            return b""
        if cmd == CMD_CALL_POLICY:
            (flag,) = self._unpack("<I", arg)
            self.allowed_calls = set() if flag else None
            return b""
        if cmd == CMD_ALLOW_CALL:
            if self.allowed_calls is None:
                self.allowed_calls = set()
            self.allowed_calls.add(self._decode_name(arg))
            return b""
        if cmd == CMD_DENY_CALL:
            if self.allowed_calls is not None:
                self.allowed_calls.discard(self._decode_name(arg))
            return b""
        if cmd == CMD_ADD_REGION_FOR:
            want = _NAME_LEN + struct.calcsize(_REGION_FMT)
            if len(arg) != want:
                raise IoctlError(EINVAL, f"expected {want}-byte payload")
            name = self._decode_name(arg[:_NAME_LEN])
            base, length, prot = struct.unpack(_REGION_FMT, arg[_NAME_LEN:])
            index = self.module_indexes.get(name)
            if index is None:
                index = RegionTable(default_allow=False)
                self.module_indexes[name] = index
            existing = index.overlapping(base, length)
            if existing is not None:
                # Namespace tables are single-writer allowlists: an
                # overlapping add is an operator error, not a priority
                # trick — reject it instead of leaning on first-match.
                raise IoctlError(
                    EEXIST,
                    f"region [{base:#x}, +{length:#x}) overlaps "
                    f"{existing.describe()} in {name}'s policy",
                )
            try:
                idx = index.add(Region(base, length, prot))
            except PolicyTableFull as e:
                raise IoctlError(ENOSPC, str(e)) from e
            except ValueError as e:
                raise IoctlError(EINVAL, str(e)) from e
            self.kernel.on_policy_mutated()
            return struct.pack("<I", idx)
        if cmd == CMD_CLEAR_FOR:
            self.module_indexes.pop(self._decode_name(arg), None)
            self.kernel.on_policy_mutated()
            return b""
        if cmd == CMD_SET_MODE:
            (code,) = self._unpack("<I", arg)
            mode = MODE_CODES.get(code)
            if mode is None:
                raise IoctlError(EINVAL, f"unknown mode code {code}")
            self.set_mode(mode)
            return b""
        if cmd == CMD_SET_MODE_FOR:
            want = _NAME_LEN + 4
            if len(arg) != want:
                raise IoctlError(EINVAL, f"expected {want}-byte payload")
            name = self._decode_name(arg[:_NAME_LEN])
            (code,) = struct.unpack("<I", arg[_NAME_LEN:])
            if code == _CLEAR_MODE_CODE:
                self.set_module_mode(name, None)
                return b""
            mode = MODE_CODES.get(code)
            if mode is None:
                raise IoctlError(EINVAL, f"unknown mode code {code}")
            self.set_module_mode(name, mode)
            return b""
        if cmd == CMD_GET_MODE:
            if len(arg) == 0:
                return struct.pack("<I", MODE_WIRE[self.mode])
            if len(arg) != _NAME_LEN:
                raise IoctlError(
                    EINVAL, f"expected empty or {_NAME_LEN}-byte payload"
                )
            name = self._decode_name(arg)
            return struct.pack("<I", MODE_WIRE[self.mode_for(name)])
        if cmd == CMD_GET_VIOLATIONS:
            name = self._decode_fixed_name(arg)
            return struct.pack("<Q", self.violations.get(name, 0))
        if cmd == CMD_UNQUARANTINE:
            name = self._decode_fixed_name(arg)
            return struct.pack("<I", int(self.kernel.unquarantine(name)))
        if cmd == CMD_TRACE_ENABLE:
            self.kernel.trace.enable()
            return b""
        if cmd == CMD_TRACE_DISABLE:
            self.kernel.trace.disable()
            return b""
        if cmd == CMD_TRACE_SNAPSHOT:
            ring = self.kernel.trace.ring_stats()
            return struct.pack(
                _TRACE_STAT_FMT, ring["stored"], ring["lost"], ring["total"]
            )
        if cmd == CMD_TRACE_RESET:
            self.kernel.trace.reset()
            return b""
        if cmd in (CMD_TENANT_CREATE, CMD_TENANT_DELETE, CMD_BATCH_MUTATE,
                   CMD_TENANT_STATS, CMD_CP_STATUS, CMD_CP_TICK):
            return self._cp_ioctl(cmd, arg)
        raise IoctlError(ENOTTY, f"unknown ioctl {cmd:#x}")

    def _cp_ioctl(self, cmd: int, arg: bytes) -> bytes:
        """Control-plane command dispatch (root already checked)."""
        from .controlplane import TenantQuota
        cp = self.controlplane
        if cp is None:
            raise IoctlError(ENOTTY, "no control plane attached")
        if cmd == CMD_TENANT_CREATE:
            want = _NAME_LEN + struct.calcsize(_TENANT_QUOTA_FMT)
            if len(arg) != want:
                raise IoctlError(EINVAL, f"expected {want}-byte payload")
            name = self._decode_name(arg[:_NAME_LEN])
            max_regions, max_rate, budget = struct.unpack(
                _TENANT_QUOTA_FMT, arg[_NAME_LEN:]
            )
            if min(max_regions, max_rate) < 1:
                raise IoctlError(EINVAL, "quota fields must be positive")
            cp.create_tenant(name, TenantQuota(
                max_regions=max_regions,
                max_mutations_per_window=max_rate,
                violation_budget=budget,
            ))
            return b""
        if cmd == CMD_TENANT_DELETE:
            cp.delete_tenant(self._decode_fixed_name(arg))
            return b""
        if cmd == CMD_BATCH_MUTATE:
            head = _NAME_LEN + 4
            op_size = struct.calcsize(_BATCH_OP_FMT)
            if len(arg) < head:
                raise IoctlError(EINVAL, "short batch header")
            name = self._decode_name(arg[:_NAME_LEN])
            (count,) = struct.unpack("<I", arg[_NAME_LEN:head])
            if len(arg) != head + count * op_size:
                raise IoctlError(
                    EINVAL,
                    f"batch declares {count} op(s) but payload holds "
                    f"{(len(arg) - head) // op_size}",
                )
            ops = [
                struct.unpack_from(_BATCH_OP_FMT, arg, head + i * op_size)
                for i in range(count)
            ]
            return struct.pack("<Q", cp.submit_batch(name, ops))
        if cmd == CMD_TENANT_STATS:
            t = cp.tenant(self._decode_fixed_name(arg)).stats()
            return struct.pack(
                _TENANT_STATS_FMT, t["generation"], t["regions"],
                t["batches_applied"], t["batches_promoted"],
                t["batches_rejected"], t["rollbacks"], t["quota_denials"],
                t["overlap_rejections"], t["mutations_window"],
            )
        if cmd == CMD_CP_STATUS:
            if arg:
                raise IoctlError(EINVAL, "expected empty payload")
            s = cp.status()
            return struct.pack(
                _CP_STATUS_FMT, s["generation"], s["staged_generation"],
                s["tenants"], s["promotions"], s["rollbacks"],
                s["publishes"], s["publish_retries"], s["replica_repairs"],
            )
        if cmd == CMD_CP_TICK:
            if arg:
                raise IoctlError(EINVAL, "expected empty payload")
            return struct.pack("<I", cp.tick())
        raise IoctlError(ENOTTY, f"unknown ioctl {cmd:#x}")

    @staticmethod
    def _decode_name(arg: bytes) -> str:
        """Copied-in name payloads come from user space: validate them."""
        try:
            return arg.rstrip(b"\x00").decode("utf-8")
        except UnicodeDecodeError as e:
            raise IoctlError(EINVAL, f"bad name payload: {e}") from e

    @classmethod
    def _decode_fixed_name(cls, arg: bytes) -> str:
        """The graceful-enforcement commands take exactly the NUL-padded
        fixed-size name struct — a short or oversized copy is a user-space
        bug, not something to silently accept."""
        if len(arg) != _NAME_LEN:
            raise IoctlError(
                EINVAL, f"expected {_NAME_LEN}-byte name payload, got {len(arg)}"
            )
        return cls._decode_name(arg)

    @staticmethod
    def _unpack(fmt: str, arg: bytes):
        want = struct.calcsize(fmt)
        if len(arg) != want:
            raise IoctlError(EINVAL, f"expected {want}-byte payload, got {len(arg)}")
        return struct.unpack(fmt, arg)


__all__ = [
    "CMD_ADD_REGION",
    "CMD_ALLOW_INTRINSIC",
    "CMD_BATCH_MUTATE",
    "CMD_CLEAR",
    "CMD_CP_STATUS",
    "CMD_CP_TICK",
    "CMD_COUNT",
    "CMD_DEL_REGION",
    "CMD_DENY_INTRINSIC",
    "CMD_GET_MODE",
    "CMD_GET_REGION",
    "CMD_GET_STATS",
    "CMD_GET_VIOLATIONS",
    "CMD_SET_DEFAULT",
    "CMD_SET_ENFORCE",
    "CMD_SET_MODE",
    "CMD_SET_MODE_FOR",
    "CMD_TENANT_CREATE",
    "CMD_TENANT_DELETE",
    "CMD_TENANT_STATS",
    "CMD_TRACE_DISABLE",
    "CMD_TRACE_ENABLE",
    "CMD_TRACE_RESET",
    "CMD_TRACE_SNAPSHOT",
    "CMD_UNQUARANTINE",
    "CaratPolicyModule",
    "DEVICE_PATH",
    "MODE_AUDIT",
    "MODE_CODES",
    "MODE_EJECT",
    "MODE_ISOLATE",
    "MODE_PANIC",
    "MODES",
    "MODE_WIRE",
    "MODULE_NAME",
    "PolicyStats",
]
