"""Policy mining: derive a practical region policy from an audit run.

The paper closes with "the many unresolved questions about ... the
creation of memory region policies that are both practical and secure"
(§1 contributions list; §5 asks for "a more scalable way to handle many
memory regions").  This module is our answer to the *practical* half:

1. run the module in **audit mode** (guards log instead of panic) under a
   representative workload;
2. record every (address, size, flags) the module touches;
3. coalesce the touched bytes into at most ``max_regions`` regions,
   merging the nearest-gap neighbours first and unioning their
   permission flags (merging is strictly permissive-upward: the mined
   policy always allows at least what was observed, never less);
4. install the result as a default-deny policy.

The mined policy is minimal-ish and *workload-complete*: replaying the
audit workload under enforcement triggers zero violations, while
everything the module never touched stays firewalled.
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import abi
from .manager import PolicyManager
from .module import CaratPolicyModule
from .region import Region
from .table import MAX_REGIONS


@dataclass
class AccessRecord:
    """One observed access during the audit run."""

    addr: int
    size: int
    flags: int


@dataclass
class MinedPolicy:
    """The result of a mining run."""

    regions: list[Region]
    observed_accesses: int
    observed_bytes: int
    #: Bytes the coalescing step allowed beyond what was observed
    #: (gap slack): the privacy/precision cost of the 64-region budget.
    slack_bytes: int = 0

    def install(self, manager: PolicyManager) -> None:
        """Install as a default-deny policy via the ioctl interface."""
        manager.clear()
        for r in self.regions:
            manager.add_region(r.base, r.length, r.prot)
        manager.set_default(False)

    def covers(self, addr: int, size: int, flags: int) -> bool:
        return any(
            r.covers(addr, size) and r.permits(flags) for r in self.regions
        )

    def describe(self) -> str:
        lines = [
            f"mined policy: {len(self.regions)} regions from "
            f"{self.observed_accesses} accesses "
            f"({self.observed_bytes} bytes touched, "
            f"{self.slack_bytes} bytes of merge slack)"
        ]
        lines += [f"  {r.describe()}" for r in self.regions]
        return "\n".join(lines)


class PolicyMiner:
    """Records guard traffic in audit mode and coalesces it into regions."""

    def __init__(self, policy: CaratPolicyModule, max_regions: int = MAX_REGIONS):
        if max_regions < 1:
            raise ValueError("need at least one region")
        self.policy = policy
        self.max_regions = max_regions
        self.records: list[AccessRecord] = []
        self._saved_enforce = True
        self._recording = False

    # -- recording ----------------------------------------------------------

    def __enter__(self) -> "PolicyMiner":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def start(self) -> None:
        """Begin recording: wrap the policy guard with a tap, audit-only."""
        if self._recording:
            raise RuntimeError("miner already recording")
        self._saved_enforce = self.policy.enforce
        self.policy.enforce = False
        kernel = self.policy.kernel
        original = self.policy._guard

        def tapped(ctx, addr, size, flags, module_name="?"):
            self.records.append(AccessRecord(int(addr), int(size), int(flags)))
            return original(ctx, addr, size, flags, module_name)

        # Swap the native binding (the §3.2 swappable-guard property at work).
        self._rebind_guards(kernel, tapped)
        self._recording = True

    def stop(self) -> None:
        if not self._recording:
            return
        self._rebind_guards(self.policy.kernel, self.policy._guard)
        self.policy.enforce = self._saved_enforce
        self._recording = False

    def _rebind_guards(self, kernel, memory_guard) -> None:
        """Re-export the policy module's symbols with ``memory_guard`` as
        the carat_guard implementation."""
        from .module import MODULE_NAME

        kernel.retire_symbols(MODULE_NAME)
        kernel.symbols.export_native(
            abi.GUARD_SYMBOL, memory_guard, owner=MODULE_NAME, private=True
        )
        kernel.symbols.export_native(
            "carat_intrinsic_guard", self.policy._intrinsic_guard,
            owner=MODULE_NAME, private=True,
        )
        kernel.symbols.export_native(
            "carat_call_guard", self.policy._call_guard,
            owner=MODULE_NAME, private=True,
        )

    # -- coalescing ------------------------------------------------------------

    def mine(self, page_align: bool = False) -> MinedPolicy:
        """Coalesce the recorded accesses into at most ``max_regions``."""
        if not self.records:
            return MinedPolicy(regions=[], observed_accesses=0, observed_bytes=0)
        # 1. Exact intervals with flags.
        intervals: list[tuple[int, int, int]] = []  # (start, end, flags)
        for rec in self.records:
            start, end = rec.addr, rec.addr + max(rec.size, 1)
            if page_align:
                start &= ~0xFFF
                end = (end + 0xFFF) & ~0xFFF
            intervals.append((start, end, rec.flags))
        intervals.sort()
        # 2. Merge overlapping/adjacent intervals, unioning flags.
        merged: list[list[int]] = []
        for start, end, flags in intervals:
            if merged and start <= merged[-1][1]:
                merged[-1][1] = max(merged[-1][1], end)
                merged[-1][2] |= flags
            else:
                merged.append([start, end, flags])
        observed_bytes = sum(e - s for s, e, _ in merged)
        # 3. Reduce to the region budget by repeatedly closing the
        #    smallest gap between neighbours (a classic 1-D clustering).
        slack = 0
        while len(merged) > self.max_regions:
            gaps = [
                (merged[i + 1][0] - merged[i][1], i)
                for i in range(len(merged) - 1)
            ]
            gap, i = min(gaps)
            slack += gap
            merged[i][1] = merged[i + 1][1]
            merged[i][2] |= merged[i + 1][2]
            del merged[i + 1]
        regions = [Region(s, e - s, f) for s, e, f in merged]
        return MinedPolicy(
            regions=regions,
            observed_accesses=len(self.records),
            observed_bytes=observed_bytes,
            slack_bytes=slack,
        )

    def reset(self) -> None:
        self.records.clear()


__all__ = ["AccessRecord", "MinedPolicy", "PolicyMiner"]
