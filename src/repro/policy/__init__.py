"""Policy: region tables, alternative indexes, the policy module, manager."""

from .manager import PolicyManager
from .miner import AccessRecord, MinedPolicy, PolicyMiner
from .module import (
    MODE_AUDIT,
    MODE_EJECT,
    MODE_ISOLATE,
    MODE_PANIC,
    MODES,
    CaratPolicyModule,
    PolicyStats,
)
from .interval import IntervalRegionTable, IntervalTableReplica
from .region import Decision, Region
from .structures import (
    AMQFilterIndex,
    BloomFilter,
    CachedIndex,
    LSHBucketIndex,
    OverlapError,
    STRUCTURES,
    SortedRegionIndex,
    SplayRegionIndex,
    make_index,
)
from .table import MAX_REGIONS, PolicyTableFull, RegionTable, RegionTableReplica

__all__ = [
    "AMQFilterIndex",
    "AccessRecord",
    "MinedPolicy",
    "PolicyMiner",
    "BloomFilter",
    "CachedIndex",
    "CaratPolicyModule",
    "Decision",
    "IntervalRegionTable",
    "IntervalTableReplica",
    "LSHBucketIndex",
    "MAX_REGIONS",
    "MODES",
    "MODE_AUDIT",
    "MODE_EJECT",
    "MODE_ISOLATE",
    "MODE_PANIC",
    "OverlapError",
    "PolicyManager",
    "PolicyStats",
    "PolicyTableFull",
    "Region",
    "RegionTable",
    "RegionTableReplica",
    "STRUCTURES",
    "SortedRegionIndex",
    "SplayRegionIndex",
    "make_index",
]
