"""Policy: region tables, alternative indexes, the policy module, manager."""

from .controlplane import (
    OP_ADD,
    OP_DEL,
    ControlPlaneConfig,
    ControlPlaneError,
    PolicyControlPlane,
    Tenant,
    TenantQuota,
)
from .manager import PolicyManager
from .miner import AccessRecord, MinedPolicy, PolicyMiner
from .module import (
    MODE_AUDIT,
    MODE_EJECT,
    MODE_ISOLATE,
    MODE_PANIC,
    MODES,
    CaratPolicyModule,
    PolicyStats,
)
from .interval import IntervalRegionTable, IntervalTableReplica
from .region import Decision, Region
from .structures import (
    AMQFilterIndex,
    BloomFilter,
    CachedIndex,
    LSHBucketIndex,
    OverlapError,
    STRUCTURES,
    SortedRegionIndex,
    SplayRegionIndex,
    make_index,
)
from .table import MAX_REGIONS, PolicyTableFull, RegionTable, RegionTableReplica

__all__ = [
    "AMQFilterIndex",
    "AccessRecord",
    "MinedPolicy",
    "PolicyMiner",
    "BloomFilter",
    "CachedIndex",
    "CaratPolicyModule",
    "ControlPlaneConfig",
    "ControlPlaneError",
    "Decision",
    "IntervalRegionTable",
    "IntervalTableReplica",
    "LSHBucketIndex",
    "MAX_REGIONS",
    "MODES",
    "MODE_AUDIT",
    "MODE_EJECT",
    "MODE_ISOLATE",
    "MODE_PANIC",
    "OP_ADD",
    "OP_DEL",
    "OverlapError",
    "PolicyControlPlane",
    "PolicyManager",
    "PolicyStats",
    "PolicyTableFull",
    "Region",
    "Tenant",
    "TenantQuota",
    "RegionTable",
    "RegionTableReplica",
    "STRUCTURES",
    "SortedRegionIndex",
    "SplayRegionIndex",
    "make_index",
]
