"""Resilient multi-tenant policy control plane.

The paper's policy plane is one manager mutating one table over
synchronous ioctls that either succeed or panic.  This module is the
write/publish path grown a failure model:

- **Tenant namespaces with quotas.**  Each tenant owns a private region
  namespace (region-count quota via its namespace table's capacity,
  mutation-rate quota per tick window, violation budget per canary
  window).  The *effective* policy the guard sees is the composition of
  every tenant's regions (tenant-creation order, first-match priority)
  followed by the system regions in the master table, under the master's
  default.

- **Transactional batches.**  A batch of adds/deletes applies
  all-or-nothing by generalizing the PR 3 kernel transaction journal to
  policy state: every applied op records a ``policy`` journal entry
  carrying its exact structural inverse, and any mid-batch failure
  (quota, overlap, injected torn-batch fault) rolls the journal back
  through the same path module ejection uses.  The master table and the
  published replicas are never touched mid-batch, so a torn batch is
  unobservable from the guard path by construction.

- **Generation-versioned staged rollout.**  A successful batch composes
  a new snapshot, stamps it with generation ``G = current + 1``, and
  publishes it to a *canary* subset of the per-CPU replica slots only.
  The canary window advances on canary replica reads and on explicit
  ticks; if the deny rate stays inside the staging tenant's violation
  budget the generation is promoted (published everywhere, journal
  records dropped), otherwise it is **auto-rolled back**: journal undo
  restores the tenant namespace, the canary slots are re-published with
  the current generation, and every -O3 module with elided guards is
  eagerly re-demoted via ``kernel.on_policy_mutated()``.

- **Hardened publish path.**  ``_publish`` is a watchdog loop: injected
  dropped per-CPU publishes and stalled grace periods are detected
  (per-replica generation stamps) and retried with bounded exponential
  backoff; exhaustion either fails the stage (auto-rollback) or — for
  promotes and rollbacks, which must complete — force-installs the
  slots (roll-forward).  Replica corruption is caught on the read path
  by canonical-object identity (a stamp can be torn *with* the payload,
  so the stamp alone is not trusted) and repaired in place before any
  decision is served.

Rollbacks do not consume generation numbers, so a chaos run and a
fault-free run converge to identical generation sequences and identical
composed policy — the property the acceptance grid asserts.
"""

from __future__ import annotations

import hashlib
import struct
from typing import TYPE_CHECKING, Optional

from ..kernel.chardev import (
    EAGAIN, EBUSY, EDQUOT, EEXIST, EINVAL, EIO, ENOENT, ENOSPC, IoctlError,
)
from .region import Region
from .table import PolicyTableFull, RegionTable

if TYPE_CHECKING:  # pragma: no cover
    from ..kernel.kernel import Kernel
    from .module import CaratPolicyModule

#: Batch-op wire codes (CMD_BATCH_MUTATE payload entries).
OP_ADD = 0
OP_DEL = 1

#: Journal owner prefix for batch transactions; ``/proc/journal`` shows
#: in-flight batches under this name like any module's side effects.
_OWNER_PREFIX = "policy:"


class ControlPlaneError(IoctlError):
    """An errno-carrying control-plane failure (subset of IoctlError so
    the ioctl surface re-raises it unchanged)."""


class TenantQuota:
    """Per-tenant resource limits."""

    __slots__ = ("max_regions", "max_mutations_per_window",
                 "violation_budget")

    def __init__(self, max_regions: int = 256,
                 max_mutations_per_window: int = 1024,
                 violation_budget: int = 64):
        self.max_regions = max_regions
        self.max_mutations_per_window = max_mutations_per_window
        self.violation_budget = violation_budget

    def as_dict(self) -> dict[str, int]:
        return {s: getattr(self, s) for s in self.__slots__}


class Tenant:
    """One policy namespace: a private region table plus usage counters.

    The namespace table is bookkeeping only — the guard never reads it;
    its regions reach the guard via composed generation snapshots.  Its
    capacity *is* the region-count quota (``PolicyTableFull`` on add
    maps to ``-EDQUOT``)."""

    __slots__ = ("name", "quota", "table", "generation",
                 "batches_applied", "batches_promoted", "batches_rejected",
                 "rollbacks", "mutations_window", "quota_denials",
                 "overlap_rejections")

    def __init__(self, name: str, quota: TenantQuota):
        self.name = name
        self.quota = quota
        self.table = RegionTable(default_allow=False,
                                 max_regions=quota.max_regions)
        #: Last generation that published this tenant's state.
        self.generation = 0
        self.batches_applied = 0
        self.batches_promoted = 0
        self.batches_rejected = 0
        self.rollbacks = 0
        self.mutations_window = 0
        self.quota_denials = 0
        self.overlap_rejections = 0

    def stats(self) -> dict[str, int]:
        return {
            "generation": self.generation,
            "regions": len(self.table),
            "batches_applied": self.batches_applied,
            "batches_promoted": self.batches_promoted,
            "batches_rejected": self.batches_rejected,
            "rollbacks": self.rollbacks,
            "mutations_window": self.mutations_window,
            "quota_denials": self.quota_denials,
            "overlap_rejections": self.overlap_rejections,
        }


class ControlPlaneConfig:
    """Tunables for staging windows and the publish watchdog."""

    __slots__ = ("canary_cpus", "canary_window", "canary_tick_limit",
                 "publish_max_retries", "backoff_base_us", "backoff_cap_us",
                 "rate_window_ticks", "max_total_regions")

    def __init__(self, canary_cpus: int = 1, canary_window: int = 16,
                 canary_tick_limit: int = 4, publish_max_retries: int = 6,
                 backoff_base_us: float = 100.0,
                 backoff_cap_us: float = 10_000.0,
                 rate_window_ticks: int = 8,
                 max_total_regions: int = 8192):
        self.canary_cpus = canary_cpus
        self.canary_window = canary_window
        self.canary_tick_limit = canary_tick_limit
        self.publish_max_retries = publish_max_retries
        self.backoff_base_us = backoff_base_us
        self.backoff_cap_us = backoff_cap_us
        self.rate_window_ticks = rate_window_ticks
        self.max_total_regions = max_total_regions


class _TornReplica:
    """What a corrupted per-CPU slot holds.  Its generation stamp still
    matches (a torn write can tear the payload without tearing the
    stamp), so detection must not trust the stamp — the read path
    compares canonical-object identity instead.  ``check`` raising is
    the tripwire: if repair ever misses, the guard path fails loudly
    rather than silently diverging."""

    __slots__ = ("epoch",)

    def __init__(self) -> None:
        self.epoch = -1

    def check(self, addr: int, size: int, flags: int):
        raise RuntimeError(
            "torn policy replica observed on the guard path "
            "(control-plane repair failed)"
        )


class _Staged:
    """One canary generation in flight."""

    __slots__ = ("gen", "tenant", "snapshot", "canary", "window",
                 "tick_limit", "reads", "ticks", "violations_base", "owner")

    def __init__(self, gen: int, tenant: Tenant, snapshot, canary: tuple,
                 window: int, tick_limit: int, violations_base: int,
                 owner: str):
        self.gen = gen
        self.tenant = tenant
        self.snapshot = snapshot
        self.canary = canary
        self.window = window
        self.tick_limit = tick_limit
        self.reads = 0
        self.ticks = 0
        self.violations_base = violations_base
        self.owner = owner


class PolicyControlPlane:
    """The write/publish side of the policy plane, made crash-consistent.

    Attach one to a :class:`CaratPolicyModule` and the module delegates
    its replica read path and its legacy mutation publishes here; the
    batch/stage/promote/rollback surface is reachable both directly and
    through the ``CMD_TENANT_*``/``CMD_BATCH_MUTATE``/``CMD_CP_*``
    ioctls.
    """

    def __init__(self, kernel: "Kernel", policy: "CaratPolicyModule",
                 config: Optional[ControlPlaneConfig] = None,
                 injector=None):
        self.kernel = kernel
        self.policy = policy
        self.config = config or ControlPlaneConfig()
        #: Fault injector with control-plane hooks (``drop_publish``,
        #: ``publish_stall``, ``corrupt_replica``, ``torn_batch``,
        #: ``quota_race``); ``None`` = fault-free.
        self.injector = injector
        self.tenants: dict[str, Tenant] = {}
        #: Current (fully promoted) generation and its composed snapshot.
        self.generation = 0
        self._current = None
        #: Per-CPU ``(generation_stamp, snapshot)`` slots — the replica
        #: surface the guard reads through :meth:`replica_for`.
        ncpus = kernel.smp.ncpus
        self._slots: list = [None] * ncpus
        self._staged: Optional[_Staged] = None
        self._ticks = 0
        # -- counters (all operator-visible via /proc/carat) --
        self.batches = 0
        self.batch_ops = 0
        self.torn_batches = 0
        self.quota_races = 0
        self.promotions = 0
        self.rollback_records: list[dict] = []
        self.publishes = 0
        self.publish_retries = 0
        self.publish_failures = 0
        self.forced_publishes = 0
        self.replica_repairs = 0
        self.backoff_us_total = 0.0
        self.max_backoff_us = 0.0
        points = kernel.trace.points
        self._tp_batch = points["cp:batch"]
        self._tp_stage = points["cp:stage"]
        self._tp_promote = points["cp:promote"]
        self._tp_rollback = points["cp:rollback"]
        self._tp_retry = points["cp:publish_retry"]
        self._tp_repair = points["cp:replica_repair"]

    # -- lifecycle ----------------------------------------------------------

    def attach(self) -> "PolicyControlPlane":
        """Take over the policy module's publish/read paths: compose
        generation 1 from the current master table and publish it to
        every CPU."""
        if self.policy.controlplane is self:
            return self
        if self.policy.controlplane is not None:
            raise RuntimeError("policy module already has a control plane")
        self.generation = 1
        self._current = self._compose(self.generation)
        self._publish(self._current, self.generation,
                      self.kernel.smp.cpus(), force_on_exhaust=True)
        self.policy.controlplane = self
        self.policy.bump_guard_epoch()
        self.kernel.dmesg(
            f"carat_cp: control plane attached (generation 1, "
            f"{self.kernel.smp.ncpus} replica slot(s))"
        )
        return self

    def detach(self) -> None:
        if self.policy.controlplane is self:
            self.policy.controlplane = None
            self.policy.bump_guard_epoch()

    # -- tenants ------------------------------------------------------------

    def create_tenant(self, name: str,
                      quota: Optional[TenantQuota] = None) -> Tenant:
        if not name or len(name.encode()) > 32:
            raise ControlPlaneError(
                EINVAL, "tenant name must be 1..32 bytes")
        if name in self.tenants:
            raise ControlPlaneError(EEXIST, f"tenant {name!r} exists")
        tenant = Tenant(name, quota or TenantQuota())
        self.tenants[name] = tenant
        self.kernel.dmesg(
            f"carat_cp: tenant {name} created "
            f"(max_regions={tenant.quota.max_regions})"
        )
        return tenant

    def delete_tenant(self, name: str) -> None:
        tenant = self.tenants.get(name)
        if tenant is None:
            raise ControlPlaneError(ENOENT, f"no tenant {name!r}")
        if self._staged is not None and self._staged.tenant is tenant:
            raise ControlPlaneError(
                EBUSY, f"tenant {name!r} has a staged generation")
        had_regions = len(tenant.table) > 0
        del self.tenants[name]
        self.kernel.dmesg(f"carat_cp: tenant {name} deleted")
        if had_regions:
            # The composition changed; publish a new generation now.
            self._advance_generation()

    def tenant(self, name: str) -> Tenant:
        tenant = self.tenants.get(name)
        if tenant is None:
            raise ControlPlaneError(ENOENT, f"no tenant {name!r}")
        return tenant

    # -- transactional batches ----------------------------------------------

    def submit_batch(self, name: str, ops: list[tuple]) -> int:
        """Apply ``ops`` (``(OP_ADD, base, length, prot)`` /
        ``(OP_DEL, base, length, 0)``) to ``name``'s namespace
        all-or-nothing, then stage the composed result as a canary
        generation.  Returns the staged generation number.

        Any failure mid-apply rolls the journal back and raises with the
        op's errno; the namespace, the master table, and every published
        replica are exactly as before the call.
        """
        tenant = self.tenant(name)
        if self._staged is not None:
            raise ControlPlaneError(
                EBUSY,
                f"generation {self._staged.gen} is staged by tenant "
                f"{self._staged.tenant.name!r}; tick to completion first",
            )
        if not ops:
            raise ControlPlaneError(EINVAL, "empty batch")
        if (tenant.mutations_window + len(ops)
                > tenant.quota.max_mutations_per_window):
            tenant.quota_denials += 1
            raise ControlPlaneError(
                EDQUOT,
                f"tenant {name!r} mutation-rate quota exceeded "
                f"({tenant.mutations_window}+{len(ops)} > "
                f"{tenant.quota.max_mutations_per_window} per window)",
            )
        owner = _OWNER_PREFIX + name
        self.batches += 1
        try:
            self._apply_ops(tenant, owner, ops)
        except IoctlError:
            self.kernel.journal.rollback(owner, self.kernel)
            tenant.batches_rejected += 1
            raise
        tenant.mutations_window += len(ops)
        tenant.batches_applied += 1
        self.batch_ops += len(ops)
        if self._tp_batch.enabled:
            self._tp_batch.emit(tenant=name, ops=len(ops),
                                regions=len(tenant.table))
        inj = self.injector
        if inj is not None and inj.quota_race():
            # Quota-race storm: a racing duplicate of the same batch must
            # fail cleanly against the state the batch just created and
            # leave nothing behind.
            self.quota_races += 1
            race_owner = _OWNER_PREFIX + "#race"
            try:
                self._apply_ops(tenant, race_owner, ops)
            except IoctlError:
                self.kernel.journal.drop(race_owner)
            else:  # pragma: no cover - defensive (dup adds always EEXIST)
                self.kernel.journal.rollback(race_owner, self.kernel)
        return self._stage(tenant, owner)

    def _apply_ops(self, tenant: Tenant, owner: str, ops: list[tuple]) -> None:
        """Apply ops to the namespace table, journaling an exact
        structural inverse per op.  Raises on the first bad op (caller
        rolls back)."""
        journal = self.kernel.journal
        table = tenant.table
        inj = self.injector
        for seq, op in enumerate(ops):
            try:
                kind, base, length, prot = op
            except (TypeError, ValueError) as e:
                raise ControlPlaneError(EINVAL, f"malformed op {seq}") from e
            if inj is not None and inj.torn_batch():
                self.torn_batches += 1
                raise ControlPlaneError(
                    EIO, f"batch torn at op {seq} (injected fault)")
            if kind == OP_ADD:
                if table.overlapping(base, length) is not None:
                    tenant.overlap_rejections += 1
                    raise ControlPlaneError(
                        EEXIST,
                        f"op {seq}: [{base:#x}, +{length:#x}) overlaps an "
                        f"existing region in tenant {tenant.name!r}",
                    )
                try:
                    region = Region(base, length, prot)
                    idx = table.add(region)
                except PolicyTableFull as e:
                    tenant.quota_denials += 1
                    raise ControlPlaneError(EDQUOT, str(e)) from e
                except ValueError as e:
                    raise ControlPlaneError(EINVAL, str(e)) from e
                journal.record(
                    owner, "policy", (tenant.name, seq), op="add",
                    undo=self._undo_add(table, idx, region),
                )
            elif kind == OP_DEL:
                idx = next(
                    (i for i, r in enumerate(table._regions)
                     if r.base == base and r.length == length), None,
                )
                if idx is None:
                    raise ControlPlaneError(
                        ENOENT,
                        f"op {seq}: no region [{base:#x}, +{length:#x}) "
                        f"in tenant {tenant.name!r}",
                    )
                region = table._regions[idx]
                del table._regions[idx]
                table.epoch += 1
                journal.record(
                    owner, "policy", (tenant.name, seq), op="del",
                    undo=self._undo_del(table, idx, region),
                )
            else:
                raise ControlPlaneError(EINVAL, f"op {seq}: unknown kind {kind}")

    @staticmethod
    def _undo_add(table: RegionTable, idx: int, region: Region):
        """Exact inverse of an append.  Rollback is LIFO, so at undo time
        ``idx`` is again the region's live position; removing by position
        (not by (base, length) match) restores the precise table order —
        order is first-match priority, so it is part of policy state."""
        def undo() -> None:
            if idx < len(table._regions) and table._regions[idx] is region:
                del table._regions[idx]
                table.epoch += 1
        return undo

    @staticmethod
    def _undo_del(table: RegionTable, idx: int, region: Region):
        def undo() -> None:
            table._regions.insert(idx, region)
            table.epoch += 1
        return undo

    # -- composition ----------------------------------------------------------

    def _compose(self, gen: int):
        """Build the effective policy snapshot for generation ``gen``:
        tenant regions (creation order) then system regions, in a table
        of the master's own structure so interval-index deployments get
        interval-index composed checks.  The snapshot's ``epoch`` is the
        generation stamp."""
        master = self.policy.index
        regions: list[Region] = []
        for tenant in self.tenants.values():
            regions.extend(tenant.table._regions)
        regions.extend(master.regions())
        if len(regions) > self.config.max_total_regions:
            raise ControlPlaneError(
                ENOSPC,
                f"composed policy would hold {len(regions)} regions "
                f"(cap {self.config.max_total_regions})",
            )
        table = type(master)(
            default_allow=master.default_allow,
            max_regions=max(len(regions), 1),
        )
        for r in regions:
            table.add(r)
        table.epoch = gen
        return table.snapshot()

    def composed_digest(self) -> str:
        """Content digest of the current generation (guard-visible
        policy), structure-independent like ``RegionTable.digest``."""
        snap = self._current
        h = hashlib.sha256()
        h.update(f"gen={self.generation};".encode())
        if snap is not None:
            for r in snap.regions():
                h.update(f"{r.base:x}|{r.length:x}|{r.prot:x};".encode())
            h.update(f"default={int(snap.default_allow)}".encode())
        return h.hexdigest()

    # -- staged rollout -------------------------------------------------------

    def _canary_cpus(self) -> tuple:
        n = max(1, min(self.config.canary_cpus, self.kernel.smp.ncpus))
        return tuple(range(n))

    def _stage(self, tenant: Tenant, owner: str) -> int:
        gen = self.generation + 1
        try:
            snapshot = self._compose(gen)
        except IoctlError:
            self.kernel.journal.rollback(owner, self.kernel)
            tenant.batches_rejected += 1
            raise
        canary = self._canary_cpus()
        if not self._publish(snapshot, gen, canary):
            # Canary publish exhausted its retries: auto-rollback.
            self._rollback(tenant, owner, gen, "canary publish failed")
            raise ControlPlaneError(
                EAGAIN,
                f"generation {gen} canary publish failed after "
                f"{self.config.publish_max_retries} attempts; rolled back",
            )
        self._staged = _Staged(
            gen, tenant, snapshot, canary,
            window=self.config.canary_window,
            tick_limit=self.config.canary_tick_limit,
            violations_base=self._total_violations(),
            owner=owner,
        )
        # Canary CPUs now read gen; invalidate their cached decisions.
        self.policy.bump_guard_epoch()
        self.kernel.on_policy_mutated()
        if self._tp_stage.enabled:
            self._tp_stage.emit(generation=gen, tenant=tenant.name,
                                canary_cpus=len(canary),
                                regions=len(snapshot))
        self.kernel.dmesg(
            f"carat_cp: generation {gen} staged by {tenant.name} "
            f"(canary cpus {list(canary)}, {len(snapshot)} regions)"
        )
        return gen

    def _total_violations(self) -> int:
        return sum(self.policy.violations.values())

    def tick(self) -> int:
        """Advance control-plane time: close rate windows and drive the
        staged generation's canary window.  Returns 0 (no transition),
        1 (promoted), or 2 (auto-rolled back)."""
        self._ticks += 1
        if self._ticks % self.config.rate_window_ticks == 0:
            for tenant in self.tenants.values():
                tenant.mutations_window = 0
        staged = self._staged
        if staged is None:
            return 0
        staged.ticks += 1
        denies = self._total_violations() - staged.violations_base
        if denies > staged.tenant.quota.violation_budget:
            self._staged = None
            self._rollback(
                staged.tenant, staged.owner, staged.gen,
                f"violation budget exceeded ({denies} denies > "
                f"{staged.tenant.quota.violation_budget} in canary window)",
            )
            return 2
        if (staged.reads >= staged.window
                or staged.ticks >= staged.tick_limit):
            self._promote(staged)
            return 1
        return 0

    def _promote(self, staged: _Staged) -> None:
        self._staged = None
        # Promotes must complete: after retries, roll forward by force so
        # no CPU is left on the old generation.
        self._publish(staged.snapshot, staged.gen, self.kernel.smp.cpus(),
                      force_on_exhaust=True)
        self._current = staged.snapshot
        self.generation = staged.gen
        tenant = staged.tenant
        tenant.generation = staged.gen
        tenant.batches_promoted += 1
        self.kernel.journal.drop(staged.owner)
        self.promotions += 1
        self.policy.bump_guard_epoch()
        self.kernel.on_policy_mutated()
        if self._tp_promote.enabled:
            self._tp_promote.emit(generation=staged.gen, tenant=tenant.name,
                                  canary_reads=staged.reads,
                                  canary_ticks=staged.ticks)
        self.kernel.dmesg(
            f"carat_cp: generation {staged.gen} promoted "
            f"(tenant {tenant.name}, {staged.reads} canary reads, "
            f"{staged.ticks} ticks)"
        )

    def _rollback(self, tenant: Tenant, owner: str, gen: int,
                  reason: str) -> None:
        """Withdraw a staged generation: journal-undo the namespace ops,
        restore the canary slots to the current generation, and eagerly
        re-demote every -O3 module verified against the staged policy."""
        summary = self.kernel.journal.rollback(owner, self.kernel)
        # Rollbacks must complete; force the restore if faults persist.
        self._publish(self._current, self.generation, self._canary_cpus(),
                      force_on_exhaust=True)
        tenant.rollbacks += 1
        record = {
            "generation": gen,
            "tenant": tenant.name,
            "reason": reason,
            "policy_ops": summary["policy_ops"],
        }
        self.rollback_records.append(record)
        self.policy.bump_guard_epoch()
        self.kernel.on_policy_mutated()
        if self._tp_rollback.enabled:
            self._tp_rollback.emit(generation=gen, tenant=tenant.name,
                                   reason=reason,
                                   policy_ops=summary["policy_ops"])
        self.kernel.dmesg(
            f"carat_cp: generation {gen} ROLLED BACK (tenant {tenant.name}: "
            f"{reason}; {summary['policy_ops']} op(s) undone)"
        )

    # -- publish watchdog -----------------------------------------------------

    def _publish(self, snapshot, gen: int, cpus, *,
                 force_on_exhaust: bool = False) -> bool:
        """Install ``(gen, snapshot)`` in the given per-CPU slots behind a
        grace period, retrying dropped installs and stalled grace periods
        with bounded exponential backoff.  Backoff is modeled in the
        counters (total/max simulated µs) rather than the kernel clock so
        a watchdog wait never fires unrelated timers."""
        inj = self.injector
        cpus = list(cpus)
        backoff = self.config.backoff_base_us
        for attempt in range(1, self.config.publish_max_retries + 1):
            dropped = []
            for cpu in cpus:
                if inj is not None and inj.drop_publish(cpu):
                    dropped.append(cpu)
                    continue
                self._slots[cpu] = (gen, snapshot)
            stalled = inj is not None and inj.publish_stall()
            if not stalled:
                self.kernel.rcu.synchronize()
            if not dropped and not stalled:
                self.publishes += 1
                self.policy.replica_publishes += 1
                if inj is not None:
                    for cpu in cpus:
                        if inj.corrupt_replica(cpu):
                            # Torn write: the stamp lands, the payload
                            # doesn't.  The read path repairs it.
                            self._slots[cpu] = (gen, _TornReplica())
                return True
            # Watchdog: the publish is partial (per-replica stamps show
            # which CPUs missed it) or the grace period stalled.  Back
            # off and retry the whole install.
            self.publish_retries += 1
            self.backoff_us_total += backoff
            self.max_backoff_us = max(self.max_backoff_us, backoff)
            if self._tp_retry.enabled:
                self._tp_retry.emit(generation=gen, attempt=attempt,
                                    backoff_us=backoff,
                                    dropped=len(dropped),
                                    stalled=int(stalled))
            backoff = min(backoff * 2.0, self.config.backoff_cap_us)
        if force_on_exhaust:
            for cpu in cpus:
                self._slots[cpu] = (gen, snapshot)
            self.kernel.rcu.synchronize()
            self.forced_publishes += 1
            self.publishes += 1
            self.policy.replica_publishes += 1
            return True
        self.publish_failures += 1
        return False

    def on_master_mutated(self) -> None:
        """Legacy write path (global-table ioctls) with a control plane
        attached: the composition changed under us.  A staged canary is
        preempted (auto-rolled back) and a fresh generation is published
        synchronously everywhere — the legacy ioctls keep their
        immediate-visibility semantics."""
        staged = self._staged
        if staged is not None:
            self._staged = None
            self._rollback(staged.tenant, staged.owner, staged.gen,
                           "preempted by system policy mutation")
        self._advance_generation()

    def _advance_generation(self) -> None:
        gen = self.generation + 1
        snapshot = self._compose(gen)
        self._publish(snapshot, gen, self.kernel.smp.cpus(),
                      force_on_exhaust=True)
        self._current = snapshot
        self.generation = gen
        self.promotions += 1
        self.policy.bump_guard_epoch()

    # -- the guard-facing read path -------------------------------------------

    def replica_for(self, cpu: int):
        """The snapshot ``cpu`` must read this instant (caller holds the
        RCU read lock).  Canary CPUs read the staged generation (and
        advance its window); everyone else reads the current one.  A slot
        whose stamp or payload identity disagrees with the canonical
        snapshot is a detected partial publish or torn write — repaired
        here, before any decision is served, so a torn generation is
        never observable from the guard path."""
        staged = self._staged
        if staged is not None and cpu in staged.canary:
            staged.reads += 1
            want_gen, want_snap = staged.gen, staged.snapshot
        else:
            want_gen, want_snap = self.generation, self._current
        slot = self._slots[cpu]
        if slot is None or slot[0] != want_gen or slot[1] is not want_snap:
            self._slots[cpu] = (want_gen, want_snap)
            self.replica_repairs += 1
            if self._tp_repair.enabled:
                self._tp_repair.emit(
                    cpu=cpu, generation=want_gen,
                    stale_generation=-1 if slot is None else slot[0],
                )
        return want_snap

    # -- introspection --------------------------------------------------------

    def status(self) -> dict:
        staged = self._staged
        return {
            "generation": self.generation,
            "staged_generation": 0 if staged is None else staged.gen,
            "staged_tenant": None if staged is None else staged.tenant.name,
            "tenants": len(self.tenants),
            "regions": 0 if self._current is None else len(self._current),
            "batches": self.batches,
            "batch_ops": self.batch_ops,
            "promotions": self.promotions,
            "rollbacks": len(self.rollback_records),
            "publishes": self.publishes,
            "publish_retries": self.publish_retries,
            "publish_failures": self.publish_failures,
            "forced_publishes": self.forced_publishes,
            "replica_repairs": self.replica_repairs,
            "torn_batches": self.torn_batches,
            "quota_races": self.quota_races,
            "backoff_us_total": self.backoff_us_total,
            "max_backoff_us": self.max_backoff_us,
        }

    def describe(self) -> str:
        """The /proc/carat control-plane section."""
        s = self.status()
        lines = [
            f"controlplane: generation {s['generation']}, "
            f"{s['tenants']} tenant(s), {s['regions']} composed region(s)",
            f"  staged:    "
            + (f"gen {s['staged_generation']} by {s['staged_tenant']} "
               f"(reads {self._staged.reads}/{self._staged.window}, "
               f"ticks {self._staged.ticks}/{self._staged.tick_limit})"
               if self._staged is not None else "none"),
            f"  batches:   {s['batches']} ({s['batch_ops']} ops, "
            f"{s['torn_batches']} torn, {s['quota_races']} quota races)",
            f"  rollout:   {s['promotions']} promoted, "
            f"{s['rollbacks']} rolled back",
            f"  publish:   {s['publishes']} ok, {s['publish_retries']} "
            f"retries, {s['publish_failures']} failed, "
            f"{s['forced_publishes']} forced, "
            f"backoff {s['backoff_us_total']:.0f}us total "
            f"(max {s['max_backoff_us']:.0f}us)",
            f"  repairs:   {s['replica_repairs']} replica slot(s)",
        ]
        for name, tenant in self.tenants.items():
            t = tenant.stats()
            lines.append(
                f"  tenant {name}: gen {t['generation']}, "
                f"{t['regions']}/{tenant.quota.max_regions} regions, "
                f"{t['batches_promoted']}/{t['batches_applied']} batches "
                f"promoted, {t['rollbacks']} rollbacks, "
                f"{t['quota_denials']} quota denials, "
                f"{t['overlap_rejections']} overlap rejections"
            )
        for record in self.rollback_records[-3:]:
            lines.append(
                f"  rollback gen {record['generation']} "
                f"({record['tenant']}): {record['reason']}"
            )
        return "\n".join(lines)


__all__ = [
    "ControlPlaneConfig",
    "ControlPlaneError",
    "OP_ADD",
    "OP_DEL",
    "PolicyControlPlane",
    "Tenant",
    "TenantQuota",
]
