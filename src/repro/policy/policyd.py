"""caratkop-policyd: the multi-tenant control-plane service + benchmark.

Drives N tenants' worth of transactional batch mutations, staged
canary rollouts, and concurrent guard traffic against one simulated
kernel — optionally with every control-plane fault hook armed — and
digests the guard-visible policy state so chaos runs can be proven
bit-identical to fault-free runs.

Two digests come out of a run:

- ``settled_digest`` covers only *settled* state: after each staged
  generation resolves (promote or rollback), the composed policy
  content, the generation number, the decisions a fixed probe set
  receives on every CPU, the violation ledger, and the tenant stats are
  folded in.  Faults never change what the system settles to, and
  canary membership is irrelevant once nothing is staged, so this
  digest is identical across interp/compiled x 1/2/4 CPUs x chaos/clean
  — the acceptance-grid invariant.
- ``full_digest`` additionally folds in the *mid-window* probe
  decisions, where canary CPUs intentionally see the staged generation
  while the rest still see the current one.  Canary membership depends
  on the CPU count, so this digest is only comparable within one
  (engine, cpus) cell — there it must still be chaos==clean, because
  injected faults are absorbed by retry/repair before any decision is
  served.

The run always includes one hostile step per round: a tenant with a
tiny violation budget stages a deny region over the probe window, the
canary CPU's denials blow the budget, and the control plane records an
auto-rollback — in the chaos run *and* the clean run, so the digests
still agree while proving the rollback path fires.
"""

from __future__ import annotations

import hashlib
from typing import Optional

from .. import abi
from ..core.pipeline import CompileOptions, compile_module
from ..core.system import CaratKopSystem, SystemConfig
from ..faults.injector import FaultInjector
from .controlplane import (
    ControlPlaneConfig, OP_ADD, OP_DEL, PolicyControlPlane, TenantQuota,
)

#: The -O3 demonstration module: every access provably inside its own
#: globals, so all guards elide at insmod — until the first staged
#: generation eagerly demotes it back to dynamic guarding.
PROBE_MODULE = r"""
long buf[64];

int init_module(void) {
    buf[0] = 1;
    return 0;
}

__export long spin(long n) {
    long i;
    long acc;
    acc = 0;
    for (i = 0; i < n; i = i + 1) {
        acc = acc + buf[i % 64];
    }
    return acc;
}
"""

PROBE_MODULE_NAME = "policyd_probe"

#: Where tenant regions live: far from the driver's device windows and
#: the module arena, so control-plane traffic never perturbs the NIC.
TENANT_BASE = 0x7000_0000_0000
TENANT_SPAN = 0x1_0000_0000
#: The window the hostile tenant denies: the gap between tenant 0's
#: first two regions (regions sit at 0x2000 strides, 0x1000 long), so
#: no other tenant's allow region can first-match-shadow the deny.
HOSTILE_WINDOW = TENANT_BASE + 0x1100

_READ8 = (abi.FLAG_READ, 8)


def _tenant_region(tenant_idx: int, region_idx: int) -> tuple[int, int]:
    base = (TENANT_BASE + tenant_idx * TENANT_SPAN
            + region_idx * 0x2000)
    return base, 0x1000


def run_policyd(
    tenants: int = 4,
    regions: int = 1024,
    rounds: int = 3,
    batch_ops: int = 16,
    engine: str = "compiled",
    cpus: int = 1,
    machine: Optional[str] = None,
    policy_index: Optional[str] = None,
    injector: Optional[FaultInjector] = None,
    blast_count: int = 16,
    config: Optional[ControlPlaneConfig] = None,
) -> dict:
    """Run the policyd workload; returns a report with both digests.

    ``regions`` is the total target across tenants; ``rounds`` repeats
    the whole mutate/stage/settle sweep (each round also runs the
    hostile quota-blowing step).  Pass an armed :class:`FaultInjector`
    for a chaos run; ``None`` is the fault-free baseline.
    """
    if tenants < 1:
        raise ValueError("need at least one tenant")
    system = CaratKopSystem(SystemConfig(
        machine=machine, protect=True, enforce_mode="audit",
        engine=engine, cpus=cpus, policy_index=policy_index,
    ))
    kernel = system.kernel
    policy = system.policy
    cp_config = config or ControlPlaneConfig(
        canary_window=64, canary_tick_limit=4,
        max_total_regions=max(8192, regions + 64),
    )
    cp = PolicyControlPlane(kernel, policy, cp_config,
                            injector=injector).attach()

    # The -O3 module loads while the composition equals the system
    # namespace (no tenant regions yet), so its certificate holds; the
    # first staged generation must demote it exactly once.
    probe_mod = compile_module(PROBE_MODULE, CompileOptions(
        module_name=PROBE_MODULE_NAME, key=system.signing_key,
        opt_level=3, verify_table=policy.index,
        contracts=kernel.verify_contracts,
    ))
    loaded_probe = kernel.insmod(probe_mod)
    elided_at_load = len(loaded_probe.elided_guards)

    per_tenant = max(1, regions // tenants)
    names = [f"tenant{t}" for t in range(tenants)]
    for name in names:
        cp.create_tenant(name, TenantQuota(
            max_regions=per_tenant + 8,
            max_mutations_per_window=per_tenant + batch_ops,
            violation_budget=1 << 30,  # well-behaved tenants never trip
        ))
    hostile_budget = 2
    cp.create_tenant("hostile", TenantQuota(
        max_regions=8, max_mutations_per_window=64,
        violation_budget=hostile_budget,
    ))

    settled = hashlib.sha256()
    full = hashlib.sha256()
    # Half the probes land in tenant 0's first allow region, half in the
    # hostile window (default-deny until the hostile tenant stages).
    probe_addrs = (
        [TENANT_BASE + i * 0x40 for i in range(4)]
        + [HOSTILE_WINDOW + i * 0x40 for i in range(4)]
    )
    report: dict = {
        "tenants": tenants,
        "regions_requested": regions,
        "rounds": rounds,
        "engine": engine,
        "cpus": cpus,
        "batches_submitted": 0,
        "batches_retried": 0,
        "delivered_frames": 0,
        "replica_divergence": 0,
        "rollback_reasons": [],
    }
    flags, size = _READ8

    def probe(h_all, h_settled_only) -> None:
        """Fold every CPU's decision for the probe set into ``h_all``
        (and the canonical CPU-0 decision into ``h_settled_only`` when
        given).  Uses the replica read path directly: canary CPUs
        advance the staged window.  Post-settle (``h_settled_only``
        set), every CPU must agree with CPU 0 — any disagreement is
        replica divergence, which the acceptance criteria forbid."""
        for addr in probe_addrs:
            baseline = None
            for cpu in kernel.smp.cpus():
                decision = policy._replica_check(
                    policy.index, cpu, addr, size, flags
                )
                allowed, scanned = decision
                h_all.update(f"{cpu}|{addr:x}|{int(allowed)}|{scanned};"
                             .encode())
                if baseline is None:
                    baseline = decision
                elif h_settled_only is not None and decision != baseline:
                    report["replica_divergence"] += 1
            if h_settled_only is not None:
                h_settled_only.update(
                    f"{addr:x}|{int(baseline[0])}|{baseline[1]};".encode()
                )

    def settle() -> None:
        """Tick the staged generation to promote/rollback, probing each
        tick so the canary window sees traffic, then fold the settled
        state into both digests."""
        guard = cp_config.canary_tick_limit + 2
        while cp.status()["staged_generation"] and guard:
            probe(full, None)  # mid-window: canary sees the staged gen
            event = cp.tick()
            if event == 2:
                report["rollback_reasons"].append(
                    cp.rollback_records[-1]["reason"])
            guard -= 1
        for h in (settled, full):
            h.update(f"gen={cp.generation};".encode())
            h.update(cp.composed_digest().encode())
            for mod, count in sorted(policy.violations.items()):
                h.update(f"v|{mod}|{count};".encode())
        probe(full, settled)

    def submit(name: str, ops) -> None:
        """Submit with bounded retry: an injected torn batch (-EIO) or a
        publish-watchdog exhaustion (-EAGAIN) is retried — the schedule
        has advanced, so the retry takes a different fault path."""
        report["batches_submitted"] += 1
        for _attempt in range(4):
            try:
                cp.submit_batch(name, ops)
                return
            except OSError as e:
                if e.errno not in (5, 11):  # EIO, EAGAIN
                    raise
                report["batches_retried"] += 1
        raise RuntimeError(f"batch for {name} still failing after retries")

    built = [0] * tenants
    step = 0
    for _round in range(rounds):
        # Well-behaved tenants build out their namespaces batch by batch.
        while any(b < per_tenant for b in built):
            t = step % tenants
            step += 1
            if built[t] >= per_tenant:
                continue
            count = min(batch_ops, per_tenant - built[t])
            ops = [
                (OP_ADD, *_tenant_region(t, built[t] + i),
                 abi.FLAG_READ | abi.FLAG_WRITE)
                for i in range(count)
            ]
            built[t] += count
            submit(names[t], ops)
            settle()
            # Steady-state guard traffic through the driver (VM path:
            # this is what makes the engine dimension meaningful).
            sunk = system.sink.packets
            system.blast(size=128, count=blast_count)
            report["delivered_frames"] += system.sink.packets - sunk
            kernel.run_function(loaded_probe, "spin", [64])
        # The hostile step: deny the probe window, blow the violation
        # budget from the canary CPU, and let the watchdog roll back.
        submit("hostile", [(OP_DEL, HOSTILE_WINDOW, 0x200, 0)]
               if len(cp.tenant("hostile").table) else
               [(OP_ADD, HOSTILE_WINDOW, 0x200, 0)])
        if cp.status()["staged_generation"]:
            for _ in range(hostile_budget + 2):
                policy._guard(None, HOSTILE_WINDOW + 0x40, 8,
                              abi.FLAG_READ, "policyd_hostile")
            event = cp.tick()
            if event == 2:
                report["rollback_reasons"].append(
                    cp.rollback_records[-1]["reason"])
        settle()
        # Rebuild phase next round mutates via deletes + re-adds.
        if _round + 1 < rounds:
            for t in range(tenants):
                base, length = _tenant_region(t, 0)
                submit(names[t], [
                    (OP_DEL, base, length, 0),
                    (OP_ADD, base, length, abi.FLAG_READ),
                ])
                settle()

    status = cp.status()
    report.update({
        "generation": status["generation"],
        "promotions": status["promotions"],
        "rollbacks": status["rollbacks"],
        "publish_retries": status["publish_retries"],
        "publish_failures": status["publish_failures"],
        "forced_publishes": status["forced_publishes"],
        "replica_repairs": status["replica_repairs"],
        "torn_batches": status["torn_batches"],
        "quota_races": status["quota_races"],
        "backoff_us_total": status["backoff_us_total"],
        "max_backoff_us": status["max_backoff_us"],
        "composed_regions": status["regions"],
        "verify_demotions": kernel.verify_demotions,
        "probe_elided_at_load": elided_at_load,
        "probe_elided_now": len(loaded_probe.elided_guards),
        "injector": None if injector is None else injector.report(),
        "settled_digest": settled.hexdigest(),
        "full_digest": full.hexdigest(),
        "panicked": kernel.panicked,
    })
    tenant_stats = {}
    for name in (*names, "hostile"):
        tenant_stats[name] = cp.tenant(name).stats()
    report["tenant_stats"] = tenant_stats
    return report


def chaos_injector() -> FaultInjector:
    """The standard all-hooks-armed chaos schedule (periods chosen so
    the watchdog always wins within its retry budget: every hook fires
    repeatedly per run, but never so densely that a whole retry loop
    faults end to end)."""
    return FaultInjector(
        publish_drop_period=3,
        publish_stall_period=4,
        replica_corrupt_period=5,
        torn_batch_period=23,
        quota_race_period=3,
    )


__all__ = ["HOSTILE_WINDOW", "PROBE_MODULE", "PROBE_MODULE_NAME",
           "TENANT_BASE", "chaos_injector", "run_policyd"]
