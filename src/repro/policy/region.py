"""Memory regions and permission semantics.

A policy is an ordered list of regions, each ``[base, base+length)`` with
a protection bitmap (R/W; 0 = explicit deny).  A guard check for
``(addr, size, flags)`` walks the regions in order; the first region that
*fully covers* the access decides it: allowed iff every requested flag is
granted.  If no region covers the access, the policy's default applies
(default-allow or default-deny, paper §1: "using default allow or default
deny policies").

First-match-wins makes overlapped regions meaningful (e.g. a read-only
hole inside a larger read-write allowance) — the property the paper notes
fancier structures give up (§3.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import abi


@dataclass(frozen=True, slots=True)
class Region:
    """One policy entry."""

    base: int
    length: int
    prot: int  # bitmap of abi.FLAG_* permissions granted; 0 denies

    def __post_init__(self):
        if self.base < 0 or self.length <= 0:
            raise ValueError("region must have non-negative base, positive length")
        if self.base + self.length > 1 << 64:
            raise ValueError("region exceeds the 64-bit address space")

    @property
    def end(self) -> int:
        return self.base + self.length

    def covers(self, addr: int, size: int) -> bool:
        """True if [addr, addr+size) lies entirely inside this region."""
        return self.base <= addr and addr + size <= self.end

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.end

    def overlaps(self, other: "Region") -> bool:
        return self.base < other.end and other.base < self.end

    def permits(self, flags: int) -> bool:
        """True if every requested access flag is granted."""
        return (self.prot & flags) == flags

    def describe(self) -> str:
        return (
            f"[{self.base:#018x}, {self.end:#018x}) "
            f"{abi.flags_name(self.prot)} ({self.length} bytes)"
        )


#: Decision returned by a policy index: (allowed, entries_scanned).
Decision = tuple[bool, int]


__all__ = ["Decision", "Region"]
