"""Overlap-aware interval index: sub-linear lookup, linear-table semantics.

The paper's §4.2 invites replacing the O(n) region-table walk with a
sorted structure, but the obvious sorted-array/binary-search upgrade
(:class:`repro.policy.structures.SortedRegionIndex`) cannot represent
*overlapped* regions, and first-match-wins overlap is load-bearing for
real policies (quarantine rules shadowing broad allow rules).  This
module lifts that restriction:

The region list is compiled into **elementary segments**: sort the
distinct region endpoints; between two adjacent endpoints no region
boundary occurs, so every region either covers a whole segment or none
of it.  Each segment stores its candidate regions *in table (priority)
order*.  A query binary-searches for the segment containing ``addr``
and takes the first candidate whose end covers ``addr + size`` — which
is provably the first region in table order covering the access, i.e.
decision-identical to :meth:`repro.policy.table.RegionTable.check` even
for arbitrarily overlapped regions.

Cost: O(log n) bisection + O(overlap depth) candidate probes instead of
O(n); with the 64-region policy the mean comparisons/guard drop from
~32 to ~log2(64).  For tiny tables (``<= LINEAR_CUTOFF`` regions) the
linear scan is already optimal, so the index falls back to the exact
linear walk — byte-identical decisions *and counts* — making the
interval index never slower than the paper's table.

``IntervalRegionTable`` subclasses :class:`RegionTable`, so the policy
module's RCU publish path (per-CPU replicas, epoch staleness tokens,
guard-decision caches) works unchanged; ``snapshot()`` hands each CPU an
immutable replica carrying the prebuilt segment index.
"""

from __future__ import annotations

import bisect

from .region import Decision, Region
from .table import MAX_REGIONS, RegionTable, RegionTableReplica

#: At or below this many regions the linear walk beats the bisection,
#: so the index degrades to the exact paper-table scan (same counts).
LINEAR_CUTOFF = 8


class _IntervalLookup:
    """Immutable elementary-segment index over a fixed region tuple."""

    __slots__ = ("_regions", "_points", "_candidates", "_linear")

    def __init__(self, regions: tuple[Region, ...]):
        self._regions = regions
        if len(regions) <= LINEAR_CUTOFF:
            self._linear = True
            self._points: tuple[int, ...] = ()
            self._candidates: tuple[tuple[Region, ...], ...] = ()
            return
        self._linear = False
        points = sorted({r.base for r in regions} | {r.end for r in regions})
        self._points = tuple(points)
        # Segment k (for k in 1..len(points)-1) is [points[k-1], points[k]);
        # segments 0 and len(points) lie outside every region.  A region
        # covers segment k iff base <= points[k-1] and end >= points[k];
        # candidates are kept in table order so "first hit" == "first
        # match" in the linear table.
        candidates: list[list[Region]] = [[] for _ in range(len(points) + 1)]
        for r in regions:
            lo = bisect.bisect_right(points, r.base)
            hi = bisect.bisect_left(points, r.end)
            for k in range(lo, hi + 1):
                candidates[k].append(r)
        self._candidates = tuple(tuple(c) for c in candidates)

    def check(
        self, addr: int, size: int, flags: int, default_allow: bool
    ) -> Decision:
        if self._linear or size <= 0:
            # Exact paper-table walk (also the correctness fallback for
            # degenerate zero-size probes, where "covers" can match at a
            # region's exclusive end and segment math would diverge).
            regions = self._regions
            for i, r in enumerate(regions):
                if r.base <= addr and addr + size <= r.base + r.length:
                    return (r.prot & flags) == flags, i + 1
            # ``or 1``: the structures contract promises scanned >= 1
            # even on an empty table (the linear RegionTable alone may
            # report 0 there).
            return default_allow, len(regions) or 1
        points = self._points
        lo, hi = 0, len(points)
        steps = 0
        while lo < hi:
            mid = (lo + hi) // 2
            steps += 1
            if points[mid] <= addr:
                lo = mid + 1
            else:
                hi = mid
        end = addr + size
        for r in self._candidates[lo]:
            steps += 1
            if r.base + r.length >= end:
                return (r.prot & flags) == flags, steps
        return default_allow, max(steps, 1)


class IntervalTableReplica(RegionTableReplica):
    """Immutable RCU replica carrying the prebuilt segment index."""

    name = "interval-index-replica"
    pure_check = True

    __slots__ = ("_lookup",)

    def __init__(
        self,
        regions: tuple,
        default_allow: bool,
        epoch: int,
        lookup: _IntervalLookup,
    ):
        super().__init__(regions, default_allow, epoch)
        self._lookup = lookup

    def check(self, addr: int, size: int, flags: int) -> Decision:
        return self._lookup.check(addr, size, flags, self.default_allow)


class IntervalRegionTable(RegionTable):
    """Drop-in :class:`RegionTable` with sub-linear overlap-aware checks.

    Mutations go through the inherited table (priority order preserved,
    epoch bumped); the segment index is rebuilt lazily on the first check
    after a mutation.  ``supports_overlap`` stays True: overlapped
    first-match-wins policies need no ``OverlapError`` fallback.
    """

    name = "interval-index"
    supports_overlap = True
    pure_check = True

    def __init__(self, default_allow: bool = False,
                 max_regions: int = MAX_REGIONS):
        super().__init__(default_allow, max_regions)
        self._lookup: _IntervalLookup | None = None
        self._lookup_epoch = -1

    def _current_lookup(self) -> _IntervalLookup:
        if self._lookup is None or self._lookup_epoch != self.epoch:
            self._lookup = _IntervalLookup(tuple(self._regions))
            self._lookup_epoch = self.epoch
        return self._lookup

    def check(self, addr: int, size: int, flags: int) -> Decision:
        return self._current_lookup().check(
            addr, size, flags, self.default_allow
        )

    def snapshot(self) -> IntervalTableReplica:
        return IntervalTableReplica(
            tuple(self._regions), self.default_allow, self.epoch,
            self._current_lookup(),
        )


__all__ = ["IntervalRegionTable", "IntervalTableReplica", "LINEAR_CUTOFF"]
