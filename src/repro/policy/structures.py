"""Alternative policy-index structures (paper §3.1 and §4.2 speculation).

The paper proposes several upgrades to the 64-entry linear table and
explicitly frames CARAT KOP as "the methodology to easily iterate upon a
simplistic structure":

- sorted table + **binary search** ("The first of these would be simply to
  sort the regions in the policy in order, and then do a binary search"),
- a **splay tree** / popularity structure ("a popularity-based data
  structure such as a splay tree or a simple cache over the region data
  structure (as done in CARAT CAKE)"),
- **AMQ filters** ("any of a variety of AMQ-filters may very well improve
  average performance"),
- a **locality-sensitive-hash bucket** scheme ("finding the 'closest
  bucket' of policy-defined regions to an arbitrary address in constant
  time").

All structures implement the same interface as
:class:`repro.policy.table.RegionTable` and — for non-overlapping
policies — must return byte-identical decisions (property-tested).  Each
``check`` reports the number of entry comparisons performed, the
quantity the abl1 benchmark compares across structures.  The documented
trade-off holds here too: only the linear table supports overlapped
regions (first-match-wins priority).
"""

from __future__ import annotations

import bisect
from typing import Optional

from .region import Decision, Region
from .table import MAX_REGIONS, PolicyTableFull, RegionTable


class OverlapError(ValueError):
    """This structure cannot represent overlapped regions (paper §3.1)."""


class _NonOverlappingBase:
    """Shared bookkeeping for indexes that require disjoint regions."""

    supports_overlap = False
    #: Whether ``check`` is a pure function of (regions, default_allow);
    #: structures that mutate on lookup must set this False so the
    #: guard-decision cache bypasses them (see policy/module.py).
    pure_check = True

    def __init__(self, default_allow: bool = False, max_regions: int = MAX_REGIONS):
        self.default_allow = default_allow
        self.max_regions = max_regions
        self._regions: list[Region] = []  # sorted by base
        #: Bumped on every mutation; guard-decision caches key on it.
        self.epoch = 0

    def _check_insert(self, region: Region) -> int:
        if len(self._regions) >= self.max_regions:
            raise PolicyTableFull(
                f"policy is limited to {self.max_regions} regions"
            )
        idx = bisect.bisect_left([r.base for r in self._regions], region.base)
        for neighbour in self._regions[max(0, idx - 1) : idx + 1]:
            if neighbour.overlaps(region):
                raise OverlapError(
                    f"{self.name} cannot hold overlapped regions: "  # type: ignore[attr-defined]
                    f"{region.describe()} vs {neighbour.describe()}"
                )
        return idx

    def remove(self, base: int, length: int) -> bool:
        for i, r in enumerate(self._regions):
            if r.base == base and r.length == length:
                del self._regions[i]
                self.epoch += 1
                self._on_mutate()
                return True
        return False

    def clear(self) -> None:
        self._regions.clear()
        self.epoch += 1
        self._on_mutate()

    def regions(self) -> list[Region]:
        return list(self._regions)

    def __len__(self) -> int:
        return len(self._regions)

    def _on_mutate(self) -> None:  # hook for caches/filters
        pass


class SortedRegionIndex(_NonOverlappingBase):
    """Sorted array + binary search: the paper's O(log n) first step."""

    name = "sorted-bsearch"

    def __init__(self, default_allow: bool = False, max_regions: int = MAX_REGIONS):
        super().__init__(default_allow, max_regions)
        self._bases: list[int] = []

    def add(self, region: Region) -> int:
        idx = self._check_insert(region)
        self._regions.insert(idx, region)
        self._bases.insert(idx, region.base)
        self.epoch += 1
        return idx

    def _on_mutate(self) -> None:
        self._bases = [r.base for r in self._regions]

    def check(self, addr: int, size: int, flags: int) -> Decision:
        # Rightmost region with base <= addr; count the bisection steps the
        # hardware would take (comparisons), plus the final cover check.
        lo, hi = 0, len(self._bases)
        steps = 0
        while lo < hi:
            mid = (lo + hi) // 2
            steps += 1
            if self._bases[mid] <= addr:
                lo = mid + 1
            else:
                hi = mid
        if lo == 0:
            return self.default_allow, max(steps, 1)
        r = self._regions[lo - 1]
        steps += 1
        if r.covers(addr, size):
            return r.permits(flags), steps
        return self.default_allow, steps


class _SplayNode:
    __slots__ = ("region", "left", "right")

    def __init__(self, region: Region):
        self.region = region
        self.left: Optional["_SplayNode"] = None
        self.right: Optional["_SplayNode"] = None


class SplayRegionIndex(_NonOverlappingBase):
    """Splay tree keyed by region base: popular regions float to the root.

    The paper's motivation (§4.2): "It also stands to reason that the
    regions of a policy will vary in popularity.  Consequently ... a
    popularity-based data structure such as a splay tree ... might be
    able to do better than a logarithmic search in the common case."
    """

    name = "splay-tree"
    pure_check = False  # check() splays: lookups restructure the tree

    def __init__(self, default_allow: bool = False, max_regions: int = MAX_REGIONS):
        super().__init__(default_allow, max_regions)
        self._root: Optional[_SplayNode] = None

    def add(self, region: Region) -> int:
        idx = self._check_insert(region)
        self._regions.insert(idx, region)
        node = _SplayNode(region)
        if self._root is None:
            self._root = node
        else:
            self._root, _ = self._splay(self._root, region.base)
            if region.base < self._root.region.base:
                node.left = self._root.left
                node.right = self._root
                self._root.left = None
            else:
                node.right = self._root.right
                node.left = self._root
                self._root.right = None
            self._root = node
        self.epoch += 1
        return idx

    def _on_mutate(self) -> None:
        # Rebuild balanced from the sorted region list (removal path).
        def build(lo: int, hi: int) -> Optional[_SplayNode]:
            if lo >= hi:
                return None
            mid = (lo + hi) // 2
            n = _SplayNode(self._regions[mid])
            n.left = build(lo, mid)
            n.right = build(mid + 1, hi)
            return n

        self._root = build(0, len(self._regions))

    @staticmethod
    def _splay(
        root: _SplayNode, key: int
    ) -> tuple[_SplayNode, int]:
        """Top-down splay toward ``key``; returns (new root, steps taken)."""
        header = _SplayNode(root.region)  # dummy
        header.left = header.right = None
        left_max = right_min = header
        t = root
        steps = 0
        while True:
            steps += 1
            if key < t.region.base:
                if t.left is None:
                    break
                if key < t.left.region.base:  # zig-zig: rotate right
                    y = t.left
                    t.left = y.right
                    y.right = t
                    t = y
                    steps += 1
                    if t.left is None:
                        break
                right_min.left = t
                right_min = t
                t = t.left
            elif key > t.region.base:
                if t.right is None:
                    break
                if key > t.right.region.base:  # zag-zag: rotate left
                    y = t.right
                    t.right = y.left
                    y.left = t
                    t = y
                    steps += 1
                    if t.right is None:
                        break
                left_max.right = t
                left_max = t
                t = t.right
            else:
                break
        left_max.right = t.left
        right_min.left = t.right
        t.left = header.right
        t.right = header.left
        return t, steps

    def check(self, addr: int, size: int, flags: int) -> Decision:
        if self._root is None:
            return self.default_allow, 1
        self._root, steps = self._splay(self._root, addr)
        node = self._root
        r = node.region
        if r.base <= addr:
            candidate = r
        else:
            # Root is the successor; the predecessor is the max of the
            # left subtree.
            candidate = None
            cur = node.left
            while cur is not None:
                steps += 1
                candidate = cur.region
                cur = cur.right
        if candidate is not None and candidate.covers(addr, size):
            return candidate.permits(flags), steps
        return self.default_allow, steps


class BloomFilter:
    """A classic Bloom filter over integers (no false negatives)."""

    def __init__(self, bits: int = 1 << 16, hashes: int = 3):
        if bits & (bits - 1):
            raise ValueError("bits must be a power of two")
        self.bits = bits
        self.hashes = hashes
        self._words = bytearray(bits // 8)
        self.population = 0

    @staticmethod
    def _mix(x: int) -> int:
        """splitmix64 finalizer: breaks the linearity of page numbers
        (a plain multiplicative hash mod 2^k keeps structured keys
        correlated and inflates the false-positive rate ~100x)."""
        mask = (1 << 64) - 1
        x &= mask
        x ^= x >> 30
        x = (x * 0xBF58476D1CE4E5B9) & mask
        x ^= x >> 27
        x = (x * 0x94D049BB133111EB) & mask
        x ^= x >> 31
        return x

    def _positions(self, key: int):
        # Kirsch-Mitzenmacher double hashing over two well-mixed hashes.
        h1 = self._mix(key)
        h2 = self._mix(key ^ 0x9E3779B97F4A7C15) | 1
        for i in range(self.hashes):
            yield (h1 + i * h2) % self.bits

    def insert(self, key: int) -> None:
        for pos in self._positions(key):
            self._words[pos >> 3] |= 1 << (pos & 7)
        self.population += 1

    def __contains__(self, key: int) -> bool:
        return all(
            self._words[pos >> 3] & (1 << (pos & 7)) for pos in self._positions(key)
        )

    def clear(self) -> None:
        self._words = bytearray(self.bits // 8)
        self.population = 0


class AMQFilterIndex(_NonOverlappingBase):
    """Bloom-filter front end over page granules + linear backing table.

    The filter answers "might any region cover this page?" with no false
    negatives, so a negative is a constant-time **deny** (under default
    deny); positives fall through to the linear scan.  This is the
    deny-heavy accelerator flavour of the paper's AMQ suggestion; the
    allow-heavy flavour is :class:`CachedIndex`.
    """

    name = "amq-bloom"
    PAGE_SHIFT = 12
    #: Regions spanning more pages than this are kept on a side list
    #: instead of being expanded into the filter (the "kernel half" rule
    #: would otherwise need 2^35 insertions).
    MAX_FILTER_PAGES = 4096

    def __init__(self, default_allow: bool = False, max_regions: int = MAX_REGIONS):
        super().__init__(default_allow, max_regions)
        self._filter = BloomFilter()
        self._oversize: list[Region] = []
        self._backing = RegionTable(default_allow, max_regions)

    def add(self, region: Region) -> int:
        idx = self._check_insert(region)
        self._regions.insert(idx, region)
        self._insert_structures(region)
        self.epoch += 1
        return idx

    def _insert_structures(self, region: Region) -> None:
        # Track live capacity changes (benchmarks sweep past 64 regions).
        self._backing.max_regions = self.max_regions
        self._backing.add(region)
        first = region.base >> self.PAGE_SHIFT
        last = (region.end - 1) >> self.PAGE_SHIFT
        if last - first + 1 > self.MAX_FILTER_PAGES:
            self._oversize.append(region)
        else:
            for page in range(first, last + 1):
                self._filter.insert(page)

    def _on_mutate(self) -> None:
        self._filter.clear()
        self._oversize.clear()
        self._backing = RegionTable(self.default_allow, self.max_regions)
        for r in self._regions:
            self._insert_structures(r)

    def check(self, addr: int, size: int, flags: int) -> Decision:
        steps = 1  # the filter probe
        for r in self._oversize:
            steps += 1
            if r.covers(addr, size):
                return r.permits(flags), steps
        first = addr >> self.PAGE_SHIFT
        last = (addr + size - 1) >> self.PAGE_SHIFT
        if all(page not in self._filter for page in range(first, last + 1)):
            return self.default_allow, steps
        allowed, scanned = self._backing.check(addr, size, flags)
        return allowed, steps + scanned


class LSHBucketIndex(_NonOverlappingBase):
    """Bucketed lookup: hash the address's locality to candidate regions.

    The paper's idea: "Modification of the table to use a
    locality-sensitive hash function, thus finding the 'closest bucket' of
    policy-defined regions to an arbitrary address in constant time."
    Regions are inserted into every bucket they touch; giant regions (the
    half-space rules) live on a short side list.
    """

    name = "lsh-buckets"
    BUCKET_SHIFT = 16  # 64 KiB locality buckets
    MAX_BUCKETS_PER_REGION = 1024

    def __init__(self, default_allow: bool = False, max_regions: int = MAX_REGIONS):
        super().__init__(default_allow, max_regions)
        self._buckets: dict[int, list[Region]] = {}
        self._oversize: list[Region] = []

    def add(self, region: Region) -> int:
        idx = self._check_insert(region)
        self._regions.insert(idx, region)
        self._insert_structures(region)
        self.epoch += 1
        return idx

    def _insert_structures(self, region: Region) -> None:
        first = region.base >> self.BUCKET_SHIFT
        last = (region.end - 1) >> self.BUCKET_SHIFT
        if last - first + 1 > self.MAX_BUCKETS_PER_REGION:
            self._oversize.append(region)
            return
        for b in range(first, last + 1):
            self._buckets.setdefault(b, []).append(region)

    def _on_mutate(self) -> None:
        self._buckets.clear()
        self._oversize.clear()
        for r in self._regions:
            self._insert_structures(r)

    def check(self, addr: int, size: int, flags: int) -> Decision:
        steps = 1  # the bucket hash
        bucket = self._buckets.get(addr >> self.BUCKET_SHIFT, ())
        for r in bucket:
            steps += 1
            if r.covers(addr, size):
                return r.permits(flags), steps
        for r in self._oversize:
            steps += 1
            if r.covers(addr, size):
                return r.permits(flags), steps
        return self.default_allow, steps


class CachedIndex:
    """A one-entry most-recent-region cache over any inner index.

    "a simple cache over the region data structure (as done in CARAT
    CAKE) might be able to do better than a logarithmic search in the
    common case" (§4.2).  The cache hit costs one comparison; mutation
    invalidates it.
    """

    supports_overlap = False
    pure_check = False  # check() updates the one-entry cache + hit counters

    def __init__(self, inner):
        self.inner = inner
        self._cached: Optional[Region] = None
        self.hits = 0
        self.misses = 0

    @property
    def name(self) -> str:
        return f"cached({self.inner.name})"

    @property
    def default_allow(self) -> bool:
        return self.inner.default_allow

    def add(self, region: Region) -> int:
        self._cached = None
        return self.inner.add(region)

    def remove(self, base: int, length: int) -> bool:
        self._cached = None
        return self.inner.remove(base, length)

    def clear(self) -> None:
        self._cached = None
        self.inner.clear()

    def regions(self) -> list[Region]:
        return self.inner.regions()

    def __len__(self) -> int:
        return len(self.inner)

    def check(self, addr: int, size: int, flags: int) -> Decision:
        r = self._cached
        if r is not None and r.covers(addr, size):
            self.hits += 1
            return r.permits(flags), 1
        self.misses += 1
        allowed, steps = self.inner.check(addr, size, flags)
        # Cache the region that decided, if any (covering lookup).
        find = getattr(self.inner, "find", None)
        if find is not None:
            self._cached = find(addr, size)
        else:
            for region in self.inner.regions():
                if region.covers(addr, size):
                    self._cached = region
                    break
        return allowed, steps + 1


from .interval import IntervalRegionTable

STRUCTURES = {
    "linear": RegionTable,
    "interval": IntervalRegionTable,
    "sorted": SortedRegionIndex,
    "splay": SplayRegionIndex,
    "amq": AMQFilterIndex,
    "lsh": LSHBucketIndex,
}


def make_index(kind: str, default_allow: bool = False,
               cached: bool = False):
    """Factory for policy indexes by short name."""
    try:
        index = STRUCTURES[kind](default_allow=default_allow)
    except KeyError:
        raise ValueError(f"unknown policy structure {kind!r}; have {sorted(STRUCTURES)}")
    return CachedIndex(index) if cached else index


__all__ = [
    "AMQFilterIndex",
    "BloomFilter",
    "CachedIndex",
    "LSHBucketIndex",
    "OverlapError",
    "STRUCTURES",
    "SortedRegionIndex",
    "SplayRegionIndex",
    "make_index",
]
