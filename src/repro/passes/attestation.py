"""Attestation scan: record compilation facts the signer certifies.

Paper §2: "The signature also is in effect an assertion, by the
compilation process, that the code it compiled does not include any
problematic elements such as inline or separate assembly."  This pass
performs that scan and stamps the result into module metadata; the signer
(:mod:`repro.signing`) covers the metadata, and the kernel loader refuses
modules whose attestation is missing or bad.
"""

from __future__ import annotations

from .. import abi
from ..ir import Module
from ..ir.instructions import InlineAsm


class AttestationPass:
    name = "kop-attest"

    def run(self, module: Module) -> bool:
        has_asm = any(
            isinstance(inst, InlineAsm)
            for fn in module.defined_functions()
            for inst in fn.instructions()
        )
        module.metadata[abi.META_HAS_ASM] = has_asm
        module.metadata[abi.META_COMPILER] = abi.COMPILER_ID
        return False  # analysis only; never changes code


__all__ = ["AttestationPass"]
