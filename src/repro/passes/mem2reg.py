"""Promote allocas to SSA registers (classic mem2reg).

The front end lowers every local into an ``alloca`` (clang -O0 style).
Without promotion, the guard pass would instrument every stack access and
the guard counts would be wildly unrepresentative of the paper's setup,
where the kernel is compiled with optimization and only *real* memory
references survive to the middle end.  ``mem2reg`` promotes any alloca
whose address never escapes (no use other than direct load/store), using
iterated dominance frontiers for phi placement.
"""

from __future__ import annotations

from ..ir import BasicBlock, Function, Module
from ..ir.instructions import Alloca, Load, Phi, Store
from ..ir.values import UndefValue, Value
from .analysis import DominatorTree, unreachable_blocks


class Mem2RegPass:
    """Module pass: SSA promotion of non-escaping allocas."""

    name = "mem2reg"

    def __init__(self) -> None:
        self.promoted = 0

    def run(self, module: Module) -> bool:
        changed = False
        for fn in module.defined_functions():
            changed |= self._run_on_function(fn)
        return changed

    # -- per function -----------------------------------------------------

    def _run_on_function(self, fn: Function) -> bool:
        self._remove_unreachable(fn)
        allocas = self._promotable_allocas(fn)
        if not allocas:
            return False
        dom = DominatorTree(fn)
        for alloca in allocas:
            self._promote(fn, alloca, dom)
            self.promoted += 1
        return True

    def _remove_unreachable(self, fn: Function) -> None:
        dead = unreachable_blocks(fn)
        if not dead:
            return
        dead_ids = {id(b) for b in dead}
        for b in fn.blocks:
            if id(b) in dead_ids:
                continue
            for phi in b.phis():
                kept = [(v, blk) for v, blk in phi.incoming if id(blk) not in dead_ids]
                if len(kept) != len(phi.incoming):
                    phi.incoming = kept
                    phi.operands = [v for v, _ in kept]
        fn.blocks = [b for b in fn.blocks if id(b) not in dead_ids]

    def _promotable_allocas(self, fn: Function) -> list[Alloca]:
        """Allocas used only by direct scalar loads and stores of the value."""
        allocas = [
            inst
            for inst in fn.instructions()
            if isinstance(inst, Alloca)
            and inst.count == 1
            and not inst.allocated_type.is_aggregate
        ]
        if not allocas:
            return []
        candidate = {id(a): True for a in allocas}
        for inst in fn.instructions():
            for op in inst.operands:
                if isinstance(op, Alloca) and id(op) in candidate:
                    if isinstance(inst, Load) and inst.pointer is op:
                        continue
                    if (
                        isinstance(inst, Store)
                        and inst.pointer is op
                        and inst.value is not op
                    ):
                        continue
                    candidate[id(op)] = False  # address escapes
            # Geps/casts/calls taking the alloca as any operand disqualify it
            # (covered above since they aren't Load/Store in the right slot).
        return [a for a in allocas if candidate[id(a)]]

    def _promote(self, fn: Function, alloca: Alloca, dom: DominatorTree) -> None:
        loads: list[Load] = []
        stores: list[Store] = []
        for inst in fn.instructions():
            if isinstance(inst, Load) and inst.pointer is alloca:
                loads.append(inst)
            elif isinstance(inst, Store) and inst.pointer is alloca:
                stores.append(inst)

        ty = alloca.allocated_type
        def_blocks = {id(s.parent): s.parent for s in stores if s.parent}

        # Phi placement at the iterated dominance frontier of the defs.
        phi_blocks: dict[int, Phi] = {}
        work = list(def_blocks.values())
        seen = set(def_blocks)
        while work:
            b = work.pop()
            for df in dom.frontiers.get(id(b), []):
                if id(df) in phi_blocks:
                    continue
                phi = Phi(ty, fn.unique_name(f"{alloca.name or 'mem'}.phi"))
                phi.parent = df
                df.instructions.insert(0, phi)
                phi_blocks[id(df)] = phi
                if id(df) not in seen:
                    seen.add(id(df))
                    work.append(df)

        # Rename: walk the dominator tree carrying the reaching definition.
        undef = UndefValue(ty)
        replacements: dict[int, Value] = {}

        def rename(block: BasicBlock, incoming: Value) -> None:
            stack = [(block, incoming)]
            visited: set[int] = set()
            while stack:
                blk, value = stack.pop()
                if id(blk) in visited:
                    continue
                visited.add(id(blk))
                phi = phi_blocks.get(id(blk))
                if phi is not None:
                    value = phi
                for inst in list(blk.instructions):
                    if isinstance(inst, Load) and inst.pointer is alloca:
                        replacements[id(inst)] = value
                        blk.remove(inst)
                    elif isinstance(inst, Store) and inst.pointer is alloca:
                        value = inst.value
                        blk.remove(inst)
                for succ in blk.successors:
                    sphi = phi_blocks.get(id(succ))
                    if sphi is not None:
                        sphi.add_incoming(
                            replacements.get(id(value), value), blk
                        )
                for child in dom.children.get(id(blk), []):
                    stack.append((child, value))

        rename(fn.entry, undef)

        # Apply load replacements everywhere (transitively through chains).
        def resolve(v: Value) -> Value:
            while id(v) in replacements:
                nv = replacements[id(v)]
                if nv is v:
                    break
                v = nv
            return v

        for inst in fn.instructions():
            for i, op in enumerate(inst.operands):
                inst.operands[i] = resolve(op)
            if isinstance(inst, Phi):
                inst.incoming = [
                    (resolve(v), b) for v, b in inst.incoming
                ]
                inst.operands = [v for v, _ in inst.incoming]

        # Remove the alloca itself.
        if alloca.parent is not None:
            alloca.parent.remove(alloca)

        # Prune phis whose incoming edges were never completed (blocks whose
        # predecessor never executed a rename because it is unreachable) and
        # phis that are trivially redundant (all incoming identical).
        self._simplify_phis(fn)

    def _simplify_phis(self, fn: Function) -> None:
        changed = True
        while changed:
            changed = False
            preds = fn.predecessors()
            for block in fn.blocks:
                for phi in list(block.phis()):
                    # Fill any missing predecessor edges with undef.
                    have = {id(b) for _, b in phi.incoming}
                    for p in preds[block]:
                        if id(p) not in have:
                            phi.add_incoming(UndefValue(phi.type), p)
                    distinct = {
                        id(v) for v, _ in phi.incoming if v is not phi
                        and not isinstance(v, UndefValue)
                    }
                    values = [
                        v for v, _ in phi.incoming
                        if v is not phi and not isinstance(v, UndefValue)
                    ]
                    if len(distinct) == 1:
                        replacement = values[0]
                        self._replace_everywhere(fn, phi, replacement)
                        block.remove(phi)
                        changed = True
                    elif len(distinct) == 0:
                        self._replace_everywhere(fn, phi, UndefValue(phi.type))
                        block.remove(phi)
                        changed = True

    @staticmethod
    def _replace_everywhere(fn: Function, old: Value, new: Value) -> None:
        for inst in fn.instructions():
            inst.replace_operand(old, new)
            if isinstance(inst, Phi):
                inst.incoming = [
                    (new if v is old else v, b) for v, b in inst.incoming
                ]


__all__ = ["Mem2RegPass"]
