"""Privileged-intrinsic guarding (paper §5 future work, implemented).

    "Instrumentation and wrappers to these builtins could be added during
     compilation, such that a guard is injected and a different policy
     table could be consulted to determine if a given kernel module has
     access to a privileged intrinsic."

The pass wraps every call to a known privileged intrinsic with::

    call void @carat_intrinsic_guard(i8* <name string>)

The policy module keeps a separate allow-set for intrinsics
(``policy-manager --allow-intrinsic wrmsr``); an unauthorized intrinsic
panics exactly like a forbidden memory access.
"""

from __future__ import annotations

from ..ir import FunctionType, Module, PointerType, I8, I8PTR, VOID
from ..ir.instructions import Call, Cast
from ..ir.values import ConstantString, GlobalVariable

#: The privileged operations the simulated kernel exposes as natives.
PRIVILEGED_INTRINSICS = frozenset(
    {"wrmsr", "rdmsr", "cli", "sti", "hlt", "outb", "inb", "invlpg", "wbinvd"}
)

INTRINSIC_GUARD_SYMBOL = "carat_intrinsic_guard"
META_INTRINSIC_GUARDED = "carat.intrinsic_guarded"


class IntrinsicGuardPass:
    name = "kop-intrinsic-guard"

    def __init__(self) -> None:
        self.guards_inserted = 0

    def run(self, module: Module) -> bool:
        if module.metadata.get(META_INTRINSIC_GUARDED):
            return False
        # Find intrinsic call sites first; declare the guard lazily so
        # modules that use no intrinsics stay byte-identical.
        sites = [
            (block, inst)
            for fn in module.defined_functions()
            for block in fn.blocks
            for inst in list(block.instructions)
            if isinstance(inst, Call)
            and inst.callee.name in PRIVILEGED_INTRINSICS
        ]
        if not sites:
            module.metadata[META_INTRINSIC_GUARDED] = True
            return False
        guard = module.declare_function(
            INTRINSIC_GUARD_SYMBOL, FunctionType(VOID, [I8PTR]), "external"
        )
        name_globals: dict[str, GlobalVariable] = {}
        for block, inst in sites:
            iname = inst.callee.name
            g = name_globals.get(iname)
            if g is None:
                data = ConstantString(iname.encode() + b"\x00")
                g = GlobalVariable(data.type, f".intr.{iname}", data, "internal", True)
                module.add_global(g)
                name_globals[iname] = g
            fn = block.parent
            assert fn is not None
            cast = Cast("bitcast", g, PointerType(I8), fn.unique_name("iname"))
            block.insert_before(cast, inst)
            call = Call(guard, [cast])
            call.is_guard = False  # distinct from memory guards
            block.insert_before(call, inst)
            self.guards_inserted += 1
        module.metadata[META_INTRINSIC_GUARDED] = True
        return True


__all__ = [
    "INTRINSIC_GUARD_SYMBOL",
    "IntrinsicGuardPass",
    "META_INTRINSIC_GUARDED",
    "PRIVILEGED_INTRINSICS",
]
