"""The CARAT KOP guard-injection pass (paper §3.3 — the core contribution).

    "To ensure guards are inserted, it simply iterates over each
     load/store operation and inserts a call to the guard function
     before.  Unlike CARAT CAKE, CARAT KOP does not currently optimize
     guards—every memory access results in a guard, even if it would be
     redundant."

The pass declares ``carat_guard`` (resolved against the policy module at
insmod time, §3.2) and, before every ``load`` and ``store`` in every
defined function, inserts::

    call void @carat_guard(i8* <addr>, i64 <size>, i32 <R|W>)

The paper notes the entire transform is ~200 lines of C++; this pass is
of comparable size and shape.
"""

from __future__ import annotations

from .. import abi
from ..ir import Module, PointerType, I8
from ..ir.instructions import Call, Cast, Instruction, Load, Store
from ..ir.values import ConstantInt, Value
from ..ir.types import I32 as _I32, I64 as _I64


class GuardInjectionPass:
    """Insert a policy-guard call before every load and store."""

    name = "kop-guard"

    def __init__(self) -> None:
        self.guards_inserted = 0

    def run(self, module: Module) -> bool:
        if module.metadata.get(abi.META_GUARDED):
            return False  # already transformed; the pass is idempotent
        guard = module.declare_function(
            abi.GUARD_SYMBOL, abi.guard_function_type(), linkage="external"
        )
        inserted = 0
        for fn in module.defined_functions():
            for block in fn.blocks:
                # Snapshot: we mutate the instruction list as we walk it.
                for inst in list(block.instructions):
                    if isinstance(inst, Load):
                        pointer: Value = inst.pointer
                        size = inst.access_size
                        flags = abi.FLAG_READ
                    elif isinstance(inst, Store):
                        pointer = inst.pointer
                        size = inst.access_size
                        flags = abi.FLAG_WRITE
                    else:
                        continue
                    addr = self._as_i8_pointer(pointer, block, inst, fn)
                    call = Call(
                        guard,
                        [
                            addr,
                            ConstantInt(_I64, size),
                            ConstantInt(_I32, flags),
                        ],
                    )
                    call.is_guard = True
                    block.insert_before(call, inst)
                    inserted += 1
        module.metadata[abi.META_GUARDED] = True
        module.metadata[abi.META_GUARD_COUNT] = inserted
        self.guards_inserted += inserted
        return inserted > 0

    @staticmethod
    def _as_i8_pointer(pointer: Value, block, before: Instruction, fn) -> Value:
        """The guarded address as ``i8*`` (bitcast inserted if needed)."""
        if isinstance(pointer.type, PointerType) and pointer.type.pointee is I8:
            return pointer
        cast = Cast("bitcast", pointer, PointerType(I8), fn.unique_name("gaddr"))
        block.insert_before(cast, before)
        return cast


__all__ = ["GuardInjectionPass"]
