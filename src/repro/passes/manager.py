"""Pass manager: ordered application of module passes with verification.

Mirrors the paper's setup where the CARAT KOP transform is "a compiler
pass that lives within the LLVM framework ... invoked by a script that
wraps the underlying clang compiler" (§3.3).  Each pass is a callable
object; the manager runs them in order and (optionally) verifies the
module after each one, which is how the compiler "certifies" its own
output before signing.
"""

from __future__ import annotations

from typing import Iterable, Protocol

from ..ir import Module, verify_module


class ModulePass(Protocol):
    """A transformation or analysis over a whole module."""

    name: str

    def run(self, module: Module) -> bool:
        """Apply to ``module``; return True if the IR was changed."""
        ...


class PassManager:
    """Runs a pipeline of module passes, verifying in between."""

    def __init__(self, passes: Iterable[ModulePass] = (), verify_each: bool = True):
        self.passes: list[ModulePass] = list(passes)
        self.verify_each = verify_each
        self.log: list[tuple[str, bool]] = []

    def add(self, p: ModulePass) -> "PassManager":
        self.passes.append(p)
        return self

    def run(self, module: Module) -> bool:
        """Run all passes in order; returns True if anything changed."""
        changed = False
        self.log.clear()
        for p in self.passes:
            did = p.run(module)
            self.log.append((p.name, did))
            changed |= did
            if did:
                module.bump_generation()
            if self.verify_each:
                verify_module(module)
        return changed


__all__ = ["ModulePass", "PassManager"]
