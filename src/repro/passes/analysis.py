"""CFG analyses: dominator tree, dominance frontiers, and natural loops.

These feed ``mem2reg`` (SSA construction needs iterated dominance
frontiers) and the guard-hoisting ablation pass (loop-invariant guard
motion needs loop membership and preheaders).  The dominator algorithm is
the Cooper-Harvey-Kennedy iterative scheme — simple, and fast enough for
kernel-module-sized functions.
"""

from __future__ import annotations

from typing import Optional

from ..ir import BasicBlock, Function


class DominatorTree:
    """Immediate dominators and dominance frontiers for one function."""

    def __init__(self, fn: Function):
        self.fn = fn
        self.rpo = _reverse_postorder(fn)
        self._index = {id(b): i for i, b in enumerate(self.rpo)}
        self.idom: dict[int, BasicBlock] = {}
        self._preds = fn.predecessors()
        self._compute_idoms()
        self.frontiers: dict[int, list[BasicBlock]] = self._compute_frontiers()
        self.children: dict[int, list[BasicBlock]] = {}
        for b in self.rpo:
            d = self.idom.get(id(b))
            if d is not None and d is not b:
                self.children.setdefault(id(d), []).append(b)

    def _compute_idoms(self) -> None:
        entry = self.fn.entry
        idom: dict[int, BasicBlock] = {id(entry): entry}
        changed = True
        while changed:
            changed = False
            for b in self.rpo:
                if b is entry:
                    continue
                # First processed predecessor (in RPO) seeds the intersection.
                new_idom: Optional[BasicBlock] = None
                for p in self._preds[b]:
                    if id(p) in idom:
                        if new_idom is None:
                            new_idom = p
                        else:
                            new_idom = self._intersect(p, new_idom, idom)
                if new_idom is not None and idom.get(id(b)) is not new_idom:
                    idom[id(b)] = new_idom
                    changed = True
        self.idom = idom

    def _intersect(
        self, a: BasicBlock, b: BasicBlock, idom: dict[int, BasicBlock]
    ) -> BasicBlock:
        fa, fb = a, b
        while fa is not fb:
            while self._index[id(fa)] > self._index[id(fb)]:
                fa = idom[id(fa)]
            while self._index[id(fb)] > self._index[id(fa)]:
                fb = idom[id(fb)]
        return fa

    def _compute_frontiers(self) -> dict[int, list[BasicBlock]]:
        frontiers: dict[int, list[BasicBlock]] = {id(b): [] for b in self.rpo}
        for b in self.rpo:
            preds = [p for p in self._preds[b] if id(p) in self._index]
            if len(preds) < 2:
                continue
            target_idom = self.idom.get(id(b))
            for p in preds:
                runner = p
                while runner is not target_idom and runner is not None:
                    fl = frontiers[id(runner)]
                    if b not in fl:
                        fl.append(b)
                    runner = self.idom.get(id(runner))
        return frontiers

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True if ``a`` dominates ``b`` (reflexive)."""
        runner: Optional[BasicBlock] = b
        while runner is not None:
            if runner is a:
                return True
            nxt = self.idom.get(id(runner))
            if nxt is runner:
                return False
            runner = nxt
        return False


def _reverse_postorder(fn: Function) -> list[BasicBlock]:
    seen: set[int] = set()
    order: list[BasicBlock] = []

    def visit(b: BasicBlock) -> None:
        stack = [(b, iter(b.successors))]
        seen.add(id(b))
        while stack:
            block, it = stack[-1]
            advanced = False
            for s in it:
                if id(s) not in seen:
                    seen.add(id(s))
                    stack.append((s, iter(s.successors)))
                    advanced = True
                    break
            if not advanced:
                order.append(block)
                stack.pop()

    visit(fn.entry)
    order.reverse()
    return order


class Loop:
    """A natural loop: header plus body blocks."""

    __slots__ = ("header", "blocks", "latches")

    def __init__(self, header: BasicBlock):
        self.header = header
        self.blocks: list[BasicBlock] = [header]
        self.latches: list[BasicBlock] = []

    def contains(self, b: BasicBlock) -> bool:
        return any(x is b for x in self.blocks)


def find_loops(fn: Function, dom: Optional[DominatorTree] = None) -> list[Loop]:
    """Detect natural loops from back edges (latch -> header it dominates)."""
    dom = dom or DominatorTree(fn)
    preds = fn.predecessors()
    loops: dict[int, Loop] = {}
    for b in dom.rpo:
        for s in b.successors:
            if dom.dominates(s, b):  # back edge b -> s
                loop = loops.get(id(s))
                if loop is None:
                    loop = Loop(s)
                    loops[id(s)] = loop
                loop.latches.append(b)
                # Walk predecessors from the latch back to the header.
                work = [b]
                while work:
                    x = work.pop()
                    if loop.contains(x) or x is s:
                        continue
                    loop.blocks.append(x)
                    work.extend(preds[x])
    return list(loops.values())


def unreachable_blocks(fn: Function) -> list[BasicBlock]:
    """Blocks not reachable from the entry (candidates for removal)."""
    reachable: set[int] = set()
    work = [fn.entry]
    while work:
        b = work.pop()
        if id(b) in reachable:
            continue
        reachable.add(id(b))
        work.extend(b.successors)
    return [b for b in fn.blocks if id(b) not in reachable]


__all__ = ["DominatorTree", "Loop", "find_loops", "unreachable_blocks"]
