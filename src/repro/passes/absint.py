"""Load-time abstract interpretation: prove guards in-policy, then elide.

The eBPF-verifier / MOAT move applied to CARAT KOP: instead of paying a
dynamic ``carat_guard`` check on every access, *prove* at module-load
time that an access can only ever land in policy-allowed memory, and run
that access with no guard at all.  Dynamic guards remain only where the
verifier cannot conclude safety — enforcement becomes hybrid
static+dynamic, with the kernel re-running the analysis at insmod so the
certificate shipped with the module is never trusted on its own.

Abstract domain
---------------

A value is a small union (at most :data:`MAX_ATOMS`) of unsigned-64
intervals ``(lo, hi)``, normalized sorted and disjoint.  Provenance is
positional: the simulated address-space layout gives every allocator a
fixed window, so "this came from ``kmalloc``" is simply the direct-map
interval, "this is a module global" is the module-area interval, and so
on.  All arithmetic refuses wraparound: an address chain whose offset
could overflow the 64-bit space (or its own integer width) widens to
``TOP`` and its guard stays dynamic — this is what rejects the
offset-overflow adversarial modules.

Three kinds of facts feed the evaluation:

- **Field facts**: a module-level fixpoint joins every value stored to
  ``(global, constant offset, size)``.  Reads also join the implicit
  zero initializer.  A store the analysis cannot place (TOP address, or
  a computed address overlapping the module area) havocs all field
  facts — wild stores may alias anything.
- **Summaries**: an internal function's argument ranges are the join
  over its module-internal call sites; exported entry points default to
  TOP.  Small callees are additionally evaluated inline (context
  sensitively, bounded depth) so helper-heavy drivers don't collapse to
  TOP at every call boundary.
- **Contracts**: trusted, kernel-registered declarations (entry-argument
  ranges and global-field ranges) standing in for invariants a local
  analysis cannot see — exactly the role of eBPF helper annotations.
  Contracts are part of the TCB; their canonical digest is bound into
  the verification certificate and checked at insmod, so a module can
  never smuggle its own.

Determinism: the analysis is a pure function of (IR, policy-table
content, contract set).  The compile-time pipeline and the kernel's
insmod re-verification therefore produce identical verdicts unless the
module, policy, or contracts changed — which is precisely what the
certificate check detects.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

from .. import abi
from ..ir.instructions import (
    Alloca,
    BinOp,
    Call,
    Cast,
    Gep,
    ICmp,
    Load,
    Phi,
    Ret,
    Select,
    Store,
)
from ..ir.module import Function, Module
from ..ir.types import IntType, PointerType, StructType
from ..ir.values import (
    Argument,
    ConstantInt,
    ConstantNull,
    GlobalValue,
    GlobalVariable,
    Value,
)
from ..kernel import layout
from .analysis import find_loops
from .guard_opt import _addr_root_offset, counted_induction

U64_MAX = (1 << 64) - 1

#: Full 64-bit range: the "don't know" element.
TOP = ((0, U64_MAX),)

#: Union-domain width: joins merge the closest atoms past this.
MAX_ATOMS = 4

#: Provenance windows of the simulated address space (see kernel.layout).
#: ``heap`` spans the whole direct map up to the next carved-out window,
#: so any RAM size the kernel models stays inside it.
AREAS: dict[str, tuple[int, int]] = {
    "module": (
        layout.MODULE_AREA_BASE,
        layout.MODULE_AREA_BASE + layout.MODULE_AREA_SIZE - 1,
    ),
    "heap": (layout.DIRECT_MAP_BASE, layout.KSTACK_BASE - 1),
    "mmio": (
        layout.VMALLOC_BASE,
        layout.VMALLOC_BASE + layout.VMALLOC_SIZE - 1,
    ),
    "stack": (layout.KSTACK_BASE, layout.KSTACK_BASE + layout.KSTACK_SIZE - 1),
}

_MODULE_AREA = AREAS["module"]

#: Kernel natives that may *write* through a pointer argument (arg index
#: of the destination).  Any other name in this set is read-only with
#: respect to module globals; names outside the set are unknown code and
#: havoc conservatively.  This models the kernel ABI the verifier
#: trusts, the way the eBPF verifier knows its helpers' semantics.
_WRITING_NATIVES = {"memset": 0, "memcpy": 0}
_READONLY_NATIVES = frozenset({
    "kmalloc", "kfree", "printk", "ioremap", "virt_to_phys", "udelay",
    "netif_rx", "request_irq", "free_irq", "mod_timer", "register_chrdev",
})


# ---------------------------------------------------------------------------
# Interval-union arithmetic
# ---------------------------------------------------------------------------


def _norm(atoms) -> tuple:
    """Sort, merge overlapping/adjacent atoms, cap at MAX_ATOMS."""
    atoms = [(lo, hi) for lo, hi in atoms if lo <= hi]
    if not atoms:
        return ()
    atoms.sort()
    merged = [atoms[0]]
    for lo, hi in atoms[1:]:
        mlo, mhi = merged[-1]
        if lo <= mhi + 1:
            merged[-1] = (mlo, max(mhi, hi))
        else:
            merged.append((lo, hi))
    while len(merged) > MAX_ATOMS:
        # Merge across the narrowest gap: loses the least precision.
        best = min(
            range(len(merged) - 1),
            key=lambda i: merged[i + 1][0] - merged[i][1],
        )
        merged[best : best + 2] = [(merged[best][0], merged[best + 1][1])]
    return tuple(merged)


def av_join(a: tuple, b: tuple) -> tuple:
    return _norm(list(a) + list(b))


def av_const(v: int) -> tuple:
    v &= U64_MAX
    return ((v, v),)


def av_is_top(a: tuple) -> bool:
    return a == TOP


def av_overlaps(a: tuple, span: tuple[int, int]) -> bool:
    lo, hi = span
    return any(alo <= hi and lo <= ahi for alo, ahi in a)


def _width_max(value: Value) -> int:
    t = value.type
    if isinstance(t, IntType):
        return t.max_unsigned
    return U64_MAX


def av_top_for(value: Value) -> tuple:
    return ((0, _width_max(value)),)


def av_add(a: tuple, b: tuple, limit: int = U64_MAX) -> tuple:
    if av_is_top(a) or av_is_top(b) or not a or not b:
        return TOP
    out = []
    for alo, ahi in a:
        for blo, bhi in b:
            if ahi + bhi > limit:
                return TOP  # could wrap at this width: refuse
            out.append((alo + blo, ahi + bhi))
    return _norm(out)


def av_sub(a: tuple, b: tuple) -> tuple:
    if av_is_top(a) or av_is_top(b) or not a or not b:
        return TOP
    out = []
    for alo, ahi in a:
        for blo, bhi in b:
            if alo < bhi:
                return TOP  # could wrap below zero
            out.append((alo - bhi, ahi - blo))
    return _norm(out)


def av_mul(a: tuple, b: tuple, limit: int = U64_MAX) -> tuple:
    if av_is_top(a) or av_is_top(b) or not a or not b:
        return TOP
    out = []
    for alo, ahi in a:
        for blo, bhi in b:
            if ahi * bhi > limit:
                return TOP
            out.append((alo * blo, ahi * bhi))
    return _norm(out)


def av_sext(a: tuple, src_bits: int, dst_bits: int) -> tuple:
    """Sign-extend the unsigned representation from src to dst width."""
    if not a:
        return ()
    boundary = 1 << (src_bits - 1)
    shift = (1 << dst_bits) - (1 << src_bits)
    out = []
    for lo, hi in a:
        if hi < boundary:  # wholly non-negative
            out.append((lo, hi))
        elif lo >= boundary:  # wholly negative
            out.append((lo + shift, hi + shift))
        else:  # straddles the sign boundary: split
            out.append((lo, boundary - 1))
            out.append((boundary + shift, hi + shift))
    return _norm(out)


# ---------------------------------------------------------------------------
# Contracts
# ---------------------------------------------------------------------------


def area_interval(name: str) -> tuple[int, int]:
    return AREAS[name]


def _area_pointer(area: str, reserve: int) -> tuple[int, int]:
    """Possible values of a pointer into ``area`` with ``reserve`` bytes
    of object guaranteed to fit above it (allocators place whole objects
    inside their windows, so the pointer cannot sit in the last
    ``reserve - 1`` bytes)."""
    lo, hi = AREAS[area]
    if reserve > 0:
        hi = hi - reserve + 1
        if hi < lo:
            return (0, U64_MAX)
    return (lo, hi)


@dataclass(frozen=True)
class ArgContract:
    """Trusted range of an exported entry point's argument.

    ``area`` names a provenance window; ``reserve`` is the object size
    the caller guarantees to fit above the pointer.
    """

    function: str
    arg: int
    lo: int = 0
    hi: int = 0
    area: str = ""
    reserve: int = 0

    def interval(self) -> tuple[int, int]:
        if self.area:
            return _area_pointer(self.area, self.reserve)
        return (self.lo, self.hi)

    def canonical(self) -> str:
        lo, hi = self.interval()
        return f"arg|{self.function}|{self.arg}|{lo:x}|{hi:x}"


@dataclass(frozen=True)
class FieldContract:
    """Trusted range of a global's field, named by dotted path.

    ``path=""`` addresses a scalar global directly.  The path resolves
    against the module's own struct layout at analysis time, so the
    contract is stated symbolically and applies only to modules that
    actually declare the global/field.  ``area``/``reserve`` as in
    :class:`ArgContract`.
    """

    glob: str
    path: str = ""
    lo: int = 0
    hi: int = 0
    area: str = ""
    reserve: int = 0

    def interval(self) -> tuple[int, int]:
        if self.area:
            return _area_pointer(self.area, self.reserve)
        return (self.lo, self.hi)

    def canonical(self) -> str:
        lo, hi = self.interval()
        return f"field|{self.glob}|{self.path}|{lo:x}|{hi:x}"


class ContractSet:
    """An ordered, digestable collection of trusted contracts."""

    def __init__(self, items=()):
        self.items = tuple(items)

    def __len__(self) -> int:
        return len(self.items)

    def digest(self) -> str:
        h = hashlib.sha256()
        for line in sorted(c.canonical() for c in self.items):
            h.update(line.encode())
            h.update(b"\n")
        return h.hexdigest()

    def arg_map(self) -> dict[tuple[str, int], tuple]:
        out: dict[tuple[str, int], tuple] = {}
        for c in self.items:
            if isinstance(c, ArgContract):
                out[(c.function, c.arg)] = (c.interval(),)
        return out

    def field_map(self, module: Module) -> dict[tuple[str, int, int], tuple]:
        """Resolve field contracts against this module's globals.

        Contracts naming globals or fields the module does not declare
        are skipped: the set is kernel-wide, modules opt in by shape.
        """
        out: dict[tuple[str, int, int], tuple] = {}
        for c in self.items:
            if not isinstance(c, FieldContract):
                continue
            g = module.globals.get(c.glob)
            if g is None:
                continue
            t = g.value_type
            offset = 0
            ok = True
            if c.path:
                for part in c.path.split("."):
                    if not isinstance(t, StructType):
                        ok = False
                        break
                    try:
                        idx = t.field_index(part)
                    except KeyError:
                        ok = False
                        break
                    offset += t.field_offset(idx)
                    t = t.fields[idx]
            if not ok or isinstance(t, StructType):
                continue
            size = t.size_bytes()
            if size > 8:
                continue
            lo, hi = c.interval()
            # Clip to what the field can physically hold.
            hi = min(hi, (1 << (8 * size)) - 1)
            if lo > hi:
                continue
            out[(c.glob, offset, size)] = ((lo, hi),)
        return out


EMPTY_CONTRACTS = ContractSet()


# ---------------------------------------------------------------------------
# The verifier
# ---------------------------------------------------------------------------


def _is_guard_call(inst) -> bool:
    return isinstance(inst, Call) and (
        inst.is_guard or inst.callee.name == abi.GUARD_SYMBOL
    )


@dataclass
class VerificationReport:
    """Deterministic per-guard-site verdicts for one module."""

    verdicts: tuple[tuple[str, tuple[int, ...]], ...]
    guards_proven: int
    guards_dynamic: int
    contracts_digest: str

    def proven_map(self) -> dict[str, tuple[int, ...]]:
        return dict(self.verdicts)


class _Frame:
    """One evaluation context: a function plus abstract argument values."""

    __slots__ = ("fn", "args", "memo", "busy")

    def __init__(self, fn: Function, args: tuple):
        self.fn = fn
        self.args = args
        self.memo: dict[int, tuple] = {}
        self.busy: set[int] = set()


class ModuleVerifier:
    """Abstract-interpretation verdicts for every guard site in a module.

    ``run()`` is pure with respect to its inputs; the kernel re-runs it
    at insmod with its own policy table and contract registry and
    compares verdicts against the shipped certificate.
    """

    MAX_ROUNDS = 10
    MAX_INLINE_DEPTH = 4
    MAX_INLINE_INSTS = 80

    def __init__(self, module: Module, table,
                 contracts: Optional[ContractSet] = None):
        self.module = module
        self.table = table
        self.contracts = contracts if contracts is not None else EMPTY_CONTRACTS
        self._contract_args = self.contracts.arg_map()
        self._contract_fields = self.contracts.field_map(module)
        self.field_facts: dict[tuple[str, int, int], tuple] = {}
        self.store_keys: dict[str, set[tuple[int, int]]] = {}
        self.havoc_fields = False
        self.arg_summary: dict[str, list[tuple]] = {}
        self.ret_summary: dict[str, tuple] = {}
        self.reached: set[str] = set()
        self._phi_ranges: dict[int, tuple] = {}
        self._phi_scanned: set[str] = set()
        self._inline_cache: dict = {}
        self._call_stack: list = []
        self._depth = 0

    # -- public API ---------------------------------------------------------

    def run(self) -> VerificationReport:
        defined = list(self.module.defined_functions())
        for fn in defined:
            exported = fn.linkage == "exported"
            args = []
            for i, a in enumerate(fn.args):
                c = self._contract_args.get((fn.name, i))
                if c is not None:
                    args.append(c)
                elif exported:
                    args.append(av_top_for(a))
                else:
                    args.append(())  # bottom until a call site reaches it
            self.arg_summary[fn.name] = args
            if exported:
                self.reached.add(fn.name)

        self._fixpoint(defined)

        # Unreached internal functions get TOP args for the verdict walk:
        # claiming their guards proven because "no one calls them" would
        # be wrong the moment a later kernel export binds them.
        for fn in defined:
            args = self.arg_summary[fn.name]
            for i, av in enumerate(args):
                if not av:
                    args[i] = av_top_for(fn.args[i])

        verdicts = []
        proven = dynamic = 0
        for fn in defined:
            frame = _Frame(fn, tuple(self.arg_summary[fn.name]))
            bits = []
            for block in fn.blocks:
                for inst in block.instructions:
                    if inst.is_terminator:
                        break
                    if _is_guard_call(inst):
                        ok = 1 if self._prove(inst, frame) else 0
                        bits.append(ok)
                        proven += ok
                        dynamic += 1 - ok
            verdicts.append((fn.name, tuple(bits)))
        return VerificationReport(
            verdicts=tuple(verdicts),
            guards_proven=proven,
            guards_dynamic=dynamic,
            contracts_digest=self.contracts.digest(),
        )

    # -- fixpoint over module-level facts -----------------------------------

    def _fixpoint(self, defined: list[Function]) -> None:
        by_name = {fn.name: fn for fn in defined}
        for round_no in range(self.MAX_ROUNDS):
            self._inline_cache.clear()
            changed = False
            for fn in defined:
                if fn.name not in self.reached:
                    continue
                frame = _Frame(fn, tuple(self.arg_summary[fn.name]))
                for inst in fn.instructions():
                    if isinstance(inst, Store):
                        changed |= self._transfer_store(inst, frame)
                    elif isinstance(inst, Call) and not _is_guard_call(inst):
                        changed |= self._transfer_call(inst, frame, by_name)
                    elif isinstance(inst, Ret) and inst.value is not None:
                        av = av_join(
                            self.ret_summary.get(fn.name, ()),
                            self._eval(inst.value, frame),
                        )
                        if av != self.ret_summary.get(fn.name, ()):
                            self.ret_summary[fn.name] = av
                            changed = True
            if not changed:
                return
        # Did not stabilize inside the budget: widen everything mutable
        # to TOP.  Sound (TOP proves nothing) and terminating.
        self.havoc_fields = True
        for name in list(self.ret_summary):
            self.ret_summary[name] = TOP
        for fn in defined:
            if fn.linkage != "exported":
                self.arg_summary[fn.name] = [
                    av_top_for(a) for a in fn.args
                ]
        self._inline_cache.clear()

    def _transfer_store(self, inst: Store, frame: _Frame) -> bool:
        root, offset = _addr_root_offset(inst.pointer)
        value_av = self._eval(inst.value, frame)
        if isinstance(root, GlobalVariable) and offset >= 0:
            key = (root.name, offset, inst.access_size)
            self.store_keys.setdefault(root.name, set()).add(
                (offset, inst.access_size)
            )
            if key in self._contract_fields:
                return False  # contracted fields are trusted, not tracked
            old = self.field_facts.get(key, ())
            new = av_join(old, value_av)
            if new != old:
                self.field_facts[key] = new
                return True
            return False
        # A store the analysis cannot place: if it may land in the
        # module area it may alias any global field.
        addr_av = self._eval(inst.pointer, frame)
        if av_overlaps(addr_av, _MODULE_AREA) and not self.havoc_fields:
            self.havoc_fields = True
            return True
        return False

    def _transfer_call(self, inst: Call, frame: _Frame,
                       by_name: dict[str, Function]) -> bool:
        callee = inst.callee
        target = by_name.get(callee.name)
        if target is None or target.is_declaration:
            return self._transfer_native(inst, frame)
        changed = False
        if target.name not in self.reached:
            self.reached.add(target.name)
            changed = True
        summary = self.arg_summary[target.name]
        for i, arg in enumerate(inst.args):
            if i >= len(summary):
                break
            if (target.name, i) in self._contract_args:
                continue  # contract pins the argument range
            av = av_join(summary[i], self._eval(arg, frame))
            if av != summary[i]:
                summary[i] = av
                changed = True
        return changed

    def _transfer_native(self, inst: Call, frame: _Frame) -> bool:
        name = inst.callee.name
        if name in _READONLY_NATIVES or name == abi.GUARD_SYMBOL:
            return False
        dest_index = _WRITING_NATIVES.get(name)
        if dest_index is not None:
            if dest_index < len(inst.args):
                dest = self._eval(inst.args[dest_index], frame)
                if av_overlaps(dest, _MODULE_AREA) and not self.havoc_fields:
                    self.havoc_fields = True
                    return True
            return False
        # Unknown extern: if any argument may point into the module
        # area, assume it can write there.
        for arg in inst.args:
            if isinstance(arg.type, (PointerType, IntType)):
                av = self._eval(arg, frame)
                if av_overlaps(av, _MODULE_AREA) and not self.havoc_fields:
                    self.havoc_fields = True
                    return True
        return False

    # -- verdicts -----------------------------------------------------------

    def _prove(self, guard: Call, frame: _Frame) -> bool:
        addr, size, flags = guard.args
        size_av = self._eval(size, frame)
        flags_av = self._eval(flags, frame)
        # First-match semantics make a *larger* access a different
        # query, not a stricter one, so only exact constant sizes are
        # provable.  Guard sizes are constants in practice.
        if len(size_av) != 1 or size_av[0][0] != size_av[0][1]:
            return False
        if len(flags_av) != 1 or flags_av[0][0] != flags_av[0][1]:
            return False
        nbytes = size_av[0][0]
        fl = flags_av[0][0]
        if nbytes < 1:
            return False
        addr_av = self._eval(addr, frame)
        if not addr_av or av_is_top(addr_av):
            return False
        return all(
            self.table.check_range(lo, hi, nbytes, fl) for lo, hi in addr_av
        )

    # -- abstract evaluation ------------------------------------------------

    def _eval(self, value: Value, frame: _Frame) -> tuple:
        key = id(value)
        got = frame.memo.get(key)
        if got is not None:
            return got
        av = self._compute(value, frame)
        frame.memo[key] = av
        return av

    def _compute(self, value: Value, frame: _Frame) -> tuple:
        if isinstance(value, ConstantInt):
            return ((value.value, value.value),)
        if isinstance(value, ConstantNull):
            return ((0, 0),)
        if isinstance(value, Argument):
            if value.index < len(frame.args):
                av = frame.args[value.index]
                return av if av else av_top_for(value)
            return av_top_for(value)
        if isinstance(value, GlobalVariable):
            # The loader places the whole global inside the module
            # window, so its address cannot sit in the last size-1 bytes.
            return (_area_pointer("module", value.value_type.size_bytes()),)
        if isinstance(value, GlobalValue):
            return (_MODULE_AREA,)
        if isinstance(value, Alloca):
            return (_area_pointer("stack", value.size_bytes()),)
        if isinstance(value, Cast):
            return self._compute_cast(value, frame)
        if isinstance(value, BinOp):
            return self._compute_binop(value, frame)
        if isinstance(value, Gep):
            base = self._eval(value.base, frame)
            index = self._eval(value.index, frame)
            scaled = av_mul(index, av_const(value.scale)) if value.scale \
                else av_const(0)
            av = av_add(base, scaled)
            disp = value.displacement
            if disp >= 0:
                return av_add(av, av_const(disp))
            return av_sub(av, av_const(-disp))
        if isinstance(value, ICmp):
            return ((0, 1),)
        if isinstance(value, Select):
            return av_join(
                self._eval(value.operands[1], frame),
                self._eval(value.operands[2], frame),
            )
        if isinstance(value, Phi):
            return self._compute_phi(value, frame)
        if isinstance(value, Load):
            return self._compute_load(value, frame)
        if isinstance(value, Call):
            return self._compute_call(value, frame)
        return av_top_for(value)

    def _compute_cast(self, value: Cast, frame: _Frame) -> tuple:
        inner = self._eval(value.value, frame)
        op = value.op
        if op in ("bitcast", "ptrtoint", "inttoptr", "zext"):
            return inner
        if op == "sext":
            src = value.value.type
            dst = value.type
            if isinstance(src, IntType) and isinstance(dst, IntType):
                return av_sext(inner, src.bits, dst.bits)
            return av_top_for(value)
        if op == "trunc":
            limit = _width_max(value)
            if inner and inner[-1][1] <= limit:
                return inner
            return av_top_for(value)
        return av_top_for(value)

    def _compute_binop(self, value: BinOp, frame: _Frame) -> tuple:
        limit = _width_max(value)
        lhs = self._eval(value.lhs, frame)
        rhs = self._eval(value.rhs, frame)
        op = value.op
        if op == "add":
            av = av_add(lhs, rhs, limit)
        elif op == "sub":
            av = av_sub(lhs, rhs)
        elif op == "mul":
            av = av_mul(lhs, rhs, limit)
        elif op == "shl" and len(rhs) == 1 and rhs[0][0] == rhs[0][1]:
            av = av_mul(lhs, av_const(1 << rhs[0][0]), limit)
        else:
            av = av_top_for(value)
        if av_is_top(av) or (av and av[-1][1] > limit):
            return av_top_for(value)
        return av

    def _compute_phi(self, value: Phi, frame: _Frame) -> tuple:
        fn = frame.fn
        if fn.name not in self._phi_scanned:
            self._phi_scanned.add(fn.name)
            for loop in find_loops(fn):
                iv = counted_induction(loop)
                if iv is not None:
                    phi, init, _step, last = iv
                    self._phi_ranges[id(phi)] = ((init, last),)
        ranged = self._phi_ranges.get(id(value))
        if ranged is not None:
            return ranged
        key = id(value)
        if key in frame.busy:
            return av_top_for(value)  # loop-carried, not counted
        frame.busy.add(key)
        try:
            av: tuple = ()
            for incoming, _block in value.incoming:
                av = av_join(av, self._eval(incoming, frame))
                if av_is_top(av):
                    break
        finally:
            frame.busy.discard(key)
        return av if av else av_top_for(value)

    def _compute_load(self, value: Load, frame: _Frame) -> tuple:
        root, offset = _addr_root_offset(value.pointer)
        if not (isinstance(root, GlobalVariable) and offset >= 0):
            return av_top_for(value)
        size = value.access_size
        key = (root.name, offset, size)
        contract = self._contract_fields.get(key)
        if contract is not None:
            return contract
        if self.havoc_fields:
            return av_top_for(value)
        # A store at a different offset/size overlapping these bytes
        # reinterprets them: give up on this field.
        for s_off, s_size in self.store_keys.get(root.name, ()):
            if (s_off, s_size) != (offset, size) and \
                    s_off < offset + size and offset < s_off + s_size:
                return av_top_for(value)
        fact = self.field_facts.get(key, ())
        av = av_join(fact, av_const(0))  # the zero initializer
        limit = _width_max(value)
        if av and av[-1][1] > limit:
            return av_top_for(value)
        return av

    def _compute_call(self, value: Call, frame: _Frame) -> tuple:
        callee = value.callee
        name = callee.name
        if _is_guard_call(value):
            return ((0, 0),)
        target = self.module.functions.get(name)
        if target is None or target.is_declaration:
            if name in ("kmalloc", "ioremap"):
                area = "heap" if name == "kmalloc" else "mmio"
                size_arg = value.args[0 if name == "kmalloc" else 1] \
                    if len(value.args) > (0 if name == "kmalloc" else 1) \
                    else None
                reserve = 0
                if size_arg is not None:
                    size_av = self._eval(size_arg, frame)
                    if size_av and not av_is_top(size_av):
                        reserve = size_av[-1][1]
                return (_area_pointer(area, reserve),)
            return av_top_for(value)
        # Defined callee: evaluate inline when small, else use the
        # context-insensitive return summary.
        args_key = tuple(self._eval(a, frame) for a in value.args)
        cache_key = (name, args_key)
        cached = self._inline_cache.get(cache_key)
        if cached is not None:
            return cached
        too_big = sum(len(b) for b in target.blocks) > self.MAX_INLINE_INSTS
        recursing = any(entry == cache_key for entry in self._call_stack)
        if too_big or recursing or self._depth >= self.MAX_INLINE_DEPTH:
            summary = self.ret_summary.get(name)
            av = summary if summary else av_top_for(value)
            if av and av[-1][1] > _width_max(value):
                av = av_top_for(value)
            return av
        self._call_stack.append(cache_key)
        self._depth += 1
        try:
            child = _Frame(target, args_key)
            av: tuple = ()
            for inst in target.instructions():
                if isinstance(inst, Ret) and inst.value is not None:
                    av = av_join(av, self._eval(inst.value, child))
                    if av_is_top(av):
                        break
        finally:
            self._call_stack.pop()
            self._depth -= 1
        if not av:
            av = av_top_for(value)
        if av and av[-1][1] > _width_max(value):
            av = av_top_for(value)
        self._inline_cache[cache_key] = av
        return av


def elidable_guard_ids(module: Module,
                       verdicts: dict[str, tuple[int, ...]]) -> set[int]:
    """``id()`` of every guard Call a verdict map proves, walking guard
    sites in the same block order / ordinal scheme as the execution
    engines (``VMTracer.site_for`` and the compiled translator)."""
    out: set[int] = set()
    for fn in module.defined_functions():
        bits = verdicts.get(fn.name, ())
        ordinal = 0
        for block in fn.blocks:
            for inst in block.instructions:
                if inst.is_terminator:
                    break
                if _is_guard_call(inst):
                    if ordinal < len(bits) and bits[ordinal]:
                        out.add(id(inst))
                    ordinal += 1
    return out


__all__ = [
    "AREAS",
    "ArgContract",
    "ContractSet",
    "EMPTY_CONTRACTS",
    "FieldContract",
    "ModuleVerifier",
    "VerificationReport",
    "area_interval",
    "av_join",
    "elidable_guard_ids",
]
