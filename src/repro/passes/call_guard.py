"""Kernel-call guarding (paper §5's control-flow concern, implemented).

    "CARAT KOP also does not prevent control-flow attacks, where a module
     might call an arbitrary function in the kernel to perform a
     potentially malicious task."

This pass closes the *direct-call* half of that gap: every call from the
module to an **external kernel symbol** is preceded by::

    call void @carat_call_guard(i8* <symbol name>)

so the policy module can hold a per-kernel allowlist of callable symbols
("this module may use kmalloc/kfree/printk and nothing else").  Indirect
calls do not exist in the mini-C subset, so together with the inline-asm
attestation this gives whole-module call-target integrity.
"""

from __future__ import annotations

from ..ir import FunctionType, Module, PointerType, I8, I8PTR, VOID
from ..ir.instructions import Call, Cast
from ..ir.values import ConstantString, GlobalVariable
from .intrinsic_guard import INTRINSIC_GUARD_SYMBOL

CALL_GUARD_SYMBOL = "carat_call_guard"
META_CALL_GUARDED = "carat.call_guarded"

#: Guard plumbing itself must not be recursively guarded.
_EXEMPT = frozenset(
    {"carat_guard", INTRINSIC_GUARD_SYMBOL, CALL_GUARD_SYMBOL}
)


class CallGuardPass:
    name = "kop-call-guard"

    def __init__(self) -> None:
        self.guards_inserted = 0

    def run(self, module: Module) -> bool:
        if module.metadata.get(META_CALL_GUARDED):
            return False
        sites = [
            (block, inst)
            for fn in module.defined_functions()
            for block in fn.blocks
            for inst in list(block.instructions)
            if isinstance(inst, Call)
            and inst.callee.is_declaration
            and inst.callee.name not in _EXEMPT
            and not inst.is_guard
        ]
        module.metadata[META_CALL_GUARDED] = True
        if not sites:
            return False
        guard = module.declare_function(
            CALL_GUARD_SYMBOL, FunctionType(VOID, [I8PTR]), "external"
        )
        name_globals: dict[str, GlobalVariable] = {}
        for block, inst in sites:
            target = inst.callee.name
            g = name_globals.get(target)
            if g is None:
                data = ConstantString(target.encode() + b"\x00")
                gname = f".callee.{target}"
                g = module.globals.get(gname)
                if g is None:
                    g = GlobalVariable(data.type, gname, data, "internal", True)
                    module.add_global(g)
                name_globals[target] = g
            fn = block.parent
            assert fn is not None
            cast = Cast("bitcast", g, PointerType(I8), fn.unique_name("cname"))
            block.insert_before(cast, inst)
            call = Call(guard, [cast])
            block.insert_before(call, inst)
            self.guards_inserted += 1
        return True


__all__ = ["CALL_GUARD_SYMBOL", "CallGuardPass", "META_CALL_GUARDED"]
