"""Peephole simplification: constant folding and comparison collapsing.

The front end emits C-faithful but noisy sequences (``sext i32 0 to
i64``, ``icmp ne (zext i1 %c), 0``).  This pass folds them so instruction
and guard counts reflect what an optimizing compiler would hand the CARAT
KOP pass — the paper applies its transform to normally-optimized kernel
builds (§4.1: "the same compiler was used, with the same flags").

Run *before* guard injection: it never touches loads/stores, but fewer
dead instructions means a cleaner timing signal in the VM.
"""

from __future__ import annotations

from typing import Optional

from ..ir import Function, Module
from ..ir.instructions import BinOp, Cast, ICmp, Phi, Select
from ..ir.types import IntType
from ..ir.values import ConstantInt, Value


def _fold_cast(inst: Cast) -> Optional[Value]:
    v = inst.value
    # inttoptr(ptrtoint x) -> x and ptrtoint(inttoptr x) -> x when the
    # types line up: the front end materializes pointers as i64 in memory,
    # so these round trips are everywhere and hide address roots from the
    # guard optimizer.
    if isinstance(v, Cast):
        if (
            inst.op == "inttoptr"
            and v.op == "ptrtoint"
            and v.value.type is inst.type
        ):
            return v.value
        if (
            inst.op == "ptrtoint"
            and v.op == "inttoptr"
            and v.value.type is inst.type
        ):
            return v.value
        if inst.op == "bitcast" and v.op == "bitcast" and v.value.type is inst.type:
            return v.value
    if not isinstance(v, ConstantInt):
        return None
    if inst.op in ("zext", "trunc") and isinstance(inst.type, IntType):
        return ConstantInt(inst.type, v.value)
    if inst.op == "sext" and isinstance(inst.type, IntType):
        return ConstantInt(inst.type, v.signed)
    return None


def _fold_binop(inst: BinOp) -> Optional[Value]:
    a, b = inst.lhs, inst.rhs
    if not (isinstance(a, ConstantInt) and isinstance(b, ConstantInt)):
        # Algebraic identities with one constant.
        if isinstance(b, ConstantInt):
            if inst.op in ("add", "sub", "or", "xor", "shl", "lshr", "ashr") and b.value == 0:
                return a
            if inst.op == "mul" and b.value == 1:
                return a
        if isinstance(a, ConstantInt):
            if inst.op in ("add", "or", "xor") and a.value == 0:
                return b
            if inst.op == "mul" and a.value == 1:
                return b
        return None
    t = a.type
    assert isinstance(t, IntType)
    ua, ub = a.value, b.value
    sa, sb = a.signed, b.signed
    op = inst.op
    try:
        if op == "add":
            return ConstantInt(t, ua + ub)
        if op == "sub":
            return ConstantInt(t, ua - ub)
        if op == "mul":
            return ConstantInt(t, ua * ub)
        if op == "and":
            return ConstantInt(t, ua & ub)
        if op == "or":
            return ConstantInt(t, ua | ub)
        if op == "xor":
            return ConstantInt(t, ua ^ ub)
        if op == "shl":
            return ConstantInt(t, ua << (ub % t.bits))
        if op == "lshr":
            return ConstantInt(t, ua >> (ub % t.bits))
        if op == "ashr":
            return ConstantInt(t, sa >> (ub % t.bits))
        if op == "sdiv" and sb != 0:
            return ConstantInt(t, int(sa / sb))
        if op == "udiv" and ub != 0:
            return ConstantInt(t, ua // ub)
        if op == "srem" and sb != 0:
            return ConstantInt(t, sa - int(sa / sb) * sb)
        if op == "urem" and ub != 0:
            return ConstantInt(t, ua % ub)
    except (ZeroDivisionError, OverflowError):  # pragma: no cover
        return None
    return None


_ICMP_FN = {
    "eq": lambda a, b, sa, sb: a == b,
    "ne": lambda a, b, sa, sb: a != b,
    "ult": lambda a, b, sa, sb: a < b,
    "ule": lambda a, b, sa, sb: a <= b,
    "ugt": lambda a, b, sa, sb: a > b,
    "uge": lambda a, b, sa, sb: a >= b,
    "slt": lambda a, b, sa, sb: sa < sb,
    "sle": lambda a, b, sa, sb: sa <= sb,
    "sgt": lambda a, b, sa, sb: sa > sb,
    "sge": lambda a, b, sa, sb: sa >= sb,
}


def _fold_icmp(inst: ICmp) -> Optional[Value]:
    a, b = inst.lhs, inst.rhs
    if isinstance(a, ConstantInt) and isinstance(b, ConstantInt):
        result = _ICMP_FN[inst.pred](a.value, b.value, a.signed, b.signed)
        return ConstantInt(IntType(1), int(result))
    # icmp ne (zext i1 %c to iN), 0  ->  %c      (the bool-recheck pattern)
    # icmp eq (zext i1 %c to iN), 0  ->  xor %c, 1 is not cheaper; skip.
    if (
        inst.pred == "ne"
        and isinstance(b, ConstantInt)
        and b.value == 0
        and isinstance(a, Cast)
        and a.op == "zext"
        and isinstance(a.value.type, IntType)
        and a.value.type.bits == 1
    ):
        return a.value
    return None


class PeepholePass:
    """Iterate local simplifications to a fixed point."""

    name = "peephole"

    def __init__(self) -> None:
        self.folded = 0

    def run(self, module: Module) -> bool:
        changed = False
        for fn in module.defined_functions():
            changed |= self._run_on_function(fn)
        return changed

    def _run_on_function(self, fn: Function) -> bool:
        any_change = False
        while True:
            replacements: dict[int, Value] = {}
            for inst in fn.instructions():
                folded: Optional[Value] = None
                if isinstance(inst, Cast):
                    folded = _fold_cast(inst)
                elif isinstance(inst, BinOp):
                    folded = _fold_binop(inst)
                elif isinstance(inst, ICmp):
                    folded = _fold_icmp(inst)
                elif isinstance(inst, Select) and isinstance(
                    inst.operands[0], ConstantInt
                ):
                    folded = (
                        inst.operands[1]
                        if inst.operands[0].value
                        else inst.operands[2]
                    )
                if folded is not None:
                    replacements[id(inst)] = folded
            if not replacements:
                return any_change
            for inst in fn.instructions():
                for i, op in enumerate(inst.operands):
                    r = replacements.get(id(op))
                    while r is not None and id(r) in replacements:
                        r = replacements[id(r)]
                    if r is not None:
                        inst.operands[i] = r
                if isinstance(inst, Phi):
                    new_incoming = []
                    for v, blk in inst.incoming:
                        r = replacements.get(id(v))
                        while r is not None and id(r) in replacements:
                            r = replacements[id(r)]
                        new_incoming.append((r if r is not None else v, blk))
                    inst.incoming = new_incoming
                    inst.operands = [v for v, _ in new_incoming]
            # Remove the folded instructions themselves.
            for block in fn.blocks:
                block.instructions = [
                    i for i in block.instructions if id(i) not in replacements
                ]
            self.folded += len(replacements)
            any_change = True


__all__ = ["PeepholePass"]
