"""Compiler passes: analyses, mem2reg, DCE, and the CARAT KOP transforms."""

from .absint import (
    ArgContract,
    ContractSet,
    FieldContract,
    ModuleVerifier,
    VerificationReport,
    elidable_guard_ids,
)
from .analysis import DominatorTree, Loop, find_loops, unreachable_blocks
from .attestation import AttestationPass
from .call_guard import CallGuardPass
from .dce import DCEPass
from .guard_injection import GuardInjectionPass
from .guard_opt import GuardOptPass
from .manager import ModulePass, PassManager
from .mem2reg import Mem2RegPass
from .peephole import PeepholePass

__all__ = [
    "ArgContract",
    "AttestationPass",
    "CallGuardPass",
    "ContractSet",
    "DCEPass",
    "DominatorTree",
    "FieldContract",
    "GuardInjectionPass",
    "GuardOptPass",
    "Loop",
    "Mem2RegPass",
    "ModulePass",
    "ModuleVerifier",
    "PassManager",
    "PeepholePass",
    "VerificationReport",
    "elidable_guard_ids",
    "find_loops",
    "unreachable_blocks",
]
