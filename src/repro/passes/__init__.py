"""Compiler passes: analyses, mem2reg, DCE, and the CARAT KOP transforms."""

from .analysis import DominatorTree, Loop, find_loops, unreachable_blocks
from .attestation import AttestationPass
from .call_guard import CallGuardPass
from .dce import DCEPass
from .guard_injection import GuardInjectionPass
from .guard_opt import GuardOptPass
from .manager import ModulePass, PassManager
from .mem2reg import Mem2RegPass
from .peephole import PeepholePass

__all__ = [
    "AttestationPass",
    "CallGuardPass",
    "DCEPass",
    "DominatorTree",
    "GuardInjectionPass",
    "GuardOptPass",
    "Loop",
    "Mem2RegPass",
    "ModulePass",
    "PassManager",
    "PeepholePass",
    "find_loops",
    "unreachable_blocks",
]
