"""Guard optimization (the CARAT CAKE-style optimizing tier, paper §2/§3.3).

CARAT KOP deliberately ships *without* guard optimization; CARAT CAKE
"hoists guards and amortizes them across many references" using NOELLE.
This pass implements the production optimizing tier layered on the
faithful paper pipeline.  The individual transforms are selectable so the
``-O`` levels of :mod:`repro.core.pipeline` can compose them:

1. **Dominating-guard elimination** (``-O1``) — a guard is redundant if a
   structurally identical guard (same address computation, same flags,
   covering size) executes on every path to it.
2. **Loop-invariant guard hoisting** (``-O1``) — a guard whose address is
   computed outside the loop moves to the preheader and executes once
   instead of once per iteration.  (Speculative: the hoisted guard fires
   even when the loop body would have run zero times.  That is the same
   trade CARAT CAKE makes, and it is conservative in the *safe*
   direction — it can only reject more, never fewer, accesses.)
3. **Range coalescing** (``-O2``) — merges many small guards over one
   object into a single wide guard covering their whole byte range:

   * *Block coalescing*: guards in one basic block whose addresses are
     ``root + constant`` for a common root (the dominant pattern when a
     driver fills a descriptor struct field by field) collapse into one
     guard over ``[min_offset, max_offset + size)``.
   * *Loop-sweep coalescing*: a guard on ``base + i*stride`` inside a
     counted loop (constant init/step/limit) is replaced by one preheader
     guard covering the full swept range — the ring-buffer/descriptor-
     array sweep that dominates the e1000e driver.

   Both directions are conservative the same way hoisting is: the wide
   guard covers a superset of the bytes the small guards touched (it also
   covers gaps between fields), so it can only deny more, never fewer,
   accesses.

Guard keys use a *structural value numbering* per function rather than
``id()`` of the address root: CPython can reuse an object's ``id()``
after garbage collection, and structurally identical address chains
(mini-C re-derives struct-field GEP chains at every access) should
compare equal anyway.  The numbering pins every visited value, so no
``id`` it has handed out can be recycled while the pass runs.
"""

from __future__ import annotations

from typing import Optional

from .. import abi
from ..ir import BasicBlock, Function, Module
from ..ir.instructions import (
    BinOp,
    Br,
    Call,
    Cast,
    Gep,
    ICmp,
    Instruction,
    Phi,
)
from ..ir.types import I64
from ..ir.values import Argument, Constant, ConstantInt, GlobalValue, Value

from .analysis import DominatorTree, Loop, find_loops

#: Casts that do not change the byte address a pointer refers to.
_ADDR_CASTS = ("bitcast", "inttoptr", "ptrtoint")


def counted_induction(loop: Loop) -> Optional[tuple[Phi, int, int, int]]:
    """Recognize ``for (i = C0; i < C1; i += C2)`` in the loop header.

    Returns ``(phi, init, step, last)`` where ``last`` is the final
    value the induction variable takes inside the loop, or ``None``
    when the loop is not a simple counted sweep.  Shared with the
    load-time verifier (:mod:`repro.passes.absint`), which uses the same
    recognition to bound induction-variable ranges.
    """
    header = loop.header
    term = header.terminator
    if not (isinstance(term, Br) and term.is_conditional):
        return None
    cond = term.condition
    if not (isinstance(cond, ICmp) and cond.pred in ("slt", "ult")):
        return None
    # True edge must stay in the loop, false edge must exit.
    if not (
        loop.contains(term.targets[0])
        and not loop.contains(term.targets[1])
    ):
        return None
    phi, limit = cond.lhs, cond.rhs
    if not (isinstance(phi, Phi) and isinstance(limit, ConstantInt)):
        return None
    if phi.parent is not header or len(phi.incoming) != 2:
        return None
    init: Optional[int] = None
    step: Optional[int] = None
    for value, block in phi.incoming:
        if loop.contains(block):
            if isinstance(value, BinOp) and value.op == "add":
                if value.lhs is phi and isinstance(value.rhs, ConstantInt):
                    step = value.rhs.signed
                elif value.rhs is phi and isinstance(value.lhs, ConstantInt):
                    step = value.lhs.signed
        elif isinstance(value, ConstantInt):
            init = value.signed
    lim = limit.signed
    if init is None or step is None or step <= 0:
        return None
    if init < 0 or lim < 0:
        return None  # keep slt/ult equivalent: nonnegative ranges only
    if lim <= init:
        return None  # zero-trip loop: nothing to cover
    last = init + ((lim - 1 - init) // step) * step
    return phi, init, step, last


class _ValueNumber:
    """Structural value numbering for address computations.

    Pure address arithmetic (constants, globals, arguments, casts, GEPs,
    binops) numbers structurally: two separately materialized chains that
    compute the same bytes get the same key.  Everything else — loads,
    calls, phis, allocas — gets a unique per-object ordinal, because two
    executions of the same instruction may produce different values.

    Every value the numbering touches is pinned in ``_memo`` (the dict
    holds the object itself, not just its ``id``), so the ``id``-based
    lookup can never alias a recycled object.
    """

    __slots__ = ("_memo", "_next_ordinal")

    def __init__(self) -> None:
        self._memo: dict[int, tuple[Value, object]] = {}
        self._next_ordinal = 0

    def key(self, value: Value) -> object:
        entry = self._memo.get(id(value))
        if entry is not None and entry[0] is value:
            return entry[1]
        k = self._compute(value)
        self._memo[id(value)] = (value, k)
        return k

    def _compute(self, value: Value) -> object:
        if isinstance(value, ConstantInt):
            return ("const", str(value.type), value.value)
        if isinstance(value, GlobalValue):
            return ("global", value.name)
        if isinstance(value, Argument):
            return ("arg", value.index)
        if isinstance(value, Cast):
            return ("cast", value.op, str(value.type), self.key(value.value))
        if isinstance(value, Gep):
            return (
                "gep",
                self.key(value.base),
                self.key(value.index),
                value.scale,
                value.displacement,
            )
        if isinstance(value, BinOp):
            return ("binop", value.op, self.key(value.lhs), self.key(value.rhs))
        # Opaque definition (load/call/phi/alloca/other constants): a fresh
        # ordinal, unique to this object for the lifetime of the numbering.
        ordinal = self._next_ordinal
        self._next_ordinal += 1
        return ("inst", ordinal)


def _resolve_pointer_root(value: Value) -> Value:
    """Look through bitcasts to the underlying pointer computation."""
    while isinstance(value, Cast) and value.op == "bitcast":
        value = value.value
    return value


def _guard_key(call: Call, vn: _ValueNumber) -> Optional[tuple[object, int, int]]:
    """(address structure, size, flags) for a guard call, if extractable."""
    addr, size, flags = call.args
    if not isinstance(size, ConstantInt) or not isinstance(flags, ConstantInt):
        return None
    root = _resolve_pointer_root(addr)
    return (vn.key(root), size.value, flags.value)


def _addr_root_offset(value: Value) -> tuple[Value, int]:
    """Decompose an address into ``(root, constant byte offset)``.

    Walks address-preserving casts, ``add``/``sub`` with a constant, and
    constant-index GEPs.  The returned root is the first value the walk
    cannot see through.
    """
    offset = 0
    v = value
    while True:
        if isinstance(v, Cast) and v.op in _ADDR_CASTS:
            v = v.value
            continue
        if isinstance(v, BinOp) and v.op in ("add", "sub"):
            if isinstance(v.rhs, ConstantInt):
                offset += v.rhs.signed if v.op == "add" else -v.rhs.signed
                v = v.lhs
                continue
            if v.op == "add" and isinstance(v.lhs, ConstantInt):
                offset += v.lhs.signed
                v = v.rhs
                continue
            break
        if isinstance(v, Gep) and isinstance(v.index, ConstantInt):
            offset += v.index.signed * v.scale + v.displacement
            v = v.base
            continue
        break
    return v, offset


class GuardOptPass:
    """Eliminate, hoist, and coalesce guards (`-O1`/`-O2` transforms)."""

    name = "kop-guard-opt"

    #: Refuse to widen a guard beyond this many bytes: a pathological span
    #: (e.g. a sweep with a huge constant trip count) would turn one object
    #: guard into a region-sized probe.
    MAX_COALESCE_SPAN = 1 << 16

    def __init__(
        self,
        hoist_loops: bool = True,
        eliminate: bool = True,
        coalesce: bool = False,
    ) -> None:
        self.hoist_loops = hoist_loops
        self.eliminate = eliminate
        self.coalesce = coalesce
        self.guards_removed = 0
        self.guards_hoisted = 0
        self.guards_coalesced = 0

    def run(self, module: Module) -> bool:
        if not module.metadata.get(abi.META_GUARDED):
            return False  # nothing to optimize until guards exist
        changed = False
        for fn in module.defined_functions():
            if self.hoist_loops:
                changed |= self._hoist_loop_guards(fn)
            if self.coalesce:
                changed |= self._coalesce_loop_sweeps(fn)
                changed |= self._coalesce_block_guards(fn)
            if self.eliminate:
                changed |= self._eliminate_dominated(fn)
        if changed:
            remaining = sum(
                1
                for fn in module.defined_functions()
                for inst in fn.instructions()
                if isinstance(inst, Call) and inst.is_guard
            )
            module.metadata[abi.META_GUARD_COUNT] = remaining
        return changed

    # -- dominance-based elimination ------------------------------------------

    def _eliminate_dominated(self, fn: Function) -> bool:
        dom = DominatorTree(fn)
        vn = _ValueNumber()
        guards: list[Call] = [
            inst
            for inst in fn.instructions()
            if isinstance(inst, Call) and inst.is_guard
        ]
        by_key: dict[tuple[object, int, int], list[Call]] = {}
        for g in guards:
            key = _guard_key(g, vn)
            if key is not None:
                by_key.setdefault(key, []).append(g)
        removed = False
        for key, group in by_key.items():
            if len(group) < 2:
                continue
            kept: list[Call] = []
            for g in group:
                dominated = False
                for k in kept:
                    if self._guard_dominates(k, g, dom):
                        dominated = True
                        break
                if dominated:
                    assert g.parent is not None
                    g.parent.remove(g)
                    self.guards_removed += 1
                    removed = True
                else:
                    kept.append(g)
        return removed

    @staticmethod
    def _guard_dominates(a: Call, b: Call, dom: DominatorTree) -> bool:
        ba, bb = a.parent, b.parent
        assert ba is not None and bb is not None
        if ba is bb:
            for inst in ba.instructions:
                if inst is a:
                    return True
                if inst is b:
                    return False
            return False
        return dom.dominates(ba, bb)

    # -- range coalescing ---------------------------------------------------------

    def _coalesce_block_guards(self, fn: Function) -> bool:
        """Merge same-block guards at constant offsets off one root."""
        changed = False
        vn = _ValueNumber()
        for block in fn.blocks:
            groups: dict[tuple[object, int], list[tuple[Call, int, int]]] = {}
            order: list[tuple[object, int]] = []
            for inst in block.instructions:
                if not (isinstance(inst, Call) and inst.is_guard):
                    continue
                addr, size, flags = inst.args
                if not (
                    isinstance(size, ConstantInt)
                    and isinstance(flags, ConstantInt)
                ):
                    continue
                root, off = _addr_root_offset(addr)
                key = (vn.key(root), flags.value)
                if key not in groups:
                    groups[key] = []
                    order.append(key)
                groups[key].append((inst, off, size.value))
            for key in order:
                group = groups[key]
                if len(group) < 2:
                    continue
                lo = min(off for _, off, _ in group)
                hi = max(off + size for _, off, size in group)
                if hi - lo > self.MAX_COALESCE_SPAN:
                    continue
                first, off0, _ = group[0]
                changed = True
                self._emit_wide_guard(
                    fn, block, first, first.args[0], lo - off0, hi - lo
                )
                for g, _, _ in group:
                    block.remove(g)
                self.guards_coalesced += len(group) - 1
        return changed

    def _coalesce_loop_sweeps(self, fn: Function) -> bool:
        """Replace ``base + i*stride`` sweep guards with one range guard."""
        changed = False
        progress = True
        while progress:
            progress = False
            dom = DominatorTree(fn)
            for loop in find_loops(fn, dom):
                iv = self._counted_induction(loop)
                if iv is None:
                    continue
                phi, init, step, last = iv
                sweeps = self._sweep_guards(loop, phi)
                if not sweeps:
                    continue
                preheader = self._get_or_create_preheader(fn, loop)
                if preheader is None:
                    continue
                term = preheader.terminator
                assert term is not None
                loop_ids = {id(b) for b in loop.blocks}
                for guard, gep, size in sweeps:
                    span_off = init * gep.scale + gep.displacement
                    span_size = (last - init) * gep.scale + size
                    if span_size <= 0 or span_size > self.MAX_COALESCE_SPAN:
                        continue
                    base = self._materialize_invariant(
                        fn, gep.base, loop_ids, preheader, term
                    )
                    wide_addr = Gep(
                        base.type,
                        base,
                        ConstantInt(I64, 0),
                        0,
                        span_off,
                        fn.unique_name("gsweep"),
                    )
                    preheader.insert_before(wide_addr, term)
                    addr: Value = wide_addr
                    if addr.type is not guard.args[0].type:
                        cast = Cast(
                            "bitcast",
                            addr,
                            guard.args[0].type,
                            fn.unique_name("gaddr"),
                        )
                        preheader.insert_before(cast, term)
                        addr = cast
                    wide = Call(
                        guard.callee,
                        [
                            addr,
                            ConstantInt(guard.args[1].type, span_size),
                            guard.args[2],
                        ],
                    )
                    wide.is_guard = True
                    preheader.insert_before(wide, term)
                    assert guard.parent is not None
                    guard.parent.remove(guard)
                    self.guards_coalesced += 1
                    changed = True
                    progress = True
                if progress:
                    break  # CFG may have changed; restart loop analysis
        return changed

    def _emit_wide_guard(
        self,
        fn: Function,
        block: BasicBlock,
        before: Call,
        anchor: Value,
        delta: int,
        size: int,
    ) -> None:
        """Insert ``guard(anchor + delta, size)`` in front of ``before``."""
        addr: Value = anchor
        if delta != 0:
            gep = Gep(
                anchor.type,  # anchor is the guard's i8* operand
                anchor,
                ConstantInt(I64, 0),
                0,
                delta,
                fn.unique_name("gcoal"),
            )
            block.insert_before(gep, before)
            addr = gep
        wide = Call(
            before.callee,
            [addr, ConstantInt(before.args[1].type, size), before.args[2]],
        )
        wide.is_guard = True
        block.insert_before(wide, before)

    def _counted_induction(
        self, loop: Loop
    ) -> Optional[tuple[Phi, int, int, int]]:
        return counted_induction(loop)

    def _sweep_guards(
        self, loop: Loop, phi: Phi
    ) -> list[tuple[Call, Gep, int]]:
        """Guards whose address is ``gep(base, phi, stride)`` with an
        invariant base — the descriptor-array sweep shape."""
        loop_ids = {id(b) for b in loop.blocks}
        out: list[tuple[Call, Gep, int]] = []
        for block in loop.blocks:
            for inst in block.instructions:
                if not (isinstance(inst, Call) and inst.is_guard):
                    continue
                addr, size, flags = inst.args
                if not (
                    isinstance(size, ConstantInt)
                    and isinstance(flags, ConstantInt)
                ):
                    continue
                v: Value = addr
                while isinstance(v, Cast) and v.op in _ADDR_CASTS:
                    v = v.value
                if not (isinstance(v, Gep) and v.index is phi and v.scale > 0):
                    continue
                if not self._invariant_addr(v.base, loop_ids):
                    continue
                out.append((inst, v, size.value))
        return out

    def _invariant_addr(self, value: Value, loop_ids: set[int]) -> bool:
        """Loop-invariant pure address arithmetic: defined outside the
        loop, or a cast / constant-index GEP chain over invariant leaves
        (array-decay GEPs are materialized inside the loop body even
        when the array itself is a module global)."""
        if self._defined_outside(value, loop_ids):
            return True
        if isinstance(value, Cast) and value.op in _ADDR_CASTS:
            return self._invariant_addr(value.value, loop_ids)
        if isinstance(value, Gep) and isinstance(value.index, ConstantInt):
            return self._invariant_addr(value.base, loop_ids)
        return False

    def _materialize_invariant(
        self,
        fn: Function,
        value: Value,
        loop_ids: set[int],
        preheader: BasicBlock,
        term: Instruction,
    ) -> Value:
        """A preheader-visible copy of an invariant address chain:
        cast / constant-GEP defs living inside the loop are cloned in
        front of ``term``; everything else is used as-is."""
        if self._defined_outside(value, loop_ids):
            return value
        if isinstance(value, Cast):
            inner = self._materialize_invariant(
                fn, value.value, loop_ids, preheader, term
            )
            clone: Instruction = Cast(
                value.op, inner, value.type, fn.unique_name("ginv")
            )
        elif isinstance(value, Gep):
            base = self._materialize_invariant(
                fn, value.base, loop_ids, preheader, term
            )
            clone = Gep(
                value.type, base, value.index, value.scale,
                value.displacement, fn.unique_name("ginv"),
            )
        else:  # pragma: no cover - guarded by _invariant_addr
            raise AssertionError("not an invariant address chain")
        preheader.insert_before(clone, term)
        return clone

    # -- loop hoisting ------------------------------------------------------------

    def _hoist_loop_guards(self, fn: Function) -> bool:
        changed = False
        # Recompute loops after each preheader insertion (CFG changes).
        progress = True
        while progress:
            progress = False
            dom = DominatorTree(fn)
            for loop in find_loops(fn, dom):
                hoistable = self._hoistable_guards(loop)
                if not hoistable:
                    continue
                preheader = self._get_or_create_preheader(fn, loop)
                if preheader is None:
                    continue
                term = preheader.terminator
                assert term is not None
                for guard in hoistable:
                    # Rebuild the guard in the preheader from the invariant
                    # address root (its definition dominates the preheader:
                    # it dominated every use inside the loop, and the
                    # preheader is on the only non-latch path to the header).
                    root = _resolve_pointer_root(guard.args[0])
                    addr: Value = root
                    if root.type is not guard.args[0].type:
                        cast = Cast(
                            "bitcast", root, guard.args[0].type,
                            fn.unique_name("gaddr"),
                        )
                        preheader.insert_before(cast, term)
                        addr = cast
                    hoisted = Call(guard.callee, [addr, guard.args[1], guard.args[2]])
                    hoisted.is_guard = True
                    preheader.insert_before(hoisted, term)
                    assert guard.parent is not None
                    guard.parent.remove(guard)
                    self.guards_hoisted += 1
                changed = True
                progress = True
                break  # loop structures changed; restart analysis
        return changed

    def _hoistable_guards(self, loop: Loop) -> list[Call]:
        loop_ids = {id(b) for b in loop.blocks}
        out: list[Call] = []
        for block in loop.blocks:
            for inst in block.instructions:
                if not (isinstance(inst, Call) and inst.is_guard):
                    continue
                root = _resolve_pointer_root(inst.args[0])
                if self._defined_outside(root, loop_ids):
                    out.append(inst)
        return out

    @staticmethod
    def _defined_outside(value: Value, loop_ids: set[int]) -> bool:
        if isinstance(value, (Argument, Constant, GlobalValue)):
            return True
        if isinstance(value, Instruction):
            return value.parent is not None and id(value.parent) not in loop_ids
        return False

    def _get_or_create_preheader(
        self, fn: Function, loop: Loop
    ) -> Optional[BasicBlock]:
        preds = fn.predecessors()[loop.header]
        latch_ids = {id(l) for l in loop.latches}
        entries = [p for p in preds if id(p) not in latch_ids]
        if len(entries) != 1:
            return None  # only handle the structured-codegen common case
        entry = entries[0]
        term = entry.terminator
        if isinstance(term, Br) and not term.is_conditional:
            # The entry block already falls straight into the header: it can
            # serve as the preheader directly.
            return entry
        # Split the edge entry -> header.
        preheader = BasicBlock(fn.unique_name(f"{loop.header.name}.preheader"), fn)
        idx = fn.blocks.index(loop.header)
        fn.blocks.insert(idx, preheader)
        br = Br(loop.header)
        br.parent = preheader
        preheader.instructions.append(br)
        # Retarget the entry edge.
        assert term is not None
        targets = getattr(term, "targets", None)
        if targets is not None:
            for i, t in enumerate(targets):
                if t is loop.header:
                    targets[i] = preheader
        if hasattr(term, "default") and term.default is loop.header:  # Switch
            term.default = preheader
        if hasattr(term, "cases"):
            term.cases = [
                (c, preheader if b is loop.header else b) for c, b in term.cases
            ]
        # Fix header phis: the edge from entry now comes from the preheader.
        for phi in loop.header.phis():
            phi.incoming = [
                (v, preheader if b is entry else b) for v, b in phi.incoming
            ]
        return preheader


__all__ = ["GuardOptPass", "counted_induction"]
