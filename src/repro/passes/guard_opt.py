"""Guard optimization (the CARAT CAKE-style ablation, paper §2/§3.3).

CARAT KOP deliberately ships *without* guard optimization; CARAT CAKE
"hoists guards and amortizes them across many references" using NOELLE.
This pass reproduces the two cheapest and highest-yield pieces of that
optimization so the abl2 benchmark can quantify what unoptimized guarding
leaves on the table:

1. **Dominating-guard elimination** — a guard is redundant if an identical
   guard (same address root, same flags, covering size) executes on every
   path to it.
2. **Loop-invariant guard hoisting** — a guard whose address is computed
   outside the loop moves to the preheader and executes once instead of
   once per iteration.  (Speculative: the hoisted guard fires even when
   the loop body would have run zero times.  That is the same trade CARAT
   CAKE makes, and it is conservative in the *safe* direction — it can
   only reject more, never fewer, accesses.)
"""

from __future__ import annotations

from typing import Optional

from .. import abi
from ..ir import BasicBlock, Function, Module
from ..ir.instructions import Br, Call, Cast, Instruction
from ..ir.values import Argument, Constant, ConstantInt, GlobalValue, Value
from .analysis import DominatorTree, Loop, find_loops


def _resolve_pointer_root(value: Value) -> Value:
    """Look through bitcasts to the underlying pointer computation."""
    while isinstance(value, Cast) and value.op == "bitcast":
        value = value.value
    return value


def _guard_key(call: Call) -> Optional[tuple[int, int, int]]:
    """(address root id, size, flags) for a guard call, if extractable."""
    addr, size, flags = call.args
    if not isinstance(size, ConstantInt) or not isinstance(flags, ConstantInt):
        return None
    root = _resolve_pointer_root(addr)
    return (id(root), size.value, flags.value)


class GuardOptPass:
    """Eliminate dominated-redundant guards and hoist loop-invariant ones."""

    name = "kop-guard-opt"

    def __init__(self, hoist_loops: bool = True) -> None:
        self.hoist_loops = hoist_loops
        self.guards_removed = 0
        self.guards_hoisted = 0

    def run(self, module: Module) -> bool:
        if not module.metadata.get(abi.META_GUARDED):
            return False  # nothing to optimize until guards exist
        changed = False
        for fn in module.defined_functions():
            if self.hoist_loops:
                changed |= self._hoist_loop_guards(fn)
            changed |= self._eliminate_dominated(fn)
        if changed:
            remaining = sum(
                1
                for fn in module.defined_functions()
                for inst in fn.instructions()
                if isinstance(inst, Call) and inst.is_guard
            )
            module.metadata[abi.META_GUARD_COUNT] = remaining
        return changed

    # -- dominance-based elimination ------------------------------------------

    def _eliminate_dominated(self, fn: Function) -> bool:
        dom = DominatorTree(fn)
        guards: list[Call] = [
            inst
            for inst in fn.instructions()
            if isinstance(inst, Call) and inst.is_guard
        ]
        by_key: dict[tuple[int, int, int], list[Call]] = {}
        for g in guards:
            key = _guard_key(g)
            if key is not None:
                by_key.setdefault(key, []).append(g)
        removed = False
        for key, group in by_key.items():
            if len(group) < 2:
                continue
            kept: list[Call] = []
            for g in group:
                dominated = False
                for k in kept:
                    if self._guard_dominates(k, g, dom):
                        dominated = True
                        break
                if dominated:
                    assert g.parent is not None
                    g.parent.remove(g)
                    self.guards_removed += 1
                    removed = True
                else:
                    kept.append(g)
        return removed

    @staticmethod
    def _guard_dominates(a: Call, b: Call, dom: DominatorTree) -> bool:
        ba, bb = a.parent, b.parent
        assert ba is not None and bb is not None
        if ba is bb:
            for inst in ba.instructions:
                if inst is a:
                    return True
                if inst is b:
                    return False
            return False
        return dom.dominates(ba, bb)

    # -- loop hoisting ------------------------------------------------------------

    def _hoist_loop_guards(self, fn: Function) -> bool:
        changed = False
        # Recompute loops after each preheader insertion (CFG changes).
        progress = True
        while progress:
            progress = False
            dom = DominatorTree(fn)
            for loop in find_loops(fn, dom):
                hoistable = self._hoistable_guards(loop)
                if not hoistable:
                    continue
                preheader = self._get_or_create_preheader(fn, loop)
                if preheader is None:
                    continue
                term = preheader.terminator
                assert term is not None
                for guard in hoistable:
                    # Rebuild the guard in the preheader from the invariant
                    # address root (its definition dominates the preheader:
                    # it dominated every use inside the loop, and the
                    # preheader is on the only non-latch path to the header).
                    root = _resolve_pointer_root(guard.args[0])
                    addr: Value = root
                    if root.type is not guard.args[0].type:
                        cast = Cast(
                            "bitcast", root, guard.args[0].type,
                            fn.unique_name("gaddr"),
                        )
                        preheader.insert_before(cast, term)
                        addr = cast
                    hoisted = Call(guard.callee, [addr, guard.args[1], guard.args[2]])
                    hoisted.is_guard = True
                    preheader.insert_before(hoisted, term)
                    assert guard.parent is not None
                    guard.parent.remove(guard)
                    self.guards_hoisted += 1
                changed = True
                progress = True
                break  # loop structures changed; restart analysis
        return changed

    def _hoistable_guards(self, loop: Loop) -> list[Call]:
        loop_ids = {id(b) for b in loop.blocks}
        out: list[Call] = []
        for block in loop.blocks:
            for inst in block.instructions:
                if not (isinstance(inst, Call) and inst.is_guard):
                    continue
                root = _resolve_pointer_root(inst.args[0])
                if self._defined_outside(root, loop_ids):
                    out.append(inst)
        return out

    @staticmethod
    def _defined_outside(value: Value, loop_ids: set[int]) -> bool:
        if isinstance(value, (Argument, Constant, GlobalValue)):
            return True
        if isinstance(value, Instruction):
            return value.parent is not None and id(value.parent) not in loop_ids
        return False

    def _get_or_create_preheader(
        self, fn: Function, loop: Loop
    ) -> Optional[BasicBlock]:
        preds = fn.predecessors()[loop.header]
        latch_ids = {id(l) for l in loop.latches}
        entries = [p for p in preds if id(p) not in latch_ids]
        if len(entries) != 1:
            return None  # only handle the structured-codegen common case
        entry = entries[0]
        term = entry.terminator
        if isinstance(term, Br) and not term.is_conditional:
            # The entry block already falls straight into the header: it can
            # serve as the preheader directly.
            return entry
        # Split the edge entry -> header.
        preheader = BasicBlock(fn.unique_name(f"{loop.header.name}.preheader"), fn)
        idx = fn.blocks.index(loop.header)
        fn.blocks.insert(idx, preheader)
        br = Br(loop.header)
        br.parent = preheader
        preheader.instructions.append(br)
        # Retarget the entry edge.
        assert term is not None
        targets = getattr(term, "targets", None)
        if targets is not None:
            for i, t in enumerate(targets):
                if t is loop.header:
                    targets[i] = preheader
        if hasattr(term, "default") and term.default is loop.header:  # Switch
            term.default = preheader
        if hasattr(term, "cases"):
            term.cases = [
                (c, preheader if b is loop.header else b) for c, b in term.cases
            ]
        # Fix header phis: the edge from entry now comes from the preheader.
        for phi in loop.header.phis():
            phi.incoming = [
                (v, preheader if b is entry else b) for v, b in phi.incoming
            ]
        return preheader


__all__ = ["GuardOptPass"]
