"""Trivial dead-code elimination.

Removes instructions with no uses and no side effects (arithmetic, casts,
geps, unused phis).  Loads are conservatively kept: in a kernel module a
load may target MMIO, where a read has device-visible effects — exactly
the kind of access the paper's guards must still see.
"""

from __future__ import annotations

from ..ir import Function, Module
from ..ir.instructions import Instruction, Phi


class DCEPass:
    name = "dce"

    def __init__(self) -> None:
        self.removed = 0

    def run(self, module: Module) -> bool:
        changed = False
        for fn in module.defined_functions():
            changed |= self._run_on_function(fn)
        return changed

    def _run_on_function(self, fn: Function) -> bool:
        removed_any = False
        while True:
            used: set[int] = set()
            for inst in fn.instructions():
                for op in inst.operands:
                    used.add(id(op))
                if isinstance(inst, Phi):
                    for v, _ in inst.incoming:
                        used.add(id(v))
            dead: list[Instruction] = [
                inst
                for inst in fn.instructions()
                if not inst.has_side_effects
                and not inst.is_terminator
                and id(inst) not in used
            ]
            if not dead:
                return removed_any
            for inst in dead:
                assert inst.parent is not None
                inst.parent.remove(inst)
                self.removed += 1
            removed_any = True


__all__ = ["DCEPass"]
