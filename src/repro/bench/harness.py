"""The experiment harness: regenerates every figure in the paper.

Methodology (DESIGN.md §7): each configuration is **trace-calibrated** —
the driver actually executes on the VM for a few hundred packet sends,
yielding exact per-packet cycle costs including every guard, MMIO access,
and policy-table scan; trials then extend that measurement with the
machine model's stochastic terms (trial-level system noise, scheduler
stalls).  ``fidelity="interp"`` skips the extrapolation and interprets
every packet of every trial (slow; tests use it to validate agreement).

Noise uses common random numbers across techniques (same seed ⇒ same
trial factors), the standard variance-reduction for paired comparisons,
so median deltas reflect the deterministic guard cost rather than seed
luck.  The Figure 6 burst model is enabled *only* for the mean-slowdown
experiment — see EXPERIMENTS.md for why (the paper's Figure 4 medians and
Figure 6 means are in tension; we reproduce each under its own protocol).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..core.system import CaratKopSystem, SystemConfig
from ..vm.machine import MachineModel


@dataclass
class WorkloadConfig:
    """One experimental cell: machine x technique x policy x packet size."""

    machine: str = "r350"
    protect: bool = True
    regions: int = 2
    size: int = 128
    packets_per_trial: int = 100_000
    trials: int = 41
    calibration_packets: int = 300
    warmup_packets: int = 64
    seed: int = 2023
    fidelity: str = "calibrated"  # "calibrated" | "interp"
    burst_model: bool = False
    optimize_guards: bool = False
    #: Guard optimization level (None derives from optimize_guards; the
    #: paper figures stay at the faithful -O0 default).
    opt_level: Optional[int] = None
    #: Policy index structure name ("linear", "interval", ...); None is
    #: the paper's linear table.
    policy_index: Optional[str] = None
    engine: str = "compiled"  # "compiled" | "interp" (reference engine)

    @property
    def technique(self) -> str:
        return "carat" if self.protect else "baseline"


@dataclass
class Calibration:
    """Measured per-packet costs for one configuration."""

    cycles_per_packet: float       # sendmsg window + user-space loop
    sendmsg_cycles: float          # just the measured syscall window
    guards_per_packet: float
    entries_per_guard: float
    instructions_per_packet: float
    machine: MachineModel
    guard_count_static: int
    #: Guard-decision cache traffic during the calibration window.
    guard_cache_hits: int = 0
    guard_cache_misses: int = 0


def build_system(cfg: WorkloadConfig) -> CaratKopSystem:
    return CaratKopSystem(
        SystemConfig(
            machine=cfg.machine,
            protect=cfg.protect,
            regions=cfg.regions,
            optimize_guards=cfg.optimize_guards,
            opt_level=cfg.opt_level,
            policy_index=cfg.policy_index,
            engine=cfg.engine,
        )
    )


def calibrate(cfg: WorkloadConfig,
              system: Optional[CaratKopSystem] = None) -> Calibration:
    """Run the driver for real and extract per-packet costs."""
    sys_ = system if system is not None else build_system(cfg)
    machine = sys_.machine
    assert machine is not None, "calibration requires a machine model"
    # Warm up: ring and caches in steady state before measuring.
    sys_.blast(size=cfg.size, count=cfg.warmup_packets)
    timing = sys_.kernel.vm.timing
    assert timing is not None
    before = timing.snapshot()
    stats_before = sys_.policy.stats.as_dict()
    result = sys_.blast(
        size=cfg.size, count=cfg.calibration_packets, capture_latency=True
    )
    delta = timing.delta_since(before)
    n = cfg.calibration_packets
    stats_now = sys_.policy.stats.as_dict()
    guards = stats_now["checks"] - stats_before["checks"]
    scanned = stats_now["entries_scanned"] - stats_before["entries_scanned"]
    return Calibration(
        cycles_per_packet=result.total_cycles / n,
        sendmsg_cycles=result.mean_latency,
        guards_per_packet=guards / n,
        entries_per_guard=(scanned / guards) if guards else 0.0,
        instructions_per_packet=delta["instructions"] / n,
        machine=machine,
        guard_count_static=sys_.driver_compiled.guard_count,
        guard_cache_hits=(stats_now["guard_cache_hits"]
                          - stats_before["guard_cache_hits"]),
        guard_cache_misses=(stats_now["guard_cache_misses"]
                            - stats_before["guard_cache_misses"]),
    )


# ---------------------------------------------------------------------------
# Trial generation
# ---------------------------------------------------------------------------


def _seed_from(*parts: object) -> int:
    """Stable 64-bit seed from arbitrary parts (hash() is salted per run)."""
    import hashlib

    digest = hashlib.sha256("|".join(map(repr, parts)).encode()).digest()
    return int.from_bytes(digest[:8], "little")


def _trial_rng(cfg: WorkloadConfig) -> np.random.Generator:
    # Deliberately independent of technique AND region count: every curve
    # within one figure shares trial noise (common random numbers), so the
    # median gaps between curves are the deterministic cost differences.
    return np.random.default_rng(
        _seed_from(cfg.seed, cfg.machine, cfg.size, cfg.packets_per_trial)
    )


def throughput_samples(
    cfg: WorkloadConfig, calibration: Optional[Calibration] = None
) -> np.ndarray:
    """Per-trial throughput (packets/sec) for one configuration."""
    if cfg.fidelity == "interp":
        return _throughput_samples_interp(cfg)
    cal = calibration if calibration is not None else calibrate(cfg)
    machine = cal.machine
    n = cfg.packets_per_trial
    rng = _trial_rng(cfg)
    factors = np.exp(rng.normal(0.0, machine.trial_sigma, cfg.trials))
    cycles = n * cal.cycles_per_packet * factors
    stalls = rng.poisson(machine.base_stalls_per_100k * n / 1e5, cfg.trials)
    cycles = cycles + stalls * machine.deschedule_cycles
    if cfg.burst_model and cfg.protect:
        # Carat-only stall bursts at small packet sizes (Figure 6 model).
        q = min(
            0.5,
            machine.burst_probability_amplitude
            * math.exp(-cfg.size / machine.burst_size_scale_bytes),
        )
        burst_rng = np.random.default_rng(_seed_from(cfg.seed, "burst", cfg.size))
        hit = burst_rng.random(cfg.trials) < q
        extra = burst_rng.poisson(machine.burst_mean_stalls, cfg.trials) * hit
        cycles = cycles + extra * machine.deschedule_cycles * n / 1e5
    return n / (cycles / machine.freq_hz)


def _throughput_samples_interp(cfg: WorkloadConfig) -> np.ndarray:
    """Full-interpretation trials (small packet counts; used by tests)."""
    out = []
    sys_ = build_system(cfg)
    machine = sys_.machine
    assert machine is not None
    sys_.blast(size=cfg.size, count=cfg.warmup_packets)
    for _ in range(cfg.trials):
        result = sys_.blast(size=cfg.size, count=cfg.packets_per_trial)
        out.append(result.throughput_pps)
    return np.asarray(out)


def latency_samples(
    cfg: WorkloadConfig,
    calibration: Optional[Calibration] = None,
    packets: int = 20_000,
    latency_sigma: float = 0.14,
    outlier_probability: float = 1.2e-4,
) -> np.ndarray:
    """Per-packet sendmsg latency (cycles) for the Figure 7 histogram.

    Calibrated mode: the measured mean sendmsg window is spread with the
    machine's per-call jitter (log-normal — syscall latencies are
    right-skewed) plus rare ring-full outliers (>10M cycles) which the
    paper's figure excludes but its medians include.
    """
    if cfg.fidelity == "interp":
        sys_ = build_system(cfg)
        sys_.blast(size=cfg.size, count=cfg.warmup_packets)
        res = sys_.blast(size=cfg.size, count=packets, capture_latency=True)
        return np.asarray(res.latencies)
    cal = calibration if calibration is not None else calibrate(cfg)
    machine = cal.machine
    rng = _trial_rng(cfg)
    # Center the log-normal so its *median* equals the measured cost.
    base = cal.sendmsg_cycles
    lat = base * np.exp(rng.normal(0.0, latency_sigma, packets))
    outliers = rng.random(packets) < outlier_probability
    lat = lat + outliers * machine.deschedule_cycles
    return lat


# ---------------------------------------------------------------------------
# Figure runners
# ---------------------------------------------------------------------------


@dataclass
class FigureResult:
    """Everything needed to print/plot one paper figure."""

    figure_id: str
    title: str
    series: dict[str, np.ndarray]
    meta: dict[str, object] = field(default_factory=dict)

    def medians(self) -> dict[str, float]:
        return {k: float(np.median(v)) for k, v in self.series.items()}

    def means(self) -> dict[str, float]:
        return {k: float(np.mean(v)) for k, v in self.series.items()}


def run_fig3(trials: int = 41, seed: int = 2023,
             fidelity: str = "calibrated",
             opt_level: Optional[int] = None,
             policy_index: Optional[str] = None,
             regions: int = 2) -> FigureResult:
    """Fig. 3: throughput CDF, slow R415, 128 B packets, 2 regions.

    ``opt_level``/``policy_index``/``regions`` re-run the same protocol
    under the optimizing guard tier (BENCH_guard_opt); the defaults are
    the faithful paper configuration.
    """
    return _throughput_figure(
        "fig3", "CARAT KOP effect on packet launch throughput (R415)",
        machine="r415", trials=trials, seed=seed, fidelity=fidelity,
        opt_level=opt_level, policy_index=policy_index, regions=regions,
    )


def run_fig4(trials: int = 41, seed: int = 2023,
             fidelity: str = "calibrated") -> FigureResult:
    """Fig. 4: throughput CDF, fast R350, 128 B packets, 2 regions."""
    return _throughput_figure(
        "fig4", "CARAT KOP effect on packet launch throughput (R350)",
        machine="r350", trials=trials, seed=seed, fidelity=fidelity,
    )


def _throughput_figure(fid: str, title: str, machine: str, trials: int,
                       seed: int, fidelity: str,
                       opt_level: Optional[int] = None,
                       policy_index: Optional[str] = None,
                       regions: int = 2) -> FigureResult:
    series = {}
    meta: dict[str, object] = {
        "machine": machine, "size": 128, "regions": regions,
        "opt_level": opt_level, "policy_index": policy_index,
    }
    for protect in (False, True):
        cfg = WorkloadConfig(
            machine=machine, protect=protect, trials=trials, seed=seed,
            fidelity=fidelity, regions=regions,
            opt_level=opt_level if protect else None,
            policy_index=policy_index,
        )
        cal = calibrate(cfg) if fidelity == "calibrated" else None
        series[cfg.technique] = throughput_samples(cfg, cal)
        if cal is not None:
            meta[f"{cfg.technique}_cycles_per_packet"] = cal.cycles_per_packet
            meta[f"{cfg.technique}_guards_per_packet"] = cal.guards_per_packet
            meta[f"{cfg.technique}_guard_cache_hits"] = cal.guard_cache_hits
            meta[f"{cfg.technique}_guard_cache_misses"] = cal.guard_cache_misses
    return FigureResult(fid, title, series, meta)


def run_fig5(trials: int = 41, seed: int = 2023,
             fidelity: str = "calibrated") -> FigureResult:
    """Fig. 5: throughput vs number of policy regions (R350, 128 B)."""
    series = {}
    meta: dict[str, object] = {"machine": "r350", "size": 128}
    base_cfg = WorkloadConfig(machine="r350", protect=False, trials=trials,
                              seed=seed, fidelity=fidelity)
    series["baseline"] = throughput_samples(
        base_cfg, calibrate(base_cfg) if fidelity == "calibrated" else None
    )
    for n, label in ((2, "carat"), (16, "carat16"), (64, "carat64")):
        cfg = WorkloadConfig(machine="r350", protect=True, regions=n,
                             trials=trials, seed=seed, fidelity=fidelity)
        cal = calibrate(cfg) if fidelity == "calibrated" else None
        series[label] = throughput_samples(cfg, cal)
        if cal is not None:
            meta[f"{label}_entries_per_guard"] = cal.entries_per_guard
    return FigureResult(
        "fig5", "Effect of the number of policy regions (R350)", series, meta
    )


FIG6_SIZES = (64, 128, 256, 512, 1024, 1500)


def run_fig6(trials: int = 41, seed: int = 2023,
             fidelity: str = "calibrated") -> FigureResult:
    """Fig. 6: mean throughput slowdown vs packet size (R350, 2 regions).

    Uses the burst stall model (means, not medians — see EXPERIMENTS.md).
    """
    slowdowns = {}
    meta: dict[str, object] = {"machine": "r350", "regions": 2,
                               "sizes": list(FIG6_SIZES)}
    for size in FIG6_SIZES:
        per_technique = {}
        for protect in (False, True):
            cfg = WorkloadConfig(
                machine="r350", protect=protect, size=size, trials=trials,
                seed=seed, fidelity=fidelity, burst_model=True,
            )
            cal = calibrate(cfg) if fidelity == "calibrated" else None
            per_technique[cfg.technique] = throughput_samples(cfg, cal)
        slowdown = float(
            np.mean(per_technique["baseline"]) / np.mean(per_technique["carat"])
        )
        slowdowns[str(size)] = np.asarray([slowdown])
    return FigureResult(
        "fig6", "Throughput slowdown vs packet size (R350)", slowdowns, meta
    )


def run_fig7(seed: int = 2023, packets: int = 20_000,
             fidelity: str = "calibrated") -> FigureResult:
    """Fig. 7: sendmsg() latency histogram (R350, 128 B, 2 regions)."""
    series = {}
    meta: dict[str, object] = {"machine": "r350", "size": 128, "regions": 2}
    for protect in (False, True):
        cfg = WorkloadConfig(machine="r350", protect=protect, seed=seed,
                             fidelity=fidelity)
        label = "Carat" if protect else "Base"
        series[label] = latency_samples(cfg, packets=packets)
        meta[f"{label}_median_cycles"] = float(np.median(series[label]))
    return FigureResult(
        "fig7", "Packet launch latency, sendmsg() cycles (R350)", series, meta
    )


def run_figblk(trials: int = 5, seed: int = 2023, queues="auto",
               engine: str = "compiled", opt_level: int = 2) -> FigureResult:
    """Extension figure: vblk multi-queue iops scaling (R415).

    Not a paper figure — the storage twin of fig3 for the NVMe-style
    multi-queue block stack.  Measures a device-bound mixed workload
    (8-sector requests, a flush barrier every 8th) with one shared
    queue ("sq") vs per-CPU queue pairs ("mq", ``queues`` config,
    default "auto" = one per CPU) across 1/2/4 CPUs, every op actually
    executed on the VM.  Alongside the iops series it digests the final
    block-store image of every cell: the completion-merge contract
    makes all six identical.
    """
    import hashlib

    count, nsect, flush_interval = 240, 8, 8
    series: dict[str, np.ndarray] = {}
    digests: dict[str, str] = {}
    for cpus in (1, 2, 4):
        for qcfg, prefix in ((1, "sq"), (queues, "mq")):
            label = f"{prefix}-c{cpus}"
            system = CaratKopSystem(SystemConfig(
                machine="r415", driver="vblk", protect=True,
                opt_level=opt_level, engine=engine,
                cpus=cpus, queues=qcfg,
            ))
            samples = []
            for t in range(trials):
                res = system.blkblast(
                    count=count, nsect=nsect, pattern="rand",
                    seed=seed + t, flush_interval=flush_interval,
                )
                samples.append(res.throughput_iops)
            series[label] = np.asarray(samples)
            digests[label] = hashlib.sha256(
                bytes(system.device.store)).hexdigest()
    meta: dict[str, object] = {
        "machine": "r415", "opt_level": opt_level, "queues": queues,
        "count": count, "nsect": nsect, "flush_interval": flush_interval,
        "store_digests": digests,
        "digest_identical": len(set(digests.values())) == 1,
        "speedup_c4": float(
            np.median(series["mq-c4"]) / np.median(series["sq-c4"])
        ),
    }
    return FigureResult(
        "figblk", "vblk multi-queue iops scaling (R415)", series, meta
    )


ALL_FIGURES = {
    "fig3": run_fig3,
    "fig4": run_fig4,
    "fig5": run_fig5,
    "fig6": run_fig6,
    "fig7": run_fig7,
    "figblk": run_figblk,
}


__all__ = [
    "ALL_FIGURES",
    "Calibration",
    "FIG6_SIZES",
    "FigureResult",
    "WorkloadConfig",
    "build_system",
    "calibrate",
    "latency_samples",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_figblk",
    "throughput_samples",
]
