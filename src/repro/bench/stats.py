"""Statistics helpers for the benchmark harness: CDFs, percentiles,
histograms, and ASCII rendering for terminal reports."""

from __future__ import annotations

from typing import Sequence

import numpy as np


def percentile(samples: Sequence[float], q: float) -> float:
    """The q-th percentile (0..100) by linear interpolation."""
    if not len(samples):
        raise ValueError("no samples")
    return float(np.percentile(np.asarray(samples, dtype=float), q))


def median(samples: Sequence[float]) -> float:
    return percentile(samples, 50.0)


def cdf_points(samples: Sequence[float]) -> list[tuple[float, float]]:
    """Empirical CDF as (value, cumulative fraction) pairs."""
    xs = np.sort(np.asarray(samples, dtype=float))
    n = len(xs)
    if n == 0:
        return []
    return [(float(x), (i + 1) / n) for i, x in enumerate(xs)]


def histogram(
    samples: Sequence[float], bins: int = 30,
    lo: float | None = None, hi: float | None = None,
) -> tuple[list[float], list[int]]:
    """(bin_edges, counts); edges has bins+1 entries."""
    arr = np.asarray(samples, dtype=float)
    rng = None
    if lo is not None and hi is not None:
        rng = (lo, hi)
        arr = arr[(arr >= lo) & (arr <= hi)]
    counts, edges = np.histogram(arr, bins=bins, range=rng)
    return [float(e) for e in edges], [int(c) for c in counts]


def summarize(samples: Sequence[float]) -> dict[str, float]:
    arr = np.asarray(samples, dtype=float)
    return {
        "n": float(len(arr)),
        "mean": float(arr.mean()),
        "median": float(np.median(arr)),
        "p5": float(np.percentile(arr, 5)),
        "p95": float(np.percentile(arr, 95)),
        "min": float(arr.min()),
        "max": float(arr.max()),
        "std": float(arr.std()),
    }


def relative_median_change(baseline: Sequence[float],
                           treatment: Sequence[float]) -> float:
    """(median(baseline) - median(treatment)) / median(baseline).

    Positive = the treatment is slower; this is the "<0.8%" style number
    the paper quotes for each CDF figure.
    """
    mb = median(baseline)
    return (mb - median(treatment)) / mb


def ascii_cdf(
    series: dict[str, Sequence[float]], width: int = 64, height: int = 16,
    unit: str = "",
) -> str:
    """Terminal rendering of one or more CDFs, one glyph per series."""
    glyphs = "█▓▒░#*+."
    all_values = np.concatenate(
        [np.asarray(v, dtype=float) for v in series.values()]
    )
    lo, hi = float(all_values.min()), float(all_values.max())
    if hi <= lo:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]
    for si, (name, values) in enumerate(series.items()):
        glyph = glyphs[si % len(glyphs)]
        for x, p in cdf_points(values):
            col = min(width - 1, int((x - lo) / (hi - lo) * (width - 1)))
            row = min(height - 1, int((1 - p) * (height - 1)))
            grid[row][col] = glyph
    lines = ["100% |" + "".join(grid[0])]
    for r in range(1, height - 1):
        lines.append("     |" + "".join(grid[r]))
    lines.append("  0% |" + "".join(grid[-1]))
    lines.append("     +" + "-" * width)
    lines.append(f"      {lo:,.0f}{unit}  ...  {hi:,.0f}{unit}")
    legend = "  ".join(
        f"{glyphs[i % len(glyphs)]}={name}" for i, name in enumerate(series)
    )
    lines.append(f"      {legend}")
    return "\n".join(lines)


def ascii_histogram(
    series: dict[str, Sequence[float]], bins: int = 24, width: int = 50,
    unit: str = "",
) -> str:
    """Terminal rendering of overlaid histograms."""
    all_values = np.concatenate(
        [np.asarray(v, dtype=float) for v in series.values()]
    )
    lo, hi = float(all_values.min()), float(all_values.max())
    if hi <= lo:
        hi = lo + 1.0
    lines = []
    glyphs = "█░"
    counted = {
        name: np.histogram(np.asarray(v, dtype=float), bins=bins, range=(lo, hi))[0]
        for name, v in series.items()
    }
    peak = max(int(c.max()) for c in counted.values()) or 1
    edges = np.linspace(lo, hi, bins + 1)
    for b in range(bins):
        label = f"{edges[b]:>10,.0f}{unit}"
        bars = []
        for i, name in enumerate(series):
            n = int(counted[name][b])
            bars.append(glyphs[i % len(glyphs)] * max(0, int(n / peak * width)))
        lines.append(f"{label} | " + " ".join(bars))
    legend = "  ".join(
        f"{glyphs[i % len(glyphs)]}={name}" for i, name in enumerate(series)
    )
    lines.append(f"{'':>10}   {legend}")
    return "\n".join(lines)


__all__ = [
    "ascii_cdf",
    "ascii_histogram",
    "cdf_points",
    "histogram",
    "median",
    "percentile",
    "relative_median_change",
    "summarize",
]
