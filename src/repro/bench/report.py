"""Rendering of figure results: terminal reports and EXPERIMENTS.md rows."""

from __future__ import annotations

import numpy as np

from .harness import FigureResult
from .stats import ascii_cdf, ascii_histogram, relative_median_change

#: The paper's headline claim per figure, used in the pass/fail summary.
PAPER_CLAIMS = {
    "fig3": "median throughput change < 0.8% (R415)",
    "fig4": "median throughput change < 0.1% (R350)",
    "fig5": "ordering baseline >= carat >= carat16 >= carat64, all within ~1%",
    "fig6": "slowdown <= ~1.025, concentrated at small packets, ~1.0 by 1500B",
    "fig7": "near-identical latency histograms; medians within ~1%",
    "figblk": "extension: per-CPU queues >= 2x shared-queue iops at 4 "
              "CPUs; identical block-store image across all cells",
}


def check_figure(result: FigureResult) -> tuple[bool, str]:
    """Does the measured result satisfy the paper's shape claim?"""
    fid = result.figure_id
    if fid in ("fig3", "fig4"):
        limit = 0.008 if fid == "fig3" else 0.001
        delta = relative_median_change(
            result.series["baseline"], result.series["carat"]
        )
        ok = -limit / 4 <= delta < limit
        return ok, f"median delta {delta * 100:.3f}% (limit {limit * 100:.1f}%)"
    if fid == "fig5":
        med = result.medians()
        ordered = (
            med["baseline"] >= med["carat"] >= med["carat16"] >= med["carat64"]
        )
        worst = (med["baseline"] - med["carat64"]) / med["baseline"]
        return (
            ordered and worst < 0.011,
            f"ordering={'ok' if ordered else 'VIOLATED'}, worst delta "
            f"{worst * 100:.2f}%",
        )
    if fid == "fig6":
        slow = {int(k): float(v[0]) for k, v in result.series.items()}
        small = slow[min(slow)]
        large = slow[max(slow)]
        ok = (
            max(slow.values()) <= 1.032
            and small == max(slow.values())
            and large <= 1.005
        )
        return ok, (
            f"max slowdown {max(slow.values()):.3f} at "
            f"{min(slow, key=lambda s: -slow[s])}B, 1500B at {large:.3f}"
        )
    if fid == "fig7":
        med = {k: float(np.median(v)) for k, v in result.series.items()}
        base, carat = med["Base"], med["Carat"]
        delta = abs(carat - base) / base
        return delta < 0.03, (
            f"medians base={base:.0f}cy carat={carat:.0f}cy "
            f"(delta {delta * 100:.2f}%)"
        )
    if fid == "figblk":
        speedup = float(result.meta["speedup_c4"])
        identical = bool(result.meta["digest_identical"])
        ok = speedup >= 2.0 and identical
        return ok, (
            f"mq/sq speedup at 4 CPUs {speedup:.2f}x, store digests "
            f"{'identical' if identical else 'DIVERGED'}"
        )
    raise ValueError(f"unknown figure {fid}")


def render_figure(result: FigureResult, width: int = 64) -> str:
    """Terminal rendering: the figure, its summary, and the shape check."""
    lines = [f"== {result.figure_id}: {result.title} =="]
    fid = result.figure_id
    if fid in ("fig3", "fig4", "fig5"):
        lines.append(ascii_cdf(
            {k: list(v) for k, v in result.series.items()},
            width=width, unit="pps",
        ))
        for name, med in result.medians().items():
            lines.append(f"  median[{name}] = {med:,.0f} pps")
    elif fid == "fig6":
        lines.append("  size   slowdown")
        for size, v in result.series.items():
            bar = "#" * int((float(v[0]) - 1.0) * 2000)
            lines.append(f"  {size:>5}  {float(v[0]):.4f} {bar}")
    elif fid == "figblk":
        for name, med in result.medians().items():
            lines.append(f"  median[{name}] = {med:,.0f} iops")
        lines.append(
            f"  speedup (mq-c4 / sq-c4): {result.meta['speedup_c4']:.2f}x"
        )
    elif fid == "fig7":
        shown = {
            k: [x for x in v if x < 4 * np.median(v)]
            for k, v in result.series.items()
        }
        lines.append(ascii_histogram(shown, unit="cy"))
        for name, v in result.series.items():
            lines.append(
                f"  median[{name}] = {np.median(v):,.0f} cycles "
                "(outliers included)"
            )
    for technique in ("baseline", "carat"):
        hits = result.meta.get(f"{technique}_guard_cache_hits")
        misses = result.meta.get(f"{technique}_guard_cache_misses")
        if hits is not None or misses is not None:
            lines.append(
                f"  guard cache[{technique}]: {hits or 0:,} hits / "
                f"{misses or 0:,} misses (calibration window)"
            )
    ok, detail = check_figure(result)
    lines.append(f"  paper claim: {PAPER_CLAIMS[fid]}")
    lines.append(f"  reproduction: {'PASS' if ok else 'FAIL'} — {detail}")
    return "\n".join(lines)


def experiments_md_rows(results: dict[str, FigureResult]) -> str:
    """Markdown table rows of paper-vs-measured for EXPERIMENTS.md."""
    rows = ["| figure | paper claim | measured | verdict |",
            "|---|---|---|---|"]
    for fid, result in sorted(results.items()):
        ok, detail = check_figure(result)
        rows.append(
            f"| {fid} | {PAPER_CLAIMS[fid]} | {detail} | "
            f"{'PASS' if ok else 'FAIL'} |"
        )
    return "\n".join(rows)


__all__ = ["PAPER_CLAIMS", "check_figure", "experiments_md_rows", "render_figure"]
