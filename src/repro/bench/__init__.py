"""Benchmark harness: workload configs, calibration, figure runners."""

from .harness import (
    ALL_FIGURES,
    Calibration,
    FIG6_SIZES,
    FigureResult,
    WorkloadConfig,
    build_system,
    calibrate,
    latency_samples,
    run_fig3,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7,
    run_figblk,
    throughput_samples,
)
from .report import PAPER_CLAIMS, check_figure, experiments_md_rows, render_figure
from .traceart import FIGURE_TRACE_CONFIGS, emit_trace_artifact
from . import stats

__all__ = [
    "ALL_FIGURES",
    "Calibration",
    "FIG6_SIZES",
    "FIGURE_TRACE_CONFIGS",
    "FigureResult",
    "PAPER_CLAIMS",
    "WorkloadConfig",
    "build_system",
    "calibrate",
    "check_figure",
    "emit_trace_artifact",
    "experiments_md_rows",
    "latency_samples",
    "render_figure",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_figblk",
    "stats",
    "throughput_samples",
]
