"""Trace artifacts for figure runs: who pays the guard tax, per callsite.

``repro.bench`` answers "how much slower" at figure granularity; this
module answers "where the cycles went".  For a figure configuration it
boots the same system the harness would, enables the trace subsystem,
runs the workload, and writes:

- ``<fid>.trace.json`` — chrome://tracing / Perfetto timeline,
- ``<fid>.folded`` — folded stacks for flamegraph.pl,
- ``<fid>.stat.txt`` — the ``/proc/trace_stat`` dump (guard cycle-cost
  histogram included),
- ``<fid>.guards.json`` — per-guard-callsite attribution: hits, cycles,
  and each site's share of total guard cost.

Tracing is observability-only, so the simulated results of a traced run
are bit-identical to the untraced figure runs — the artifacts *explain*
the figures without perturbing them.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..core.system import CaratKopSystem, SystemConfig

#: Figure id -> the workload cell its trace artifact reproduces.
FIGURE_TRACE_CONFIGS: dict[str, dict] = {
    "fig3": {"machine": "r415", "size": 128, "regions": 2},
    "fig4": {"machine": "r350", "size": 128, "regions": 2},
    "fig5": {"machine": "r350", "size": 128, "regions": 64},
    "fig6": {"machine": "r350", "size": 1500, "regions": 2},
    "fig7": {"machine": "r350", "size": 128, "regions": 2},
}


def emit_trace_artifact(
    out_dir: str | Path,
    fid: str = "fig3",
    count: int = 1000,
    engine: str = "compiled",
    protect: bool = True,
) -> dict:
    """Run one traced workload and write its artifact set.

    Returns a summary dict (paths written, event totals, top guard
    sites) that ``caratkop-bench --trace-dir`` folds into its report.
    """
    from ..trace import to_chrome_trace, to_folded

    cell = FIGURE_TRACE_CONFIGS.get(fid)
    if cell is None:
        raise ValueError(
            f"unknown figure {fid!r}; know {sorted(FIGURE_TRACE_CONFIGS)}"
        )
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)

    system = CaratKopSystem(
        SystemConfig(
            machine=cell["machine"],
            protect=protect,
            regions=cell["regions"],
            engine=engine,
        )
    )
    kernel = system.kernel
    trace = kernel.trace
    trace.enable()
    result = system.blast(size=cell["size"], count=count)
    trace.disable()

    events = trace.snapshot()
    freq = trace.freq_hz

    trace_path = out / f"{fid}.trace.json"
    trace_path.write_text(
        json.dumps(to_chrome_trace(events, freq_hz=freq,
                                   process_name=f"caratkop-{fid}"))
    )
    folded_path = out / f"{fid}.folded"
    folded_path.write_text(to_folded(events, weight="cycles"))
    stat_path = out / f"{fid}.stat.txt"
    stat_path.write_text(trace.render_stat())
    guards_path = out / f"{fid}.guards.json"
    guards_path.write_text(json.dumps({
        "figure": fid,
        "engine": engine,
        "machine": cell["machine"],
        "size": cell["size"],
        "regions": cell["regions"],
        "packets": count,
        "guard_checks": trace.guard_hist.count,
        "guard_cycles": trace.guard_hist.total,
        "sites": trace.guard_sites.as_dict(),
        "top": trace.guard_sites.top(10),
    }, indent=2))

    return {
        "figure": fid,
        "packets_sent": result.packets_sent,
        "throughput_pps": result.throughput_pps,
        "events": trace.ring_stats()["total"],
        "events_lost": trace.ring_stats()["lost"],
        "guard_checks": trace.guard_hist.count,
        "guard_cycles": trace.guard_hist.total,
        "top_sites": [s["site"] for s in trace.guard_sites.top(3)],
        "paths": {
            "chrome": str(trace_path),
            "folded": str(folded_path),
            "stat": str(stat_path),
            "guards": str(guards_path),
        },
    }


__all__ = ["FIGURE_TRACE_CONFIGS", "emit_trace_artifact"]
