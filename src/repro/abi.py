"""The CARAT KOP ABI: the contract between compiler, kernel, and policy.

The paper's entire interface is one symbol (§3.1)::

    void carat_guard(void* addr, size_t size, int access_flags);

This module pins down that signature, the access-flag encoding, and the
metadata keys the signer attests to, so the compiler passes, the policy
module, and the kernel loader never drift apart.
"""

from __future__ import annotations

from .ir import FunctionType, I8PTR, I32, I64, VOID

#: The single symbol a protected module is linked against at insertion.
GUARD_SYMBOL = "carat_guard"

#: Access-intent flags passed as the guard's third argument.
FLAG_READ = 0x1
FLAG_WRITE = 0x2
FLAG_EXEC = 0x4       # used by the CFI extension (paper §5)
FLAG_INTRINSIC = 0x8  # used by the privileged-intrinsic extension (paper §5)

#: Module metadata keys the compiler sets and the signer covers.
META_GUARDED = "carat.guarded"
META_GUARD_COUNT = "carat.guard_count"
META_HAS_ASM = "carat.has_inline_asm"
META_COMPILER = "carat.compiler"
META_OPT_LEVEL = "carat.opt_level"
META_GUARDS_REMOVED = "carat.guards_removed"
META_GUARDS_HOISTED = "carat.guards_hoisted"
META_GUARDS_COALESCED = "carat.guards_coalesced"
META_GUARDS_PROVEN = "carat.guards_proven"
META_GUARDS_DYNAMIC = "carat.guards_dynamic"

#: Identity string of our "clang 14.0.0 + CARAT KOP pass" stand-in.
COMPILER_ID = "caratcc-0.1 (minicc + kop-guard-pass)"


def guard_function_type() -> FunctionType:
    """``void (i8* addr, i64 size, i32 flags)``."""
    return FunctionType(VOID, [I8PTR, I64, I32])


def to_signed64(value: int) -> int:
    """Reinterpret an unsigned 64-bit pattern as signed two's complement.

    Both execution engines use this for ``gep`` index arithmetic, where a
    negative offset arrives as its wrapped unsigned representation.
    """
    return value - (1 << 64) if value > 0x7FFFFFFFFFFFFFFF else value


def flags_name(flags: int) -> str:
    """Human-readable rendering of an access-flag bitmap."""
    parts = []
    if flags & FLAG_READ:
        parts.append("R")
    if flags & FLAG_WRITE:
        parts.append("W")
    if flags & FLAG_EXEC:
        parts.append("X")
    if flags & FLAG_INTRINSIC:
        parts.append("I")
    return "".join(parts) or "-"


__all__ = [
    "COMPILER_ID",
    "FLAG_EXEC",
    "FLAG_INTRINSIC",
    "FLAG_READ",
    "FLAG_WRITE",
    "GUARD_SYMBOL",
    "META_COMPILER",
    "META_GUARDED",
    "META_GUARDS_COALESCED",
    "META_GUARDS_DYNAMIC",
    "META_GUARDS_HOISTED",
    "META_GUARDS_PROVEN",
    "META_GUARDS_REMOVED",
    "META_GUARD_COUNT",
    "META_HAS_ASM",
    "META_OPT_LEVEL",
    "flags_name",
    "guard_function_type",
    "to_signed64",
]
