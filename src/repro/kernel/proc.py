"""/proc-style introspection: the operator's window into the kernel.

Read-only text files summarizing live kernel state, in the spirit of the
Linux originals.  ``/proc/carat`` is the CARAT KOP-specific one: the
active policy, its index structure, and guard statistics — what an
operator consults before deciding whether a DENY in dmesg was cause (1),
(2), or (3) from paper §3.1.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Kernel


class ProcFS:
    """Lazily rendered read-only /proc files."""

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel
        self._files: dict[str, Callable[[], str]] = {
            "/proc/modules": self._modules,
            "/proc/interrupts": self._interrupts,
            "/proc/meminfo": self._meminfo,
            "/proc/devices": self._devices,
            "/proc/carat": self._carat,
            "/proc/journal": self._journal,
            "/proc/trace": self._trace,
            "/proc/trace_stat": self._trace_stat,
        }

    def read(self, path: str) -> str:
        render = self._files.get(path)
        if render is None:
            raise FileNotFoundError(path)
        return render()

    def paths(self) -> list[str]:
        return sorted(self._files)

    # -- renderers ------------------------------------------------------------

    def _modules(self) -> str:
        lines = []
        for name, mod in sorted(self.kernel.loader.loaded.items()):
            guards = mod.compiled.guard_count
            prot = "protected" if mod.compiled.is_protected else "unprotected"
            lines.append(
                f"{name} {mod.size} refcnt={mod.refcount} {prot} "
                f"guards={guards} base={mod.base:#x}"
            )
        return "\n".join(lines) + ("\n" if lines else "")

    def _interrupts(self) -> str:
        lines = []
        actions = self.kernel.irq.actions()
        for line in sorted(actions):
            a = actions[line]
            lines.append(
                f"{line:>4}: {a.fired:>10} {a.coalesced:>8} {a.name}"
            )
        header = f"{'IRQ':>4}  {'fired':>9} {'coalsc':>8} device\n"
        return header + "\n".join(lines) + ("\n" if lines else "")

    def _meminfo(self) -> str:
        km = self.kernel.kmalloc_allocator
        pa = self.kernel.page_allocator
        total = self.kernel.ram.size
        return (
            f"MemTotal:       {total // 1024} kB\n"
            f"PagesAllocated: {pa.allocated_pages}\n"
            f"KmallocLive:    {km.live_allocations}\n"
            f"KmallocBytes:   {km.bytes_allocated}\n"
            f"Resident:       {self.kernel.ram.resident_bytes // 1024} kB\n"
        )

    def _devices(self) -> str:
        return "\n".join(self.kernel.devices.paths()) + "\n"

    def _carat(self) -> str:
        from ..policy.module import DEVICE_PATH

        device = self.kernel.devices.get(DEVICE_PATH)
        if device is None:
            return "carat: no policy module loaded\n"
        policy = device  # CaratPolicyModule registers itself as the chardev
        s = policy.stats
        lines = [
            f"index: {policy.index.name}",
            f"enforce: {'on' if policy.enforce else 'audit-only'}",
            f"checks: {s.checks}",
            f"allowed: {s.allowed}",
            f"denied: {s.denied}",
            f"entries_scanned: {s.entries_scanned}",
            f"comparisons: {s.comparisons}",
            f"structure_checks: {s.structure_checks}",
            "mean_comparisons_per_check: " + (
                f"{s.comparisons / s.structure_checks:.2f}"
                if s.structure_checks else "0.00"
            ),
            f"intrinsic_checks: {s.intrinsic_checks}",
            f"intrinsic_denied: {s.intrinsic_denied}",
        ]
        # Per-CPU breakdown of the merged counters above (the totals are
        # sums over these rows); single-CPU output stays byte-identical.
        per_cpu = getattr(policy, "stats_per_cpu", None)
        if per_cpu is not None:
            rows = per_cpu()
            if len(rows) > 1:
                for cpu, row in enumerate(rows):
                    lines.append(
                        f"cpu{cpu}: checks={row['checks']} "
                        f"allowed={row['allowed']} denied={row['denied']} "
                        f"entries_scanned={row['entries_scanned']} "
                        f"comparisons={row['comparisons']} "
                        f"structure_checks={row['structure_checks']} "
                        f"cache_hits={row['guard_cache_hits']} "
                        f"cache_misses={row['guard_cache_misses']}"
                    )
        calls = getattr(policy, "allowed_calls", None)
        lines.append(
            "call_policy: allow-all" if calls is None
            else f"call_policy: allowlist({len(calls)})"
        )
        mode = getattr(policy, "mode", None)
        if mode is not None:
            lines.append(f"mode: {mode}")
            for name, override in sorted(policy.module_modes.items()):
                lines.append(f"mode[{name}]: {override}")
            for name, count in sorted(policy.violations.items()):
                lines.append(f"violations[{name}]: {count}")
        # Per-driver guard traffic: which module's accesses the guards
        # actually checked (and denied), merged across CPUs.
        driver_stats = getattr(policy, "driver_stats", None)
        if driver_stats is not None:
            for name, row in driver_stats().items():
                lines.append(
                    f"driver[{name}]: checks={row['checks']} "
                    f"denied={row['denied']}"
                )
        kernel = self.kernel
        # Per-queue block-device accounting (NVMe-style multi-queue vblk):
        # one row per created queue, admin queue first.  The provider is
        # pure host-side device state, so rendering never runs module
        # code or advances the simulated clock.
        blk_queues = getattr(kernel, "blk_queue_stats", None)
        if blk_queues is not None:
            for row in blk_queues():
                if not row["created"]:
                    continue
                kind = "admin" if row["queue"] == 0 else "io"
                lines.append(
                    f"queue[{row['queue']}]: {kind} "
                    f"doorbells={row['doorbells']} "
                    f"fetched={row['fetched']} "
                    f"completed={row['completed']} "
                    f"errors={row['errors']} "
                    f"in_flight={row['in_flight']}"
                )
        # Per-module guard-optimizer counters (what each module's -O level
        # removed/hoisted/coalesced at compile time).
        for name, mod in sorted(kernel.loader.loaded.items()):
            compiled = mod.compiled
            if compiled.is_protected:
                line = (
                    f"guard_opt[{name}]: O{compiled.opt_level} "
                    f"guards={compiled.guard_count} "
                    f"removed={compiled.guards_removed} "
                    f"hoisted={compiled.guards_hoisted} "
                    f"coalesced={compiled.guards_coalesced}"
                )
                if compiled.is_verified:
                    line += (
                        f" proven={compiled.guards_proven}"
                        f" dynamic={compiled.guards_dynamic}"
                        f" elided={len(mod.elided_guards)}"
                    )
                if mod.verify_state:
                    line += f" verify={mod.verify_state}"
                lines.append(line)
        lines.append(f"verify_policy: {kernel.verify_policy}")
        lines.append(f"verify_demotions: {kernel.verify_demotions}")
        lines.append(f"violation_faults: {kernel.violation_faults}")
        lines.append(f"entry_refusals: {kernel.entry_refusals}")
        for name in kernel.isolated_modules():
            lines.append(f"isolated: {name}")
        for name, reason in kernel.quarantined():
            lines.append(f"quarantined: {name} ({reason})")
        # Control-plane section: generation, staged canary, per-tenant
        # quota usage and rollback history (absent without one attached).
        cp = getattr(policy, "controlplane", None)
        if cp is not None:
            lines.append(cp.describe())
        lines.append(policy.index.describe()
                     if hasattr(policy.index, "describe")
                     else f"regions: {len(policy.index)}")
        return "\n".join(lines) + "\n"

    def _trace(self) -> str:
        return self.kernel.trace.render_trace()

    def _trace_stat(self) -> str:
        return self.kernel.trace.render_stat()

    def _journal(self) -> str:
        """Per-module transaction-journal depth and past rollbacks."""
        journal = self.kernel.journal
        lines = []
        for name in journal.modules():
            by_kind = journal.depth_by_kind(name)
            detail = " ".join(f"{k}={v}" for k, v in by_kind.items() if v)
            lines.append(f"{name}: depth={journal.depth(name)} {detail}".rstrip())
        for summary in journal.rollbacks:
            lines.append(
                f"rollback: {summary['module']} "
                f"kmalloc={summary['kmalloc_allocations']}"
                f"/{summary['kmalloc_bytes']}B "
                f"irqs={summary['irqs']} timers={summary['timers']} "
                f"symbols={summary['symbols']} chardevs={summary['chardevs']}"
            )
        return "\n".join(lines) + ("\n" if lines else "")


__all__ = ["ProcFS"]
