"""Kernel memory allocators.

``PageAllocator`` hands out physical pages; ``KmallocAllocator`` is a
size-class slab over direct-mapped pages, returning *kernel virtual*
addresses, like the real kmalloc.  Driver buffers (sk_buff data, DMA
descriptor rings) come from here, which matters for the policy: a module
policy typically allows its own kmalloc'd regions and denies everything
else (paper §3.1: "the module could be configured to block access to the
direct-mapped physical memory with a single rule").
"""

from __future__ import annotations

from . import layout
from .memory import PhysicalMemory
from .panic import KernelPanic


class PageAllocator:
    """First-fit physical page allocator with a free list."""

    def __init__(self, ram: PhysicalMemory, reserved: int = 1 << 20):
        self.ram = ram
        # Never hand out the lowest pages (BIOS/kernel image analog).
        self._next = layout.page_align_up(reserved)
        self._free: list[tuple[int, int]] = []  # (phys, pages), sorted
        self.allocated_pages = 0

    def alloc_pages(self, count: int = 1) -> int:
        """Allocate ``count`` contiguous pages; returns the physical base."""
        if count <= 0:
            raise ValueError("page count must be positive")
        for i, (base, n) in enumerate(self._free):
            if n >= count:
                if n == count:
                    del self._free[i]
                else:
                    self._free[i] = (base + count * layout.PAGE_SIZE, n - count)
                self.allocated_pages += count
                return base
        base = self._next
        size = count * layout.PAGE_SIZE
        if base + size > self.ram.size:
            raise KernelPanic("out of memory (page allocator)")
        self._next = base + size
        self.allocated_pages += count
        return base

    def free_pages(self, phys: int, count: int) -> None:
        if phys % layout.PAGE_SIZE:
            raise ValueError("free of unaligned page address")
        self.allocated_pages -= count
        self._free.append((phys, count))
        self._free.sort()
        # Coalesce neighbours so big allocations can be satisfied again.
        merged: list[tuple[int, int]] = []
        for base, n in self._free:
            if merged and merged[-1][0] + merged[-1][1] * layout.PAGE_SIZE == base:
                merged[-1] = (merged[-1][0], merged[-1][1] + n)
            else:
                merged.append((base, n))
        self._free = merged


_SIZE_CLASSES = (16, 32, 64, 128, 256, 512, 1024, 2048, 4096)


class KmallocAllocator:
    """Size-class slab allocator returning direct-map virtual addresses."""

    def __init__(self, pages: PageAllocator):
        self.pages = pages
        self._partial: dict[int, list[int]] = {c: [] for c in _SIZE_CLASSES}
        self._sizes: dict[int, int] = {}  # addr -> usable size
        self.live_allocations = 0
        self.bytes_allocated = 0

    def kmalloc(self, size: int) -> int:
        """Allocate ``size`` bytes; returns a kernel virtual address."""
        if size <= 0:
            raise ValueError("kmalloc size must be positive")
        cls = next((c for c in _SIZE_CLASSES if c >= size), None)
        if cls is None:
            # Large allocation: whole pages.
            pages = (size + layout.PAGE_SIZE - 1) // layout.PAGE_SIZE
            phys = self.pages.alloc_pages(pages)
            addr = layout.direct_map_address(phys)
            self._sizes[addr] = pages * layout.PAGE_SIZE
        else:
            bucket = self._partial[cls]
            if not bucket:
                phys = self.pages.alloc_pages(1)
                base = layout.direct_map_address(phys)
                bucket.extend(
                    base + off for off in range(0, layout.PAGE_SIZE, cls)
                )
            addr = bucket.pop()
            self._sizes[addr] = cls
        self.live_allocations += 1
        self.bytes_allocated += self._sizes[addr]
        return addr

    def kfree(self, addr: int) -> None:
        if addr == 0:
            return  # kfree(NULL) is a no-op, as in Linux
        size = self._sizes.pop(addr, None)
        if size is None:
            raise KernelPanic(f"kfree of unknown address {addr:#x}")
        self.live_allocations -= 1
        self.bytes_allocated -= size
        if size in _SIZE_CLASSES:
            self._partial[size].append(addr)
        else:
            phys = layout.direct_map_to_phys(addr)
            self.pages.free_pages(phys, size // layout.PAGE_SIZE)

    def usable_size(self, addr: int) -> int:
        """ksize() analog; 0 for unknown addresses."""
        return self._sizes.get(addr, 0)

    def snapshot(self) -> tuple[int, int]:
        """(live_allocations, bytes_allocated) — the leak-audit pair the
        ejection soak compares before and after each rollback cycle."""
        return (self.live_allocations, self.bytes_allocated)

    def owns(self, addr: int) -> bool:
        return addr in self._sizes

    def allocation_range(self, addr: int) -> tuple[int, int]:
        """(base, size) of the allocation containing ``addr``, if known."""
        # Exact-base fast path.
        size = self._sizes.get(addr)
        if size is not None:
            return addr, size
        for base, sz in self._sizes.items():
            if base <= addr < base + sz:
                return base, sz
        raise KeyError(f"{addr:#x} is not a kmalloc address")


__all__ = ["KmallocAllocator", "PageAllocator"]
