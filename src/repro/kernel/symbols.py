"""Kernel symbol table.

Modules link against the kernel through exported symbols, exactly the
mechanism CARAT KOP piggybacks on: the policy module "provides a single
symbol, ``carat_guard``, which is invoked by modules which have been
transformed by the compiler" (§3.1), and a protected module "is linked
against the policy module's implementation of ``carat_guard``" at
insertion (§3.2), allowing "one guard function to be swapped for another
without having to recompile the guarded module".

A symbol resolves to either a **native** implementation (a Python
callable standing in for compiled core-kernel code) or an **IR function**
exported by another loaded module.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..ir import Function


class Symbol:
    """One exported kernel symbol."""

    __slots__ = ("name", "native", "function", "owner", "private")

    def __init__(
        self,
        name: str,
        native: Optional[Callable] = None,
        function: Optional[Function] = None,
        owner: str = "kernel",
        private: bool = False,
    ):
        if (native is None) == (function is None):
            raise ValueError("symbol needs exactly one of native/function")
        self.name = name
        self.native = native
        self.function = function
        self.owner = owner
        self.private = private

    @property
    def is_native(self) -> bool:
        return self.native is not None

    def __repr__(self) -> str:  # pragma: no cover
        kind = "native" if self.is_native else "ir"
        return f"<Symbol {self.name} ({kind}, owner={self.owner})>"


class SymbolTable:
    """Name -> Symbol map with ownership tracking for rmmod."""

    def __init__(self) -> None:
        self._symbols: dict[str, Symbol] = {}

    def export(self, symbol: Symbol) -> None:
        if symbol.name in self._symbols:
            raise ValueError(f"symbol {symbol.name!r} already exported")
        self._symbols[symbol.name] = symbol

    def export_native(
        self, name: str, fn: Callable, owner: str = "kernel", private: bool = False
    ) -> Symbol:
        sym = Symbol(name, native=fn, owner=owner, private=private)
        self.export(sym)
        return sym

    def export_function(
        self, name: str, fn: Function, owner: str, private: bool = False
    ) -> Symbol:
        sym = Symbol(name, function=fn, owner=owner, private=private)
        self.export(sym)
        return sym

    def lookup(self, name: str) -> Optional[Symbol]:
        return self._symbols.get(name)

    def resolve(self, name: str) -> Symbol:
        sym = self._symbols.get(name)
        if sym is None:
            raise KeyError(f"unresolved kernel symbol {name!r}")
        return sym

    def remove_owner(self, owner: str) -> list[str]:
        """Withdraw every symbol exported by ``owner`` (module unload)."""
        removed = [n for n, s in self._symbols.items() if s.owner == owner]
        for n in removed:
            del self._symbols[n]
        return removed

    def owned_by(self, owner: str) -> list[Symbol]:
        return [s for s in self._symbols.values() if s.owner == owner]

    def __contains__(self, name: str) -> bool:
        return name in self._symbols

    def __len__(self) -> int:
        return len(self._symbols)


__all__ = ["Symbol", "SymbolTable"]
