"""Simulated Linux kernel substrate: memory, loader, devices, panic."""

from . import layout
from .chardev import DeviceRegistry, IoctlError, ModuleCharDevice
from .journal import TransactionJournal
from .kalloc import KmallocAllocator, PageAllocator
from .kernel import Kernel
from .memory import KernelAddressSpace, MMIODevice, PhysicalMemory
from .module_loader import CompiledModule, LoadError, LoadedModule, ModuleLoader
from .panic import KernelPanic, MemoryFault, ViolationFault
from .smp import PerCpu, RcuDomain, RcuError, SmpTopology
from .symbols import Symbol, SymbolTable

__all__ = [
    "CompiledModule",
    "DeviceRegistry",
    "IoctlError",
    "Kernel",
    "KernelAddressSpace",
    "KernelPanic",
    "KmallocAllocator",
    "LoadError",
    "LoadedModule",
    "MMIODevice",
    "MemoryFault",
    "ModuleCharDevice",
    "ModuleLoader",
    "PageAllocator",
    "PerCpu",
    "PhysicalMemory",
    "RcuDomain",
    "RcuError",
    "SmpTopology",
    "Symbol",
    "SymbolTable",
    "TransactionJournal",
    "ViolationFault",
    "layout",
]
