"""The kernel facade: boot, natives, insmod/rmmod, dmesg, panic.

This is the "core HPC kernel" the paper wants protected.  Core-kernel
services (kmalloc, printk, ioremap, memcpy, ...) are **native** Python
callables — they model compiled core-kernel code, which CARAT KOP never
instruments (only the *module* is transformed, §3.2).  Module IR executes
on the VM interpreter, and its loads/stores hit this kernel's address
space, where forbidden accesses either trip a guard (protected modules)
or silently corrupt state / fault (unprotected modules) — the contrast
the examples demonstrate.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional, Sequence

from ..signing import SigningKey
from . import layout
from .chardev import DeviceRegistry, ModuleCharDevice
from .irq import IrqController
from .journal import TransactionJournal
from .kalloc import KmallocAllocator, PageAllocator
from .memory import KernelAddressSpace, MMIODevice, PhysicalMemory
from .module_loader import CompiledModule, LoadedModule, ModuleLoader
from .panic import KernelPanic, ViolationFault
from .symbols import SymbolTable

#: errno values the graceful-enforcement paths return (negated).
EACCES = 13
EFAULT = 14

if TYPE_CHECKING:  # pragma: no cover
    from ..vm.interp import Interpreter
    from ..vm.machine import MachineModel


class Kernel:
    """One booted instance of the simulated machine + kernel."""

    def __init__(
        self,
        ram_size: int = 64 << 20,
        machine: Optional["MachineModel"] = None,
        signing_key: Optional[SigningKey] = None,
        require_protected_modules: bool = False,
        engine: str = "compiled",
        ncpus: int = 1,
        smp_seed: int = 0,
        verify_policy: str = "demote",
    ):
        if verify_policy not in ("strict", "demote", "off"):
            raise ValueError(
                f"verify_policy must be strict, demote, or off: "
                f"{verify_policy!r}"
            )
        self.ram = PhysicalMemory(ram_size)
        self.address_space = KernelAddressSpace(self.ram)
        self.page_allocator = PageAllocator(self.ram)
        self.kmalloc_allocator = KmallocAllocator(self.page_allocator)
        self.symbols = SymbolTable()
        self.devices = DeviceRegistry()
        self.journal = TransactionJournal()
        # SMP topology and RCU come up first: the trace subsystem sizes
        # its per-CPU rings off the topology, and the policy module's
        # region-table replicas use the RCU domain.
        from .smp import RcuDomain, SmpTopology

        self.smp = SmpTopology(ncpus, seed=smp_seed)
        self.rcu = RcuDomain(self.smp)
        # The trace subsystem comes up before the traced subsystems so
        # they can bind their tracepoints at construction time.
        from ..trace import TraceSubsystem

        self.trace = TraceSubsystem(self)
        self.irq = IrqController(self)
        self.loader = ModuleLoader(self)
        from .proc import ProcFS
        from .timers import TimerWheel

        self.proc = ProcFS(self)
        self.timers = TimerWheel(self)
        self._logical_us = 0.0
        self.signing_key = signing_key
        self.require_protected_modules = require_protected_modules
        self.machine = machine
        self.engine = engine
        self._dmesg: list[str] = []
        self.panicked: Optional[str] = None
        # Graceful-enforcement state (eject/isolate modes).
        self._quarantine: dict[str, dict] = {}  # digest-or-name -> entry
        self._isolated: set[str] = set()
        self._pending_ejects: dict[str, str] = {}  # name -> reason
        self._eject_hooks: dict[str, dict[str, Callable]] = {}
        self.violation_faults = 0
        self.entry_refusals = 0
        # Static-verification tier (-O3) state: how insmod treats
        # certificates ("strict" rejects invalid ones, "demote" loads
        # with full dynamic guarding, "off" ignores them entirely), the
        # kernel-registered trusted contract set, and the policy module
        # backref the verifier proves ranges against.
        self.verify_policy = verify_policy
        self.verify_contracts = None
        # Per-driver trusted contract sets, keyed by module name.  Each
        # guarded driver registers only its own invariants, keeping the
        # -O3 verifier's TCB per-driver (certifying one driver never
        # widens what another driver's module may claim).
        self.module_verify_contracts: dict[str, object] = {}
        self.carat_policy = None
        self.verify_demotions = 0
        self._vm: Optional["Interpreter"] = None
        self._ioremap_next = layout.VMALLOC_BASE
        # Kernel stack backing for interpreter frames.
        stack_phys = self.page_allocator.alloc_pages(
            layout.KSTACK_SIZE // layout.PAGE_SIZE
        )
        self.address_space.map_linear(
            layout.KSTACK_BASE, layout.KSTACK_SIZE, stack_phys, "kstack"
        )
        self._register_core_natives()

    # -- logging / panic ---------------------------------------------------------

    def dmesg(self, message: str) -> None:
        self._dmesg.append(message)

    @property
    def dmesg_log(self) -> list[str]:
        return list(self._dmesg)

    def panic(self, reason: str) -> "NoReturn":  # type: ignore[name-defined]  # noqa: F821
        self.panicked = reason
        self.dmesg(f"Kernel panic - not syncing: {reason}")
        tp = self.trace.points["kernel:panic"]
        if tp.enabled:
            tp.emit(reason=reason)
        raise KernelPanic(reason)

    # -- the VM ---------------------------------------------------------------------

    @property
    def vm(self) -> "Interpreter":
        if self._vm is None:
            from ..vm import make_engine

            self._vm = make_engine(self.engine, self, machine=self.machine)
        return self._vm

    def run_function(
        self, module: LoadedModule, name: str, args: Sequence[int | float]
    ):
        """Execute an IR function defined by a loaded module.

        This is the kernel->module boundary, so it is also where graceful
        enforcement lands: entry is refused (-EACCES) for modules that are
        ejected, isolated, or awaiting a deferred eject, and a
        ``ViolationFault`` raised by a guard in eject/isolate mode is
        caught here — the offending module's frames have fully unwound by
        the time the exception reaches us, so ejection cannot pull memory
        out from under a live frame.
        """
        if (
            module.ejected
            or (self._isolated and module.name in self._isolated)
            or (self._pending_ejects and module.name in self._pending_ejects)
        ):
            self.entry_refusals += 1
            return -EACCES
        if module.elided_guards and self._verify_token_stale(module):
            # Belt and braces under the eager on_policy_mutated() hook:
            # a table mutated outside the ioctl path (tests poking the
            # index directly) still demotes before any elided site runs.
            self.demote_module(module, "policy changed since verification")
        vm = self.vm
        outermost = vm._depth == 0
        try:
            result = vm.call(module, name, list(args))
        except ViolationFault as fault:
            result = self._handle_violation_fault(fault, outermost)
        if outermost and self._pending_ejects:
            for pending, reason in list(self._pending_ejects.items()):
                self.eject(pending, reason)
        return result

    def _handle_violation_fault(
        self, fault: ViolationFault, outermost: bool
    ) -> int:
        self.violation_faults += 1
        offender = fault.module_name
        entry = fault.entry_function or "?"
        self.dmesg(
            f"carat: violation fault in {offender} (entry @{entry}): "
            f"{fault.reason} -> {fault.action}"
        )
        if fault.action == "isolate":
            self.isolate(offender, fault.reason)
        elif outermost:
            self.eject(offender, fault.reason)
        else:
            # An inner kernel entry (ISR, timer, nested ioctl) caught the
            # fault while outer frames — possibly the offender's own —
            # are still live on the VM.  Unmapping now would yank memory
            # from under them; park the eject until the outermost entry
            # unwinds.  The refusal check above fences the module off in
            # the meantime.
            if offender not in self._pending_ejects:
                self._pending_ejects[offender] = fault.reason
                self.dmesg(
                    f"module {offender}: eject deferred until the call "
                    f"stack unwinds"
                )
        return -EFAULT

    # -- static verification (hybrid static+dynamic guarding) --------------------------

    def register_verify_contracts(self, contracts, module: Optional[str] = None) -> None:
        """Install a trusted contract set (the -O3 verifier's TCB).

        With ``module`` the set applies to that module name alone —
        the per-driver registry.  Without it, the set is the kernel-wide
        fallback (legacy single-driver behaviour).  Certificates minted
        against a different set are demoted or rejected at insmod."""
        if module is None:
            self.verify_contracts = contracts
        else:
            self.module_verify_contracts[module] = contracts

    def contracts_for(self, module_name: str):
        """The trusted contract set insmod verifies ``module_name``
        against: the per-driver registration if one exists, else the
        kernel-wide fallback."""
        contracts = self.module_verify_contracts.get(module_name)
        return contracts if contracts is not None else self.verify_contracts

    def _verify_token_stale(self, module: LoadedModule) -> bool:
        policy = self.carat_policy
        if policy is None:
            return True
        if module.name in policy.module_indexes:
            return True  # certified against the global table, not this one
        cp = policy.controlplane
        if cp is not None and cp._staged is not None:
            return True  # a canary generation is live on some CPUs
        index = policy.index
        token = (
            index.epoch, index.default_allow,
            None if cp is None else cp.generation,
        )
        return token != module.verify_token

    def demote_module(self, loaded: LoadedModule, reason: str) -> None:
        """Drop a module's static elisions: every guard site runs
        dynamically again (translations are invalidated so compiled code
        re-emits the guard calls)."""
        if not loaded.elided_guards:
            return
        loaded.elided_guards.clear()
        loaded.verify_token = None
        loaded.verify_state = f"demoted:{reason}"
        loaded.invalidate_translations()
        self.verify_demotions += 1
        self.dmesg(
            f"module {loaded.name}: verification certificate invalidated "
            f"({reason}); demoted to full dynamic guarding"
        )

    def on_policy_mutated(self) -> int:
        """Policy-mutation hook (SET/REMOVE region ioctls): any loaded
        module running with statically elided guards was certified
        against the pre-mutation table and must fall back to dynamic
        guarding.  Returns the number of modules demoted."""
        demoted = 0
        for loaded in list(self.loader.loaded.values()):
            if loaded.elided_guards:
                self.demote_module(loaded, "policy table mutated")
                demoted += 1
        return demoted

    # -- graceful enforcement: eject / isolate / quarantine ---------------------------

    def eject(self, name: str, reason: str = "policy violation"):
        """Tear a module out of the kernel and roll back its journalled
        side effects.  Returns the rollback summary dict (or None if the
        module is already gone).  The module's signature is quarantined
        so it cannot simply be insmod'ed again."""
        self._pending_ejects.pop(name, None)
        self._isolated.discard(name)
        loaded = self.loader.loaded.get(name)
        if loaded is None:
            return None
        summary = self.loader.eject(loaded, reason)
        self.quarantine_module(loaded.compiled, reason)
        return summary

    def isolate(self, name: str, reason: str = "policy violation") -> bool:
        """Fence a module off without unloading it: future kernel entries
        are refused and its async entry points (IRQs, timers) are torn
        down, but its memory and symbols stay resident for post-mortem."""
        loaded = self.loader.loaded.get(name)
        if loaded is None:
            return False
        first = name not in self._isolated
        self._isolated.add(name)
        irqs = self.irq.release_module(loaded)
        timers = self.timers.release_module(loaded)
        if first:
            self.dmesg(
                f"module {name}: isolated ({reason}) — {irqs} irqs masked, "
                f"{timers} timers cancelled"
            )
        return True

    def isolated_modules(self) -> list[str]:
        return sorted(self._isolated)

    def register_eject_hook(
        self, module_name: str, hook: Callable, slot: str = "default"
    ) -> None:
        """Register a callable run with the LoadedModule just before its
        journal is rolled back (device quiesce, netdev unregister...).
        Re-registering the same ``slot`` replaces the hook, so re-probed
        drivers do not accumulate stale hooks across eject cycles."""
        self._eject_hooks.setdefault(module_name, {})[slot] = hook

    def eject_hooks_for(self, module_name: str) -> list[Callable]:
        return list(self._eject_hooks.get(module_name, {}).values())

    def quarantine_module(self, compiled: CompiledModule, reason: str) -> None:
        """Blocklist a module's signature (its digest if signed, else its
        name) against re-insmod."""
        sig = compiled.signature
        key = sig.digest if sig is not None else compiled.name
        if key not in self._quarantine:
            self._quarantine[key] = {"name": compiled.name, "reason": reason}
            self.dmesg(
                f"module {compiled.name}: signature quarantined ({reason})"
            )

    def quarantine_reason(self, compiled: CompiledModule) -> Optional[str]:
        sig = compiled.signature
        if sig is not None:
            entry = self._quarantine.get(sig.digest)
            if entry is not None:
                return entry["reason"]
        entry = self._quarantine.get(compiled.name)
        return entry["reason"] if entry is not None else None

    def unquarantine(self, name: str) -> bool:
        """Operator override: lift the quarantine on a module name (or
        exact digest key).  Required before a quarantined module can be
        insmod'ed again."""
        keys = [
            k for k, e in self._quarantine.items()
            if k == name or e["name"] == name
        ]
        for k in keys:
            del self._quarantine[k]
        if keys:
            self.dmesg(f"module {name}: quarantine lifted")
        return bool(keys)

    def quarantined(self) -> list[tuple[str, str]]:
        """Sorted (name, reason) pairs for introspection (/proc/carat)."""
        return sorted(
            (e["name"], e["reason"]) for e in self._quarantine.values()
        )

    # -- time ------------------------------------------------------------------------

    def time_us(self) -> float:
        """Monotonic microseconds: the VM cycle clock when a machine model
        is active, a logical counter otherwise."""
        vm = self._vm
        if vm is not None and vm.timing is not None and self.machine is not None:
            return vm.timing.cycles / self.machine.freq_hz * 1e6
        return self._logical_us

    def advance_time(self, usec: float) -> int:
        """Let simulated time pass; fires due timers.  Returns the number
        of timer handlers that ran."""
        if usec < 0:
            raise ValueError("time only moves forward")
        vm = self.vm
        if vm.timing is not None:
            vm.timing.add_delay_us(usec)
        else:
            self._logical_us += usec
        return self.timers.run_due()

    # -- module management -----------------------------------------------------------

    def insmod(self, compiled: CompiledModule) -> LoadedModule:
        return self.loader.insmod(compiled)

    def rmmod(self, name: str) -> None:
        if name in self._isolated:
            # An isolated module's code must not run again, so skip its
            # cleanup_module and take the rollback path instead.
            loaded = self.loader.loaded.get(name)
            if loaded is not None:
                self.loader.eject(loaded, "rmmod of isolated module")
            self._isolated.discard(name)
            return
        self.loader.rmmod(name)

    def lsmod(self) -> list[str]:
        return sorted(self.loader.loaded)

    def retire_symbols(self, owner: str) -> list[str]:
        """Withdraw ``owner``'s exports and unlink them from every loaded
        module, so later calls re-resolve (the §3.2 guard-swap path)."""
        removed = set(self.symbols.remove_owner(owner))
        for mod in self.loader.loaded.values():
            for name in list(mod.imports):
                if name in removed:
                    del mod.imports[name]
        return sorted(removed)

    # -- device MMIO -----------------------------------------------------------------

    _mmio_devices: dict[int, tuple[int, MMIODevice, str]]

    def register_mmio(self, device: MMIODevice, size: int, name: str) -> int:
        """Register a device's physical BAR (above RAM, so it can never
        collide with the direct map); returns the physical base.  Drivers
        reach it through the ``ioremap`` native."""
        if not hasattr(self, "_mmio_devices"):
            self._mmio_devices = {}
        base = 0x1_0000_0000 + len(self._mmio_devices) * 0x10_0000
        self._mmio_devices[base] = (size, device, name)
        return base

    def ioremap(self, phys: int, size: int) -> int:
        """Map a physical MMIO window into kernel virtual space."""
        if not hasattr(self, "_mmio_devices"):
            self._mmio_devices = {}
        entry = self._mmio_devices.get(phys)
        virt = self._ioremap_next
        self._ioremap_next = layout.page_align_up(
            virt + max(size, layout.PAGE_SIZE)
        ) + layout.PAGE_SIZE  # guard page between windows
        if entry is not None:
            dev_size, device, name = entry
            self.address_space.map_mmio(virt, dev_size, device, f"mmio:{name}")
        else:
            # ioremap of plain RAM (uncommon but legal in our model).
            self.address_space.map_linear(virt, size, phys, f"ioremap:{phys:#x}")
        return virt

    # -- natives --------------------------------------------------------------------

    def _register_core_natives(self) -> None:
        s = self.symbols
        tp_kmalloc = self.trace.points["mem:kmalloc"]
        tp_kfree = self.trace.points["mem:kfree"]

        def n_kmalloc(ctx, size: int, flags: int = 0) -> int:
            addr = self.kmalloc_allocator.kmalloc(int(size))
            # Journal module-attributed allocations so ejection can roll
            # them back.  Core-kernel callers (ctx is None) are untracked.
            module = ctx.current_module if ctx is not None else None
            if module is not None:
                self.journal.record(
                    module.name, "kmalloc", addr, size=int(size)
                )
            if tp_kmalloc.enabled:
                tp_kmalloc.emit(
                    addr=addr,
                    size=int(size),
                    module=module.name if module is not None else "kernel",
                )
            return addr

        def n_kfree(ctx, addr: int) -> None:
            self.kmalloc_allocator.kfree(int(addr))
            self.journal.forget_key("kmalloc", int(addr))
            if tp_kfree.enabled:
                tp_kfree.emit(addr=int(addr))

        def n_printk(ctx, fmt_ptr: int, *args) -> int:
            fmt = self.address_space.read_cstring(int(fmt_ptr)).decode(
                "latin-1"
            )
            text = _format_printk(self, fmt, args)
            self.dmesg(text)
            return len(text)

        def n_panic(ctx, msg_ptr: int) -> None:
            msg = self.address_space.read_cstring(int(msg_ptr)).decode("latin-1")
            self.panic(msg)

        def n_memset(ctx, dst: int, value: int, size: int) -> int:
            self.address_space.write_bytes(
                int(dst), bytes([int(value) & 0xFF]) * int(size)
            )
            return int(dst)

        def n_memcpy(ctx, dst: int, src: int, size: int) -> int:
            data = self.address_space.read_bytes(int(src), int(size))
            self.address_space.write_bytes(int(dst), data)
            return int(dst)

        def n_ioremap(ctx, phys: int, size: int) -> int:
            return self.ioremap(int(phys), int(size))

        def n_virt_to_phys(ctx, virt: int) -> int:
            virt = int(virt)
            if virt < layout.DIRECT_MAP_BASE:
                self.panic(f"virt_to_phys of non-direct-map address {virt:#x}")
            return layout.direct_map_to_phys(virt)

        def n_phys_to_virt(ctx, phys: int) -> int:
            return layout.direct_map_address(int(phys))

        def n_udelay(ctx, usec: int) -> None:
            if ctx is not None and ctx.timing is not None:
                ctx.timing.add_delay_us(int(usec))

        def n_get_cycles(ctx) -> int:
            if ctx is not None and ctx.timing is not None:
                return int(ctx.timing.cycles)
            return 0

        # Privileged intrinsics (paper §5): callable by any module unless
        # the intrinsic-guard extension is compiled in and the policy
        # denies them.  They model MSR/interrupt-flag/port operations.
        self.msr: dict[int, int] = {}
        self.interrupts_enabled = True

        def n_wrmsr(ctx, msr: int, value: int) -> None:
            self.msr[int(msr)] = int(value)
            self.dmesg(f"wrmsr({int(msr):#x}) = {int(value):#x}")

        def n_rdmsr(ctx, msr: int) -> int:
            return self.msr.get(int(msr), 0)

        def n_cli(ctx) -> None:
            self.interrupts_enabled = False

        def n_sti(ctx) -> None:
            self.interrupts_enabled = True

        def n_hlt(ctx) -> None:
            self.dmesg("hlt executed")

        s.export_native("wrmsr", n_wrmsr)
        s.export_native("rdmsr", n_rdmsr)
        s.export_native("cli", n_cli)
        s.export_native("sti", n_sti)
        s.export_native("hlt", n_hlt)
        s.export_native("kmalloc", n_kmalloc)
        s.export_native("kfree", n_kfree)
        s.export_native("printk", n_printk)
        s.export_native("panic", n_panic)
        s.export_native("memset", n_memset)
        s.export_native("memcpy", n_memcpy)
        s.export_native("ioremap", n_ioremap)
        s.export_native("virt_to_phys", n_virt_to_phys)
        s.export_native("phys_to_virt", n_phys_to_virt)
        s.export_native("udelay", n_udelay)
        s.export_native("get_cycles", n_get_cycles)

        # netif_rx: the core network stack's receive entry point.  The
        # active net device layer plugs in a handler; without one, frames
        # are counted and dropped (no stack listening).
        self.netif_rx_handler: Optional[Callable] = None
        self.netif_rx_dropped = 0

        def n_netif_rx(ctx, data: int, length: int) -> None:
            if self.netif_rx_handler is not None:
                self.netif_rx_handler(ctx, int(data), int(length))
            else:
                self.netif_rx_dropped += 1

        s.export_native("netif_rx", n_netif_rx)

        def n_request_irq(ctx, line: int, handler_name_ptr: int) -> int:
            """request_irq(line, "handler") from module code."""
            if ctx is None or ctx.current_module is None:
                return -1
            handler = self.address_space.read_cstring(
                int(handler_name_ptr)
            ).decode()
            from .irq import IrqError

            try:
                self.irq.request_irq(int(line), ctx.current_module, handler)
                return 0
            except IrqError as e:
                self.dmesg(f"request_irq failed: {e}")
                return -1

        def n_free_irq(ctx, line: int) -> None:
            if ctx is not None and ctx.current_module is not None:
                from .irq import IrqError

                try:
                    self.irq.free_irq(int(line), ctx.current_module)
                except IrqError as e:
                    self.dmesg(f"free_irq failed: {e}")

        s.export_native("request_irq", n_request_irq)
        s.export_native("free_irq", n_free_irq)

        def n_mod_timer(ctx, handler_ptr: int, delay_us: int, arg: int = 0) -> int:
            if ctx is None or ctx.current_module is None:
                return -1
            name = self.address_space.read_cstring(int(handler_ptr)).decode()
            try:
                return self.timers.mod_timer(
                    ctx.current_module, name, float(delay_us), int(arg)
                )
            except ValueError as e:
                self.dmesg(f"mod_timer failed: {e}")
                return -1

        def n_del_timer(ctx, timer_id: int) -> int:
            return int(self.timers.del_timer(int(timer_id)))

        def n_time_us(ctx) -> int:
            return int(self.time_us())

        s.export_native("mod_timer", n_mod_timer)
        s.export_native("del_timer", n_del_timer)
        s.export_native("time_us", n_time_us)

        def n_register_chrdev(ctx, path_ptr: int, handler_ptr: int) -> int:
            """register_chrdev("/dev/x", "ioctl_handler") from module code.
            The handler runs on the VM for every ioctl on the device; the
            registration is journalled, so ejection unregisters it."""
            if ctx is None or ctx.current_module is None:
                return -1
            module = ctx.current_module
            path = self.address_space.read_cstring(int(path_ptr)).decode()
            handler = self.address_space.read_cstring(int(handler_ptr)).decode()
            fn = module.ir.functions.get(handler)
            if fn is None or fn.is_declaration or len(fn.args) != 3:
                self.dmesg(
                    f"register_chrdev: {module.name} has no 3-arg @{handler}"
                )
                return -1
            try:
                self.devices.register(
                    path,
                    ModuleCharDevice(self, module, handler),
                    owner=module.name,
                )
            except ValueError as e:
                self.dmesg(f"register_chrdev failed: {e}")
                return -1
            self.journal.record(module.name, "chardev", path)
            self.dmesg(f"chardev {path}: registered by {module.name}")
            return 0

        def n_unregister_chrdev(ctx, path_ptr: int) -> int:
            if ctx is None or ctx.current_module is None:
                return -1
            path = self.address_space.read_cstring(int(path_ptr)).decode()
            if self.devices.owner_of(path) != ctx.current_module.name:
                return -1
            self.devices.unregister(path)
            self.journal.forget(ctx.current_module.name, "chardev", path)
            return 0

        s.export_native("register_chrdev", n_register_chrdev)
        s.export_native("unregister_chrdev", n_unregister_chrdev)

    def export_native(self, name: str, fn: Callable, owner: str = "kernel",
                      private: bool = False) -> None:
        """Register an additional native (device glue, policy hooks...)."""
        self.symbols.export_native(name, fn, owner=owner, private=private)


def _format_printk(kernel: Kernel, fmt: str, args: tuple) -> str:
    """A printf subset: %d %u %x %lx %llx %s %c %p %%."""
    out: list[str] = []
    i = 0
    argi = 0

    def next_arg():
        nonlocal argi
        if argi >= len(args):
            return 0
        v = args[argi]
        argi += 1
        return v

    while i < len(fmt):
        c = fmt[i]
        if c != "%":
            out.append(c)
            i += 1
            continue
        i += 1
        # length modifiers
        while i < len(fmt) and fmt[i] in "l0123456789.":
            i += 1
        if i >= len(fmt):
            break
        spec = fmt[i]
        i += 1
        if spec == "%":
            out.append("%")
        elif spec in ("d", "i"):
            v = int(next_arg())
            if v >= 1 << 63:
                v -= 1 << 64
            out.append(str(v))
        elif spec == "u":
            out.append(str(int(next_arg())))
        elif spec in ("x", "X"):
            text = format(int(next_arg()), "x")
            out.append(text.upper() if spec == "X" else text)
        elif spec == "p":
            out.append(f"{int(next_arg()):#018x}")
        elif spec == "c":
            out.append(chr(int(next_arg()) & 0xFF))
        elif spec == "s":
            out.append(
                kernel.address_space.read_cstring(int(next_arg())).decode("latin-1")
            )
        else:
            out.append(f"%{spec}")
    return "".join(out)


__all__ = ["Kernel"]
