"""Character devices and the ioctl path.

The paper's operator interface is "an ioctl system call ... using a
simple application, policy-manager" against ``/dev/carat`` (§3.1,
Figure 1).  This module provides the registry and dispatch for that
path: a device registers under a ``/dev`` name and receives
``ioctl(cmd, arg)`` calls from user space (arg is a bytes payload, like a
copied-in struct).

Registrations carry an optional *owner* (the registering module's name)
so the transaction journal can attribute them and module ejection can
withdraw them; :class:`ModuleCharDevice` is the loadable-module flavour,
dispatching ioctls to an IR handler function under guards.
"""

from __future__ import annotations

import struct
from typing import TYPE_CHECKING, Optional, Protocol

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Kernel
    from .module_loader import LoadedModule


class IoctlError(OSError):
    """Mirrors an errno-carrying ioctl failure."""

    def __init__(self, errno_: int, message: str):
        super().__init__(errno_, message)
        self.errno = errno_


# A few errno values, so callers can assert on them.
EPERM = 1
ENOENT = 2
EIO = 5
EAGAIN = 11
EBUSY = 16
EEXIST = 17
EINVAL = 22
ENOSPC = 28
ENOTTY = 25
EFAULT = 14
EDQUOT = 122


class CharDevice(Protocol):
    """Anything that can live under /dev and answer ioctls."""

    def ioctl(self, cmd: int, arg: bytes, *, uid: int) -> bytes: ...


class ModuleCharDevice:
    """A chardev whose ioctl handler is module IR (runs under guards).

    The handler is ``long handler(long cmd, long arg_ptr, long arg_len)``;
    the payload is copied into a kmalloc'd kernel buffer for the call
    (copy_from_user analog) and the signed 64-bit return value is packed
    back to the caller.  A negative return becomes an IoctlError.
    """

    def __init__(self, kernel: "Kernel", module: "LoadedModule",
                 handler_name: str):
        self.kernel = kernel
        self.module = module
        self.handler_name = handler_name

    def ioctl(self, cmd: int, arg: bytes, *, uid: int) -> bytes:
        kernel = self.kernel
        buf = kernel.kmalloc_allocator.kmalloc(max(len(arg), 1))
        kernel.address_space.write_bytes(buf, arg or b"\x00")
        try:
            rc = kernel.run_function(
                self.module, self.handler_name, [cmd, buf, len(arg)]
            )
        finally:
            if kernel.kmalloc_allocator.owns(buf):
                kernel.kmalloc_allocator.kfree(buf)
        rc = int(rc or 0)
        if rc >= 1 << 63:
            rc -= 1 << 64
        if rc < 0:
            raise IoctlError(-rc, f"{self.module.name} ioctl returned {rc}")
        return struct.pack("<q", rc)


class DeviceRegistry:
    """The /dev namespace."""

    def __init__(self) -> None:
        self._devices: dict[str, CharDevice] = {}
        self._owners: dict[str, str] = {}

    def register(self, path: str, device: CharDevice,
                 owner: Optional[str] = None) -> None:
        if not path.startswith("/dev/"):
            raise ValueError("device paths live under /dev/")
        if path in self._devices:
            raise ValueError(f"{path} already registered")
        self._devices[path] = device
        if owner is not None:
            self._owners[path] = owner

    def unregister(self, path: str) -> None:
        self._devices.pop(path, None)
        self._owners.pop(path, None)

    def owner_of(self, path: str) -> Optional[str]:
        return self._owners.get(path)

    def owned_by(self, owner: str) -> list[str]:
        return sorted(p for p, o in self._owners.items() if o == owner)

    def get(self, path: str) -> Optional[CharDevice]:
        return self._devices.get(path)

    def ioctl(self, path: str, cmd: int, arg: bytes = b"", *, uid: int = 0) -> bytes:
        device = self._devices.get(path)
        if device is None:
            raise IoctlError(ENOENT, f"{path}: no such device")
        return device.ioctl(cmd, arg, uid=uid)

    def paths(self) -> list[str]:
        return sorted(self._devices)


__all__ = [
    "CharDevice",
    "DeviceRegistry",
    "EFAULT",
    "EINVAL",
    "ENOENT",
    "ENOSPC",
    "ENOTTY",
    "EPERM",
    "IoctlError",
    "ModuleCharDevice",
]
