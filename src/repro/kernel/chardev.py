"""Character devices and the ioctl path.

The paper's operator interface is "an ioctl system call ... using a
simple application, policy-manager" against ``/dev/carat`` (§3.1,
Figure 1).  This module provides the registry and dispatch for that
path: a device registers under a ``/dev`` name and receives
``ioctl(cmd, arg)`` calls from user space (arg is a bytes payload, like a
copied-in struct).
"""

from __future__ import annotations

from typing import Optional, Protocol


class IoctlError(OSError):
    """Mirrors an errno-carrying ioctl failure."""

    def __init__(self, errno_: int, message: str):
        super().__init__(errno_, message)
        self.errno = errno_


# A few errno values, so callers can assert on them.
EPERM = 1
ENOENT = 2
EINVAL = 22
ENOSPC = 28
ENOTTY = 25


class CharDevice(Protocol):
    """Anything that can live under /dev and answer ioctls."""

    def ioctl(self, cmd: int, arg: bytes, *, uid: int) -> bytes: ...


class DeviceRegistry:
    """The /dev namespace."""

    def __init__(self) -> None:
        self._devices: dict[str, CharDevice] = {}

    def register(self, path: str, device: CharDevice) -> None:
        if not path.startswith("/dev/"):
            raise ValueError("device paths live under /dev/")
        if path in self._devices:
            raise ValueError(f"{path} already registered")
        self._devices[path] = device

    def unregister(self, path: str) -> None:
        self._devices.pop(path, None)

    def get(self, path: str) -> Optional[CharDevice]:
        return self._devices.get(path)

    def ioctl(self, path: str, cmd: int, arg: bytes = b"", *, uid: int = 0) -> bytes:
        device = self._devices.get(path)
        if device is None:
            raise IoctlError(ENOENT, f"{path}: no such device")
        return device.ioctl(cmd, arg, uid=uid)

    def paths(self) -> list[str]:
        return sorted(self._devices)


__all__ = [
    "CharDevice",
    "DeviceRegistry",
    "EINVAL",
    "ENOENT",
    "ENOSPC",
    "ENOTTY",
    "EPERM",
    "IoctlError",
]
