"""SMP primitives: per-CPU data, a cooperative CPU scheduler, and RCU.

The paper's evaluation (§4) is one CPU hammering one e1000e; real
deployments scale out the way the Linux kernel does — per-CPU data that
is never shared, read-mostly structures replicated and read lock-free
under RCU, and writers paying for a grace period instead of readers
paying for a lock.  This module provides those three primitives for the
simulated kernel:

- :class:`PerCpu` — one slot per simulated CPU, like ``DEFINE_PER_CPU``.
- :class:`SmpTopology` — the CPU set plus a **deterministic, cooperative
  round-robin scheduler**.  There is exactly one host thread; "running on
  CPU k" means attribution (per-CPU stats, caches, trace rings), never a
  second interpreter racing the first — the model QEMU calls round-robin
  TCG.  With the default seed the interleave of a sharded workload is
  byte-identical to the single-CPU ordering, which is what lets the CI
  smoke job diff simulated state across ``--cpus 1/2/4``.
- :class:`RcuDomain` — ``rcu_read()`` read-side critical sections,
  ``synchronize()`` grace periods, and ``call_rcu()`` epoch-based
  reclamation, the read-path pattern the eBPF runtime uses for map
  access and the policy module uses here for its region-table replicas.

True parallelism (separate OS processes per worker) lives in
:mod:`repro.net.pool`; nothing here spawns a thread.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterable, Iterator, Optional, TypeVar

T = TypeVar("T")


class PerCpu:
    """One value per CPU — ``DEFINE_PER_CPU`` for the simulated kernel.

    Slots are built eagerly from ``factory`` (called once per CPU with
    the CPU id) so per-CPU state never aliases between CPUs.
    """

    __slots__ = ("_slots",)

    def __init__(self, ncpus: int, factory: Callable[[int], T]):
        if ncpus < 1:
            raise ValueError("need at least one CPU")
        self._slots: list = [factory(cpu) for cpu in range(ncpus)]

    def __len__(self) -> int:
        return len(self._slots)

    def __getitem__(self, cpu: int) -> T:
        return self._slots[cpu]

    def __setitem__(self, cpu: int, value: T) -> None:
        self._slots[cpu] = value

    def __iter__(self) -> Iterator[T]:
        return iter(self._slots)

    def items(self) -> Iterator[tuple[int, T]]:
        return enumerate(self._slots)  # type: ignore[return-value]


class SmpTopology:
    """The simulated CPU set and its cooperative round-robin scheduler.

    ``current`` is the CPU the (single) host thread is notionally
    executing on; per-CPU consumers (policy stats, guard caches, trace
    rings) read it at their hot sites.  ``seed`` rotates the round-robin
    starting CPU — deterministic for any fixed seed; the default (0)
    makes a sharded run's global ordering identical to ``ncpus=1``.
    """

    __slots__ = ("ncpus", "seed", "current", "switches", "_rr_next")

    def __init__(self, ncpus: int = 1, seed: int = 0):
        if ncpus < 1:
            raise ValueError("need at least one CPU")
        self.ncpus = ncpus
        self.seed = seed
        self.current = seed % ncpus
        #: Context-switch count (attribution changes), for /proc and tests.
        self.switches = 0
        self._rr_next = seed % ncpus

    def cpus(self) -> range:
        return range(self.ncpus)

    def switch_to(self, cpu: int) -> int:
        """Move execution attribution to ``cpu``; returns the previous CPU."""
        if not 0 <= cpu < self.ncpus:
            raise ValueError(f"no such CPU {cpu} (ncpus={self.ncpus})")
        previous = self.current
        if cpu != previous:
            self.switches += 1
        self.current = cpu
        return previous

    @contextmanager
    def on(self, cpu: int):
        """Run a block "on" ``cpu`` (scoped :meth:`switch_to`)."""
        previous = self.switch_to(cpu)
        try:
            yield cpu
        finally:
            self.switch_to(previous)

    def next_cpu(self) -> int:
        """The scheduler's round-robin pick (advances the rotor)."""
        cpu = self._rr_next
        self._rr_next = (cpu + 1) % self.ncpus
        return cpu

    def run_round_robin(self, tasks: Iterable[Iterator]) -> int:
        """Drive one iterator per CPU cooperatively, one step per turn.

        ``tasks[k]`` runs with ``current == k``; turns rotate starting at
        the seed CPU.  Round-robin sharding plus round-robin draining
        reconstructs the unsharded global order exactly — the property
        the ``--cpus 1/2/4`` bit-identity check rests on.  Returns the
        total number of steps executed.
        """
        pending = {cpu: task for cpu, task in enumerate(tasks)}
        if len(pending) > self.ncpus:
            raise ValueError(
                f"{len(pending)} tasks for {self.ncpus} CPUs"
            )
        steps = 0
        start = self.seed % self.ncpus
        order = [(start + i) % self.ncpus for i in range(self.ncpus)]
        while pending:
            for cpu in order:
                task = pending.get(cpu)
                if task is None:
                    continue
                previous = self.switch_to(cpu)
                try:
                    next(task)
                    steps += 1
                except StopIteration:
                    del pending[cpu]
                finally:
                    self.switch_to(previous)
        return steps


class RcuError(RuntimeError):
    """Illegal RCU usage (e.g. synchronize inside a read-side section)."""


class RcuDomain:
    """Epoch-based RCU for the cooperative SMP model.

    Readers enter cheap nestable read-side critical sections
    (:meth:`read`); writers publish a new version of the protected data,
    then call :meth:`synchronize` — which completes a **grace period** —
    before reclaiming the old version.  Reclamation can also be deferred
    with :meth:`call_rcu`: the callback runs once every CPU has passed a
    quiescent state after enqueue.

    Cooperative model: there is one host thread, so "waiting for every
    CPU to quiesce" cannot block; instead each CPU carries a quiescent
    epoch, bumped whenever it is outside any read-side section, and a
    grace period completes once every CPU's epoch has advanced past the
    grace period's start.  A ``synchronize`` issued while the *current*
    CPU holds a read lock is the classic self-deadlock and raises
    :class:`RcuError` (the real kernel would hang — we can do better).
    """

    __slots__ = ("smp", "_nesting", "_cpu_epoch", "gp_seq", "grace_periods",
                 "read_sections", "callbacks_invoked", "_callbacks")

    def __init__(self, smp: SmpTopology):
        self.smp = smp
        self._nesting = PerCpu(smp.ncpus, lambda cpu: 0)
        #: Per-CPU quiescent epoch: last grace-period sequence this CPU
        #: was observed quiescent in.
        self._cpu_epoch = PerCpu(smp.ncpus, lambda cpu: 0)
        #: Completed grace-period sequence number.
        self.gp_seq = 0
        self.grace_periods = 0
        self.read_sections = 0
        self.callbacks_invoked = 0
        #: (gp_seq_required, callback) pairs awaiting a grace period.
        self._callbacks: list[tuple[int, Callable[[], None]]] = []

    @property
    def callbacks_pending(self) -> int:  # type: ignore[override]
        return len(self._callbacks)

    # -- read side ---------------------------------------------------------

    def read_lock(self, cpu: Optional[int] = None) -> int:
        cpu = self.smp.current if cpu is None else cpu
        self._nesting[cpu] += 1
        self.read_sections += 1
        return cpu

    def read_unlock(self, cpu: Optional[int] = None) -> None:
        cpu = self.smp.current if cpu is None else cpu
        nesting = self._nesting[cpu]
        if nesting <= 0:
            raise RcuError(f"rcu_read_unlock on CPU {cpu} without a lock")
        self._nesting[cpu] = nesting - 1

    @contextmanager
    def read(self, cpu: Optional[int] = None):
        """``rcu_read_lock()`` / ``rcu_read_unlock()`` as a context."""
        cpu = self.read_lock(cpu)
        try:
            yield cpu
        finally:
            self.read_unlock(cpu)

    def in_read_section(self, cpu: Optional[int] = None) -> bool:
        cpu = self.smp.current if cpu is None else cpu
        return self._nesting[cpu] > 0

    # -- write side --------------------------------------------------------

    def synchronize(self) -> int:
        """Complete a grace period; returns the new ``gp_seq``.

        Every CPU not inside a read-side critical section quiesces
        immediately (cooperative model: an off-CPU vCPU holds no locks);
        a CPU still inside one would make the grace period unbounded —
        on the current CPU that is a guaranteed self-deadlock and raises.
        """
        if self.in_read_section():
            raise RcuError(
                "synchronize_rcu() inside an RCU read-side critical "
                "section would deadlock"
            )
        blocked = [
            cpu for cpu, n in self._nesting.items() if n > 0
        ]
        if blocked:
            raise RcuError(
                f"grace period cannot complete: CPUs {blocked} hold "
                f"read-side critical sections"
            )
        self.gp_seq += 1
        self.grace_periods += 1
        for cpu in self.smp.cpus():
            self._cpu_epoch[cpu] = self.gp_seq
        self._run_ready_callbacks()
        return self.gp_seq

    def call_rcu(self, callback: Callable[[], None]) -> None:
        """Defer ``callback`` until one full grace period has elapsed."""
        self._callbacks.append((self.gp_seq + 1, callback))

    def barrier(self) -> None:
        """``rcu_barrier()``: force a grace period and drain callbacks."""
        self.synchronize()

    def _run_ready_callbacks(self) -> None:
        ready = [cb for need, cb in self._callbacks if need <= self.gp_seq]
        if not ready:
            return
        self._callbacks = [
            (need, cb) for need, cb in self._callbacks if need > self.gp_seq
        ]
        for cb in ready:
            cb()
            self.callbacks_invoked += 1

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict[str, int]:
        return {
            "grace_periods": self.grace_periods,
            "read_sections": self.read_sections,
            "callbacks_pending": len(self._callbacks),
            "callbacks_invoked": self.callbacks_invoked,
        }


__all__ = ["PerCpu", "RcuDomain", "RcuError", "SmpTopology"]
