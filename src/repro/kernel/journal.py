"""The kernel transaction journal: per-module side-effect bookkeeping.

Paper §5 names clean module ejection as future work; the hard part of
ejection is knowing what to undo.  The journal records every kernel-side
side effect a module accrues while loaded — kmalloc allocations,
requested IRQ lines, pending timers, exported symbols, chardev
registrations — as it happens (the natives and subsystems notify on both
the do and the undo), so :meth:`rollback` can withdraw all of it in
reverse order and leave the rest of the machine intact.

Records are attributed by ``ctx.current_module`` at native-dispatch time
(both execution engines set it before invoking a native), so only module
code is journaled; core-kernel allocations (skbs, interpreter stacks)
are deliberately not — ejecting a module must not free the kernel's own
state.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Kernel

#: Record kinds, in the order /proc/journal reports them.  ``policy``
#: records are the control plane's generalization: instead of a kernel
#: resource keyed by handle, they carry their own ``undo`` callable
#: (the inverse of one policy mutation), so a torn batch or a staged
#: generation can be withdrawn through exactly the same rollback path
#: that module ejection uses.
KINDS = ("kmalloc", "irq", "timer", "symbol", "chardev", "policy")


class TransactionJournal:
    """Side-effect records per module, insertion-ordered for rollback."""

    def __init__(self) -> None:
        # module -> {(kind, key): info}; dicts preserve insertion order,
        # which rollback walks in reverse (undo is LIFO).
        self._records: dict[str, dict[tuple, dict]] = {}
        #: Rollback summaries of past ejections (newest last).
        self.rollbacks: list[dict] = []

    # -- recording ----------------------------------------------------------

    def record(self, module: str, kind: str, key, **info) -> None:
        self._records.setdefault(module, {})[(kind, key)] = info

    def forget(self, module: str, kind: str, key) -> None:
        records = self._records.get(module)
        if records is not None:
            records.pop((kind, key), None)

    def forget_key(self, kind: str, key) -> None:
        """Drop a record when the undoing caller can't name the module
        (e.g. kfree: any code may free memory another module allocated)."""
        for records in self._records.values():
            if records.pop((kind, key), None) is not None:
                return

    def drop(self, module: str) -> None:
        """Discard a module's records without undoing them (rmmod path:
        the module's own cleanup ran; whatever it left is a leak, exactly
        as in Linux)."""
        self._records.pop(module, None)

    # -- introspection ------------------------------------------------------

    def modules(self) -> list[str]:
        return sorted(m for m, r in self._records.items() if r)

    def entries(self, module: str) -> list[tuple[str, object, dict]]:
        records = self._records.get(module, {})
        return [(kind, key, dict(info)) for (kind, key), info in records.items()]

    def depth(self, module: str) -> int:
        return len(self._records.get(module, ()))

    def depth_by_kind(self, module: str) -> dict[str, int]:
        out = {k: 0 for k in KINDS}
        for (kind, _key) in self._records.get(module, {}):
            out[kind] = out.get(kind, 0) + 1
        return out

    # -- rollback -----------------------------------------------------------

    def rollback(self, module: str, kernel: "Kernel") -> dict:
        """Undo every journaled side effect of ``module``, newest first.

        Returns a summary dict (also appended to :attr:`rollbacks`).
        Idempotent per record: each undo re-checks current ownership, so
        a record the module already undid itself is skipped, never
        double-freed.
        """
        records = list(self._records.get(module, {}).items())
        summary = {
            "module": module,
            "kmalloc_allocations": 0,
            "kmalloc_bytes": 0,
            "irqs": 0,
            "timers": 0,
            "symbols": 0,
            "chardevs": 0,
            "policy_ops": 0,
        }
        allocator = kernel.kmalloc_allocator
        symbols_to_retire = False
        # Rollback is a cold path; one registry lookup covers all records.
        tp = kernel.trace.points["journal:rollback"]
        for (kind, key), _info in reversed(records):
            if tp.enabled:
                tp.emit(module=module, kind=kind, key=key)
            if kind == "kmalloc":
                if allocator.owns(key):
                    summary["kmalloc_bytes"] += allocator.usable_size(key)
                    allocator.kfree(key)
                    summary["kmalloc_allocations"] += 1
            elif kind == "irq":
                if kernel.irq.force_release_line(key, module):
                    summary["irqs"] += 1
            elif kind == "timer":
                if kernel.timers.del_timer(key):
                    summary["timers"] += 1
            elif kind == "symbol":
                symbols_to_retire = True
                summary["symbols"] += 1
            elif kind == "chardev":
                kernel.devices.unregister(key)
                summary["chardevs"] += 1
            elif kind == "policy":
                undo = _info.get("undo")
                if undo is not None:
                    undo()
                summary["policy_ops"] += 1
        if symbols_to_retire:
            kernel.retire_symbols(module)
        self._records.pop(module, None)
        self.rollbacks.append(summary)
        return summary


__all__ = ["KINDS", "TransactionJournal"]
