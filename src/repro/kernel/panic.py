"""Kernel panic and fault machinery.

Paper §3.1: "in this work we currently do not cleanly handle forbidden
accesses, and instead log that they occur and cause a kernel panic" —
and argues a hard stop is the *correct* response in production HPC.
A panic here is an exception that unwinds the whole simulated machine;
tests assert both that violations panic and that the dmesg log records
the offending access.
"""

from __future__ import annotations


class KernelPanic(Exception):
    """The simulated kernel has halted.  Not catchable by module code."""

    def __init__(self, reason: str):
        super().__init__(f"Kernel panic - not syncing: {reason}")
        self.reason = reason


class ViolationFault(Exception):
    """A guard denial under a *recoverable* enforcement mode.

    Paper §5 names clean module ejection as future work; this is that
    path.  Unlike :class:`GuardViolation` (a :class:`KernelPanic`), a
    ViolationFault is catchable: it unwinds only the offending module's
    call stack and is handled at the kernel entry point
    (:meth:`repro.kernel.kernel.Kernel.run_function`), which ejects or
    isolates the module and returns ``-EFAULT`` to the caller.  The rest
    of the machine keeps running.
    """

    def __init__(self, addr: int, size: int, flags: int, module_name: str,
                 action: str, detail: str = ""):
        reason = (
            f"forbidden access by module {module_name} at {addr:#018x} "
            f"(size {size})"
        )
        if detail:
            reason = detail
        super().__init__(reason)
        self.addr = addr
        self.size = size
        self.flags = flags
        self.module_name = module_name
        #: The enforcement action the policy selected: "eject"/"isolate".
        self.action = action
        self.reason = reason
        #: Filled by the VM entry point as the fault unwinds: the
        #: (module, function) the kernel called into.
        self.entry_module: str = ""
        self.entry_function: str = ""

    def note_entry(self, module_name: str, function_name: str) -> None:
        """Record the VM entry point the fault unwound out of (once)."""
        if not self.entry_module:
            self.entry_module = module_name
            self.entry_function = function_name


class MemoryFault(Exception):
    """An access to an unmapped or ill-formed address.

    In the real kernel this is an oops/page-fault; unprotected module code
    that faults takes the whole machine down, which is exactly the hazard
    CARAT KOP exists to prevent *before* the access happens.
    """

    def __init__(self, addr: int, size: int, write: bool, detail: str = ""):
        kind = "write to" if write else "read from"
        msg = f"unable to handle {kind} {addr:#018x} (size {size})"
        if detail:
            msg += f": {detail}"
        super().__init__(msg)
        self.addr = addr
        self.size = size
        self.write = write


__all__ = ["KernelPanic", "MemoryFault", "ViolationFault"]
