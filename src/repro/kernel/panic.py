"""Kernel panic and fault machinery.

Paper §3.1: "in this work we currently do not cleanly handle forbidden
accesses, and instead log that they occur and cause a kernel panic" —
and argues a hard stop is the *correct* response in production HPC.
A panic here is an exception that unwinds the whole simulated machine;
tests assert both that violations panic and that the dmesg log records
the offending access.
"""

from __future__ import annotations


class KernelPanic(Exception):
    """The simulated kernel has halted.  Not catchable by module code."""

    def __init__(self, reason: str):
        super().__init__(f"Kernel panic - not syncing: {reason}")
        self.reason = reason


class MemoryFault(Exception):
    """An access to an unmapped or ill-formed address.

    In the real kernel this is an oops/page-fault; unprotected module code
    that faults takes the whole machine down, which is exactly the hazard
    CARAT KOP exists to prevent *before* the access happens.
    """

    def __init__(self, addr: int, size: int, write: bool, detail: str = ""):
        kind = "write to" if write else "read from"
        msg = f"unable to handle {kind} {addr:#018x} (size {size})"
        if detail:
            msg += f": {detail}"
        super().__init__(msg)
        self.addr = addr
        self.size = size
        self.write = write


__all__ = ["KernelPanic", "MemoryFault"]
