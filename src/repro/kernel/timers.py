"""Kernel timers: the substrate for heartbeat-style modules.

The paper motivates CARAT KOP with its authors' own modules, including
"fast timer delivery for heartbeat scheduling" (§1).  This is the timer
half: a monotonic clock (the VM's cycle counter when a machine model is
active, a logical microsecond counter otherwise) plus a classic
timer wheel with mod_timer/del_timer semantics.

Timers fire when simulated time advances past their expiry
(``Kernel.advance_time``); handlers are module functions executed on the
VM — under guards, like every other module entry point.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Kernel
    from .module_loader import LoadedModule


@dataclass(order=True)
class _Entry:
    expires_us: float
    seq: int
    timer: "KernelTimer" = field(compare=False)


@dataclass
class KernelTimer:
    timer_id: int
    module: "LoadedModule"
    handler_name: str
    arg: int
    expires_us: float
    cancelled: bool = False
    fired: int = 0


class TimerWheel:
    """Pending-timer queue keyed on the kernel's monotonic clock."""

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel
        self._heap: list[_Entry] = []
        self._timers: dict[int, KernelTimer] = {}
        self._ids = itertools.count(1)
        self._running = False
        self._tp_fire = kernel.trace.points["timer:fire"]

    def mod_timer(
        self,
        module: "LoadedModule",
        handler_name: str,
        delay_us: float,
        arg: int = 0,
        timer_id: Optional[int] = None,
    ) -> int:
        """Arm (or re-arm) a timer; returns its id.

        The handler must be a defined module function of one argument.
        """
        fn = module.ir.functions.get(handler_name)
        if fn is None or fn.is_declaration:
            raise ValueError(
                f"module {module.name} does not define @{handler_name}"
            )
        if len(fn.args) != 1:
            raise ValueError("timer handlers take exactly one argument")
        if delay_us < 0:
            raise ValueError("negative delay")
        expires = self.kernel.time_us() + delay_us
        if timer_id is not None and timer_id in self._timers:
            old = self._timers[timer_id]
            old.cancelled = True  # lazy-delete the heap entry
            timer = KernelTimer(
                timer_id, module, handler_name, arg, expires,
                fired=old.fired,
            )
        else:
            timer_id = next(self._ids)
            timer = KernelTimer(timer_id, module, handler_name, arg, expires)
        self._timers[timer_id] = timer
        heapq.heappush(self._heap, _Entry(expires, next(self._ids), timer))
        self.kernel.journal.record(module.name, "timer", timer_id)
        return timer_id

    def del_timer(self, timer_id: int) -> bool:
        timer = self._timers.pop(timer_id, None)
        if timer is None:
            return False
        timer.cancelled = True
        self.kernel.journal.forget(timer.module.name, "timer", timer_id)
        return True

    def pending(self) -> int:
        return len(self._timers)

    def next_expiry_us(self) -> Optional[float]:
        while self._heap and self._heap[0].timer.cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].expires_us if self._heap else None

    def run_due(self) -> int:
        """Fire every timer whose expiry has passed.  Handlers may re-arm
        (heartbeats do); re-arms past 'now' wait for the next advance."""
        if self._running:
            return 0  # no nested expiry processing
        self._running = True
        fired = 0
        try:
            now = self.kernel.time_us()
            while self._heap and self._heap[0].expires_us <= now:
                if fired >= 10_000:
                    # A zero-period self-rearming timer would spin forever
                    # inside one advance; break like a watchdog would.
                    self.kernel.dmesg(
                        "timer storm: 10000 expirations in one advance"
                    )
                    break
                entry = heapq.heappop(self._heap)
                timer = entry.timer
                if timer.cancelled or entry.expires_us != timer.expires_us:
                    continue  # deleted or re-armed since queued
                # One-shot semantics: the handler re-arms if it wants more.
                self._timers.pop(timer.timer_id, None)
                self.kernel.journal.forget(
                    timer.module.name, "timer", timer.timer_id
                )
                timer.fired += 1
                fired += 1
                tp = self._tp_fire
                if tp.enabled:
                    tp.emit(
                        timer_id=timer.timer_id,
                        handler=timer.handler_name,
                        module=timer.module.name,
                    )
                self.kernel.run_function(
                    timer.module, timer.handler_name, [timer.arg]
                )
        finally:
            self._running = False
        return fired

    def release_module(self, module: "LoadedModule") -> int:
        """Cancel every pending timer a module owns; returns the count."""
        tids = [t for t, timer in self._timers.items()
                if timer.module is module]
        for tid in tids:
            self.del_timer(tid)
        return len(tids)


__all__ = ["KernelTimer", "TimerWheel"]
