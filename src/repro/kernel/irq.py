"""Interrupt delivery: devices raise IRQs, registered module handlers run.

Models the request_irq/ISR half of the driver contract.  A device is
assigned a line at registration; when it raises, the kernel immediately
invokes the handler the driver registered (simulation is single-threaded,
so 'immediately' is exact: the ISR runs as module code on the VM, under
guards, like everything else the module does).

Re-entrancy is prevented per line, matching the hardware's masked-while-
servicing behaviour — a device raising from within its own ISR (e.g. the
ISR's register reads trigger more device activity) is coalesced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Kernel
    from .module_loader import LoadedModule


class IrqError(ValueError):
    pass


@dataclass
class IrqAction:
    line: int
    module: "LoadedModule"
    handler_name: str
    name: str
    fired: int = 0
    coalesced: int = 0


class IrqController:
    """Line -> action registry + dispatch."""

    MAX_LINES = 64

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel
        self._actions: dict[int, IrqAction] = {}
        self._servicing: set[int] = set()
        self._next_line = 16  # low lines "reserved" for legacy devices
        #: Fault-injection hook (see :mod:`repro.faults`): called with the
        #: line before dispatch; returning True swallows the interrupt,
        #: modelling a lost/level-glitched IRQ.  None = no injection.
        self.fault_injector = None
        #: Interrupts swallowed by the injector.
        self.dropped = 0
        self._tp_raise = kernel.trace.points["irq:raise"]
        self._tp_dispatch = kernel.trace.points["irq:dispatch"]
        self._tp_coalesce = kernel.trace.points["irq:coalesce"]

    def actions(self) -> dict[int, IrqAction]:
        """A snapshot of the line -> action registry (public read API
        for /proc, /proc/trace_stat, and tests)."""
        return dict(self._actions)

    def allocate_line(self) -> int:
        line = self._next_line
        if line >= self.MAX_LINES:
            raise IrqError("out of interrupt lines")
        self._next_line += 1
        return line

    def request_irq(
        self,
        line: int,
        module: "LoadedModule",
        handler_name: str,
        name: str = "",
    ) -> IrqAction:
        """The driver-side registration (request_irq analog)."""
        if line in self._actions:
            raise IrqError(f"IRQ {line} already requested by "
                           f"{self._actions[line].module.name}")
        fn = module.ir.functions.get(handler_name)
        if fn is None or fn.is_declaration:
            raise IrqError(
                f"module {module.name} does not define @{handler_name}"
            )
        if len(fn.args) != 1:
            raise IrqError("IRQ handlers take exactly one argument (the line)")
        action = IrqAction(line, module, handler_name, name or module.name)
        self._actions[line] = action
        self.kernel.journal.record(module.name, "irq", line)
        self.kernel.dmesg(f"irq {line}: registered for {action.name}")
        return action

    def free_irq(self, line: int, module: "LoadedModule") -> None:
        action = self._actions.get(line)
        if action is None or action.module is not module:
            raise IrqError(f"IRQ {line} not owned by {module.name}")
        del self._actions[line]
        self.kernel.journal.forget(module.name, "irq", line)
        self.kernel.dmesg(f"irq {line}: freed")

    def force_release_line(self, line: int, module_name: str) -> bool:
        """Rollback-side release: drop the line if ``module_name`` still
        holds it (the journal replays this; no dmesg, the eject summary
        reports the count)."""
        action = self._actions.get(line)
        if action is None or action.module.name != module_name:
            return False
        del self._actions[line]
        return True

    def raise_irq(self, line: int) -> bool:
        """Device-side: deliver the interrupt.  Returns True if a handler
        ran; False if the line is unclaimed (spurious) or masked."""
        tp = self._tp_raise
        if tp.enabled:
            tp.emit(line=line)
        if not self.kernel.interrupts_enabled:
            return False
        if self.fault_injector is not None and self.fault_injector.drop_irq(line):
            self.dropped += 1
            return False
        action = self._actions.get(line)
        if action is None:
            self.kernel.dmesg(f"irq {line}: spurious interrupt")
            return False
        if line in self._servicing:
            action.coalesced += 1
            tp = self._tp_coalesce
            if tp.enabled:
                tp.emit(line=line)
            return False
        self._servicing.add(line)
        try:
            action.fired += 1
            tp = self._tp_dispatch
            if tp.enabled:
                tp.emit(
                    line=line,
                    handler=action.handler_name,
                    module=action.module.name,
                )
            self.kernel.run_function(action.module, action.handler_name, [line])
        finally:
            self._servicing.discard(line)
        return True

    def action_for(self, line: int) -> Optional[IrqAction]:
        return self._actions.get(line)

    def release_module(self, module: "LoadedModule") -> int:
        """Drop every line a module holds (rmmod cleanup path).  Returns
        the number of lines released."""
        lines = [l for l, a in self._actions.items() if a.module is module]
        for line in lines:
            del self._actions[line]
            self.kernel.journal.forget(module.name, "irq", line)
        return len(lines)


__all__ = ["IrqAction", "IrqController", "IrqError"]
