"""Module loading: insmod/rmmod with validation and linking.

The insertion path follows paper §3.2: *validate the signature*, then
*link against the policy module's carat_guard*, then run the module's
init.  The loader also implements the kernel-enforcement knob: when the
kernel is configured with ``require_protected_modules``, an unguarded or
unattested module is refused — the operator's deployment story from §1.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from .. import abi
from ..ir import Function, Module, verify_module
from ..ir.values import ConstantFloat, ConstantInt, ConstantNull, ConstantString
from ..signing import (
    ModuleSignature,
    SignatureError,
    SigningKey,
    VerificationCertificate,
    canonical_bytes,
    verify_signature,
)
from . import layout
from .panic import KernelPanic
from .symbols import Symbol, SymbolTable

if TYPE_CHECKING:  # pragma: no cover
    from .kernel import Kernel


class LoadError(ValueError):
    """insmod refused the module (bad signature, policy, or linkage)."""


@dataclass
class CompiledModule:
    """What the compiler hands the operator: IR plus its signature.

    ``source_lines`` records the size of the original C source, used by the
    engineering-effort ablation (paper §4.1 reports the driver's ~19k LoC).
    """

    ir: Module
    signature: Optional[ModuleSignature] = None
    source_lines: int = 0
    #: Compiler statistics (:class:`repro.core.pipeline.CompileStats`).
    stats: Optional[object] = None
    #: -O3 static-verification certificate
    #: (:class:`repro.signing.VerificationCertificate`); validated and
    #: re-derived by insmod before any guard may be elided.
    certificate: Optional[VerificationCertificate] = None

    @property
    def name(self) -> str:
        return self.ir.name

    @property
    def is_protected(self) -> bool:
        return bool(self.ir.metadata.get(abi.META_GUARDED, False))

    @property
    def guard_count(self) -> int:
        return int(self.ir.metadata.get(abi.META_GUARD_COUNT, 0))  # type: ignore[arg-type]

    @property
    def opt_level(self) -> int:
        return int(self.ir.metadata.get(abi.META_OPT_LEVEL, 0))  # type: ignore[arg-type]

    @property
    def guards_removed(self) -> int:
        return int(self.ir.metadata.get(abi.META_GUARDS_REMOVED, 0))  # type: ignore[arg-type]

    @property
    def guards_hoisted(self) -> int:
        return int(self.ir.metadata.get(abi.META_GUARDS_HOISTED, 0))  # type: ignore[arg-type]

    @property
    def guards_coalesced(self) -> int:
        return int(self.ir.metadata.get(abi.META_GUARDS_COALESCED, 0))  # type: ignore[arg-type]

    @property
    def guards_proven(self) -> int:
        return int(self.ir.metadata.get(abi.META_GUARDS_PROVEN, 0))  # type: ignore[arg-type]

    @property
    def guards_dynamic(self) -> int:
        return int(self.ir.metadata.get(abi.META_GUARDS_DYNAMIC, 0))  # type: ignore[arg-type]

    @property
    def is_verified(self) -> bool:
        return self.certificate is not None


@dataclass
class LoadedModule:
    """A module resident in the kernel."""

    compiled: CompiledModule
    base: int
    size: int
    global_addresses: dict[str, int] = field(default_factory=dict)
    imports: dict[str, Symbol] = field(default_factory=dict)
    #: Names of modules whose exported data this module references.
    data_imports: list[str] = field(default_factory=list)
    refcount: int = 0
    #: Physical base of the module-area mapping (so eject can return the
    #: pages; rmmod keeps the historical leak-until-reuse behaviour).
    phys: int = 0
    #: Set by :meth:`ModuleLoader.eject`; a stale handle to an ejected
    #: module must never execute again (its memory is unmapped).
    ejected: bool = False
    #: Per-engine translation caches: each execution engine stores its
    #: translated functions here, keyed by the engine instance itself
    #: (see :class:`repro.vm.compiled.CompiledEngine`).  Entries are
    #: additionally keyed on ``ir.generation``, so IR rewrites invalidate
    #: them; :meth:`invalidate_translations` forces the same.
    translations: dict = field(default_factory=dict, repr=False, compare=False)
    #: ``id()`` of every guard Call instruction the validated certificate
    #: proves in-policy; the execution engines skip (interpreter) or
    #: never emit (compiled) these sites.  Empty = full dynamic guarding.
    elided_guards: set = field(default_factory=set, repr=False, compare=False)
    #: ``(policy_epoch, default_allow)`` the elisions were validated
    #: against; a mismatch against the live table demotes the module.
    verify_token: Optional[tuple] = None
    #: "verified" | "demoted:<reason>" | "" (never certified).
    verify_state: str = ""

    @property
    def name(self) -> str:
        return self.compiled.name

    @property
    def ir(self) -> Module:
        return self.compiled.ir

    def address_of(self, global_name: str) -> int:
        return self.global_addresses[global_name]

    def function(self, name: str) -> Function:
        fn = self.ir.functions.get(name)
        if fn is None or fn.is_declaration:
            raise KeyError(f"module {self.name} does not define @{name}")
        return fn

    def invalidate_translations(self) -> None:
        """Drop every engine's cached translation of this module's code.

        Call after mutating the loaded IR in place (tests and tooling do
        this; the compiler pipeline bumps the generation itself)."""
        self.ir.bump_generation()
        self.translations.clear()


class ModuleLoader:
    """The kernel's insmod/rmmod implementation."""

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel
        self.loaded: dict[str, LoadedModule] = {}
        self._module_area_next = layout.MODULE_AREA_BASE
        points = kernel.trace.points
        self._tp_verify = points["module:verify"]
        self._tp_link = points["module:link"]
        self._tp_load = points["module:load"]
        self._tp_eject = points["module:eject"]

    # -- insmod ------------------------------------------------------------------

    def insmod(self, compiled: CompiledModule) -> LoadedModule:
        kernel = self.kernel
        name = compiled.name
        if name in self.loaded:
            raise LoadError(f"module {name!r} is already loaded")

        self._validate(compiled)
        verify_module(compiled.ir)

        loaded = self._map_and_link(compiled)
        try:
            self._apply_verification(compiled, loaded)
        except LoadError:
            self._unwind_mapping(loaded)
            raise
        self.loaded[name] = loaded
        tp = self._tp_load
        if tp.enabled:
            tp.emit(
                module=name,
                base=loaded.base,
                size=loaded.size,
                protected=compiled.is_protected,
                guards=compiled.guard_count,
            )
        opt = f", -O{compiled.opt_level}" if compiled.is_protected else ""
        if loaded.verify_state == "verified":
            opt += (f", {len(loaded.elided_guards)} proven static / "
                    f"{compiled.guards_dynamic} dynamic")
        elif loaded.verify_state:
            opt += f", {loaded.verify_state}"
        kernel.dmesg(f"module {name}: loaded at {loaded.base:#x} "
                     f"({'protected' if compiled.is_protected else 'unprotected'}, "
                     f"{compiled.guard_count} guards{opt})")

        init = compiled.ir.functions.get("init_module")
        if init is not None and not init.is_declaration:
            rc = kernel.run_function(loaded, "init_module", [])
            if rc not in (0, None):
                self._unload(loaded)
                raise LoadError(f"module {name}: init_module returned {rc}")
        return loaded

    def _validate(self, compiled: CompiledModule) -> None:
        kernel = self.kernel
        quarantine_reason = kernel.quarantine_reason(compiled)
        if quarantine_reason is not None:
            raise LoadError(
                f"module {compiled.name}: quarantined ({quarantine_reason}); "
                "refusing insmod"
            )
        tp = self._tp_verify
        if kernel.signing_key is not None:
            if compiled.signature is None:
                if tp.enabled:
                    tp.emit(module=compiled.name, signed=False, verified=False)
                raise LoadError(
                    f"module {compiled.name}: unsigned module rejected"
                )
            try:
                verify_signature(compiled.ir, compiled.signature, kernel.signing_key)
            except SignatureError as e:
                if tp.enabled:
                    tp.emit(module=compiled.name, signed=True, verified=False)
                raise LoadError(str(e)) from e
            if tp.enabled:
                tp.emit(module=compiled.name, signed=True, verified=True)
        elif tp.enabled:
            tp.emit(
                module=compiled.name,
                signed=compiled.signature is not None,
                verified=False,
            )
        if kernel.require_protected_modules:
            if not compiled.is_protected:
                raise LoadError(
                    f"module {compiled.name}: kernel requires CARAT KOP "
                    "protected modules"
                )
            if compiled.signature is not None and compiled.signature.has_inline_asm:
                raise LoadError(
                    f"module {compiled.name}: inline assembly attested; "
                    "cannot be protected"
                )
            if bool(compiled.ir.metadata.get(abi.META_HAS_ASM, False)):
                raise LoadError(
                    f"module {compiled.name}: contains inline assembly"
                )

    def _apply_verification(
        self, compiled: CompiledModule, loaded: LoadedModule
    ) -> None:
        """Validate a -O3 certificate and arm the guard elisions.

        The kernel never trusts the shipped verdicts: after checking the
        IR digest, policy digest/epoch, and contract digest, it re-runs
        the deterministic analysis itself and requires bit-for-bit
        verdict agreement.  Any mismatch rejects the module under
        ``verify_policy="strict"`` or loads it with full dynamic
        guarding under ``"demote"``; ``"off"`` ignores certificates.
        """
        kernel = self.kernel
        cert = compiled.certificate
        if cert is None or kernel.verify_policy == "off":
            return

        def invalid(reason: str) -> None:
            if kernel.verify_policy == "strict":
                raise LoadError(
                    f"module {compiled.name}: verification certificate "
                    f"rejected ({reason})"
                )
            kernel.verify_demotions += 1
            loaded.verify_state = f"demoted:{reason}"
            kernel.dmesg(
                f"module {compiled.name}: certificate invalid ({reason}); "
                "loading with full dynamic guarding"
            )

        from ..passes.absint import (
            EMPTY_CONTRACTS,
            ModuleVerifier,
            elidable_guard_ids,
        )

        ir_digest = hashlib.sha256(canonical_bytes(compiled.ir)).hexdigest()
        if ir_digest != cert.ir_digest:
            return invalid("IR digest mismatch")
        policy = kernel.carat_policy
        if policy is None:
            return invalid("no policy module installed")
        if compiled.name in policy.module_indexes:
            return invalid("module is bound to a per-module policy table")
        table = policy.index
        if not hasattr(table, "digest") or not hasattr(table, "check_range"):
            return invalid(
                f"policy index {getattr(table, 'name', '?')} does not "
                "support static range queries"
            )
        if table.digest() != cert.policy_digest:
            return invalid("policy table changed since certification")
        if table.epoch != cert.policy_epoch:
            return invalid("stale policy epoch")
        cp = policy.controlplane
        if cp is not None and any(
            len(t.table) for t in cp.tenants.values()
        ):
            # The guard enforces the tenant-composed policy, but the
            # certificate only proves the system namespace: a tenant
            # region (first-match priority) could deny what the master
            # table allows, so elision would be unsound.
            return invalid(
                "policy is tenant-composed; certificate proves the "
                "system namespace only"
            )
        contracts = kernel.contracts_for(compiled.name)
        if (contracts or EMPTY_CONTRACTS).digest() != cert.contracts_digest:
            return invalid("contract set mismatch")
        report = ModuleVerifier(compiled.ir, table, contracts).run()
        if report.verdicts != cert.verdicts:
            return invalid("verdicts do not reproduce under re-analysis")
        loaded.elided_guards = elidable_guard_ids(
            compiled.ir, report.proven_map()
        )
        loaded.verify_token = (
            table.epoch, table.default_allow,
            None if cp is None else cp.generation,
        )
        loaded.verify_state = "verified"

    def _unwind_mapping(self, loaded: LoadedModule) -> None:
        """Back out a mapped-and-linked module that insmod then refused
        (e.g. a strict-mode certificate rejection): withdraw its exports
        and references, unmap, and return its pages."""
        kernel = self.kernel
        kernel.symbols.remove_owner(loaded.name)
        self._drop_references(loaded)
        kernel.address_space.unmap(loaded.base)
        kernel.page_allocator.free_pages(
            loaded.phys, loaded.size // layout.PAGE_SIZE
        )
        kernel.journal.drop(loaded.name)

    def _map_and_link(self, compiled: CompiledModule) -> LoadedModule:
        """Map, initialize, and link; unwinds the mapping on any failure
        so a rejected module leaves no trace in the address space."""
        kernel = self.kernel
        state: dict = {}
        try:
            return self._map_and_link_inner(compiled, state)
        except Exception:
            base = state.get("base")
            if base is not None:
                kernel.address_space.unmap(base)
                kernel.page_allocator.free_pages(
                    state["phys"], state["size"] // layout.PAGE_SIZE
                )
            raise

    def _map_and_link_inner(
        self, compiled: CompiledModule, state: dict
    ) -> LoadedModule:
        kernel = self.kernel
        ir = compiled.ir

        # Lay out globals in the module area.
        offsets: dict[str, int] = {}
        cursor = 0
        for g in ir.globals.values():
            if g.linkage == "external":
                continue  # imported data; resolved below
            align = g.value_type.align_bytes()
            cursor = (cursor + align - 1) & ~(align - 1)
            offsets[g.name] = cursor
            cursor += g.value_type.size_bytes()
        size = layout.page_align_up(max(cursor, 1))

        base = self._module_area_next
        if base + size > layout.MODULE_AREA_BASE + layout.MODULE_AREA_SIZE:
            raise KernelPanic("module area exhausted")
        self._module_area_next = base + size
        phys = kernel.page_allocator.alloc_pages(size // layout.PAGE_SIZE)
        kernel.address_space.map_linear(
            base, size, phys_base=phys, name=f"module:{compiled.name}"
        )
        state.update(base=base, phys=phys, size=size)

        loaded = LoadedModule(compiled=compiled, base=base, size=size, phys=phys)
        for gname, off in offsets.items():
            addr = base + off
            loaded.global_addresses[gname] = addr
            self._write_initializer(addr, ir.globals[gname])

        # Resolve imported data symbols against other modules' exports
        # (EXPORT_SYMBOL on data), taking a reference on the exporter.
        for g in ir.globals.values():
            if g.linkage != "external":
                continue
            target = None
            for other in self.loaded.values():
                exported = other.ir.globals.get(g.name)
                if exported is not None and exported.linkage == "exported":
                    target = other.global_addresses[g.name]
                    other.refcount += 1
                    loaded.data_imports.append(other.name)
                    break
            if target is None:
                raise LoadError(
                    f"module {compiled.name}: unresolved data symbol "
                    f"@{g.name}"
                )
            loaded.global_addresses[g.name] = target

        # Resolve imported functions through the kernel symbol table
        # (this is where carat_guard binds to the policy module, §3.2).
        tp_link = self._tp_link
        for decl in ir.declarations():
            sym = kernel.symbols.lookup(decl.name)
            if sym is None:
                raise LoadError(
                    f"module {compiled.name}: unresolved symbol {decl.name!r}"
                )
            loaded.imports[decl.name] = sym
            if tp_link.enabled:
                tp_link.emit(
                    module=compiled.name, symbol=decl.name, owner=sym.owner
                )
            if sym.owner != "kernel":
                owner = self.loaded.get(sym.owner)
                if owner is not None:
                    owner.refcount += 1

        # Register this module's exports.
        for fn in ir.functions.values():
            if fn.linkage == "exported" and not fn.is_declaration:
                kernel.symbols.export_function(fn.name, fn, owner=compiled.name)
                kernel.journal.record(compiled.name, "symbol", fn.name)
        return loaded

    def _write_initializer(self, addr: int, g) -> None:
        mem = self.kernel.address_space
        init = g.initializer
        size = g.value_type.size_bytes()
        if init is None or isinstance(init, ConstantNull):
            mem.write_bytes(addr, b"\x00" * size)
        elif isinstance(init, ConstantString):
            data = init.data.ljust(size, b"\x00")
            mem.write_bytes(addr, data[:size])
        elif isinstance(init, ConstantInt):
            mem.write_int(addr, size, init.value)
        elif isinstance(init, ConstantFloat):
            packed = struct.pack("<f" if size == 4 else "<d", init.value)
            mem.write_bytes(addr, packed)
        else:
            raise LoadError(f"unsupported initializer for @{g.name}")

    # -- rmmod ------------------------------------------------------------------

    def rmmod(self, name: str) -> None:
        loaded = self.loaded.get(name)
        if loaded is None:
            raise LoadError(f"module {name!r} is not loaded")
        if loaded.refcount > 0:
            raise LoadError(
                f"module {name!r} is in use (refcount {loaded.refcount})"
            )
        cleanup = loaded.ir.functions.get("cleanup_module")
        if cleanup is not None and not cleanup.is_declaration:
            self.kernel.run_function(loaded, "cleanup_module", [])
        self._unload(loaded)
        self.kernel.dmesg(f"module {name}: unloaded")

    def _unload(self, loaded: LoadedModule) -> None:
        if self.loaded.get(loaded.name) is not loaded:
            return  # already gone (e.g. ejected during its own init)
        kernel = self.kernel
        kernel.irq.release_module(loaded)
        kernel.timers.release_module(loaded)
        kernel.symbols.remove_owner(loaded.name)
        self._drop_references(loaded)
        kernel.address_space.unmap(loaded.base)
        # Physical pages intentionally leak back only via the page allocator
        # free list when the mapping's phys base is tracked; modules are
        # small and reload cycles in tests are bounded.
        kernel.journal.drop(loaded.name)
        self.loaded.pop(loaded.name, None)

    def _drop_references(self, loaded: LoadedModule) -> None:
        for sym in loaded.imports.values():
            if sym.owner != "kernel":
                owner = self.loaded.get(sym.owner)
                if owner is not None:
                    owner.refcount -= 1
        for owner_name in loaded.data_imports:
            owner = self.loaded.get(owner_name)
            if owner is not None:
                owner.refcount -= 1

    # -- eject (graceful enforcement) ---------------------------------------

    def eject(self, loaded: LoadedModule, reason: str) -> dict:
        """Forcibly remove a misbehaving module and roll back its state.

        Unlike rmmod this never runs ``cleanup_module`` (the module just
        violated policy; its code is not trusted to run again) and it
        ignores the refcount — importers are unlinked so later calls
        re-resolve or fail cleanly.  The transaction journal undoes the
        module's side effects (kmalloc, IRQs, timers, exports, chardevs)
        in reverse order; the module's pages are unmapped and returned.
        Returns the rollback summary.
        """
        kernel = self.kernel
        name = loaded.name
        if self.loaded.get(name) is not loaded:
            return {"module": name, "already_unloaded": True}
        kernel.dmesg(f"module {name}: ejecting ({reason})")
        tp = self._tp_eject
        if tp.enabled:
            tp.emit(module=name, reason=reason)
        for hook in kernel.eject_hooks_for(name):
            hook(loaded)
        summary = kernel.journal.rollback(name, kernel)
        # Belt and braces: anything registered outside the journal's view.
        summary["irqs"] += kernel.irq.release_module(loaded)
        summary["timers"] += kernel.timers.release_module(loaded)
        for path in kernel.devices.owned_by(name):
            kernel.devices.unregister(path)
            summary["chardevs"] += 1
        kernel.retire_symbols(name)
        self._drop_references(loaded)
        kernel.address_space.unmap(loaded.base)
        kernel.page_allocator.free_pages(
            loaded.phys, loaded.size // layout.PAGE_SIZE
        )
        self.loaded.pop(name, None)
        loaded.ejected = True
        loaded.translations.clear()
        kernel.vm.forget_module(loaded)
        kernel.dmesg(
            f"module {name}: ejected — rolled back "
            f"{summary['kmalloc_allocations']} allocations "
            f"({summary['kmalloc_bytes']} bytes), {summary['irqs']} irqs, "
            f"{summary['timers']} timers, {summary['symbols']} symbols, "
            f"{summary['chardevs']} chardevs"
        )
        return summary

    def find_module_for_function(self, fn: Function) -> Optional[LoadedModule]:
        for m in self.loaded.values():
            if fn.name in m.ir.functions and m.ir.functions[fn.name] is fn:
                return m
        return None


__all__ = ["CompiledModule", "LoadError", "LoadedModule", "ModuleLoader"]
