"""Physical memory and the kernel virtual address space.

Physical RAM is a sparse page store (only touched pages materialize, so a
16 GB machine model costs nothing until written).  The kernel virtual
space routes:

- the **direct map** (all of RAM at ``DIRECT_MAP_BASE``),
- **MMIO windows** mapped by ``ioremap`` (device register files — reads
  and writes go to device callbacks, exactly the accesses the e1000e
  driver's register I/O performs),
- extra linear mappings (module area, kernel stacks) backed by RAM.

Integers are stored little-endian, matching x86.
"""

from __future__ import annotations

import bisect
import struct
from typing import Optional, Protocol

from . import layout
from .panic import MemoryFault


class PhysicalMemory:
    """Sparse byte-addressable RAM."""

    def __init__(self, size: int):
        if size <= 0 or size % layout.PAGE_SIZE:
            raise ValueError("RAM size must be a positive multiple of the page size")
        self.size = size
        self._pages: dict[int, bytearray] = {}

    def _page(self, pfn: int) -> bytearray:
        page = self._pages.get(pfn)
        if page is None:
            page = bytearray(layout.PAGE_SIZE)
            self._pages[pfn] = page
        return page

    def check_range(self, phys: int, size: int) -> None:
        if phys < 0 or size < 0 or phys + size > self.size:
            raise MemoryFault(phys, size, False, "beyond end of RAM")

    def read(self, phys: int, size: int) -> bytes:
        self.check_range(phys, size)
        out = bytearray()
        while size > 0:
            pfn, off = divmod(phys, layout.PAGE_SIZE)
            chunk = min(size, layout.PAGE_SIZE - off)
            page = self._pages.get(pfn)
            if page is None:
                out += b"\x00" * chunk
            else:
                out += page[off : off + chunk]
            phys += chunk
            size -= chunk
        return bytes(out)

    def write(self, phys: int, data: bytes) -> None:
        self.check_range(phys, len(data))
        pos = 0
        size = len(data)
        while pos < size:
            pfn, off = divmod(phys + pos, layout.PAGE_SIZE)
            chunk = min(size - pos, layout.PAGE_SIZE - off)
            self._page(pfn)[off : off + chunk] = data[pos : pos + chunk]
            pos += chunk

    @property
    def resident_bytes(self) -> int:
        """RAM actually materialized (for tests and stats)."""
        return len(self._pages) * layout.PAGE_SIZE


class MMIODevice(Protocol):
    """A device exposing a register window."""

    def mmio_read(self, offset: int, size: int) -> int: ...

    def mmio_write(self, offset: int, size: int, value: int) -> None: ...


class _Mapping:
    __slots__ = ("base", "size", "phys_base", "device", "name", "writable")

    def __init__(
        self,
        base: int,
        size: int,
        phys_base: Optional[int],
        device: Optional[MMIODevice],
        name: str,
        writable: bool = True,
    ):
        self.base = base
        self.size = size
        self.phys_base = phys_base
        self.device = device
        self.name = name
        self.writable = writable

    @property
    def end(self) -> int:
        return self.base + self.size

    def __repr__(self) -> str:  # pragma: no cover
        kind = "mmio" if self.device is not None else "ram"
        return f"<Mapping {self.name} {kind} {self.base:#x}+{self.size:#x}>"


class KernelAddressSpace:
    """Virtual address routing for the simulated kernel."""

    def __init__(self, ram: PhysicalMemory):
        self.ram = ram
        self._mappings: list[_Mapping] = []
        self._bases: list[int] = []
        #: Bumped on every map/unmap; lets callers (the compiled engine's
        #: load/store sites) memoize a ``find`` result safely.
        self.version = 0
        self.map_linear(
            layout.DIRECT_MAP_BASE, ram.size, phys_base=0, name="direct-map"
        )

    # -- mapping management ---------------------------------------------------

    def map_linear(
        self, base: int, size: int, phys_base: int, name: str, writable: bool = True
    ) -> _Mapping:
        """Map [base, base+size) onto physical [phys_base, ...)."""
        m = _Mapping(base, size, phys_base, None, name, writable)
        self._insert(m)
        return m

    def map_mmio(self, base: int, size: int, device: MMIODevice, name: str) -> _Mapping:
        m = _Mapping(base, size, None, device, name)
        self._insert(m)
        return m

    def unmap(self, base: int) -> None:
        idx = bisect.bisect_left(self._bases, base)
        if idx >= len(self._mappings) or self._mappings[idx].base != base:
            raise KeyError(f"no mapping at {base:#x}")
        del self._mappings[idx]
        del self._bases[idx]
        self.version += 1

    def _insert(self, m: _Mapping) -> None:
        idx = bisect.bisect_left(self._bases, m.base)
        if idx > 0 and self._mappings[idx - 1].end > m.base:
            raise ValueError(f"mapping {m.name} overlaps {self._mappings[idx-1].name}")
        if idx < len(self._mappings) and m.end > self._mappings[idx].base:
            raise ValueError(f"mapping {m.name} overlaps {self._mappings[idx].name}")
        self._mappings.insert(idx, m)
        self._bases.insert(idx, m.base)
        self.version += 1

    def find(self, addr: int) -> Optional[_Mapping]:
        idx = bisect.bisect_right(self._bases, addr) - 1
        if idx >= 0:
            m = self._mappings[idx]
            if m.base <= addr < m.end:
                return m
        return None

    def mappings(self) -> list[_Mapping]:
        return list(self._mappings)

    # -- access ------------------------------------------------------------------

    def read_bytes(self, addr: int, size: int) -> bytes:
        m = self.find(addr)
        if m is None or addr + size > m.end:
            raise MemoryFault(addr, size, False, "no mapping")
        if m.device is not None:
            value = m.device.mmio_read(addr - m.base, size)
            return value.to_bytes(size, "little")
        assert m.phys_base is not None
        return self.ram.read(m.phys_base + (addr - m.base), size)

    def write_bytes(self, addr: int, data: bytes) -> None:
        m = self.find(addr)
        if m is None or addr + len(data) > m.end:
            raise MemoryFault(addr, len(data), True, "no mapping")
        if not m.writable:
            raise MemoryFault(addr, len(data), True, f"{m.name} is read-only")
        if m.device is not None:
            m.device.mmio_write(
                addr - m.base, len(data), int.from_bytes(data, "little")
            )
            return
        assert m.phys_base is not None
        self.ram.write(m.phys_base + (addr - m.base), data)

    def read_int(self, addr: int, size: int) -> int:
        return int.from_bytes(self.read_bytes(addr, size), "little")

    def write_int(self, addr: int, size: int, value: int) -> None:
        self.write_bytes(addr, (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little"))

    def read_f32(self, addr: int) -> float:
        return struct.unpack("<f", self.read_bytes(addr, 4))[0]

    def write_f32(self, addr: int, value: float) -> None:
        self.write_bytes(addr, struct.pack("<f", value))

    def read_f64(self, addr: int) -> float:
        return struct.unpack("<d", self.read_bytes(addr, 8))[0]

    def write_f64(self, addr: int, value: float) -> None:
        self.write_bytes(addr, struct.pack("<d", value))

    def read_cstring(self, addr: int, max_len: int = 4096) -> bytes:
        """Read a NUL-terminated string (for printk-style natives)."""
        out = bytearray()
        while len(out) < max_len:
            b = self.read_bytes(addr + len(out), 1)[0]
            if b == 0:
                break
            out.append(b)
        return bytes(out)


__all__ = ["KernelAddressSpace", "MMIODevice", "PhysicalMemory"]
