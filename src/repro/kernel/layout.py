"""Simulated x86-64 Linux kernel address-space layout.

The constants mirror the real x86-64 layout the paper's guards reason
about (§1 footnote: "the physical address space is remapped in the kernel
to be accessible at a known offset in the virtual address space", and §4.2
footnote 5: the two-region demo policy is "kernel addresses (the 'high
half') are allowed, but user addresses (the 'low half') are disallowed").
"""

from __future__ import annotations

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
PAGE_MASK = ~(PAGE_SIZE - 1)

#: Top of the canonical user half ("low half").
USER_SPACE_END = 0x0000_7FFF_FFFF_FFFF

#: Bottom of the canonical kernel half ("high half").
KERNEL_SPACE_START = 0xFFFF_8000_0000_0000

#: The direct map: all physical RAM appears here at a fixed offset.
DIRECT_MAP_BASE = 0xFFFF_8880_0000_0000

#: vmalloc area (used by our ioremap for device MMIO windows).
VMALLOC_BASE = 0xFFFF_C900_0000_0000
VMALLOC_SIZE = 1 << 32

#: Kernel text/data ("core kernel image").
KERNEL_TEXT_BASE = 0xFFFF_FFFF_8000_0000
KERNEL_TEXT_SIZE = 512 << 20

#: Loadable-module region (module globals/state live here).
MODULE_AREA_BASE = 0xFFFF_FFFF_A000_0000
MODULE_AREA_SIZE = 1 << 30

#: Per-thread kernel stacks (our VM allocates interpreter frames here).
KSTACK_BASE = 0xFFFF_C600_0000_0000
KSTACK_SIZE = 1 << 24


def page_align_up(n: int) -> int:
    return (n + PAGE_SIZE - 1) & PAGE_MASK


def is_kernel_address(addr: int) -> bool:
    """True for the canonical high half."""
    return addr >= KERNEL_SPACE_START


def is_user_address(addr: int) -> bool:
    return 0 <= addr <= USER_SPACE_END


def direct_map_address(phys: int) -> int:
    """Kernel virtual address of physical address ``phys``."""
    return DIRECT_MAP_BASE + phys


def direct_map_to_phys(virt: int) -> int:
    return virt - DIRECT_MAP_BASE


__all__ = [
    "DIRECT_MAP_BASE",
    "KERNEL_SPACE_START",
    "KERNEL_TEXT_BASE",
    "KERNEL_TEXT_SIZE",
    "KSTACK_BASE",
    "KSTACK_SIZE",
    "MODULE_AREA_BASE",
    "MODULE_AREA_SIZE",
    "PAGE_MASK",
    "PAGE_SHIFT",
    "PAGE_SIZE",
    "USER_SPACE_END",
    "VMALLOC_BASE",
    "VMALLOC_SIZE",
    "direct_map_address",
    "direct_map_to_phys",
    "is_kernel_address",
    "is_user_address",
    "page_align_up",
]
