"""The IR interpreter: executes loaded kernel-module code.

Module IR runs here; core-kernel services are native Python (see
:mod:`repro.kernel.kernel`).  Guard calls take a dedicated fast path so
(a) the policy check itself is native, matching the paper's design where
``carat_guard`` is core-kernel code exported privately to modules, and
(b) the timing model can charge the machine-specific guard cost.

Value representation: integers are Python ints holding the *unsigned*
bit pattern of their IR type; pointers are addresses; floats are Python
floats.  All wrapping happens at operation boundaries.
"""

from __future__ import annotations

import struct
from typing import Optional, Sequence

from .. import abi
from ..ir import Function
from ..ir.instructions import (
    Alloca,
    BinOp,
    Br,
    Call,
    Cast,
    FCmp,
    Gep,
    ICmp,
    InlineAsm,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    Switch,
    Unreachable,
)
from ..ir.types import FloatType, IntType, PointerType
from ..ir.values import (
    ConstantFloat,
    ConstantInt,
    ConstantNull,
    ConstantString,
    GlobalVariable,
    UndefValue,
    Value,
)
from ..kernel import layout
from ..kernel.module_loader import LoadedModule
from ..kernel.panic import KernelPanic, ViolationFault
from .machine import MachineModel
from .timing import CycleCounter

_MASK64 = (1 << 64) - 1


class InterpreterError(RuntimeError):
    """Malformed execution (not a simulated kernel fault)."""


class GuardViolation(KernelPanic):
    """A guard rejected an access: the policy module panics the kernel.

    Paper §3.1: "we currently do not cleanly handle forbidden accesses,
    and instead log that they occur and cause a kernel panic."
    """

    def __init__(self, addr: int, size: int, flags: int, detail: str = ""):
        reason = (
            f"CARAT KOP: forbidden {abi.flags_name(flags)} access to "
            f"{addr:#018x} (size {size})"
        )
        if detail:
            reason += f" [{detail}]"
        super().__init__(reason)
        self.addr = addr
        self.size = size
        self.flags = flags


class Interpreter:
    """Executes IR functions of loaded modules against the kernel."""

    def __init__(self, kernel, machine: Optional[MachineModel] = None):
        self.kernel = kernel
        self.timing: Optional[CycleCounter] = (
            CycleCounter(machine) if machine is not None else None
        )
        self._stack_top = layout.KSTACK_BASE + layout.KSTACK_SIZE
        self.max_call_depth = 64
        self._depth = 0
        # Aggregate statistics (kept even without a machine model).
        self.guard_checks = 0
        self.instructions_executed = 0
        #: The module whose code is currently executing (natives may read
        #: this to attribute an action, e.g. the intrinsic guard).
        self.current_module: Optional[LoadedModule] = None
        #: Optional execution profiler (see :mod:`repro.vm.trace`).
        self.profiler = None
        #: Optional VM tracer (see :mod:`repro.trace.vmhook`), attached by
        #: the kernel's trace subsystem while tracing is enabled.
        self.tracer = None
        trace = getattr(kernel, "trace", None)
        if trace is not None and trace.enabled:
            self.tracer = trace.vm_tracer

    # -- public entry ------------------------------------------------------------

    def call(self, module: LoadedModule, name: str, args: Sequence[int | float]):
        fn = module.function(name)
        try:
            return self._exec_function(module, fn, list(args))
        except ViolationFault as fault:
            # Tag the fault with the kernel->module entry whose dispatch
            # faulted (first catch wins — the innermost kernel entry).
            fault.note_entry(module.name, name)
            raise

    def forget_module(self, module: LoadedModule) -> None:
        """Drop engine-side state for an ejected module (no-op here; the
        compiled engine purges its translation cache)."""

    def call_function(self, module: LoadedModule, fn: Function,
                      args: Sequence[int | float]):
        return self._exec_function(module, fn, list(args))

    # -- execution ------------------------------------------------------------------

    def _exec_function(self, module: LoadedModule, fn: Function, args: list):
        if fn.is_declaration:
            raise InterpreterError(f"cannot execute declaration @{fn.name}")
        if len(args) != len(fn.args):
            raise InterpreterError(
                f"@{fn.name}: expected {len(fn.args)} args, got {len(args)}"
            )
        self._depth += 1
        if self._depth > self.max_call_depth:
            self._depth -= 1
            self.kernel.panic(f"kernel stack overflow in @{fn.name}")
        saved_stack = self._stack_top
        env: dict[int, object] = {}
        for a, v in zip(fn.args, args):
            env[id(a)] = v
        timing = self.timing
        mem = self.kernel.address_space
        profiler = self.profiler
        if profiler is not None:
            profiler.enter_function(fn.name)
        tracer = self.tracer
        if tracer is not None:
            tracer.enter_function(fn.name)
        try:
            block = fn.entry
            prev = None
            while True:
                insts = block.instructions
                # Phase 1: evaluate all phis against the incoming edge
                # simultaneously (they read pre-transfer values).
                n_phi = 0
                if insts and isinstance(insts[0], Phi):
                    phi_values = []
                    for inst in insts:
                        if not isinstance(inst, Phi):
                            break
                        phi_values.append(
                            self._eval(inst.incoming_for(prev), env, module)
                        )
                        n_phi += 1
                    for i in range(n_phi):
                        env[id(insts[i])] = phi_values[i]
                    if timing is not None:
                        timing.instructions += n_phi
                result = _SENTINEL
                next_block = None
                for idx in range(n_phi, len(insts)):
                    inst = insts[idx]
                    self.instructions_executed += 1
                    kind = type(inst)
                    if timing is not None and not (
                        kind is Call and inst.is_guard
                    ):
                        # Guard calls are charged through add_guard alone:
                        # the machine's guard_base_cycles already covers the
                        # (perfectly predicted) call itself.
                        timing.add_op(inst.opcode)
                    if profiler is not None and not (
                        kind is Call and inst.is_guard
                    ):
                        profiler.on_instruction(
                            inst.opcode,
                            timing.machine.op_cost(inst.opcode)
                            if timing is not None else 0.0,
                        )
                    if kind is BinOp:
                        env[id(inst)] = self._binop(inst, env, module)
                    elif kind is Load:
                        env[id(inst)] = self._load(inst, env, module, mem)
                    elif kind is Store:
                        self._store(inst, env, module, mem)
                    elif kind is Gep:
                        base = self._eval(inst.base, env, module)
                        index = abi.to_signed64(self._eval(inst.index, env, module))
                        env[id(inst)] = (
                            base + index * inst.scale + inst.displacement
                        ) & _MASK64
                    elif kind is ICmp:
                        env[id(inst)] = self._icmp(inst, env, module)
                    elif kind is Cast:
                        env[id(inst)] = self._cast(inst, env, module)
                    elif kind is Call:
                        value = self._call(inst, env, module)
                        if not inst.type.is_void:
                            env[id(inst)] = value
                    elif kind is Br:
                        if inst.is_conditional:
                            cond = self._eval(inst.operands[0], env, module)
                            next_block = inst.targets[0] if cond else inst.targets[1]
                        else:
                            next_block = inst.targets[0]
                        break
                    elif kind is Ret:
                        if inst.value is not None:
                            result = self._eval(inst.value, env, module)
                        else:
                            result = None
                        break
                    elif kind is Select:
                        cond = self._eval(inst.operands[0], env, module)
                        pick = inst.operands[1] if cond else inst.operands[2]
                        env[id(inst)] = self._eval(pick, env, module)
                    elif kind is Switch:
                        value = self._eval(inst.operands[0], env, module)
                        next_block = inst.default
                        for cv, target in inst.cases:
                            if cv == value:
                                next_block = target
                                break
                        break
                    elif kind is Alloca:
                        size = inst.size_bytes
                        align = max(inst.allocated_type.align_bytes(), 8)
                        top = (self._stack_top - size) & ~(align - 1)
                        if top < layout.KSTACK_BASE:
                            self.kernel.panic("kernel stack exhausted")
                        self._stack_top = top
                        env[id(inst)] = top
                    elif kind is FCmp:
                        env[id(inst)] = self._fcmp(inst, env, module)
                    elif kind is InlineAsm:
                        self.kernel.panic(
                            f"module {module.name}: executed inline assembly "
                            "(should have been rejected at load time)"
                        )
                    elif kind is Unreachable:
                        self.kernel.panic(
                            f"module {module.name}: reached 'unreachable' "
                            f"in @{fn.name}"
                        )
                    else:  # pragma: no cover - exhaustive above
                        raise InterpreterError(f"cannot execute {inst.opcode}")
                if result is not _SENTINEL:
                    return result
                if next_block is None:
                    raise InterpreterError(
                        f"block {block.name} in @{fn.name} fell through"
                    )
                prev = block
                block = next_block
        finally:
            self._stack_top = saved_stack
            self._depth -= 1
            if profiler is not None:
                profiler.exit_function(fn.name)
            if tracer is not None:
                tracer.exit_function(fn.name)

    # -- operand evaluation ---------------------------------------------------------

    def _eval(self, v: Value, env: dict, module: LoadedModule):
        k = type(v)
        if k is ConstantInt:
            return v.value
        if k is ConstantFloat:
            return v.value
        if k is ConstantNull or k is UndefValue:
            return 0
        if k is GlobalVariable:
            try:
                return module.global_addresses[v.name]
            except KeyError:
                raise InterpreterError(
                    f"module {module.name}: no storage for @{v.name}"
                ) from None
        if k is ConstantString:
            raise InterpreterError("string constants must live in globals")
        try:
            return env[id(v)]
        except KeyError:
            raise InterpreterError(
                f"use of undefined value %{v.name} ({v.type})"
            ) from None

    # -- memory ------------------------------------------------------------------------

    def _load(self, inst: Load, env, module, mem):
        addr = self._eval(inst.pointer, env, module)
        t = inst.type
        if self.timing is not None:
            self.timing.loads += 1
            m = mem.find(addr)
            if m is not None and m.device is not None:
                self.timing.add_mmio_read()
        if isinstance(t, FloatType):
            return mem.read_f32(addr) if t.bits == 32 else mem.read_f64(addr)
        size = t.size_bytes()
        return mem.read_int(addr, size)

    def _store(self, inst: Store, env, module, mem):
        addr = self._eval(inst.pointer, env, module)
        value = self._eval(inst.value, env, module)
        t = inst.value.type
        if self.timing is not None:
            self.timing.stores += 1
            m = mem.find(addr)
            if m is not None and m.device is not None:
                self.timing.add_mmio_write()
        if isinstance(t, FloatType):
            if t.bits == 32:
                mem.write_f32(addr, value)
            else:
                mem.write_f64(addr, value)
            return
        mem.write_int(addr, t.size_bytes(), int(value))

    # -- arithmetic ----------------------------------------------------------------------

    def _binop(self, inst: BinOp, env, module):
        a = self._eval(inst.lhs, env, module)
        b = self._eval(inst.rhs, env, module)
        op = inst.op
        t = inst.type
        if isinstance(t, FloatType):
            if op == "fadd":
                r = a + b
            elif op == "fsub":
                r = a - b
            elif op == "fmul":
                r = a * b
            elif op == "fdiv":
                if b == 0.0:
                    r = float("inf") if a > 0 else float("-inf") if a < 0 else float("nan")
                else:
                    r = a / b
            else:  # pragma: no cover
                raise InterpreterError(f"bad float op {op}")
            if t.bits == 32:
                r = struct.unpack("<f", struct.pack("<f", r))[0]
            return r
        assert isinstance(t, IntType)
        bits = t.bits
        mask = t.max_unsigned
        if op == "add":
            return (a + b) & mask
        if op == "sub":
            return (a - b) & mask
        if op == "mul":
            return (a * b) & mask
        if op == "and":
            return a & b
        if op == "or":
            return a | b
        if op == "xor":
            return a ^ b
        if op == "shl":
            return (a << (b % bits)) & mask
        if op == "lshr":
            return a >> (b % bits)
        if op == "ashr":
            return t.wrap(t.to_signed(a) >> (b % bits))
        sa, sb = t.to_signed(a), t.to_signed(b)
        if op == "sdiv":
            if sb == 0:
                self.kernel.panic(f"module {module.name}: divide error (sdiv by zero)")
            return t.wrap(int(sa / sb))
        if op == "udiv":
            if b == 0:
                self.kernel.panic(f"module {module.name}: divide error (udiv by zero)")
            return a // b
        if op == "srem":
            if sb == 0:
                self.kernel.panic(f"module {module.name}: divide error (srem by zero)")
            return t.wrap(sa - int(sa / sb) * sb)
        if op == "urem":
            if b == 0:
                self.kernel.panic(f"module {module.name}: divide error (urem by zero)")
            return a % b
        raise InterpreterError(f"bad int op {op}")  # pragma: no cover

    _ICMP = {
        "eq": lambda a, b, sa, sb: a == b,
        "ne": lambda a, b, sa, sb: a != b,
        "ult": lambda a, b, sa, sb: a < b,
        "ule": lambda a, b, sa, sb: a <= b,
        "ugt": lambda a, b, sa, sb: a > b,
        "uge": lambda a, b, sa, sb: a >= b,
        "slt": lambda a, b, sa, sb: sa < sb,
        "sle": lambda a, b, sa, sb: sa <= sb,
        "sgt": lambda a, b, sa, sb: sa > sb,
        "sge": lambda a, b, sa, sb: sa >= sb,
    }

    def _icmp(self, inst: ICmp, env, module):
        a = self._eval(inst.lhs, env, module)
        b = self._eval(inst.rhs, env, module)
        t = inst.lhs.type
        if isinstance(t, PointerType):
            sa, sb = a, b
        else:
            assert isinstance(t, IntType)
            sa, sb = t.to_signed(a), t.to_signed(b)
        return 1 if self._ICMP[inst.pred](a, b, sa, sb) else 0

    _FCMP = {
        "oeq": lambda a, b: a == b,
        "one": lambda a, b: a != b,
        "olt": lambda a, b: a < b,
        "ole": lambda a, b: a <= b,
        "ogt": lambda a, b: a > b,
        "oge": lambda a, b: a >= b,
    }

    def _fcmp(self, inst: FCmp, env, module):
        a = self._eval(inst.operands[0], env, module)
        b = self._eval(inst.operands[1], env, module)
        if a != a or b != b:  # NaN: ordered predicates are all false
            return 0
        return 1 if self._FCMP[inst.pred](a, b) else 0

    def _cast(self, inst: Cast, env, module):
        v = self._eval(inst.value, env, module)
        op = inst.op
        t = inst.type
        if op in ("bitcast", "inttoptr", "ptrtoint"):
            return v
        if op == "trunc":
            assert isinstance(t, IntType)
            return v & t.max_unsigned
        if op == "zext":
            return v
        if op == "sext":
            src = inst.value.type
            assert isinstance(src, IntType) and isinstance(t, IntType)
            return t.wrap(src.to_signed(v))
        if op == "sitofp":
            src = inst.value.type
            assert isinstance(src, IntType)
            r = float(src.to_signed(v))
            if isinstance(t, FloatType) and t.bits == 32:
                r = struct.unpack("<f", struct.pack("<f", r))[0]
            return r
        if op == "fptosi":
            assert isinstance(t, IntType)
            return t.wrap(int(v))
        if op == "fpext":
            return v
        if op == "fptrunc":
            return struct.unpack("<f", struct.pack("<f", v))[0]
        raise InterpreterError(f"bad cast {op}")  # pragma: no cover

    # -- calls --------------------------------------------------------------------------

    def _call(self, inst: Call, env, module: LoadedModule):
        callee = inst.callee
        if inst.is_guard or callee.name == abi.GUARD_SYMBOL:
            if module.elided_guards and id(inst) in module.elided_guards:
                # Statically proven in-policy at insmod (-O3): the site
                # costs nothing — no policy walk, no stats, no timing.
                return 0
            return self._guard_call(inst, env, module)
        args = [self._eval(a, env, module) for a in inst.args]
        return self._dispatch_call(inst, module, args)

    def _dispatch_call(self, inst: Call, module: LoadedModule, args: list):
        """Call dispatch after argument evaluation (shared with the
        compiled engine, which evaluates operands through register slots)."""
        callee = inst.callee
        if self.timing is not None:
            self.timing.calls += 1
        if not callee.is_declaration:
            return self._exec_function(module, callee, args)
        sym = module.imports.get(callee.name)
        if sym is None:
            sym = self.kernel.symbols.lookup(callee.name)
        if sym is None:
            raise InterpreterError(
                f"module {module.name}: call through unresolved symbol "
                f"{callee.name!r}"
            )
        if sym.is_native:
            self.current_module = module
            ret = sym.native(self, *args)
            # Normalize native integer returns to the declared IR return
            # type's unsigned representation (natives think in Python ints,
            # the VM in bit patterns).
            rt = callee.function_type.ret
            if isinstance(ret, int) and isinstance(rt, IntType):
                return rt.wrap(ret)
            return ret
        target_module = self.kernel.loader.loaded.get(sym.owner)
        if target_module is None:
            raise InterpreterError(
                f"symbol {callee.name!r} owned by unloaded module {sym.owner!r}"
            )
        assert sym.function is not None
        return self._exec_function(target_module, sym.function, args)

    def _guard_call(self, inst: Call, env, module: LoadedModule):
        addr = self._eval(inst.args[0], env, module)
        size = self._eval(inst.args[1], env, module)
        flags = self._eval(inst.args[2], env, module)
        return self._dispatch_guard(module, addr, size, flags, inst)

    def _dispatch_guard(self, module: LoadedModule, addr: int, size: int,
                        flags: int, inst: Optional[Call] = None):
        """Guard dispatch after argument evaluation (shared with the
        compiled engine): late re-link, native/IR policy, guard timing."""
        self.guard_checks += 1
        sym = module.imports.get(abi.GUARD_SYMBOL)
        if sym is None:
            # Late re-link: the policy module was swapped (paper §3.2).
            sym = self.kernel.symbols.lookup(abi.GUARD_SYMBOL)
            if sym is not None:
                module.imports[abi.GUARD_SYMBOL] = sym
        if sym is None:
            self.kernel.panic(
                f"module {module.name}: guard invoked but no policy module "
                "provides carat_guard"
            )
        if sym.is_native:
            # Guard natives return the number of region entries scanned so
            # the timing model can charge the machine-specific cost.
            entries = sym.native(self, addr, size, flags, module.name)
            n = int(entries or 0)
            cost = (
                self.timing.machine.guard_cost(n)
                if self.timing is not None else 0.0
            )
            if self.timing is not None:
                self.timing.add_guard(n)
            if self.profiler is not None:
                self.profiler.on_guard(addr, size, flags, cost)
            tracer = self.tracer
            if tracer is not None:
                site = (
                    tracer.site_for(module.name, inst)
                    if inst is not None
                    else f"{module.name}:?:g0"
                )
                tracer.on_guard(site, addr, size, flags, n, cost)
            return None
        # Policy implemented in IR (exotic, but allowed): execute it.
        target_module = self.kernel.loader.loaded.get(sym.owner)
        assert sym.function is not None and target_module is not None
        if self.timing is not None:
            self.timing.add_guard(0)
        return self._exec_function(
            target_module, sym.function, [addr, size, flags]
        )


_SENTINEL = object()

__all__ = ["GuardViolation", "Interpreter", "InterpreterError"]
