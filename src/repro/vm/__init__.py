"""VM: the IR execution engines and testbed machine cost models."""

from .compiled import CompiledEngine
from .interp import GuardViolation, Interpreter, InterpreterError
from .machine import MACHINES, MachineModel, get_machine, r350, r415
from .timing import CycleCounter
from .trace import FunctionProfile, Profiler

#: Selectable execution engines.  ``interp`` is the reference
#: tree-walking interpreter; ``compiled`` translates each function once
#: into specialized closures and produces bit-identical results.
ENGINES = {
    "interp": Interpreter,
    "compiled": CompiledEngine,
}

DEFAULT_ENGINE = "compiled"


def make_engine(name: str, kernel, machine=None):
    """Construct the named execution engine for ``kernel``."""
    try:
        cls = ENGINES[name]
    except KeyError:
        raise ValueError(
            f"unknown engine {name!r}; have {sorted(ENGINES)}"
        ) from None
    return cls(kernel, machine=machine)


__all__ = [
    "CompiledEngine",
    "CycleCounter",
    "DEFAULT_ENGINE",
    "ENGINES",
    "FunctionProfile",
    "Profiler",
    "GuardViolation",
    "Interpreter",
    "InterpreterError",
    "MACHINES",
    "MachineModel",
    "get_machine",
    "make_engine",
    "r350",
    "r415",
]
