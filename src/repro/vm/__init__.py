"""VM: the IR interpreter and testbed machine cost models."""

from .interp import GuardViolation, Interpreter, InterpreterError
from .machine import MACHINES, MachineModel, get_machine, r350, r415
from .timing import CycleCounter
from .trace import FunctionProfile, Profiler

__all__ = [
    "CycleCounter",
    "FunctionProfile",
    "Profiler",
    "GuardViolation",
    "Interpreter",
    "InterpreterError",
    "MACHINES",
    "MachineModel",
    "get_machine",
    "r350",
    "r415",
]
