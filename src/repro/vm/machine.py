"""Machine cost models for the two testbeds (paper §4.2).

The paper's two machines:

- **R415** — "outdated Dell R415, dual 2.2 GHz AMD 4122 (4 cores, 256 KB
  L1, 2 MB L2, 6 MB L3), 16 GB DRAM".
- **R350** — "current Dell R350, 2.8 GHz Intel Xeon E-2378G (8 cores /
  16 threads, 256 KB L1, 2 MB L2, 16 MB L3), 32 GB DRAM".

The observation the models encode (paper §4.2): "We speculate that the
reduced impact on the newer machine is due to a combination of improved
caching, branch prediction, and speculation.  In the common case, the
control flow path for guards introduced by CARAT KOP is incredibly
predictable."  So the *visible* (retired-pipeline) cost of a guard is a
machine property: a fixed front-end cost plus a per-scanned-region-entry
cost, both near zero on the modern core and noticeably larger on the old
one.  Absolute cycle numbers are calibrated to land the figures in the
paper's ranges; the machine-to-machine and parameter-to-parameter *ratios*
are what the reproduction claims.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def _default_op_cycles() -> dict[str, float]:
    return {
        "binop": 1.0,
        "icmp": 1.0,
        "fcmp": 2.0,
        "cast": 0.15,  # mostly register renames / folded address forms
        "gep": 0.5,
        "select": 1.0,
        "load": 4.0,     # L1-hit latency, amortized
        "store": 1.0,    # store-buffer absorbed
        "br": 0.5,
        "switch": 2.0,
        "phi": 0.0,      # register renaming, free
        "call": 2.0,
        "ret": 2.0,
        "alloca": 0.5,
        "asm": 0.0,
        "unreachable": 0.0,
    }


@dataclass
class MachineModel:
    """Cycle costs of one testbed machine."""

    name: str
    freq_hz: float
    #: Visible per-executed-IR-op cost (superscalar-adjusted).
    op_cycles: dict[str, float] = field(default_factory=_default_op_cycles)
    #: Retired cost of a guard call itself (call + flag checks), after
    #: branch prediction and speculation hide the predictable path.
    guard_base_cycles: float = 1.0
    #: Additional visible cost per region-table entry scanned.
    guard_entry_cycles: float = 0.25
    #: sendmsg() syscall entry/exit as seen from user space.
    syscall_cycles: float = 420.0
    #: Core network stack traversal per packet (socket, qdisc, skb).
    netstack_base_cycles: float = 140.0
    #: Per-payload-byte cost (copy_from_user + checksum touches).
    per_byte_cycles: float = 0.35
    #: Log-normal jitter applied per packet (sigma in log space).
    jitter_sigma: float = 0.012
    #: Cost of being descheduled when the TX ring is full (paper §4.2:
    #: outliers "in excess of 10 million cycles").
    deschedule_cycles: float = 11_000_000.0
    #: MMIO register access (uncached PCIe round trip, write-posted).
    mmio_read_cycles: float = 300.0
    mmio_write_cycles: float = 60.0
    #: Per-iteration cost of the user-level test tool outside the
    #: sendmsg() window (buffer prep, libc, loop) — this is what pins the
    #: absolute packets/sec near the paper's 105k-130k range.
    userspace_per_packet_cycles: float = 23_600.0
    #: Trial-to-trial throughput spread (log-sigma): system noise across
    #: runs — frequency scaling, interrupts, cache state.  This is what
    #: gives the Figure 3/4 CDFs their width.
    trial_sigma: float = 0.055
    #: Mean scheduler-stall events per 100k-packet trial, affecting both
    #: techniques equally ("outliers ... occur when the ring is full and
    #: the test application is descheduled", §4.2).
    base_stalls_per_100k: float = 0.5
    #: Figure 6 burst model (mean-slowdown experiment ONLY — see
    #: EXPERIMENTS.md): probability that a *carat* trial at small packet
    #: size suffers a stall burst, and the burst's mean size.
    burst_probability_amplitude: float = 0.71
    burst_size_scale_bytes: float = 80.0
    burst_mean_stalls: float = 16.0

    def op_cost(self, opcode: str) -> float:
        return self.op_cycles.get(opcode, 1.0)

    def guard_cost(self, entries_scanned: int) -> float:
        """Visible cycles of one guard with an n-entry policy scan."""
        return self.guard_base_cycles + self.guard_entry_cycles * entries_scanned

    def seconds(self, cycles: float) -> float:
        return cycles / self.freq_hz

    def cycles_for_us(self, usec: float) -> float:
        return usec * 1e-6 * self.freq_hz


def r415() -> MachineModel:
    """The slow AMD 4122 box: weaker prediction, slower caches."""
    ops = _default_op_cycles()
    # Older core: narrower issue, slower L1, weaker predictor.
    for k in ops:
        ops[k] *= 1.6
    ops["load"] = 7.0
    return MachineModel(
        name="R415 (2x AMD 4122, 2.2 GHz)",
        freq_hz=2.2e9,
        op_cycles=ops,
        guard_base_cycles=3.0,
        guard_entry_cycles=1.1,
        syscall_cycles=700.0,
        netstack_base_cycles=260.0,
        per_byte_cycles=0.55,
        jitter_sigma=0.02,
        deschedule_cycles=12_000_000.0,
        mmio_read_cycles=420.0,
        mmio_write_cycles=90.0,
        userspace_per_packet_cycles=16_600.0,
        trial_sigma=0.035,
        base_stalls_per_100k=0.7,
    )


def r350() -> MachineModel:
    """The fast Xeon E-2378G box: guards nearly vanish in the pipeline."""
    return MachineModel(
        name="R350 (Xeon E-2378G, 2.8 GHz)",
        freq_hz=2.8e9,
        guard_base_cycles=0.12,
        guard_entry_cycles=0.05,
        syscall_cycles=300.0,
        netstack_base_cycles=110.0,
        per_byte_cycles=0.35,
        jitter_sigma=0.012,
        deschedule_cycles=11_000_000.0,
        mmio_read_cycles=300.0,
        mmio_write_cycles=60.0,
    )


MACHINES = {"r415": r415, "r350": r350}


def get_machine(name: str) -> MachineModel:
    try:
        return MACHINES[name.lower()]()
    except KeyError:
        raise ValueError(f"unknown machine {name!r}; have {sorted(MACHINES)}")


__all__ = ["MACHINES", "MachineModel", "get_machine", "r350", "r415"]
