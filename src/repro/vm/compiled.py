"""Translate-once, direct-threaded execution engine.

The interpreter (:mod:`repro.vm.interp`) re-dispatches on ``type(inst)``
and re-evaluates every operand through ``env[id(...)]`` dict lookups on
every visit of a basic block.  This engine translates each IR function
**once**: every basic block becomes Python source — generated at
translate time and compiled with :func:`compile`/``exec`` — so the hot
path is straight-line bytecode with no dispatch loop at all:

- operand accessors are resolved at translate time — constants (and
  global addresses) become literals in the generated source, SSA values
  are reads of preallocated slots in a flat ``regs`` list;
- per-instruction cycle costs are resolved against the machine model at
  translate time and emitted as ``timing.cycles += <literal>``;
- integer arithmetic (binops, compares, casts, geps, selects) is
  emitted as inline expressions; stateful operations — loads, stores,
  calls, guards, allocas, float math — call specialized per-site
  closures bound into the generated module's namespace;
- loads and stores fuse the mapping lookup the interpreter performs
  twice (once for MMIO accounting, once inside ``read_bytes``) into a
  single ``find`` plus a direct page-bytearray access for intra-page RAM
  accesses, with a per-site mapping memo keyed on the address space's
  map/unmap version.

Accounting is **bit-identical** to the interpreter: every counter is
charged per instruction, in the interpreter's order (float addition does
not reassociate, and natives observe ``timing.cycles`` mid-execution),
guard calls are charged only through ``add_guard``, and phi nodes bump
only ``timing.instructions``.  The differential test
(``tests/vm/test_compiled_vs_interp.py``) pins this down.

Translations are cached on the :class:`LoadedModule` (keyed by engine
instance, then by function) and invalidated when the module IR's
``generation`` counter moves or the engine's profiler or tracer changes
(profiler and tracer presence is specialized into the closures — a
disabled tracer therefore costs literally nothing in generated code,
the compiled-engine analog of a patched-out static key).

Below both of those sits a **process-global code cache**
(:data:`TRANSLATION_CACHE`): the ``compile()`` of the generated source
is shared across engines and :class:`~repro.core.system.CaratKopSystem`
instances.  The generated source is itself a faithful content hash of
everything the bytecode depends on — the instruction stream, resolved
global addresses, per-opcode machine costs, and profiler presence are
all emitted as source literals, while everything engine-specific
(per-site closures, hoisted constants, the engine/timing/profiler
references) is bound into a fresh namespace at ``exec`` time — so two
translations with identical source can always share one code object.
The second system in a process (a fleet of benchmark trials, a process
pool worker warm-up, repeated test fixtures) skips every ``compile()``
call the first one paid for.
"""

from __future__ import annotations

import struct

from .. import abi
from ..ir.instructions import (
    Alloca,
    BinOp,
    Br,
    Call,
    Cast,
    FCmp,
    Gep,
    ICmp,
    InlineAsm,
    Load,
    Phi,
    Ret,
    Select,
    Store,
    Switch,
    Unreachable,
)
from ..ir.types import FloatType, IntType, PointerType
from ..ir.values import (
    ConstantFloat,
    ConstantInt,
    ConstantNull,
    ConstantString,
    GlobalVariable,
    UndefValue,
)
from ..kernel import layout
from ..kernel.module_loader import LoadedModule
from ..kernel.panic import MemoryFault
from ..trace.vmhook import guard_site_id
from .interp import Interpreter, InterpreterError

_MASK64 = (1 << 64) - 1
_F32 = struct.Struct("<f")


class _SharedCodeCache:
    """Process-global memo of compiled ``code`` objects.

    Keyed by ``(filename, source)``.  The source embeds every input the
    bytecode depends on (module content, IR-generation-visible edits,
    load addresses, machine cost model, profiler charge lines), and the
    variant state it does *not* embed — per-site closures, hoisted
    constants, engine references — is rebound into a fresh namespace on
    every ``exec``, so a key hit is always safe to rehydrate against a
    different engine, tracer, or system instance."""

    __slots__ = ("codes", "hits", "misses")

    def __init__(self):
        self.codes: dict = {}
        self.hits = 0
        self.misses = 0

    def fetch(self, filename: str, src: str):
        """Return ``(code, was_hit)`` for the generated source."""
        key = (filename, src)
        code = self.codes.get(key)
        if code is not None:
            self.hits += 1
            return code, True
        self.misses += 1
        code = compile(src, filename, "exec")
        self.codes[key] = code
        return code, False

    def stats(self) -> dict:
        return {
            "entries": len(self.codes),
            "hits": self.hits,
            "misses": self.misses,
        }

    def clear(self) -> None:
        self.codes.clear()
        self.hits = 0
        self.misses = 0


#: The process-global translation code cache (see module docstring).
TRANSLATION_CACHE = _SharedCodeCache()


def translation_cache_stats() -> dict:
    """Snapshot of the process-global code cache counters."""
    return TRANSLATION_CACHE.stats()


class _CompiledBlock:
    """One translated basic block.

    ``run`` is a Python function compiled from generated source: the
    block's straight-line body with per-instruction accounting inlined
    as literal statements, integer arithmetic inlined as expressions,
    and the remaining operations (memory, calls, guards, floats) left
    as calls into specialized closures.  It takes the register file and
    returns the next block index, or -1 to return from the function.

    ``phi_plans`` maps predecessor block index to the copy plan the
    execution loop applies before running the body (phis read
    pre-transfer values, so they cannot live inside ``run``)."""

    __slots__ = ("phi_plans", "run")

    def __init__(self, phi_plans, run):
        self.phi_plans = phi_plans
        self.run = run


class _CompiledFunction:
    """A function's translation, tagged with its invalidation keys."""

    __slots__ = ("blocks", "block_names", "nregs", "module", "generation",
                 "profiler", "tracer")

    def __init__(self, blocks, block_names, nregs, module, generation,
                 profiler, tracer):
        self.blocks = blocks
        self.block_names = block_names
        self.nregs = nregs
        self.module = module
        self.generation = generation
        self.profiler = profiler
        self.tracer = tracer


class CompiledEngine(Interpreter):
    """Drop-in replacement for :class:`Interpreter` with translate-once
    execution.  Shares the interpreter's call/guard dispatch helpers, so
    native dispatch, late guard re-linking, and panic semantics are the
    same code path."""

    name = "compiled"

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        # L1 translation memo keyed by IR function object; entries
        # re-validate module identity, IR generation, and profiler, so
        # re-insmod (new addresses, same IR) and invalidate_translations
        # (generation bump) both force re-translation.
        self._tcache: dict = {}
        # This engine's traffic against the process-global code cache
        # (the cache's own counters aggregate every engine in the
        # process; these attribute the hits to one system).
        self.translation_cache_hits = 0
        self.translation_cache_misses = 0

    def _exec_function(self, module: LoadedModule, fn, args: list):
        # The declaration check lives in the translator (a cached
        # translation implies a definition; IR edits that strip blocks
        # bump the generation and re-translate), so every call raises
        # the same error as the interpreter — just not per-call.
        code = self._translation(module, fn)
        if len(args) != len(fn.args):
            raise InterpreterError(
                f"@{fn.name}: expected {len(fn.args)} args, got {len(args)}"
            )
        self._depth += 1
        if self._depth > self.max_call_depth:
            self._depth -= 1
            self.kernel.panic(f"kernel stack overflow in @{fn.name}")
        saved_stack = self._stack_top
        profiler = self.profiler
        if profiler is not None:
            profiler.enter_function(fn.name)
        tracer = self.tracer
        if tracer is not None:
            tracer.enter_function(fn.name)
        timing = self.timing
        regs = [None] * code.nregs
        regs[1:1 + len(args)] = args
        blocks = code.blocks
        prev = -1
        bi = 0
        # Per-instruction accounting (and ``instructions_executed``
        # batching) lives inside the generated block bodies; the loop
        # here only routes control flow and applies phi copy plans.
        try:
            while True:
                b = blocks[bi]
                plans = b.phi_plans
                if plans is not None:
                    plan = plans.get(prev)
                    if type(plan) is not list:
                        raise KeyError(
                            "phi has no incoming edge from "
                            f"{code.block_names[prev] if prev >= 0 else None}"
                        )
                    # Phis read pre-transfer values: evaluate all sources
                    # before writing any destination slot.
                    vals = [regs[v] if r else v for (_, r, v) in plan]
                    k = 0
                    for item in plan:
                        regs[item[0]] = vals[k]
                        k += 1
                    if timing is not None:
                        timing.instructions += len(plan)
                nxt = b.run(regs)
                if nxt < 0:
                    return regs[0]
                prev = bi
                bi = nxt
        finally:
            self._stack_top = saved_stack
            self._depth -= 1
            if profiler is not None:
                profiler.exit_function(fn.name)
            if tracer is not None:
                tracer.exit_function(fn.name)

    # -- translation cache -------------------------------------------------

    def _translation(self, module: LoadedModule, fn) -> _CompiledFunction:
        entry = self._tcache.get(fn)
        if (
            entry is not None
            and entry.module is module
            and entry.generation == module.ir.generation
            and entry.profiler is self.profiler
            and entry.tracer is self.tracer
        ):
            return entry
        store = module.translations.get(self)
        if store is None:
            store = {}
            module.translations[self] = store
        entry = store.get(fn)
        generation = module.ir.generation
        if (
            entry is None
            or entry.generation != generation
            or entry.profiler is not self.profiler
            or entry.tracer is not self.tracer
        ):
            entry = _Translator(self, module, fn).translate(generation)
            store[fn] = entry
        self._tcache[fn] = entry
        return entry

    def forget_module(self, module: LoadedModule) -> None:
        """Purge an ejected module's translations from the L1 memo, so
        long eject/re-insmod soaks don't accumulate dead entries (the
        per-module store dies with the LoadedModule itself)."""
        self._tcache = {
            fn: entry for fn, entry in self._tcache.items()
            if entry.module is not module
        }


class _Translator:
    """Translates one function into a :class:`_CompiledFunction`.

    One instance per translation; holds the register map and the
    engine/timing/profiler the closures specialize against."""

    def __init__(self, engine: CompiledEngine, module: LoadedModule, fn):
        if fn.is_declaration:
            raise InterpreterError(f"cannot execute declaration @{fn.name}")
        self.engine = engine
        self.module = module
        self.fn = fn
        self.timing = engine.timing
        self.profiler = engine.profiler
        self.tracer = engine.tracer
        # Guard call sites numbered in translation order; the same walk
        # (blocks in order, stopping at terminators) backs the
        # interpreter's VMTracer.site_for, so ids agree across engines.
        self._guard_ordinal = 0
        # Slot 0 is the return value; arguments fill 1..n; every
        # instruction gets a slot (void results simply never store).
        self.regmap: dict = {}
        slot = 1
        for a in fn.args:
            self.regmap[a] = slot
            slot += 1
        for block in fn.blocks:
            for inst in block.instructions:
                self.regmap[inst] = slot
                slot += 1
        self.nregs = slot
        self.block_index = {b: i for i, b in enumerate(fn.blocks)}

    def translate(self, generation: int) -> _CompiledFunction:
        # The generated module's namespace: engine/timing/profiler under
        # fixed short names, plus per-site closures (``C<n>``), hoisted
        # non-int constants (``K<n>``), and switch tables (``TBL<n>``).
        self.ns: dict = {
            "E": self.engine,
            "T": self.timing,
            "P": self.profiler,
            "IE": InterpreterError,
        }
        self._nsym = 0
        plans = []
        lines: list[str] = []
        for i, block in enumerate(self.fn.blocks):
            plans.append(self._translate_block(block, i, lines))
        src = "\n".join(lines)
        code, hit = TRANSLATION_CACHE.fetch(
            f"<compiled {self.module.name}:@{self.fn.name}>", src
        )
        if hit:
            self.engine.translation_cache_hits += 1
        else:
            self.engine.translation_cache_misses += 1
        exec(code, self.ns)
        blocks = [
            _CompiledBlock(plans[i], self.ns[f"_b{i}"])
            for i in range(len(self.fn.blocks))
        ]
        return _CompiledFunction(
            blocks,
            [b.name for b in self.fn.blocks],
            self.nregs,
            self.module,
            generation,
            self.profiler,
            self.tracer,
        )

    # -- codegen helpers ---------------------------------------------------

    def _bind(self, prefix: str, obj) -> str:
        """Bind ``obj`` into the generated module's namespace."""
        name = f"{prefix}{self._nsym}"
        self._nsym += 1
        self.ns[name] = obj
        return name

    def _ref(self, spec) -> str:
        """Source expression for a resolved operand: a register read, an
        int literal, or a hoisted constant (floats don't all have source
        literals — nan/inf — so any non-int constant is hoisted)."""
        is_reg, v = spec
        if is_reg:
            return f"r[{v}]"
        if type(v) is int:
            return repr(v) if v >= 0 else f"({v!r})"
        return self._bind("K", v)

    # -- operands ----------------------------------------------------------

    def _spec(self, v) -> tuple[bool, object]:
        """Resolve an operand to ``(is_register, slot_or_constant)``."""
        k = type(v)
        if k is ConstantInt or k is ConstantFloat:
            return False, v.value
        if k is ConstantNull or k is UndefValue:
            return False, 0
        if k is GlobalVariable:
            addr = self.module.global_addresses.get(v.name)
            if addr is None:
                raise InterpreterError(
                    f"module {self.module.name}: no storage for @{v.name}"
                )
            return False, addr
        if k is ConstantString:
            raise InterpreterError("string constants must live in globals")
        slot = self.regmap.get(v)
        if slot is None:
            raise InterpreterError(
                f"use of undefined value %{v.name} ({v.type})"
            )
        return True, slot

    # -- blocks ------------------------------------------------------------

    def _translate_block(self, block, bi: int, out: list[str]):
        """Emit ``def _b<bi>(r): ...`` into ``out``; return the phi plans.

        The body counts instructions in a local ``n`` (assigned *before*
        each step, mirroring the interpreter's charge-then-execute order)
        and flushes the batch into ``engine.instructions_executed`` right
        before the terminator's return — the only statements after the
        flush are provably non-raising return expressions.  An exception
        unwinding mid-block flushes the partial count in the handler, so
        the engine counter is exact even across panics."""
        insts = block.instructions
        n_phi = 0
        phi_plans = None
        if insts and isinstance(insts[0], Phi):
            # Leading phis become per-predecessor copy plans; a phi later
            # in the block is an execution error, matching the interpreter.
            while n_phi < len(insts) and isinstance(insts[n_phi], Phi):
                n_phi += 1
            phis = insts[:n_phi]
            mentioned: set[int] = set()
            for phi in phis:
                for _, pred in phi.incoming:
                    pi = self.block_index.get(pred)
                    if pi is not None:
                        mentioned.add(pi)
            phi_plans = {}
            for pi in mentioned:
                plan: object = []
                for phi in phis:
                    spec = None
                    # First matching edge wins, like ``incoming_for``.
                    for value, pred in phi.incoming:
                        if self.block_index.get(pred) == pi:
                            spec = self._spec(value)
                            break
                    if spec is None:
                        # Some phi lacks this edge: taking it is a
                        # KeyError at runtime, same as the interpreter.
                        plan = False
                        break
                    plan.append((self.regmap[phi], spec[0], spec[1]))
                phi_plans[pi] = plan
        body: list[str] = []
        k = 0
        terminated = False
        for inst in insts[n_phi:]:
            kind = type(inst)
            if kind is Br or kind is Ret or kind is Switch:
                self._emit_terminator(inst, body, k + 1)
                terminated = True
                break
            if kind is Unreachable:
                self._emit_unreachable(inst, body, k + 1)
                terminated = True
                break
            k += 1
            body.append(f"n = {k}")
            self._emit_step(inst, body)
        if not terminated:
            # Falling off a block is an execution error, not an
            # instruction — nothing is charged (the handler flushes the
            # step count accumulated so far).
            msg = f"block {block.name} in @{self.fn.name} fell through"
            body.append(f"raise IE({msg!r})")
        out.append(f"def _b{bi}(r):")
        out.append("    n = 0")
        out.append("    try:")
        for line in body:
            out.append("        " + line)
        out.append("    except BaseException:")
        out.append("        E.instructions_executed += n")
        out.append("        raise")
        return phi_plans

    # -- charging ----------------------------------------------------------

    def _emit_charge(self, opcode: str, body: list[str]) -> None:
        """Emit the interpreter's per-instruction accounting as literal
        statements (cost pre-resolved against the machine model; ``repr``
        of a float round-trips exactly)."""
        if self.timing is not None:
            cost = self.timing.machine.op_cost(opcode)
            body.append("T.instructions += 1")
            body.append(f"T.cycles += {cost!r}")
            if self.profiler is not None:
                body.append(f"P.on_instruction({opcode!r}, {cost!r})")
        elif self.profiler is not None:
            body.append(f"P.on_instruction({opcode!r}, 0.0)")

    # -- straight-line steps -----------------------------------------------

    _INLINE_INT_OPS = frozenset(
        ("add", "sub", "mul", "and", "or", "xor", "shl", "lshr", "ashr")
    )

    def _emit_step(self, inst, body: list[str]) -> None:
        kind = type(inst)
        if kind is BinOp:
            if (isinstance(inst.type, IntType)
                    and inst.op in self._INLINE_INT_OPS):
                self._emit_charge(inst.opcode, body)
                self._emit_int_binop(inst, body)
                return
            # Division (panic path) and float arithmetic stay closures.
            self._emit_charge(inst.opcode, body)
            body.append(f"{self._bind('C', self._binop_core(inst))}(r)")
            return
        if kind is ICmp:
            self._emit_charge(inst.opcode, body)
            self._emit_icmp(inst, body)
            return
        if kind is Cast:
            self._emit_charge(inst.opcode, body)
            self._emit_cast(inst, body)
            return
        if kind is Gep:
            self._emit_charge(inst.opcode, body)
            self._emit_gep(inst, body)
            return
        if kind is Select:
            self._emit_charge(inst.opcode, body)
            c = self._ref(self._spec(inst.operands[0]))
            t = self._ref(self._spec(inst.operands[1]))
            f = self._ref(self._spec(inst.operands[2]))
            body.append(f"r[{self.regmap[inst]}] = {t} if {c} else {f}")
            return
        if kind is Load:
            self._emit_charge(inst.opcode, body)
            body.append(f"{self._bind('C', self._load_core(inst))}(r)")
            return
        if kind is Store:
            self._emit_charge(inst.opcode, body)
            body.append(f"{self._bind('C', self._store_core(inst))}(r)")
            return
        if kind is Call:
            if inst.is_guard or inst.callee.name == abi.GUARD_SYMBOL:
                if id(inst) in self.module.elided_guards:
                    # Statically proven in-policy at insmod (-O3): emit
                    # no code at all.  The ordinal still advances so
                    # guard-site IDs stay aligned with the interpreter's
                    # walk, and the missing line changes the source text,
                    # so the process-global translation cache can never
                    # serve an elided body to an unverified module.
                    self._guard_ordinal += 1
                    return
                # Guard calls bypass add_op/profiler (charged through the
                # guard cost only, like the interpreter) — no charge lines.
                body.append(f"{self._bind('C', self._guard_core(inst))}(r)")
                return
            self._emit_charge(inst.opcode, body)
            body.append(f"{self._bind('C', self._call_core(inst))}(r)")
            return
        if kind is Alloca:
            self._emit_charge(inst.opcode, body)
            body.append(f"{self._bind('C', self._alloca_core(inst))}(r)")
            return
        if kind is FCmp:
            self._emit_charge(inst.opcode, body)
            body.append(f"{self._bind('C', self._fcmp_core(inst))}(r)")
            return
        if kind is InlineAsm:
            self._emit_charge(inst.opcode, body)
            msg = (
                f"module {self.module.name}: executed inline assembly "
                "(should have been rejected at load time)"
            )
            body.append(f"E.kernel.panic({msg!r})")
            return
        # Misplaced phi or unknown opcode: fail at execution time like
        # the interpreter's exhaustive dispatch.
        self._emit_charge(inst.opcode, body)
        body.append(f"raise IE({f'cannot execute {inst.opcode}'!r})")

    # -- inline integer arithmetic -----------------------------------------

    def _emit_int_binop(self, inst: BinOp, body: list[str]) -> None:
        a = self._ref(self._spec(inst.lhs))
        b = self._ref(self._spec(inst.rhs))
        t = inst.type
        s = self.regmap[inst]
        op = inst.op
        mask = t.max_unsigned
        bits = t.bits
        if op == "add":
            body.append(f"r[{s}] = ({a} + {b}) & {mask}")
        elif op == "sub":
            body.append(f"r[{s}] = ({a} - {b}) & {mask}")
        elif op == "mul":
            body.append(f"r[{s}] = ({a} * {b}) & {mask}")
        elif op == "and":
            body.append(f"r[{s}] = {a} & {b}")
        elif op == "or":
            body.append(f"r[{s}] = {a} | {b}")
        elif op == "xor":
            body.append(f"r[{s}] = {a} ^ {b}")
        elif op == "shl":
            body.append(f"r[{s}] = ({a} << ({b} % {bits})) & {mask}")
        elif op == "lshr":
            body.append(f"r[{s}] = {a} >> ({b} % {bits})")
        elif bits > 1:  # ashr: ``to_signed`` inlined (mask, bias, wrap)
            body.append(f"x = {a} & {mask}")
            body.append(f"if x > {t.max_signed}:")
            body.append(f"    x -= {1 << bits}")
            body.append(f"r[{s}] = (x >> ({b} % {bits})) & {mask}")
        else:  # ashr on i1: no negative range
            body.append(f"r[{s}] = ({a} & 1) >> ({b} % 1)")

    _CMP_SRC = {
        "eq": "==", "ne": "!=",
        "ult": "<", "ule": "<=", "ugt": ">", "uge": ">=",
        "slt": "<", "sle": "<=", "sgt": ">", "sge": ">=",
    }

    def _emit_icmp(self, inst: ICmp, body: list[str]) -> None:
        a = self._ref(self._spec(inst.lhs))
        b = self._ref(self._spec(inst.rhs))
        s = self.regmap[inst]
        c = self._CMP_SRC[inst.pred]
        t = inst.lhs.type
        if inst.pred in self._SIGNED_PREDS and not isinstance(t, PointerType):
            assert isinstance(t, IntType)
            if t.bits > 1:
                # ``to_signed`` inlined: mask, then bias down past the
                # sign bit.  (i1 has no negative range — raw compare.)
                mask, ms, span = t.max_unsigned, t.max_signed, 1 << t.bits
                body.append(f"x = {a} & {mask}")
                body.append(f"if x > {ms}:")
                body.append(f"    x -= {span}")
                body.append(f"y = {b} & {mask}")
                body.append(f"if y > {ms}:")
                body.append(f"    y -= {span}")
                body.append(f"r[{s}] = 1 if x {c} y else 0")
            else:
                body.append(f"r[{s}] = 1 if ({a} & 1) {c} ({b} & 1) else 0")
        else:
            body.append(f"r[{s}] = 1 if {a} {c} {b} else 0")

    def _emit_cast(self, inst: Cast, body: list[str]) -> None:
        op = inst.op
        s = self.regmap[inst]
        if op in ("sitofp", "fptosi", "fptrunc"):
            # Float conversions (f32 narrowing via struct) stay closures.
            body.append(f"{self._bind('C', self._cast_core(inst))}(r)")
            return
        v = self._ref(self._spec(inst.value))
        if op in ("bitcast", "inttoptr", "ptrtoint", "zext", "fpext"):
            body.append(f"r[{s}] = {v}")
        elif op == "trunc":
            assert isinstance(inst.type, IntType)
            body.append(f"r[{s}] = {v} & {inst.type.max_unsigned}")
        elif op == "sext":
            src = inst.value.type
            t = inst.type
            assert isinstance(src, IntType) and isinstance(t, IntType)
            if src.bits > 1:
                body.append(f"x = {v} & {src.max_unsigned}")
                body.append(
                    f"r[{s}] = ((x - {1 << src.bits}) & {t.max_unsigned})"
                    f" if x > {src.max_signed} else x"
                )
            else:  # i1 has no negative range: sext == zext
                body.append(f"r[{s}] = {v} & 1")
        else:  # pragma: no cover - verifier rejects other casts
            raise InterpreterError(f"bad cast {op}")

    def _emit_gep(self, inst: Gep, body: list[str]) -> None:
        base = self._ref(self._spec(inst.base))
        ir_, iv = self._spec(inst.index)
        s = self.regmap[inst]
        if not ir_:
            # Constant index: fold the whole displacement.
            delta = abi.to_signed64(iv) * inst.scale + inst.displacement
            body.append(f"r[{s}] = ({base} + ({delta})) & {_MASK64}")
        else:
            # ``abi.to_signed64`` inlined (bias only — values are already
            # width-masked).
            body.append(f"x = r[{iv}]")
            body.append(f"if x > {0x7FFFFFFFFFFFFFFF}:")
            body.append(f"    x -= {1 << 64}")
            body.append(
                f"r[{s}] = ({base} + x * {inst.scale}"
                f" + ({inst.displacement})) & {_MASK64}"
            )

    # -- arithmetic --------------------------------------------------------

    def _binop_core(self, inst: BinOp):
        """Closure builder for the binops codegen doesn't inline:
        division (panic-on-zero path) and float arithmetic."""
        ar, av = self._spec(inst.lhs)
        br, bv = self._spec(inst.rhs)
        op = inst.op
        t = inst.type
        if isinstance(t, FloatType):
            return self._float_binop_core(inst, ar, av, br, bv)
        assert isinstance(t, IntType)
        if op not in ("sdiv", "udiv", "srem", "urem"):  # pragma: no cover
            raise InterpreterError(f"bad int op {op}")
        return self._divrem_core(inst, op, t, ar, av, br, bv)

    def _divrem_core(self, inst, op, t, ar, av, br, bv):
        slot = self.regmap[inst]
        eng = self.engine
        ts, wrap = t.to_signed, t.wrap
        msg = f"module {self.module.name}: divide error ({op} by zero)"
        if op == "sdiv":
            def core(regs, _s=slot, _ts=ts, _w=wrap, _e=eng, _m=msg):
                sa = _ts(regs[av] if ar else av)
                sb = _ts(regs[bv] if br else bv)
                if sb == 0:
                    _e.kernel.panic(_m)
                regs[_s] = _w(int(sa / sb))
        elif op == "udiv":
            def core(regs, _s=slot, _e=eng, _m=msg):
                a = regs[av] if ar else av
                b = regs[bv] if br else bv
                if b == 0:
                    _e.kernel.panic(_m)
                regs[_s] = a // b
        elif op == "srem":
            def core(regs, _s=slot, _ts=ts, _w=wrap, _e=eng, _m=msg):
                sa = _ts(regs[av] if ar else av)
                sb = _ts(regs[bv] if br else bv)
                if sb == 0:
                    _e.kernel.panic(_m)
                regs[_s] = _w(sa - int(sa / sb) * sb)
        else:  # urem
            def core(regs, _s=slot, _e=eng, _m=msg):
                a = regs[av] if ar else av
                b = regs[bv] if br else bv
                if b == 0:
                    _e.kernel.panic(_m)
                regs[_s] = a % b
        return core

    def _float_binop_core(self, inst, ar, av, br, bv):
        slot = self.regmap[inst]
        op = inst.op
        narrow = inst.type.bits == 32
        if op not in ("fadd", "fsub", "fmul", "fdiv"):  # pragma: no cover
            raise InterpreterError(f"bad float op {op}")

        def core(regs, _s=slot, _op=op, _n=narrow):
            a = regs[av] if ar else av
            b = regs[bv] if br else bv
            if _op == "fadd":
                r = a + b
            elif _op == "fsub":
                r = a - b
            elif _op == "fmul":
                r = a * b
            elif b == 0.0:
                r = (float("inf") if a > 0
                     else float("-inf") if a < 0 else float("nan"))
            else:
                r = a / b
            if _n:
                r = _F32.unpack(_F32.pack(r))[0]
            regs[_s] = r

        return core

    _SIGNED_PREDS = frozenset(("slt", "sle", "sgt", "sge"))

    def _fcmp_core(self, inst: FCmp):
        import operator as _op

        cmp_fn = {
            "oeq": _op.eq, "one": _op.ne, "olt": _op.lt,
            "ole": _op.le, "ogt": _op.gt, "oge": _op.ge,
        }[inst.pred]
        ar, av = self._spec(inst.operands[0])
        br, bv = self._spec(inst.operands[1])
        slot = self.regmap[inst]

        def core(regs, _s=slot, _c=cmp_fn):
            a = regs[av] if ar else av
            b = regs[bv] if br else bv
            if a != a or b != b:  # NaN: ordered predicates are all false
                regs[_s] = 0
            else:
                regs[_s] = 1 if _c(a, b) else 0

        return core

    def _cast_core(self, inst: Cast):
        """Closure builder for the casts codegen doesn't inline (float
        conversions; everything else is emitted as source)."""
        vr, vv = self._spec(inst.value)
        slot = self.regmap[inst]
        op = inst.op
        t = inst.type
        if op == "sitofp":
            src = inst.value.type
            assert isinstance(src, IntType)
            ts = src.to_signed
            narrow = isinstance(t, FloatType) and t.bits == 32

            def core(regs, _s=slot, _ts=ts, _n=narrow):
                r = float(_ts(regs[vv] if vr else vv))
                if _n:
                    r = _F32.unpack(_F32.pack(r))[0]
                regs[_s] = r
        elif op == "fptosi":
            assert isinstance(t, IntType)
            wrap = t.wrap

            def core(regs, _s=slot, _w=wrap):
                regs[_s] = _w(int(regs[vv] if vr else vv))
        elif op == "fptrunc":
            def core(regs, _s=slot):
                regs[_s] = _F32.unpack(_F32.pack(regs[vv] if vr else vv))[0]
        else:  # pragma: no cover - verifier rejects other casts
            raise InterpreterError(f"bad cast {op}")
        return core

    def _alloca_core(self, inst: Alloca):
        slot = self.regmap[inst]
        size = inst.size_bytes
        align_mask = ~(max(inst.allocated_type.align_bytes(), 8) - 1)
        eng = self.engine
        kbase = layout.KSTACK_BASE

        def core(regs, _s=slot, _sz=size, _am=align_mask, _e=eng, _kb=kbase):
            top = (_e._stack_top - _sz) & _am
            if top < _kb:
                _e.kernel.panic("kernel stack exhausted")
            _e._stack_top = top
            regs[_s] = top

        return core

    # -- memory ------------------------------------------------------------

    def _load_core(self, inst: Load):
        pr, pv = self._spec(inst.pointer)
        slot = self.regmap[inst]
        t = inst.type
        timing = self.timing
        mem = self.engine.kernel.address_space
        find = mem.find
        if isinstance(t, FloatType):
            reader = mem.read_f32 if t.bits == 32 else mem.read_f64
            if timing is not None:
                mrc = timing.machine.mmio_read_cycles

                def core(regs, _s=slot, _t=timing, _f=find, _r=reader,
                         _mrc=mrc):
                    addr = regs[pv] if pr else pv
                    _t.loads += 1
                    m = _f(addr)
                    if m is not None and m.device is not None:
                        _t.mmio_reads += 1
                        _t.cycles += _mrc
                    regs[_s] = _r(addr)
            else:
                def core(regs, _s=slot, _r=reader):
                    regs[_s] = _r(regs[pv] if pr else pv)
            return core
        size = t.size_bytes()
        ram = mem.ram
        pages = ram._pages
        ram_read = ram.read
        ram_size = ram.size
        page_size = layout.PAGE_SIZE
        page_shift = layout.PAGE_SHIFT
        off_mask = page_size - 1
        # Per-site memo of the last RAM mapping hit, guarded by the address
        # space's map/unmap version — a load site almost always touches the
        # same region, so the steady state skips the bisect ``find``.
        # ``find`` is side-effect free and mappings never overlap, so a
        # memo hit returns exactly what ``find`` would.
        memo = [None, -1]
        if timing is not None:
            mrc = timing.machine.mmio_read_cycles

            def core(regs, _s=slot, _z=size, _t=timing, _f=find, _p=pages,
                     _rr=ram_read, _rs=ram_size, _ps=page_size,
                     _sh=page_shift, _om=off_mask, _mrc=mrc,
                     _memo=memo, _a=mem):
                addr = regs[pv] if pr else pv
                _t.loads += 1
                m = _memo[0]
                if (m is not None and _memo[1] == _a.version
                        and m.base <= addr
                        and addr + _z <= m.base + m.size):
                    phys = m.phys_base + (addr - m.base)
                    if phys + _z > _rs:
                        raise MemoryFault(phys, _z, False, "beyond end of RAM")
                    off = phys & _om
                    if off + _z <= _ps:
                        page = _p.get(phys >> _sh)
                        regs[_s] = (0 if page is None else int.from_bytes(
                            page[off:off + _z], "little"))
                    else:
                        regs[_s] = int.from_bytes(_rr(phys, _z), "little")
                    return
                m = _f(addr)
                if m is not None:
                    dev = m.device
                    if dev is not None:
                        _t.mmio_reads += 1
                        _t.cycles += _mrc
                        if addr + _z > m.base + m.size:
                            raise MemoryFault(addr, _z, False, "no mapping")
                        regs[_s] = int.from_bytes(
                            dev.mmio_read(addr - m.base, _z)
                            .to_bytes(_z, "little"), "little")
                        return
                    if addr + _z <= m.base + m.size:
                        _memo[0] = m
                        _memo[1] = _a.version
                        phys = m.phys_base + (addr - m.base)
                        if phys + _z > _rs:
                            raise MemoryFault(
                                phys, _z, False, "beyond end of RAM")
                        off = phys & _om
                        if off + _z <= _ps:
                            page = _p.get(phys >> _sh)
                            regs[_s] = (0 if page is None else int.from_bytes(
                                page[off:off + _z], "little"))
                        else:
                            regs[_s] = int.from_bytes(
                                _rr(phys, _z), "little")
                        return
                raise MemoryFault(addr, _z, False, "no mapping")
        else:
            def core(regs, _s=slot, _z=size, _f=find, _p=pages,
                     _rr=ram_read, _rs=ram_size, _ps=page_size,
                     _sh=page_shift, _om=off_mask, _memo=memo, _a=mem):
                addr = regs[pv] if pr else pv
                m = _memo[0]
                if (m is not None and _memo[1] == _a.version
                        and m.base <= addr
                        and addr + _z <= m.base + m.size):
                    phys = m.phys_base + (addr - m.base)
                    if phys + _z > _rs:
                        raise MemoryFault(phys, _z, False, "beyond end of RAM")
                    off = phys & _om
                    if off + _z <= _ps:
                        page = _p.get(phys >> _sh)
                        regs[_s] = (0 if page is None else int.from_bytes(
                            page[off:off + _z], "little"))
                    else:
                        regs[_s] = int.from_bytes(_rr(phys, _z), "little")
                    return
                m = _f(addr)
                if m is not None:
                    if m.device is not None:
                        if addr + _z > m.base + m.size:
                            raise MemoryFault(addr, _z, False, "no mapping")
                        regs[_s] = int.from_bytes(
                            m.device.mmio_read(addr - m.base, _z)
                            .to_bytes(_z, "little"), "little")
                        return
                    if addr + _z <= m.base + m.size:
                        _memo[0] = m
                        _memo[1] = _a.version
                        phys = m.phys_base + (addr - m.base)
                        if phys + _z > _rs:
                            raise MemoryFault(
                                phys, _z, False, "beyond end of RAM")
                        off = phys & _om
                        if off + _z <= _ps:
                            page = _p.get(phys >> _sh)
                            regs[_s] = (0 if page is None else int.from_bytes(
                                page[off:off + _z], "little"))
                        else:
                            regs[_s] = int.from_bytes(
                                _rr(phys, _z), "little")
                        return
                raise MemoryFault(addr, _z, False, "no mapping")
        return core

    def _store_core(self, inst: Store):
        pr, pv = self._spec(inst.pointer)
        vr, vv = self._spec(inst.value)
        t = inst.value.type
        timing = self.timing
        mem = self.engine.kernel.address_space
        find = mem.find
        if isinstance(t, FloatType):
            writer = mem.write_f32 if t.bits == 32 else mem.write_f64
            if timing is not None:
                mwc = timing.machine.mmio_write_cycles

                def core(regs, _t=timing, _f=find, _w=writer, _mwc=mwc):
                    addr = regs[pv] if pr else pv
                    value = regs[vv] if vr else vv
                    _t.stores += 1
                    m = _f(addr)
                    if m is not None and m.device is not None:
                        _t.mmio_writes += 1
                        _t.cycles += _mwc
                    _w(addr, value)
            else:
                def core(regs, _w=writer):
                    _w(regs[pv] if pr else pv, regs[vv] if vr else vv)
            return core
        size = t.size_bytes()
        mask = (1 << (8 * size)) - 1
        ram = mem.ram
        pages = ram._pages
        ram_write = ram.write
        ram_size = ram.size
        page_size = layout.PAGE_SIZE
        page_shift = layout.PAGE_SHIFT
        off_mask = page_size - 1

        # Same per-site mapping memo as loads; only writable RAM mappings
        # are memoized, so the fast path needs no writability re-check.
        memo = [None, -1]
        if timing is not None:
            mwc = timing.machine.mmio_write_cycles

            def core(regs, _z=size, _k=mask, _t=timing, _f=find, _p=pages,
                     _rw=ram_write, _rs=ram_size, _ps=page_size,
                     _sh=page_shift, _om=off_mask, _mwc=mwc,
                     _memo=memo, _a=mem):
                addr = regs[pv] if pr else pv
                value = regs[vv] if vr else vv
                _t.stores += 1
                m = _memo[0]
                if (m is not None and _memo[1] == _a.version
                        and m.base <= addr
                        and addr + _z <= m.base + m.size):
                    phys = m.phys_base + (addr - m.base)
                    if phys + _z > _rs:
                        raise MemoryFault(phys, _z, False, "beyond end of RAM")
                    v = int(value) & _k
                    off = phys & _om
                    if off + _z <= _ps:
                        pfn = phys >> _sh
                        page = _p.get(pfn)
                        if page is None:
                            page = bytearray(_ps)
                            _p[pfn] = page
                        page[off:off + _z] = v.to_bytes(_z, "little")
                    else:
                        _rw(phys, v.to_bytes(_z, "little"))
                    return
                m = _f(addr)
                if m is not None and m.device is not None:
                    _t.mmio_writes += 1
                    _t.cycles += _mwc
                if m is None or addr + _z > m.base + m.size:
                    raise MemoryFault(addr, _z, True, "no mapping")
                if not m.writable:
                    raise MemoryFault(addr, _z, True, f"{m.name} is read-only")
                v = int(value) & _k
                if m.device is not None:
                    m.device.mmio_write(addr - m.base, _z, v)
                    return
                _memo[0] = m
                _memo[1] = _a.version
                phys = m.phys_base + (addr - m.base)
                if phys + _z > _rs:
                    raise MemoryFault(phys, _z, False, "beyond end of RAM")
                off = phys & _om
                if off + _z <= _ps:
                    pfn = phys >> _sh
                    page = _p.get(pfn)
                    if page is None:
                        page = bytearray(_ps)
                        _p[pfn] = page
                    page[off:off + _z] = v.to_bytes(_z, "little")
                else:
                    _rw(phys, v.to_bytes(_z, "little"))
        else:
            def core(regs, _z=size, _k=mask, _f=find, _p=pages,
                     _rw=ram_write, _rs=ram_size, _ps=page_size,
                     _sh=page_shift, _om=off_mask, _memo=memo, _a=mem):
                addr = regs[pv] if pr else pv
                value = regs[vv] if vr else vv
                m = _memo[0]
                if (m is not None and _memo[1] == _a.version
                        and m.base <= addr
                        and addr + _z <= m.base + m.size):
                    phys = m.phys_base + (addr - m.base)
                    if phys + _z > _rs:
                        raise MemoryFault(phys, _z, False, "beyond end of RAM")
                    v = int(value) & _k
                    off = phys & _om
                    if off + _z <= _ps:
                        pfn = phys >> _sh
                        page = _p.get(pfn)
                        if page is None:
                            page = bytearray(_ps)
                            _p[pfn] = page
                        page[off:off + _z] = v.to_bytes(_z, "little")
                    else:
                        _rw(phys, v.to_bytes(_z, "little"))
                    return
                m = _f(addr)
                if m is None or addr + _z > m.base + m.size:
                    raise MemoryFault(addr, _z, True, "no mapping")
                if not m.writable:
                    raise MemoryFault(addr, _z, True, f"{m.name} is read-only")
                v = int(value) & _k
                if m.device is not None:
                    m.device.mmio_write(addr - m.base, _z, v)
                    return
                _memo[0] = m
                _memo[1] = _a.version
                phys = m.phys_base + (addr - m.base)
                if phys + _z > _rs:
                    raise MemoryFault(phys, _z, False, "beyond end of RAM")
                off = phys & _om
                if off + _z <= _ps:
                    pfn = phys >> _sh
                    page = _p.get(pfn)
                    if page is None:
                        page = bytearray(_ps)
                        _p[pfn] = page
                    page[off:off + _z] = v.to_bytes(_z, "little")
                else:
                    _rw(phys, v.to_bytes(_z, "little"))
        return core

    # -- calls -------------------------------------------------------------

    def _call_core(self, inst: Call):
        eng = self.engine
        module = self.module
        timing = self.timing
        argspec = [self._spec(a) for a in inst.args]
        callee = inst.callee
        is_void = inst.type.is_void
        slot = None if is_void else self.regmap[inst]
        if not callee.is_declaration:
            # Same-module direct call: skip the ``_dispatch_call`` frame.
            if timing is not None:
                if is_void:
                    def core(regs, _e=eng, _m=module, _fn=callee, _a=argspec,
                             _t=timing):
                        _t.calls += 1
                        _e._exec_function(
                            _m, _fn, [regs[v] if r else v for (r, v) in _a])
                else:
                    def core(regs, _s=slot, _e=eng, _m=module, _fn=callee,
                             _a=argspec, _t=timing):
                        _t.calls += 1
                        regs[_s] = _e._exec_function(
                            _m, _fn, [regs[v] if r else v for (r, v) in _a])
            elif is_void:
                def core(regs, _e=eng, _m=module, _fn=callee, _a=argspec):
                    _e._exec_function(
                        _m, _fn, [regs[v] if r else v for (r, v) in _a])
            else:
                def core(regs, _s=slot, _e=eng, _m=module, _fn=callee,
                         _a=argspec):
                    regs[_s] = _e._exec_function(
                        _m, _fn, [regs[v] if r else v for (r, v) in _a])
            return core
        # Declaration: the linked native is the common case — inline it
        # (with the interpreter's int-return normalization); symbols that
        # are unlinked or IR-owned fall back to ``_dispatch_call``, which
        # re-resolves and keeps the error/exotic paths in one place.
        cname = callee.name
        imports = module.imports
        rt = callee.function_type.ret
        rmask = rt.max_unsigned if isinstance(rt, IntType) else None

        def core(regs, _s=slot, _e=eng, _i=inst, _m=module, _a=argspec,
                 _imp=imports, _n=cname, _t=timing, _k=rmask):
            args = [regs[v] if r else v for (r, v) in _a]
            sym = _imp.get(_n)
            if sym is None or sym.native is None:
                ret = _e._dispatch_call(_i, _m, args)
            else:
                if _t is not None:
                    _t.calls += 1
                _e.current_module = _m
                ret = sym.native(_e, *args)
                if _k is not None and isinstance(ret, int):
                    ret &= _k
            if _s is not None:
                regs[_s] = ret

        return core

    def _guard_core(self, inst: Call):
        """Guard calls bypass add_op/profiler (charged via ``add_guard``
        only, like the interpreter) — the emitter writes no charge lines.

        The common case — the guard symbol is linked and native — is
        inlined: the module's import dict and name, and the machine's
        guard cost coefficients, are captured at translate time, so the
        hot path is one dict lookup and one native call.  ``add_guard``'s
        ``cycles += base + entry * n`` is replicated with the same float
        expression, so accounting stays bit-identical.  Anything else
        (unlinked symbol needing the late re-link, IR policy function,
        missing policy panic) falls back to the interpreter's shared
        ``_dispatch_guard``, which consults ``module.imports`` afresh —
        policy swaps mutate that dict in place, so the captured reference
        observes them."""
        eng = self.engine
        module = self.module
        imports = module.imports
        mname = module.name
        gsym = abi.GUARD_SYMBOL
        timing = self.timing
        prof = self.profiler
        ordinal = self._guard_ordinal
        self._guard_ordinal += 1
        ar, av = self._spec(inst.args[0])
        sr, sv = self._spec(inst.args[1])
        fr, fv = self._spec(inst.args[2])
        if self.tracer is not None:
            # Traced translation: the static key is the translation
            # itself — these closures exist only while a tracer is
            # attached; untraced translations carry no trace code at all.
            return self._traced_guard_core(inst, ordinal, ar, av, sr, sv,
                                           fr, fv)
        if timing is not None:
            gb = timing.machine.guard_base_cycles
            ge = timing.machine.guard_entry_cycles
            if prof is None:
                def core(regs, _e=eng, _m=module, _imp=imports, _n=mname,
                         _g=gsym, _t=timing, _gb=gb, _ge=ge):
                    a = regs[av] if ar else av
                    s = regs[sv] if sr else sv
                    f = regs[fv] if fr else fv
                    sym = _imp.get(_g)
                    if sym is None or sym.native is None:
                        _e._dispatch_guard(_m, a, s, f)
                        return
                    _e.guard_checks += 1
                    n = int(sym.native(_e, a, s, f, _n) or 0)
                    _t.guards += 1
                    _t.guard_entries_scanned += n
                    _t.cycles += _gb + _ge * n
            else:
                def core(regs, _e=eng, _m=module, _imp=imports, _n=mname,
                         _g=gsym, _t=timing, _gb=gb, _ge=ge, _p=prof):
                    a = regs[av] if ar else av
                    s = regs[sv] if sr else sv
                    f = regs[fv] if fr else fv
                    sym = _imp.get(_g)
                    if sym is None or sym.native is None:
                        _e._dispatch_guard(_m, a, s, f)
                        return
                    _e.guard_checks += 1
                    n = int(sym.native(_e, a, s, f, _n) or 0)
                    cost = _gb + _ge * n
                    _t.guards += 1
                    _t.guard_entries_scanned += n
                    _t.cycles += cost
                    _p.on_guard(a, s, f, cost)
        elif prof is None:
            def core(regs, _e=eng, _m=module, _imp=imports, _n=mname,
                     _g=gsym):
                a = regs[av] if ar else av
                s = regs[sv] if sr else sv
                f = regs[fv] if fr else fv
                sym = _imp.get(_g)
                if sym is None or sym.native is None:
                    _e._dispatch_guard(_m, a, s, f)
                    return
                _e.guard_checks += 1
                sym.native(_e, a, s, f, _n)
        else:
            def core(regs, _e=eng, _m=module, _imp=imports, _n=mname,
                     _g=gsym, _p=prof):
                a = regs[av] if ar else av
                s = regs[sv] if sr else sv
                f = regs[fv] if fr else fv
                sym = _imp.get(_g)
                if sym is None or sym.native is None:
                    _e._dispatch_guard(_m, a, s, f)
                    return
                _e.guard_checks += 1
                sym.native(_e, a, s, f, _n)
                _p.on_guard(a, s, f, 0.0)
        return core

    def _traced_guard_core(self, inst: Call, ordinal: int,
                           ar, av, sr, sv, fr, fv):
        """The guard closure compiled while a tracer is attached.

        The callsite id is baked in at translate time (no per-hit walk),
        and the cost expression ``cost = base + entry * n`` is the same
        float-op sequence the untraced closures charge, so simulated
        accounting stays bit-identical with tracing on.  The profiler is
        consulted dynamically (traced runs are not the <2%-overhead
        path)."""
        eng = self.engine
        module = self.module
        imports = module.imports
        mname = module.name
        gsym = abi.GUARD_SYMBOL
        timing = self.timing
        prof = self.profiler
        tracer = self.tracer
        site = guard_site_id(mname, self.fn.name, ordinal)
        if timing is not None:
            gb = timing.machine.guard_base_cycles
            ge = timing.machine.guard_entry_cycles

            def core(regs, _e=eng, _m=module, _imp=imports, _n=mname,
                     _g=gsym, _t=timing, _gb=gb, _ge=ge, _p=prof,
                     _tr=tracer, _site=site, _i=inst):
                a = regs[av] if ar else av
                s = regs[sv] if sr else sv
                f = regs[fv] if fr else fv
                sym = _imp.get(_g)
                if sym is None or sym.native is None:
                    _e._dispatch_guard(_m, a, s, f, _i)
                    return
                _e.guard_checks += 1
                n = int(sym.native(_e, a, s, f, _n) or 0)
                cost = _gb + _ge * n
                _t.guards += 1
                _t.guard_entries_scanned += n
                _t.cycles += cost
                if _p is not None:
                    _p.on_guard(a, s, f, cost)
                _tr.on_guard(_site, a, s, f, n, cost)
        else:
            def core(regs, _e=eng, _m=module, _imp=imports, _n=mname,
                     _g=gsym, _p=prof, _tr=tracer, _site=site, _i=inst):
                a = regs[av] if ar else av
                s = regs[sv] if sr else sv
                f = regs[fv] if fr else fv
                sym = _imp.get(_g)
                if sym is None or sym.native is None:
                    _e._dispatch_guard(_m, a, s, f, _i)
                    return
                _e.guard_checks += 1
                n = int(sym.native(_e, a, s, f, _n) or 0)
                if _p is not None:
                    _p.on_guard(a, s, f, 0.0)
                _tr.on_guard(_site, a, s, f, n, 0.0)
        return core

    # -- terminators -------------------------------------------------------

    def _emit_terminator(self, inst, body: list[str], count: int) -> None:
        """Emit the charged terminator.  The batched instruction count is
        flushed immediately before the ``return`` — everything after the
        flush (register reads, int literals, ``dict.get`` on a literal
        table) is non-raising, so the count can never double-flush
        through the exception handler."""
        body.append(f"n = {count}")
        self._emit_charge(inst.opcode, body)
        flush = f"E.instructions_executed += {count}"
        kind = type(inst)
        if kind is Br:
            if inst.is_conditional:
                c = self._ref(self._spec(inst.operands[0]))
                ti = self.block_index[inst.targets[0]]
                fi = self.block_index[inst.targets[1]]
                body.append(flush)
                body.append(f"return {ti} if {c} else {fi}")
            else:
                body.append(flush)
                body.append(f"return {self.block_index[inst.targets[0]]}")
            return
        if kind is Ret:
            if inst.value is not None:
                body.append(f"r[0] = {self._ref(self._spec(inst.value))}")
            body.append(flush)
            body.append("return -1")
            return
        assert type(inst) is Switch
        v = self._ref(self._spec(inst.operands[0]))
        # First matching case wins, like the interpreter's linear scan:
        # keep only the first target for duplicated case values.
        table: dict[int, int] = {}
        for cv_, target in inst.cases:
            if cv_ not in table:
                table[cv_] = self.block_index[target]
        tbl = self._bind("TBL", table)
        body.append(flush)
        body.append(f"return {tbl}.get({v}, {self.block_index[inst.default]})")

    def _emit_unreachable(
        self, inst: Unreachable, body: list[str], count: int
    ) -> None:
        body.append(f"n = {count}")
        self._emit_charge(inst.opcode, body)
        msg = (
            f"module {self.module.name}: reached 'unreachable' "
            f"in @{self.fn.name}"
        )
        # ``panic`` raises, so the handler flushes the charged count.
        body.append(f"E.kernel.panic({msg!r})")


__all__ = ["CompiledEngine", "TRANSLATION_CACHE", "translation_cache_stats"]
