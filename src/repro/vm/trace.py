"""Execution profiling: where do a module's cycles and guards go?

``Profiler`` attaches to an interpreter and aggregates, per function:
executed instructions, guard checks, memory operations, and (when a
machine model is active) visible cycles.  The guard *address histogram*
feeds the policy miner's page-granularity view and answers the §4.2
performance questions ("which accesses dominate?") without re-running
experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from ..kernel import layout


@dataclass
class FunctionProfile:
    name: str
    calls: int = 0
    instructions: int = 0
    guards: int = 0
    loads: int = 0
    stores: int = 0
    cycles: float = 0.0


class Profiler:
    """Aggregates per-function and per-page execution statistics."""

    def __init__(self) -> None:
        self.functions: dict[str, FunctionProfile] = {}
        #: page number -> guard checks that targeted it
        self.guard_pages: dict[int, int] = {}
        self._stack: list[str] = []

    # -- interpreter hook interface ------------------------------------------

    def enter_function(self, name: str) -> None:
        self._stack.append(name)
        self._profile(name).calls += 1

    def exit_function(self, name: str) -> None:
        if self._stack and self._stack[-1] == name:
            self._stack.pop()

    def on_instruction(self, opcode: str, cycles: float) -> None:
        if not self._stack:
            return
        p = self._profile(self._stack[-1])
        p.instructions += 1
        p.cycles += cycles
        if opcode == "load":
            p.loads += 1
        elif opcode == "store":
            p.stores += 1

    def on_guard(self, addr: int, size: int, flags: int, cycles: float) -> None:
        if self._stack:
            p = self._profile(self._stack[-1])
            p.guards += 1
            p.cycles += cycles
        page = addr >> layout.PAGE_SHIFT
        self.guard_pages[page] = self.guard_pages.get(page, 0) + 1

    def _profile(self, name: str) -> FunctionProfile:
        p = self.functions.get(name)
        if p is None:
            p = FunctionProfile(name)
            self.functions[name] = p
        return p

    # -- reporting ----------------------------------------------------------------

    def hottest(self, by: str = "instructions", top: int = 10) -> list[FunctionProfile]:
        return sorted(
            self.functions.values(), key=lambda p: getattr(p, by), reverse=True
        )[:top]

    def hottest_pages(self, top: int = 10) -> list[tuple[int, int]]:
        """(page number, guard count) pairs, most-guarded first."""
        return sorted(
            self.guard_pages.items(), key=lambda kv: kv[1], reverse=True
        )[:top]

    def total_guards(self) -> int:
        return sum(p.guards for p in self.functions.values())

    def report(self, top: int = 10) -> str:
        lines = [
            f"{'function':<28}{'calls':>8}{'instrs':>10}{'guards':>8}"
            f"{'loads':>7}{'stores':>7}{'cycles':>12}"
        ]
        for p in self.hottest(top=top):
            lines.append(
                f"{p.name:<28}{p.calls:>8}{p.instructions:>10}{p.guards:>8}"
                f"{p.loads:>7}{p.stores:>7}{p.cycles:>12.0f}"
            )
        if self.guard_pages:
            lines.append("")
            lines.append("guard-hot pages:")
            for page, count in self.hottest_pages(5):
                lines.append(
                    f"  {page << layout.PAGE_SHIFT:#018x}  {count:>8} checks"
                )
        return "\n".join(lines)

    def reset(self) -> None:
        self.functions.clear()
        self.guard_pages.clear()
        self._stack.clear()


__all__ = ["FunctionProfile", "Profiler"]
