"""Cycle accounting for interpreted module code."""

from __future__ import annotations

from .machine import MachineModel


class CycleCounter:
    """Accumulates visible cycles and event counts during interpretation.

    The counter is the VM-side half of the trace-calibrated methodology
    (DESIGN.md §7): the interpreter reports every executed op, guard, and
    MMIO access; the bench harness reads the totals per packet to build
    the per-configuration cost distribution.
    """

    __slots__ = (
        "machine",
        "cycles",
        "instructions",
        "guards",
        "guard_entries_scanned",
        "mmio_reads",
        "mmio_writes",
        "loads",
        "stores",
        "calls",
    )

    def __init__(self, machine: MachineModel):
        self.machine = machine
        self.reset()

    def reset(self) -> None:
        self.cycles = 0.0
        self.instructions = 0
        self.guards = 0
        self.guard_entries_scanned = 0
        self.mmio_reads = 0
        self.mmio_writes = 0
        self.loads = 0
        self.stores = 0
        self.calls = 0

    # The interpreter calls these in its hot loop; keep them branch-light.

    def add_op(self, opcode: str) -> None:
        self.instructions += 1
        self.cycles += self.machine.op_cost(opcode)

    def add_guard(self, entries_scanned: int) -> None:
        self.guards += 1
        self.guard_entries_scanned += entries_scanned
        self.cycles += self.machine.guard_cost(entries_scanned)

    def add_mmio_read(self) -> None:
        self.mmio_reads += 1
        self.cycles += self.machine.mmio_read_cycles

    def add_mmio_write(self) -> None:
        self.mmio_writes += 1
        self.cycles += self.machine.mmio_write_cycles

    def add_cycles(self, n: float) -> None:
        self.cycles += n

    def add_delay_us(self, usec: float) -> None:
        self.cycles += self.machine.cycles_for_us(usec)

    def snapshot(self) -> dict[str, float]:
        return {
            "cycles": self.cycles,
            "instructions": self.instructions,
            "guards": self.guards,
            "guard_entries_scanned": self.guard_entries_scanned,
            "mmio_reads": self.mmio_reads,
            "mmio_writes": self.mmio_writes,
            "loads": self.loads,
            "stores": self.stores,
            "calls": self.calls,
        }

    def delta_since(self, snap: dict[str, float]) -> dict[str, float]:
        now = self.snapshot()
        return {k: now[k] - snap[k] for k in now}


__all__ = ["CycleCounter"]
