"""caratcc: the CARAT KOP compiler pipeline (paper §3.3, Figure 2).

Figure 2's flow — C source → clang front end → middle-end passes
(+ guard injection) → signed module object — maps here to::

    mini-C  →  minicc  →  [mem2reg, peephole, dce]      (normal -O pipeline)
                       →  [attestation, kop-guard]       (if protect=True)
                       →  [kop-guard-opt]                (ablation only)
                       →  sign                           (HMAC attestation)

"Any module in the Linux kernel can be compiled as a protected module by
swapping the compiler for the CARAT KOP compiler" (§3.2): the same entry
point builds the baseline by passing ``protect=False`` — same front end,
same optimization flags, no guards, exactly the paper's §4.1 methodology
("In both cases, the same compiler was used, with the same flags").
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional, Union

from .. import abi
from ..ir import Module, verify_module
from ..ir.instructions import Call, Load, Store
from ..kernel.module_loader import CompiledModule
from ..minicc import compile_source
from ..passes import (
    AttestationPass,
    DCEPass,
    GuardInjectionPass,
    GuardOptPass,
    Mem2RegPass,
    PassManager,
    PeepholePass,
)
from ..passes.absint import ModuleVerifier
from ..passes.intrinsic_guard import IntrinsicGuardPass
from ..signing import (
    SigningKey,
    VerificationCertificate,
    canonical_bytes,
    sign_module,
)


@dataclass
class CompileOptions:
    """Knobs of the caratcc wrapper script."""

    module_name: str = "module"
    #: Apply the CARAT KOP guard-injection transform.
    protect: bool = True
    #: Run the CARAT CAKE-style guard optimizer (OFF in the paper; the
    #: abl2 benchmark turns it on to measure what it would recover).
    #: Equivalent to ``opt_level=1`` and kept for backward compatibility.
    optimize_guards: bool = False
    #: Guard optimization level: 0 = faithful paper mode (guard every
    #: access), 1 = dominated-guard elimination + loop-invariant hoisting,
    #: 2 = adds range coalescing, 3 = adds load-time static verification
    #: (prove guards in-policy and mint an elision certificate).  ``None``
    #: derives the level from ``optimize_guards`` (True -> 1, False -> 0).
    opt_level: Optional[int] = None
    #: Individual transform overrides; ``None`` follows ``opt_level``.
    eliminate_guards: Optional[bool] = None
    hoist_guards: Optional[bool] = None
    coalesce_guards: Optional[bool] = None
    #: Run the abstract-interpretation verifier (``None`` follows
    #: ``opt_level >= 3``).  Requires ``verify_table``; without a table
    #: the tier degrades to -O2 behaviour (no certificate minted).
    verify: Optional[bool] = None
    #: The policy table (RegionTable/IntervalRegionTable) to prove guard
    #: ranges against — normally the live table the kernel will enforce.
    verify_table: Optional[object] = None
    #: Trusted contract set (``repro.passes.absint.ContractSet``); must
    #: match the kernel's registered contracts or insmod will demote.
    contracts: Optional[object] = None
    #: Guard privileged intrinsics too (paper §5 extension).
    guard_intrinsics: bool = False
    #: Guard module->kernel calls too (paper §5 control-flow extension).
    guard_calls: bool = False
    #: Standard mid-end optimization (mem2reg/peephole/dce).  The paper
    #: compiles with the kernel's normal flags; disable only for tests
    #: that want the -O0 shape.
    optimize: bool = True
    #: Sign the result (required by kernels provisioned with a key).
    key: Optional[SigningKey] = None
    verify_each_pass: bool = True

    def resolved_opt_level(self) -> int:
        """The effective ``-O`` level after legacy-flag fallback."""
        if self.opt_level is not None:
            if self.opt_level not in (0, 1, 2, 3):
                raise ValueError(
                    f"opt_level must be 0, 1, 2, or 3: {self.opt_level}"
                )
            return self.opt_level
        return 1 if self.optimize_guards else 0

    def verify_enabled(self) -> bool:
        """Static verification tier (``-O3``) after overrides."""
        if self.verify is not None:
            return self.verify
        return self.resolved_opt_level() >= 3

    def guard_opt_toggles(self) -> tuple[bool, bool, bool]:
        """``(eliminate, hoist, coalesce)`` after per-transform overrides."""
        level = self.resolved_opt_level()
        eliminate = (
            self.eliminate_guards if self.eliminate_guards is not None
            else level >= 1
        )
        hoist = (
            self.hoist_guards if self.hoist_guards is not None else level >= 1
        )
        coalesce = (
            self.coalesce_guards if self.coalesce_guards is not None
            else level >= 2
        )
        return eliminate, hoist, coalesce


@dataclass
class CompileStats:
    """What the transform did — feeds the abl3 engineering-effort bench."""

    source_lines: int = 0
    instructions_before_guards: int = 0
    instructions_after: int = 0
    loads: int = 0
    stores: int = 0
    guards: int = 0
    functions: int = 0
    opt_level: int = 0
    guards_removed: int = 0
    guards_hoisted: int = 0
    guards_coalesced: int = 0
    guards_proven: int = 0
    guards_dynamic: int = 0
    passes_run: list[str] = field(default_factory=list)

    @property
    def code_growth(self) -> float:
        """Instruction-count growth factor from guard injection."""
        if not self.instructions_before_guards:
            return 1.0
        return self.instructions_after / self.instructions_before_guards


def compile_module(
    source: Union[str, Module],
    options: Optional[CompileOptions] = None,
    **kwargs,
) -> CompiledModule:
    """Compile mini-C source (or transform existing IR) into a loadable,
    optionally protected, optionally signed module."""
    opts = options or CompileOptions(**kwargs)
    if options is not None and kwargs:
        raise TypeError("pass either options or keyword overrides, not both")

    stats = CompileStats()
    if isinstance(source, str):
        stats.source_lines = sum(
            1 for line in source.splitlines() if line.strip()
        )
        ir = compile_source(source, opts.module_name)
    else:
        ir = source
        if opts.module_name != "module":
            ir.name = opts.module_name
    verify_module(ir)

    pm = PassManager(verify_each=opts.verify_each_pass)
    if opts.optimize:
        pm.add(Mem2RegPass()).add(PeepholePass()).add(DCEPass())
    pm.run(ir)
    stats.instructions_before_guards = ir.instruction_count()

    eliminate, hoist, coalesce = opts.guard_opt_toggles()
    guard_opt: Optional[GuardOptPass] = None
    pm2 = PassManager(verify_each=opts.verify_each_pass)
    pm2.add(AttestationPass())
    if opts.protect:
        pm2.add(GuardInjectionPass())
        if opts.guard_intrinsics:
            pm2.add(IntrinsicGuardPass())
        if opts.guard_calls:
            from ..passes.call_guard import CallGuardPass

            pm2.add(CallGuardPass())
        if eliminate or hoist or coalesce:
            guard_opt = GuardOptPass(
                hoist_loops=hoist, eliminate=eliminate, coalesce=coalesce
            )
            pm2.add(guard_opt)
            pm2.add(DCEPass())  # sweep dead address casts left behind
    pm2.run(ir)

    stats.passes_run = [name for name, _ in pm.log + pm2.log]
    stats.instructions_after = ir.instruction_count()
    stats.functions = len(ir.defined_functions())
    for fn in ir.defined_functions():
        for inst in fn.instructions():
            if isinstance(inst, Load):
                stats.loads += 1
            elif isinstance(inst, Store):
                stats.stores += 1
            elif isinstance(inst, Call) and inst.is_guard:
                stats.guards += 1
    stats.opt_level = opts.resolved_opt_level()
    if guard_opt is not None:
        stats.guards_removed = guard_opt.guards_removed
        stats.guards_hoisted = guard_opt.guards_hoisted
        stats.guards_coalesced = guard_opt.guards_coalesced

    # -O3: prove guard ranges against the live policy table.  The
    # verdicts are computed on the final IR (after guard opt), so the
    # signature below attests to exactly the code the verdicts describe.
    report = None
    if opts.protect and opts.verify_enabled() and opts.verify_table is not None:
        verifier = ModuleVerifier(ir, opts.verify_table, opts.contracts)
        report = verifier.run()
        stats.guards_proven = report.guards_proven
        stats.guards_dynamic = report.guards_dynamic
        stats.passes_run.append("kop-absint")

    if opts.protect:
        ir.metadata[abi.META_GUARD_COUNT] = stats.guards
        ir.metadata[abi.META_OPT_LEVEL] = stats.opt_level
        ir.metadata[abi.META_GUARDS_REMOVED] = stats.guards_removed
        ir.metadata[abi.META_GUARDS_HOISTED] = stats.guards_hoisted
        ir.metadata[abi.META_GUARDS_COALESCED] = stats.guards_coalesced
        if report is not None:
            ir.metadata[abi.META_GUARDS_PROVEN] = stats.guards_proven
            ir.metadata[abi.META_GUARDS_DYNAMIC] = stats.guards_dynamic

    signature = sign_module(ir, opts.key) if opts.key is not None else None
    certificate = None
    if report is not None:
        table = opts.verify_table
        certificate = VerificationCertificate(
            module_name=ir.name,
            ir_digest=hashlib.sha256(canonical_bytes(ir)).hexdigest(),
            policy_digest=table.digest(),
            policy_epoch=table.epoch,
            contracts_digest=report.contracts_digest,
            verdicts=report.verdicts,
            guards_proven=report.guards_proven,
            guards_dynamic=report.guards_dynamic,
        )
    compiled = CompiledModule(
        ir=ir,
        signature=signature,
        source_lines=stats.source_lines,
        certificate=certificate,
    )
    compiled.stats = stats  # type: ignore[attr-defined]
    return compiled


__all__ = ["CompileOptions", "CompileStats", "compile_module"]
