"""Core orchestration: the caratcc pipeline and full-system assembly."""

from .container import ContainerError, load_module, save_module
from .pipeline import CompileOptions, CompileStats, compile_module
from .system import CaratKopSystem, SystemConfig

__all__ = [
    "CaratKopSystem",
    "CompileOptions",
    "CompileStats",
    "ContainerError",
    "SystemConfig",
    "compile_module",
    "load_module",
    "save_module",
]
