"""The .kop module container: compiled modules as files.

The paper's deployment story is file-shaped: the vendor compiles and
signs a module, the operator receives a file and insmods it.  A ``.kop``
container carries exactly what that handoff needs — the canonical IR text
plus the signature envelope — as one JSON document.  Tampering with the
IR inside the file is caught at insmod by the normal signature check
(the digest covers the IR bytes, §2).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from ..ir import parse_module, print_module
from ..kernel.module_loader import CompiledModule
from ..signing import ModuleSignature

FORMAT = "carat-kop-module"
VERSION = 1


class ContainerError(ValueError):
    """Malformed or wrong-format .kop file."""


def save_module(compiled: CompiledModule, path: Union[str, Path]) -> Path:
    """Write a compiled (optionally signed) module to a .kop file."""
    path = Path(path)
    doc: dict = {
        "format": FORMAT,
        "version": VERSION,
        "name": compiled.name,
        "source_lines": compiled.source_lines,
        "ir": print_module(compiled.ir),
    }
    if compiled.signature is not None:
        doc["signature"] = dict(compiled.signature.__dict__)
    path.write_text(json.dumps(doc, indent=1))
    return path


def load_module(path: Union[str, Path]) -> CompiledModule:
    """Read a .kop file back into a loadable CompiledModule.

    No trust decisions happen here: the kernel's insmod validates the
    signature against its provisioned key, exactly as for an in-memory
    module.
    """
    path = Path(path)
    try:
        doc = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as e:
        raise ContainerError(f"{path}: unreadable container: {e}") from e
    if doc.get("format") != FORMAT:
        raise ContainerError(f"{path}: not a {FORMAT} file")
    if doc.get("version") != VERSION:
        raise ContainerError(
            f"{path}: unsupported container version {doc.get('version')}"
        )
    for field in ("name", "ir"):
        if field not in doc:
            raise ContainerError(f"{path}: missing field {field!r}")
    ir = parse_module(doc["ir"])
    signature = None
    if "signature" in doc:
        try:
            signature = ModuleSignature(**doc["signature"])
        except TypeError as e:
            raise ContainerError(f"{path}: bad signature envelope: {e}") from e
    return CompiledModule(
        ir=ir,
        signature=signature,
        source_lines=int(doc.get("source_lines", 0)),
    )


__all__ = ["ContainerError", "FORMAT", "VERSION", "load_module", "save_module"]
