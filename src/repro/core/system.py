"""CaratKopSystem: one-call assembly of the whole testbed.

Boots the kernel on a chosen machine model, installs the policy module,
compiles the e1000e driver (baseline or protected), inserts it, brings
the NIC up against a packet sink, and hands back a raw socket + blaster —
the complete Figure 1 picture plus the §4 testbed, ready for experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..e1000e import DRIVER_NAME, DRIVER_SOURCE, E1000EDevice, E1000ENetDev
from ..kernel import Kernel
from ..kernel.module_loader import CompiledModule, LoadedModule
from ..net import PacketBlaster, PacketSink, RawPacketSocket
from ..policy import CaratPolicyModule, PolicyManager, RegionTable
from ..signing import SigningKey
from ..vm.machine import MachineModel, get_machine
from .pipeline import CompileOptions, compile_module


@dataclass
class SystemConfig:
    """Everything the experiments vary."""

    #: "r415", "r350", a MachineModel, or None for untimed functional runs.
    machine: Union[str, MachineModel, None] = "r350"
    #: Which guarded device stack to assemble: "e1000e" (NIC + pktblast,
    #: the paper's testbed) or "vblk" (virtio-style block + blkblast).
    driver: str = "e1000e"
    #: Build the driver with the CARAT KOP transform ("carat") or not
    #: ("baseline") — the two curves in every figure.
    protect: bool = True
    #: CARAT CAKE-style guard optimization (legacy toggle == ``-O1``).
    optimize_guards: bool = False
    #: Guard optimization level: 0 faithful, 1 eliminate+hoist, 2 adds
    #: range coalescing, 3 adds load-time static verification (prove
    #: guards in-policy at compile time, elide them at insmod).
    #: ``None`` derives from ``optimize_guards``.
    opt_level: Optional[int] = None
    #: What insmod does with a stale/invalid verification certificate:
    #: "strict" rejects the module, "demote" (default) loads it with
    #: full dynamic guarding, "off" ignores certificates entirely.
    verify_policy: str = "demote"
    #: Policy index structure: a region-table instance, or a structure
    #: name from ``repro.policy.structures.STRUCTURES`` ("linear",
    #: "interval", ...).  None means the paper's linear table.
    policy_index: Optional[object] = None
    #: Number of regions for the standard policy (Figure 5 varies this).
    regions: int = 2
    #: Enforce (panic) vs audit-only.
    enforce: bool = True
    #: Enforcement mode: "audit", "panic", "eject", or "isolate".  None
    #: derives it from ``enforce`` (panic/audit — the paper behaviour).
    enforce_mode: Optional[str] = None
    #: Require signatures + protection at insmod.
    strict_kernel: bool = False
    ram_size: int = 64 << 20
    #: Execution engine: "compiled" (translate-once closures, default) or
    #: "interp" (the reference tree-walking interpreter).
    engine: str = "compiled"
    #: Simulated CPUs (cooperative round-robin model).  1 is bit-exact
    #: with the historic single-CPU behaviour; N shards pktblast and the
    #: per-CPU subsystems (stats, guard caches, trace rings) across N.
    cpus: int = 1
    #: Rotates the round-robin scheduler's starting CPU (determinism
    #: experiments; 0 reproduces the unsharded global order exactly).
    smp_seed: int = 0
    #: vblk I/O queue pairs (NVMe-style, 1..4): "auto" = one per CPU
    #: (capped at the device's 4 blocks), an int pins the count.  1 keeps
    #: the single-shared-queue behaviour.  Ignored for the e1000e stack.
    queues: Union[int, str] = 1


class CaratKopSystem:
    """The assembled testbed."""

    def __init__(self, config: Optional[SystemConfig] = None, **kwargs):
        self.config = config or SystemConfig(**kwargs)
        if config is not None and kwargs:
            raise TypeError("pass either config or keyword overrides, not both")
        cfg = self.config
        machine = cfg.machine
        if isinstance(machine, str):
            machine = get_machine(machine)
        self.machine: Optional[MachineModel] = machine

        self.signing_key = SigningKey.generate()
        self.kernel = Kernel(
            ram_size=cfg.ram_size,
            machine=machine,
            signing_key=self.signing_key if cfg.strict_kernel else None,
            require_protected_modules=cfg.strict_kernel and cfg.protect,
            engine=cfg.engine,
            ncpus=cfg.cpus,
            smp_seed=cfg.smp_seed,
            verify_policy=cfg.verify_policy,
        )
        index = cfg.policy_index if cfg.policy_index is not None else RegionTable()
        if isinstance(index, str):
            from ..policy import make_index

            index = make_index(index)
        self.policy = CaratPolicyModule(
            self.kernel, index=index, enforce=cfg.enforce,
            mode=cfg.enforce_mode,
        ).install()
        self.policy_manager = PolicyManager(self.kernel)
        if cfg.regions == 2:
            self.policy_manager.install_two_region_policy()
        else:
            self.policy_manager.install_n_region_policy(cfg.regions)

        if cfg.driver == "e1000e":
            driver_name, driver_source = DRIVER_NAME, DRIVER_SOURCE
            from ..e1000e.contracts import DRIVER_CONTRACTS as driver_contracts
            self.sink = PacketSink(keep_last=8)
            self.device = E1000EDevice(
                self.kernel,
                self.sink,
                clock=(lambda: self.kernel.vm.timing.cycles) if machine else None,
                freq_hz=machine.freq_hz if machine else None,
            )
        elif cfg.driver == "vblk":
            from ..vblk import (
                DRIVER_NAME as VBLK_NAME,
                DRIVER_SOURCE as VBLK_SOURCE,
                VBLK_CONTRACTS,
                VblkDevice,
            )
            driver_name, driver_source = VBLK_NAME, VBLK_SOURCE
            driver_contracts = VBLK_CONTRACTS
            self.sink = None
            self.device = VblkDevice(
                self.kernel,
                clock=(lambda: self.kernel.vm.timing.cycles) if machine else None,
                freq_hz=machine.freq_hz if machine else None,
                merge_seed=cfg.smp_seed,
            )
        else:
            raise ValueError(f"unknown driver {cfg.driver!r}")
        self.driver_name = driver_name

        compile_opts = CompileOptions(
            module_name=driver_name,
            protect=cfg.protect,
            optimize_guards=cfg.optimize_guards,
            opt_level=cfg.opt_level,
            key=self.signing_key,
        )
        if cfg.protect and compile_opts.verify_enabled():
            # -O3: prove guards against the live policy table (installed
            # above, so the digest/epoch the certificate captures are
            # exactly what insmod re-validates) under the driver's own
            # trusted ABI contracts, registered per-driver so certifying
            # one stack never widens the other's TCB.
            self.kernel.register_verify_contracts(
                driver_contracts, module=driver_name
            )
            compile_opts.verify_table = self.policy.index
            compile_opts.contracts = driver_contracts
        self.driver_compiled: CompiledModule = compile_module(
            driver_source, compile_opts,
        )
        self.driver: LoadedModule = self.kernel.insmod(self.driver_compiled)
        if cfg.driver == "e1000e":
            self.netdev = E1000ENetDev(self.kernel, self.driver, self.device)
            self.netdev.probe()
            self.socket = RawPacketSocket(self.kernel, self.netdev, machine)
            self.blaster = PacketBlaster(self.socket)
            self.blkdev = None
            self.blkqueue = None
            self.blkblaster = None
        else:
            from ..vblk import BlockBlaster, BlockRequestQueue, VblkBlockDev
            self.netdev = None
            self.socket = None
            self.blaster = None
            self.blkdev = VblkBlockDev(
                self.kernel, self.driver, self.device,
                queues=self.resolved_queues(),
            )
            self.blkdev.probe()
            self.blkqueue = BlockRequestQueue(self.kernel, self.blkdev, machine)
            self.blkblaster = BlockBlaster(self.blkqueue)

    # -- convenience --------------------------------------------------------

    def resolved_queues(self) -> int:
        """The vblk I/O queue count: "auto" maps one queue per CPU,
        capped at the device's fixed block count."""
        from ..vblk import regs as vblk_regs
        queues = self.config.queues
        if queues == "auto":
            return max(1, min(self.config.cpus, vblk_regs.MAX_IO_QUEUES))
        queues = int(queues)
        if not 1 <= queues <= vblk_regs.MAX_IO_QUEUES:
            raise ValueError(
                f"queues must be 1..{vblk_regs.MAX_IO_QUEUES} or 'auto', "
                f"got {queues}"
            )
        return queues

    @property
    def technique(self) -> str:
        return "carat" if self.config.protect else "baseline"

    def blast(self, size: int = 128, count: int = 1000,
              capture_latency: bool = False):
        """Run one pktblast trial on the live system."""
        return self.blaster.blast(size, count, capture_latency)

    def blkblast(self, count: int = 100, nsect: int = 2,
                 pattern: str = "seq", seed: int = 1,
                 read_frac: int = 50, flush_interval: int = 16,
                 capture_latency: bool = False):
        """Run one blkblast trial on the live vblk system."""
        return self.blkblaster.blast(
            count, nsect=nsect, pattern=pattern, seed=seed,
            read_frac=read_frac, flush_interval=flush_interval,
            capture_latency=capture_latency,
        )

    def guard_stats(self) -> dict[str, int]:
        stats = self.policy.stats.as_dict()
        # This system's traffic against the process-global translation
        # code cache (0 under the interpreter, which never translates).
        # Cache warmth depends on what ran earlier in the process, so
        # cross-system comparisons strip the ``translation_`` keys.
        vm = self.kernel.vm
        stats["translation_cache_hits"] = getattr(
            vm, "translation_cache_hits", 0)
        stats["translation_cache_misses"] = getattr(
            vm, "translation_cache_misses", 0)
        stats["guards_proven"] = self.driver_compiled.guards_proven
        stats["guards_elided"] = len(self.driver.elided_guards)
        stats["verify_demotions"] = self.kernel.verify_demotions
        return stats

    def reload_driver(self) -> LoadedModule:
        """Re-insert the driver after an eject and rebuild the glue
        plumbing on top of it.  The recovery half of a
        violation->eject->re-insmod cycle; the caller must lift the
        quarantine first (``policy_manager.unquarantine``)."""
        machine = self.machine
        self.driver = self.kernel.insmod(self.driver_compiled)
        if self.config.driver == "e1000e":
            self.netdev = E1000ENetDev(self.kernel, self.driver, self.device)
            self.netdev.probe()
            self.socket = RawPacketSocket(
                self.kernel, self.netdev, machine,
                max_retries=self.socket.max_retries,
            )
            self.blaster = PacketBlaster(self.socket)
        else:
            from ..vblk import BlockBlaster, BlockRequestQueue, VblkBlockDev
            self.blkdev = VblkBlockDev(
                self.kernel, self.driver, self.device,
                queues=self.resolved_queues(),
            )
            self.blkdev.probe()
            self.blkqueue = BlockRequestQueue(
                self.kernel, self.blkdev, machine,
                max_retries=self.blkqueue.max_retries,
            )
            self.blkblaster = BlockBlaster(self.blkqueue)
        return self.driver

    def teardown(self) -> None:
        if self.netdev is not None:
            self.netdev.remove()
        if self.blkdev is not None:
            self.blkdev.remove()
        self.kernel.rmmod(self.driver_name)
        self.policy.uninstall()


__all__ = ["CaratKopSystem", "SystemConfig"]
