"""blkblast: the user-level block-I/O test tool (the storage twin of
pktblast).

Drives mixed read/write/flush request streams through the block request
queue with seedable access patterns — sequential, uniformly random, and
hot-spot (most requests concentrated in a small window).  Every request
is derived purely from its stream sequence number and the seed, so the
round-robin CPU sharding reconstructs the exact single-CPU global order
for any CPU count (the pktblast determinism contract).

Under the NVMe-style multi-queue device each CPU owns its queue pair
end-to-end: the shard running on CPU ``k`` submits through the blkdev
layer onto I/O queue ``1 + (k % nq)`` with no cross-queue locking, and
harvests only that queue's completions.  Determinism across 1/2/4 CPUs
therefore no longer comes from draining one shared ring — it comes from
the device's completion-merge contract (per-queue FIFO, cross-queue
rotation seeded by ``merge_seed``) combined with data moving at
doorbell time in global submission order, which the round-robin shard
interleaving reproduces for any CPU count.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Optional

from ..vm.machine import MachineModel
from . import regs
from .blkdev import BlockRequestQueue

PATTERNS = ("seq", "rand", "hotspot")

_MASK64 = (1 << 64) - 1


def _mix(seed: int, seq: int) -> int:
    """splitmix64-style stateless mixer: (seed, seq) -> 64 pseudo bits."""
    x = (seq + 1 + (seed * 0x9E3779B97F4A7C15)) & _MASK64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _MASK64
    x ^= x >> 31
    return x


def make_test_block(size: int, seq: int) -> bytes:
    """A deterministic payload: the sequence number tiled across the
    block (the storage analog of ``make_test_frame``)."""
    unit = struct.pack("<Q", seq & _MASK64)
    reps = (size + len(unit) - 1) // len(unit)
    return (unit * reps)[:size]


@dataclass(slots=True)
class BlkBlastResult:
    """One trial's measurements."""

    ops_requested: int
    ops_done: int
    reads: int
    writes: int
    flushes: int
    errors: int
    stalls: int
    bytes_read: int
    bytes_written: int
    total_cycles: float
    throughput_iops: float
    #: Per-request latencies in cycles (empty unless capture was on).
    latencies: list[float] = field(default_factory=list)

    @property
    def mean_latency(self) -> float:
        return sum(self.latencies) / len(self.latencies) if self.latencies else 0.0


class BlockBlaster:
    """Drives one trial: N mixed requests through the request queue."""

    def __init__(
        self,
        queue: BlockRequestQueue,
        machine: Optional[MachineModel] = None,
    ):
        self.queue = queue
        self.machine = machine if machine is not None else queue.machine

    def blast(
        self,
        count: int,
        nsect: int = 2,
        pattern: str = "seq",
        seed: int = 1,
        read_frac: int = 50,
        flush_interval: int = 16,
        capture_latency: bool = False,
    ) -> BlkBlastResult:
        """Run ``count`` mixed requests of ``nsect`` sectors each.

        ``read_frac`` is the percentage of non-flush requests that read;
        every ``flush_interval``-th request is a flush barrier.
        """
        if pattern not in PATTERNS:
            raise ValueError(f"pattern must be one of {PATTERNS}")
        if not 1 <= nsect <= regs.MAX_IO_SECTORS:
            raise ValueError(f"nsect must be 1..{regs.MAX_IO_SECTORS}")
        machine = self.machine
        queue = self.queue
        kernel = queue.kernel
        timing = kernel.vm.timing
        smp = kernel.smp
        capacity = queue.blkdev.device.capacity_sectors
        span = max(capacity - nsect, 1)
        hot_window = max(span // 32, 1)
        hot_base = _mix(seed, 0) % max(span - hot_window, 1)
        length = nsect * regs.SECTOR_SIZE
        errors = 0
        reads = writes = flushes = 0
        bytes_read = bytes_written = 0
        stalls_before = queue.stalls
        latencies: list[float] = [] if capture_latency else None  # type: ignore[assignment]
        start_cycles = timing.cycles if timing is not None else 0.0

        def plan(seq: int) -> tuple[int, int]:
            if flush_interval and seq % flush_interval == flush_interval - 1:
                return regs.VDESC_TYPE_FLUSH, 0
            bits = _mix(seed, seq)
            op = (
                regs.VDESC_TYPE_READ
                if (bits >> 8) % 100 < read_frac
                else regs.VDESC_TYPE_WRITE
            )
            if pattern == "seq":
                sector = (seq * nsect) % span
            elif pattern == "rand":
                sector = (bits >> 16) % span
            else:  # hotspot: 90% of requests land in a 1/32 window
                if (bits >> 4) % 10 < 9:
                    sector = hot_base + (bits >> 16) % hot_window
                else:
                    sector = (bits >> 16) % span
            return op, sector

        def shard(seqs: range):
            """One CPU's slice of the stream, one request per turn."""
            nonlocal errors, reads, writes, flushes, bytes_read, bytes_written
            for seq in seqs:
                op, sector = plan(seq)
                # The tool's own per-iteration work happens on the same
                # clock the device drains against.
                if timing is not None and machine is not None:
                    timing.add_cycles(machine.userspace_per_packet_cycles)
                if op == regs.VDESC_TYPE_FLUSH:
                    result = queue.fsync()
                    flushes += 1
                elif op == regs.VDESC_TYPE_READ:
                    result = queue.pread(sector, nsect)
                    reads += 1
                    if result.rc == 0:
                        bytes_read += length
                else:
                    result = queue.pwrite(sector, make_test_block(length, seq))
                    writes += 1
                    if result.rc == 0:
                        bytes_written += length
                if result.rc != 0:
                    errors += 1
                if capture_latency:
                    latencies.append(result.latency_cycles)
                yield

        # Shard the stream round-robin across the simulated CPUs and
        # drain it round-robin: CPU k issues the seqs congruent to its
        # turn offset, so the cooperative scheduler reconstructs the
        # exact single-CPU global order for any CPU count.
        start = smp.seed % smp.ncpus
        tasks = [
            shard(range((cpu - start) % smp.ncpus, count, smp.ncpus))
            for cpu in range(smp.ncpus)
        ]
        smp.run_round_robin(tasks)
        total = (timing.cycles - start_cycles) if timing is not None else 0.0
        if machine is not None and total > 0:
            iops = count / machine.seconds(total)
        else:
            iops = 0.0
        return BlkBlastResult(
            ops_requested=count,
            ops_done=count - errors,
            reads=reads,
            writes=writes,
            flushes=flushes,
            errors=errors,
            stalls=queue.stalls - stalls_before,
            bytes_read=bytes_read,
            bytes_written=bytes_written,
            total_cycles=total,
            throughput_iops=iops,
            latencies=latencies or [],
        )


__all__ = ["BlkBlastResult", "BlockBlaster", "PATTERNS", "make_test_block"]
