"""The simulated virtio-style block device (NVMe-style multi-queue).

Like the e1000e model, the device is the unguarded half of the driver
contract: an MMIO register window plus a DMA engine that fetches request
descriptors and moves sector data straight through physical memory.  DMA
accesses bypass the guard machinery *by construction* (the paper scopes
device-side protection to IOMMU/SR-IOV, §4 fn 3), so the guarded hot
path only pays for the driver's own descriptor and doorbell stores.

Queues are NVMe-shaped: block 0 is the admin/legacy pair and blocks
1..4 are I/O pairs, each a split-virtqueue in miniature — a descriptor
table, an avail ring the driver posts indexes into (per-queue AVT
doorbell), and a used ring the device writes completed indexes back to
(per-queue UT), each completion setting the descriptor's status byte
and raising that queue's MSI-X-style vector.  I/O queues come into
service only through CREATE_IOQ admin commands on queue 0; the admin
queue doubles as the legacy single-queue I/O path so historic host
software keeps working.

Each I/O queue owns an independent media channel (its own
``media_free_at`` horizon), so queues drain in parallel on the machine
clock — that queue independence, not faster media, is where multi-queue
throughput comes from.  Data still moves synchronously at doorbell
time, in global submission order, which is what makes the final
block-store image independent of the queue count and CPU count.

**Completion-merge contract**: within one processing pass, queue 0
drains first, then the I/O queues in a fixed rotation seeded by
``merge_seed`` (each queue internally FIFO by maturity).  Host-visible
cross-queue completion order is therefore a pure function of the
submission stream and the seed — never of wall-clock interleaving.

Timing: sector payloads drain at a flash-like fixed service rate.  With
a cycle clock (machine-model runs) completions land as simulated device
time elapses; without one, completion is immediate (functional mode).
"""

from __future__ import annotations

import struct
from collections import deque
from typing import Callable, Optional

from ..kernel.kernel import Kernel
from ..kernel.panic import MemoryFault
from . import regs

#: Sustained media rate: 400 MB/s (a modest SATA-flash device).
_MEDIA_BYTES_PER_SEC = 400_000_000
#: Fixed per-request service overhead (queue + firmware), seconds.
_REQUEST_OVERHEAD_SEC = 8e-6
#: A flush drains the write cache: costlier than any single request.
_FLUSH_OVERHEAD_SEC = 60e-6

_DESC_FMT = "<QQIHBBQ"

_IO_TYPES = (
    regs.VDESC_TYPE_READ, regs.VDESC_TYPE_WRITE, regs.VDESC_TYPE_FLUSH,
)
_ADMIN_TYPES = (regs.VDESC_TYPE_CREATE_IOQ, regs.VDESC_TYPE_DELETE_IOQ)


class _QueuePair:
    """One SQ/CQ pair: ring registers + in-flight FIFO + media channel."""

    __slots__ = (
        "qid", "dtba", "dtlen", "avba", "avh", "avt", "uba", "uh", "ut",
        "created", "in_flight", "media_free_at",
        "doorbells", "fetched", "completed", "errors",
    )

    def __init__(self, qid: int):
        self.qid = qid
        self.reset()

    def reset(self) -> None:
        self.dtba = 0
        self.dtlen = 0
        self.avba = 0
        self.avh = 0
        self.avt = 0
        self.uba = 0
        self.uh = 0
        self.ut = 0
        #: I/O queues exist only after a CREATE_IOQ admin command.
        self.created = self.qid == 0
        # In-flight: [completion_cycle, ring_index, status, retried]
        self.in_flight: deque[list] = deque()
        #: Independent media channel horizon (cycles).
        self.media_free_at = 0.0
        self.doorbells = 0
        self.fetched = 0
        self.completed = 0
        self.errors = 0

    @property
    def entries(self) -> int:
        return self.dtlen // regs.VDESC_SIZE if self.dtlen else 0


class VblkDevice:
    """Register file + multi-queue DMA engine + sector backing store."""

    def __init__(
        self,
        kernel: Kernel,
        capacity_sectors: int = regs.DEFAULT_CAPACITY_SECTORS,
        clock: Optional[Callable[[], float]] = None,
        freq_hz: Optional[float] = None,
        queue_entries_max: int = 1024,
        merge_seed: int = 0,
    ):
        if capacity_sectors <= 0:
            raise ValueError("capacity must be positive")
        self.kernel = kernel
        self.capacity_sectors = capacity_sectors
        #: Returns "now" in CPU cycles; None = functional (untimed) mode.
        self.clock = clock
        self.freq_hz = freq_hz
        self.queue_entries_max = queue_entries_max
        #: Seeds the cross-queue rotation of the completion merge.
        self.merge_seed = merge_seed
        self.phys_base = kernel.register_mmio(self, regs.BAR_SIZE, "vblk")
        #: One MSI-X-style vector per queue block (admin + 4 I/O), all
        #: assigned by the "PCI subsystem" at attach time.
        self.irq_lines = [
            kernel.irq.allocate_line()
            for _ in range(regs.NUM_QUEUE_BLOCKS)
        ]
        #: Fault-injection hook (see :mod:`repro.faults`): may garble
        #: descriptor fetches, stall completions, drop used-ring
        #: write-backs, swallow doorbells, and stall completion queues.
        #: None = healthy hardware.
        self.fault_injector = None
        #: The media: never cleared by reset (a reset is not a secure erase).
        self.store = bytearray(capacity_sectors * regs.SECTOR_SIZE)
        trace = kernel.trace
        self._tp_fetch = trace.points["vblk:fetch"]
        self._tp_complete = trace.points["vblk:complete"]
        self._tp_doorbell = trace.point("vblk:doorbell", "vblk")
        self.reset()

    # -- device state --------------------------------------------------------

    @property
    def irq_line(self) -> int:
        """Legacy alias: the admin/legacy queue's vector."""
        return self.irq_lines[0]

    def reset(self) -> None:
        self.vctl = 0
        self.vims = 0
        self.vicr = 0
        self.queues = [_QueuePair(q) for q in range(regs.NUM_QUEUE_BLOCKS)]
        self.rdops = 0
        self.wrops = 0
        self.flops = 0
        self.sectors_read = 0
        self.sectors_written = 0
        #: Descriptor rejections (bad type/length/sector) — distinct from
        #: master aborts, which are bus-level DMA failures.
        self.desc_errors = 0
        #: DMA master aborts: the driver programmed a bogus bus address.
        self.dma_errors = 0

    @property
    def queue_entries(self) -> int:
        """Legacy alias: the admin/legacy queue's descriptor count."""
        return self.queues[0].entries

    @property
    def nq(self) -> int:
        """I/O queue pairs currently in service."""
        return sum(1 for q in self.queues[1:] if q.created)

    def _now(self) -> float:
        return self.clock() if self.clock is not None else 0.0

    def _cycles_for_request(self, length: int, rtype: int) -> float:
        if self.freq_hz is None:
            return 0.0
        if rtype == regs.VDESC_TYPE_FLUSH:
            seconds = _FLUSH_OVERHEAD_SEC
        else:
            seconds = _REQUEST_OVERHEAD_SEC + length / _MEDIA_BYTES_PER_SEC
        return seconds * self.freq_hz

    def _queue_active(self, q: "_QueuePair") -> bool:
        return (
            bool(self.vctl & regs.VCTL_EN) and q.created and q.entries > 0
        )

    def _merge_order(self) -> list:
        """Queues in completion-merge order: admin first, then the I/O
        queues in a seeded rotation — the deterministic cross-queue
        contract the block layer's digest identity leans on."""
        n = regs.MAX_IO_QUEUES
        start = 1 + (self.merge_seed % n)
        order = [self.queues[0]]
        for i in range(n):
            order.append(self.queues[(start - 1 + i) % n + 1])
        return order

    # -- MMIO interface ------------------------------------------------------

    def mmio_read(self, offset: int, size: int) -> int:
        if offset == regs.VCTL:
            return self.vctl
        if offset == regs.VSTS:
            ready = bool(self.vctl & regs.VCTL_EN) and self.queue_entries > 0
            return regs.VSTS_READY if ready else 0
        if offset == regs.CAP:
            return self.capacity_sectors
        if offset == regs.VNQMAX:
            return regs.MAX_IO_QUEUES
        if offset == regs.VNQ:
            return self.nq
        if offset == regs.VICR:
            self._catch_up()
            self._process_completions()
            # Read-to-clear, but only the bits this read OBSERVED: a
            # cause raised for another queue between its completion and
            # that queue's own ISR can never be wiped by this read,
            # because this read returns (and therefore clears) it too —
            # and the per-queue QVICR path below never touches foreign
            # bits at all.
            value = self.vicr
            self.vicr &= ~value
            return value
        if offset in (regs.VIMS, regs.VIMC):
            return self.vims
        block = regs.queue_block(offset)
        if block is not None:
            qi, off = block
            q = self.queues[qi]
            if off == regs.QDTBAL:
                return q.dtba & 0xFFFFFFFF
            if off == regs.QDTBAH:
                return q.dtba >> 32
            if off == regs.QDTLEN:
                return q.dtlen
            if off == regs.QAVBAL:
                return q.avba & 0xFFFFFFFF
            if off == regs.QAVBAH:
                return q.avba >> 32
            if off == regs.QAVH:
                return q.avh
            if off == regs.QAVT:
                return q.avt
            if off == regs.QUBAL:
                return q.uba & 0xFFFFFFFF
            if off == regs.QUBAH:
                return q.uba >> 32
            if off == regs.QUH:
                return q.uh
            if off == regs.QUT:
                self._catch_up()
                self._process_completions()
                return q.ut
            if off == regs.QVICR:
                self._catch_up()
                self._process_completions()
                # Per-queue read-to-clear: clears ONLY this queue's
                # cause bit, so concurrent vectors never lose each
                # other's completions (the satellite-1 race fix).
                bit = regs.vicr_q(qi)
                value = 1 if self.vicr & bit else 0
                self.vicr &= ~bit
                return value
            return 0
        if offset == regs.RDOPS:
            self._process_completions()
            return self.rdops
        if offset == regs.WROPS:
            self._process_completions()
            return self.wrops
        if offset == regs.FLOPS:
            self._process_completions()
            return self.flops
        if offset == regs.SECR:
            return self.sectors_read
        if offset == regs.SECW:
            return self.sectors_written
        if offset == regs.DERR:
            return self.desc_errors + self.dma_errors
        return 0

    def mmio_write(self, offset: int, size: int, value: int) -> None:
        if offset == regs.VCTL:
            if value & regs.VCTL_RST:
                self.reset()
                return
            self.vctl = value
            return
        if offset == regs.VIMS:
            self.vims |= value
            return
        if offset == regs.VIMC:
            self.vims &= ~value
            return
        block = regs.queue_block(offset)
        if block is None:
            # Stats registers and unknown offsets ignore writes, like
            # hardware.
            return
        qi, off = block
        q = self.queues[qi]
        if off == regs.QDTBAL:
            q.dtba = (q.dtba & ~0xFFFFFFFF) | (value & 0xFFFFFFFF)
        elif off == regs.QDTBAH:
            q.dtba = (q.dtba & 0xFFFFFFFF) | (value << 32)
        elif off == regs.QDTLEN:
            if value % regs.VDESC_SIZE or value // regs.VDESC_SIZE > self.queue_entries_max:
                # Hardware ignores out-of-spec queue sizes; it must not
                # fault the CPU store that wrote them.
                self.kernel.dmesg(
                    f"vblk device: ignoring bad DTLEN {value:#x} (q{qi})"
                )
            else:
                q.dtlen = value
        elif off == regs.QAVBAL:
            q.avba = (q.avba & ~0xFFFFFFFF) | (value & 0xFFFFFFFF)
        elif off == regs.QAVBAH:
            q.avba = (q.avba & 0xFFFFFFFF) | (value << 32)
        elif off == regs.QAVH:
            q.avh = value % max(q.entries, 1)
        elif off == regs.QAVT:
            q.avt = value % max(q.entries, 1)
            q.doorbells += 1
            tp = self._tp_doorbell
            if tp.enabled:
                tp.emit(queue=qi, tail=q.avt)
            if (
                self.fault_injector is not None
                and self.fault_injector.vblk_doorbell_drop()
            ):
                # The doorbell write latched the new tail in the
                # register file but the kick event was swallowed on the
                # bus; the device's ring scan (any later sync, cause
                # read, or doorbell) picks the posted work up.
                return
            self._queue_kick(q)
        elif off == regs.QUBAL:
            q.uba = (q.uba & ~0xFFFFFFFF) | (value & 0xFFFFFFFF)
        elif off == regs.QUBAH:
            q.uba = (q.uba & 0xFFFFFFFF) | (value << 32)
        elif off == regs.QUH:
            q.uh = value % max(q.entries, 1)
        # QVICR and unknown block offsets ignore writes.

    # -- queue DMA engine ----------------------------------------------------

    def _catch_up(self) -> None:
        """Scan every serviceable queue for posted-but-unfetched work
        (tail moved past head without a surviving kick event)."""
        for q in self.queues:
            if self._queue_active(q) and q.avh != q.avt:
                self._queue_kick(q)

    def _queue_kick(self, q: "_QueuePair") -> None:
        """Tail moved: fetch avail entries, move data, queue completions."""
        if not self._queue_active(q):
            if q.avh != q.avt and not q.created:
                self.kernel.dmesg(
                    f"vblk device: doorbell on uncreated queue {q.qid}"
                )
            return
        self._process_completions()
        ram = self.kernel.ram
        n = q.entries
        now = self._now()
        busy_at = max(q.media_free_at, now)
        while q.avh != q.avt:
            slot_phys = q.avba + q.avh * 4
            try:
                idx = struct.unpack("<I", ram.read(slot_phys, 4))[0]
            except MemoryFault:
                self._master_abort(f"avail-ring fetch at {slot_phys:#x}")
                return
            q.avh = (q.avh + 1) % n
            if idx >= n:
                self.desc_errors += 1
                q.errors += 1
                self.kernel.dmesg(
                    f"vblk device: avail entry {idx} out of queue range"
                )
                continue
            desc_phys = q.dtba + idx * regs.VDESC_SIZE
            try:
                raw = ram.read(desc_phys, regs.VDESC_SIZE)
            except MemoryFault:
                self._master_abort(f"descriptor fetch at {desc_phys:#x}")
                return
            garbled = (
                self.fault_injector is not None
                and self.fault_injector.vblk_desc_garble()
            )
            if garbled:
                # A torn descriptor fetch: the device saw an inconsistent
                # snapshot and rejects the request with an error status.
                sector, buf_phys, length, rtype = 0, 0, 0, 0xFFFF
            else:
                sector, buf_phys, length, rtype, _status, _pad, _rsvd = (
                    struct.unpack(_DESC_FMT, raw)
                )
            q.fetched += 1
            tp = self._tp_fetch
            if tp.enabled:
                tp.emit(queue=q.qid, index=idx, sector=sector,
                        len=length, op=rtype)
            status = regs.VDESC_STATUS_DD
            admin = rtype in _ADMIN_TYPES and q.qid == 0
            if admin:
                if not self._admin_command(sector, rtype):
                    status |= regs.VDESC_STATUS_ERR
                    q.errors += 1
            elif not self._request_valid(q, sector, length, rtype):
                self.desc_errors += 1
                q.errors += 1
                status |= regs.VDESC_STATUS_ERR
            elif rtype == regs.VDESC_TYPE_READ:
                data = bytes(
                    self.store[
                        sector * regs.SECTOR_SIZE:
                        sector * regs.SECTOR_SIZE + length
                    ]
                )
                try:
                    ram.write(buf_phys, data)  # DMA write: unguarded
                except MemoryFault:
                    self._master_abort(f"read DMA at {buf_phys:#x}")
                    return
                self.rdops += 1
                self.sectors_read += length // regs.SECTOR_SIZE
            elif rtype == regs.VDESC_TYPE_WRITE:
                try:
                    data = ram.read(buf_phys, length)  # DMA read: unguarded
                except MemoryFault:
                    self._master_abort(f"write DMA at {buf_phys:#x}")
                    return
                self.store[
                    sector * regs.SECTOR_SIZE:
                    sector * regs.SECTOR_SIZE + length
                ] = data
                self.wrops += 1
                self.sectors_written += length // regs.SECTOR_SIZE
            else:  # flush: drains THIS queue's write-cache channel
                self.flops += 1
            if admin or status & regs.VDESC_STATUS_ERR:
                # Admin commands and rejections complete without media
                # service time.
                done_at = busy_at
            else:
                busy_at += self._cycles_for_request(length, rtype)
                if self.fault_injector is not None:
                    busy_at += self.fault_injector.vblk_completion_stall_cycles()
                done_at = busy_at
            q.in_flight.append([done_at, idx, status, False])
        q.media_free_at = busy_at
        if self.clock is None:
            self._process_completions()

    def _admin_command(self, qid: int, rtype: int) -> bool:
        """CREATE_IOQ / DELETE_IOQ: bring I/O queue pairs in/out of
        service.  The target queue's rings must already be programmed
        (the NVMe ordering: register the rings, then ask the controller
        to activate them through the admin queue)."""
        if not 1 <= qid <= regs.MAX_IO_QUEUES:
            self.kernel.dmesg(f"vblk device: admin cmd on bad queue {qid}")
            return False
        q = self.queues[qid]
        if rtype == regs.VDESC_TYPE_CREATE_IOQ:
            if q.entries == 0:
                self.kernel.dmesg(
                    f"vblk device: CREATE_IOQ {qid} before ring setup"
                )
                return False
            q.created = True
        else:
            q.created = False
        return True

    def _request_valid(self, q: "_QueuePair", sector: int, length: int,
                       rtype: int) -> bool:
        if rtype == regs.VDESC_TYPE_FLUSH:
            return length == 0
        if rtype not in (regs.VDESC_TYPE_READ, regs.VDESC_TYPE_WRITE):
            return False
        if length == 0 or length % regs.SECTOR_SIZE:
            return False
        if length > regs.MAX_IO_SECTORS * regs.SECTOR_SIZE:
            return False
        return sector + length // regs.SECTOR_SIZE <= self.capacity_sectors

    def _master_abort(self, what: str) -> None:
        """A DMA access hit an invalid bus address: log + disable the queues.

        Hardware latches a fatal error and stops the queue engine; the CPU
        store that rang the doorbell is NOT faulted — the damage shows up
        asynchronously, exactly like the NIC model."""
        self.dma_errors += 1
        self.vctl &= ~regs.VCTL_EN
        self.kernel.dmesg(f"vblk device: DMA master abort ({what})")

    def _process_completions(self) -> None:
        """Write back status + used-ring entries for finished requests,
        queue by queue in the seeded merge order (per-queue FIFO)."""
        now = self._now()
        for q in self._merge_order():
            if q.in_flight:
                self._drain_queue(q, now)

    def _drain_queue(self, q: "_QueuePair", now: float) -> None:
        ram = self.kernel.ram
        n = q.entries
        timed = self.clock is not None
        completed = False
        if (
            q.in_flight
            and self.fault_injector is not None
            and (not timed or q.in_flight[0][0] <= now)
        ):
            stall = self.fault_injector.vblk_cq_stall_cycles()
            if stall:
                # The completion queue's write-back engine hiccuped:
                # everything matured on THIS queue is deferred together
                # (FIFO order preserved).  Untimed mode counts the event
                # but completes on this pass so the functional model can
                # never hang.
                if timed:
                    q.in_flight[0][0] = now + stall
        while q.in_flight:
            entry = q.in_flight[0]
            done_at, idx, status, retried = entry
            if timed and done_at > now:
                break
            if (
                not retried
                and self.fault_injector is not None
                and self.fault_injector.vblk_writeback_drop()
            ):
                # The used-ring write-back was dropped on the bus; the
                # device's retry engine replays it (once) a beat later.
                # Head position keeps completions in submission order.
                entry[0] = done_at + self._cycles_for_request(0, regs.VDESC_TYPE_READ)
                entry[3] = True
                if timed:
                    continue
                # Untimed mode: fall through and complete on this pass so
                # the functional model can never hang.
            q.in_flight.popleft()
            if not n:
                continue
            desc_phys = q.dtba + idx * regs.VDESC_SIZE
            status_off = desc_phys + 22  # u8 status
            slot_phys = q.uba + q.ut * 4
            try:
                ram.write(status_off, bytes([status]))
                ram.write(slot_phys, struct.pack("<I", idx))
            except MemoryFault:
                self._master_abort(f"completion write-back at {slot_phys:#x}")
                return
            tp = self._tp_complete
            if tp.enabled:
                tp.emit(queue=q.qid, index=idx, status=status)
            q.ut = (q.ut + 1) % n
            q.completed += 1
            self.vicr |= regs.vicr_q(q.qid)
            completed = True
        if completed:
            self._maybe_interrupt(q.qid)

    def _maybe_interrupt(self, qi: int) -> None:
        """Raise queue qi's vector when its unmasked cause is pending
        (VIMS bit qi gates vector qi)."""
        if self.vicr & self.vims & regs.vicr_q(qi):
            self.kernel.irq.raise_irq(self.irq_lines[qi])

    def sync(self) -> None:
        """Process pending work and completions against the current clock."""
        self._catch_up()
        self._process_completions()

    # -- introspection -------------------------------------------------------

    def read_sectors(self, sector: int, count: int) -> bytes:
        """Host-side peek at the media (tests/verification; not DMA)."""
        off = sector * regs.SECTOR_SIZE
        return bytes(self.store[off:off + count * regs.SECTOR_SIZE])

    def stats(self) -> dict[str, int]:
        self._process_completions()
        q0 = self.queues[0]
        return {
            "reads": self.rdops,
            "writes": self.wrops,
            "flushes": self.flops,
            "sectors_read": self.sectors_read,
            "sectors_written": self.sectors_written,
            "desc_errors": self.desc_errors,
            "dma_errors": self.dma_errors,
            "in_flight": sum(len(q.in_flight) for q in self.queues),
            "queues": self.nq,
            "avh": q0.avh,
            "avt": q0.avt,
            "ut": q0.ut,
        }

    def queue_stats(self) -> list[dict[str, int]]:
        """Per-queue telemetry rows (the /proc and trace_stat feed)."""
        self._process_completions()
        rows = []
        for q in self.queues:
            rows.append({
                "queue": q.qid,
                "created": int(q.created),
                "entries": q.entries,
                "doorbells": q.doorbells,
                "fetched": q.fetched,
                "completed": q.completed,
                "errors": q.errors,
                "in_flight": len(q.in_flight),
                "avh": q.avh,
                "avt": q.avt,
                "ut": q.ut,
            })
        return rows


__all__ = ["VblkDevice"]
