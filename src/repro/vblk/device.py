"""The simulated virtio-style block device.

Like the e1000e model, the device is the unguarded half of the driver
contract: an MMIO register window plus a DMA engine that fetches request
descriptors and moves sector data straight through physical memory.  DMA
accesses bypass the guard machinery *by construction* (the paper scopes
device-side protection to IOMMU/SR-IOV, §4 fn 3), so the guarded hot
path only pays for the driver's own descriptor and doorbell stores.

The queue shape is split-virtqueue in miniature: a descriptor table, an
avail ring the driver posts indexes into (AVT doorbell), and a used ring
the device writes completed indexes back to (UT), each completion also
setting the descriptor's status byte and raising the MSI-X-style
completion cause.

Timing: sector payloads drain at a flash-like fixed service rate.  With
a cycle clock (machine-model runs) completions land as simulated device
time elapses; without one, completion is immediate (functional mode).
"""

from __future__ import annotations

import struct
from collections import deque
from typing import Callable, Optional

from ..kernel.kernel import Kernel
from ..kernel.panic import MemoryFault
from . import regs

#: Sustained media rate: 400 MB/s (a modest SATA-flash device).
_MEDIA_BYTES_PER_SEC = 400_000_000
#: Fixed per-request service overhead (queue + firmware), seconds.
_REQUEST_OVERHEAD_SEC = 8e-6
#: A flush drains the write cache: costlier than any single request.
_FLUSH_OVERHEAD_SEC = 60e-6

_DESC_FMT = "<QQIHBBQ"


class VblkDevice:
    """Register file + queue DMA engine + sector-addressed backing store."""

    def __init__(
        self,
        kernel: Kernel,
        capacity_sectors: int = regs.DEFAULT_CAPACITY_SECTORS,
        clock: Optional[Callable[[], float]] = None,
        freq_hz: Optional[float] = None,
        queue_entries_max: int = 1024,
    ):
        if capacity_sectors <= 0:
            raise ValueError("capacity must be positive")
        self.kernel = kernel
        self.capacity_sectors = capacity_sectors
        #: Returns "now" in CPU cycles; None = functional (untimed) mode.
        self.clock = clock
        self.freq_hz = freq_hz
        self.queue_entries_max = queue_entries_max
        self.phys_base = kernel.register_mmio(self, regs.BAR_SIZE, "vblk")
        #: Interrupt line (assigned by the "PCI subsystem" at attach time).
        self.irq_line = kernel.irq.allocate_line()
        #: Fault-injection hook (see :mod:`repro.faults`): may garble
        #: descriptor fetches, stall completions, and drop used-ring
        #: write-backs.  None = healthy hardware.
        self.fault_injector = None
        #: The media: never cleared by reset (a reset is not a secure erase).
        self.store = bytearray(capacity_sectors * regs.SECTOR_SIZE)
        points = kernel.trace.points
        self._tp_fetch = points["vblk:fetch"]
        self._tp_complete = points["vblk:complete"]
        self.reset()

    # -- device state --------------------------------------------------------

    def reset(self) -> None:
        self.vctl = 0
        self.vims = 0
        self.vicr = 0
        self.dtba = 0
        self.dtlen = 0
        self.avba = 0
        self.avh = 0
        self.avt = 0
        self.uba = 0
        self.uh = 0
        self.ut = 0
        self.rdops = 0
        self.wrops = 0
        self.flops = 0
        self.sectors_read = 0
        self.sectors_written = 0
        #: Descriptor rejections (bad type/length/sector) — distinct from
        #: master aborts, which are bus-level DMA failures.
        self.desc_errors = 0
        #: DMA master aborts: the driver programmed a bogus bus address.
        self.dma_errors = 0
        # In-flight requests: [completion_cycle, ring_index, status, retried]
        self._in_flight: deque[list] = deque()
        self._media_free_at = 0.0

    @property
    def queue_entries(self) -> int:
        return self.dtlen // regs.VDESC_SIZE if self.dtlen else 0

    def _now(self) -> float:
        return self.clock() if self.clock is not None else 0.0

    def _cycles_for_request(self, length: int, rtype: int) -> float:
        if self.freq_hz is None:
            return 0.0
        if rtype == regs.VDESC_TYPE_FLUSH:
            seconds = _FLUSH_OVERHEAD_SEC
        else:
            seconds = _REQUEST_OVERHEAD_SEC + length / _MEDIA_BYTES_PER_SEC
        return seconds * self.freq_hz

    # -- MMIO interface ------------------------------------------------------

    def mmio_read(self, offset: int, size: int) -> int:
        if offset == regs.VCTL:
            return self.vctl
        if offset == regs.VSTS:
            ready = bool(self.vctl & regs.VCTL_EN) and self.queue_entries > 0
            return regs.VSTS_READY if ready else 0
        if offset == regs.CAP:
            return self.capacity_sectors
        if offset == regs.VICR:
            self._process_completions()
            value, self.vicr = self.vicr, 0  # read-to-clear
            return value
        if offset in (regs.VIMS, regs.VIMC):
            return self.vims
        if offset == regs.DTBAL:
            return self.dtba & 0xFFFFFFFF
        if offset == regs.DTBAH:
            return self.dtba >> 32
        if offset == regs.DTLEN:
            return self.dtlen
        if offset == regs.AVBAL:
            return self.avba & 0xFFFFFFFF
        if offset == regs.AVBAH:
            return self.avba >> 32
        if offset == regs.AVH:
            return self.avh
        if offset == regs.AVT:
            return self.avt
        if offset == regs.UBAL:
            return self.uba & 0xFFFFFFFF
        if offset == regs.UBAH:
            return self.uba >> 32
        if offset == regs.UH:
            return self.uh
        if offset == regs.UT:
            self._process_completions()
            return self.ut
        if offset == regs.RDOPS:
            self._process_completions()
            return self.rdops
        if offset == regs.WROPS:
            self._process_completions()
            return self.wrops
        if offset == regs.FLOPS:
            self._process_completions()
            return self.flops
        if offset == regs.SECR:
            return self.sectors_read
        if offset == regs.SECW:
            return self.sectors_written
        if offset == regs.DERR:
            return self.desc_errors + self.dma_errors
        return 0

    def mmio_write(self, offset: int, size: int, value: int) -> None:
        if offset == regs.VCTL:
            if value & regs.VCTL_RST:
                self.reset()
                return
            self.vctl = value
        elif offset == regs.VIMS:
            self.vims |= value
        elif offset == regs.VIMC:
            self.vims &= ~value
        elif offset == regs.DTBAL:
            self.dtba = (self.dtba & ~0xFFFFFFFF) | (value & 0xFFFFFFFF)
        elif offset == regs.DTBAH:
            self.dtba = (self.dtba & 0xFFFFFFFF) | (value << 32)
        elif offset == regs.DTLEN:
            if value % regs.VDESC_SIZE or value // regs.VDESC_SIZE > self.queue_entries_max:
                # Hardware ignores out-of-spec queue sizes; it must not
                # fault the CPU store that wrote them.
                self.kernel.dmesg(f"vblk device: ignoring bad DTLEN {value:#x}")
            else:
                self.dtlen = value
        elif offset == regs.AVBAL:
            self.avba = (self.avba & ~0xFFFFFFFF) | (value & 0xFFFFFFFF)
        elif offset == regs.AVBAH:
            self.avba = (self.avba & 0xFFFFFFFF) | (value << 32)
        elif offset == regs.AVH:
            self.avh = value % max(self.queue_entries, 1)
        elif offset == regs.AVT:
            self.avt = value % max(self.queue_entries, 1)
            self._queue_kick()
        elif offset == regs.UBAL:
            self.uba = (self.uba & ~0xFFFFFFFF) | (value & 0xFFFFFFFF)
        elif offset == regs.UBAH:
            self.uba = (self.uba & 0xFFFFFFFF) | (value << 32)
        elif offset == regs.UH:
            self.uh = value % max(self.queue_entries, 1)
        # Stats registers and unknown offsets ignore writes, like hardware.

    # -- queue DMA engine ----------------------------------------------------

    def _queue_kick(self) -> None:
        """AVT moved: fetch avail entries, move data, queue completions."""
        if not (self.vctl & regs.VCTL_EN) or not self.queue_entries:
            return
        self._process_completions()
        ram = self.kernel.ram
        n = self.queue_entries
        now = self._now()
        busy_at = max(self._media_free_at, now)
        while self.avh != self.avt:
            slot_phys = self.avba + self.avh * 4
            try:
                idx = struct.unpack("<I", ram.read(slot_phys, 4))[0]
            except MemoryFault:
                self._master_abort(f"avail-ring fetch at {slot_phys:#x}")
                return
            self.avh = (self.avh + 1) % n
            if idx >= n:
                self.desc_errors += 1
                self.kernel.dmesg(
                    f"vblk device: avail entry {idx} out of queue range"
                )
                continue
            desc_phys = self.dtba + idx * regs.VDESC_SIZE
            try:
                raw = ram.read(desc_phys, regs.VDESC_SIZE)
            except MemoryFault:
                self._master_abort(f"descriptor fetch at {desc_phys:#x}")
                return
            garbled = (
                self.fault_injector is not None
                and self.fault_injector.vblk_desc_garble()
            )
            if garbled:
                # A torn descriptor fetch: the device saw an inconsistent
                # snapshot and rejects the request with an error status.
                sector, buf_phys, length, rtype = 0, 0, 0, 0xFFFF
            else:
                sector, buf_phys, length, rtype, _status, _pad, _rsvd = (
                    struct.unpack(_DESC_FMT, raw)
                )
            tp = self._tp_fetch
            if tp.enabled:
                tp.emit(index=idx, sector=sector, len=length, op=rtype)
            status = regs.VDESC_STATUS_DD
            if not self._request_valid(sector, length, rtype):
                self.desc_errors += 1
                status |= regs.VDESC_STATUS_ERR
            elif rtype == regs.VDESC_TYPE_READ:
                data = bytes(
                    self.store[
                        sector * regs.SECTOR_SIZE:
                        sector * regs.SECTOR_SIZE + length
                    ]
                )
                try:
                    ram.write(buf_phys, data)  # DMA write: unguarded
                except MemoryFault:
                    self._master_abort(f"read DMA at {buf_phys:#x}")
                    return
                self.rdops += 1
                self.sectors_read += length // regs.SECTOR_SIZE
            elif rtype == regs.VDESC_TYPE_WRITE:
                try:
                    data = ram.read(buf_phys, length)  # DMA read: unguarded
                except MemoryFault:
                    self._master_abort(f"write DMA at {buf_phys:#x}")
                    return
                self.store[
                    sector * regs.SECTOR_SIZE:
                    sector * regs.SECTOR_SIZE + length
                ] = data
                self.wrops += 1
                self.sectors_written += length // regs.SECTOR_SIZE
            else:  # flush
                self.flops += 1
            busy_at += self._cycles_for_request(length, rtype)
            if self.fault_injector is not None:
                busy_at += self.fault_injector.vblk_completion_stall_cycles()
            self._in_flight.append([busy_at, idx, status, False])
        self._media_free_at = busy_at
        if self.clock is None:
            self._process_completions()

    def _request_valid(self, sector: int, length: int, rtype: int) -> bool:
        if rtype == regs.VDESC_TYPE_FLUSH:
            return length == 0
        if rtype not in (regs.VDESC_TYPE_READ, regs.VDESC_TYPE_WRITE):
            return False
        if length == 0 or length % regs.SECTOR_SIZE:
            return False
        if length > regs.MAX_IO_SECTORS * regs.SECTOR_SIZE:
            return False
        return sector + length // regs.SECTOR_SIZE <= self.capacity_sectors

    def _master_abort(self, what: str) -> None:
        """A DMA access hit an invalid bus address: log + disable the queue.

        Hardware latches a fatal error and stops the queue engine; the CPU
        store that rang the doorbell is NOT faulted — the damage shows up
        asynchronously, exactly like the NIC model."""
        self.dma_errors += 1
        self.vctl &= ~regs.VCTL_EN
        self.kernel.dmesg(f"vblk device: DMA master abort ({what})")

    def _process_completions(self) -> None:
        """Write back status + used-ring entries for finished requests."""
        now = self._now()
        ram = self.kernel.ram
        n = self.queue_entries
        completed = False
        while self._in_flight:
            entry = self._in_flight[0]
            done_at, idx, status, retried = entry
            if self.clock is not None and done_at > now:
                break
            if (
                not retried
                and self.fault_injector is not None
                and self.fault_injector.vblk_writeback_drop()
            ):
                # The used-ring write-back was dropped on the bus; the
                # device's retry engine replays it (once) a beat later.
                # Head position keeps completions in submission order.
                entry[0] = done_at + self._cycles_for_request(0, regs.VDESC_TYPE_READ)
                entry[3] = True
                if self.clock is not None:
                    continue
                # Untimed mode: fall through and complete on this pass so
                # the functional model can never hang.
            self._in_flight.popleft()
            if not n:
                continue
            desc_phys = self.dtba + idx * regs.VDESC_SIZE
            status_off = desc_phys + 22  # u8 status
            slot_phys = self.uba + self.ut * 4
            try:
                ram.write(status_off, bytes([status]))
                ram.write(slot_phys, struct.pack("<I", idx))
            except MemoryFault:
                self._master_abort(f"completion write-back at {slot_phys:#x}")
                return
            tp = self._tp_complete
            if tp.enabled:
                tp.emit(index=idx, status=status)
            self.ut = (self.ut + 1) % n
            self.vicr |= regs.VICR_USED
            completed = True
        if completed:
            self._maybe_interrupt()

    def _maybe_interrupt(self) -> None:
        """Raise the line when an unmasked cause is pending (VIMS gates)."""
        if self.vicr & self.vims:
            self.kernel.irq.raise_irq(self.irq_line)

    def sync(self) -> None:
        """Process pending completions against the current clock."""
        self._process_completions()

    # -- introspection -------------------------------------------------------

    def read_sectors(self, sector: int, count: int) -> bytes:
        """Host-side peek at the media (tests/verification; not DMA)."""
        off = sector * regs.SECTOR_SIZE
        return bytes(self.store[off:off + count * regs.SECTOR_SIZE])

    def stats(self) -> dict[str, int]:
        self._process_completions()
        return {
            "reads": self.rdops,
            "writes": self.wrops,
            "flushes": self.flops,
            "sectors_read": self.sectors_read,
            "sectors_written": self.sectors_written,
            "desc_errors": self.desc_errors,
            "dma_errors": self.dma_errors,
            "in_flight": len(self._in_flight),
            "avh": self.avh,
            "avt": self.avt,
            "ut": self.ut,
        }


__all__ = ["VblkDevice"]
