"""Trusted verification contracts for the vblk mini-driver.

The -O3 verifier's trusted computing base stays **per-driver**: this set
speaks only about ``vdev`` and the vblk entry points, is registered with
the kernel under the ``vblk`` module name, and its canonical digest is
bound into vblk certificates alone — certifying one driver never widens
what another driver's module may claim.  Each contract is justified by a
kernel-enforced fact:

- ``vblk_submit_io``'s data pointer is the request buffer the blkdev
  layer hands in, always a ``kmalloc``-backed (direct-map) allocation of
  at least one maximum-size request.
- ``vblk_read_reg`` is reached only through paths that mask the register
  offset to the BAR window before calling.
- ``vdev.mmio`` holds an ``ioremap`` cookie (vmalloc window) from probe
  until remove; the descriptor table and avail/used rings hold
  ``kmalloc`` results; queue geometry fields are written once at setup
  from compile-time constants and only ever advanced modulo the queue
  size.
"""

from __future__ import annotations

from ..passes.absint import ArgContract, ContractSet, FieldContract
from .regs import BAR_SIZE, DEFAULT_QUEUE_ENTRIES, MAX_IO_SECTORS, SECTOR_SIZE, VDESC_SIZE

QUEUE_ENTRIES = DEFAULT_QUEUE_ENTRIES
MAX_IO_BYTES = MAX_IO_SECTORS * SECTOR_SIZE

VBLK_CONTRACTS = ContractSet([
    # blkdev hands submit a direct-map buffer of at least one max request
    ArgContract("vblk_submit_io", 0, area="heap", reserve=MAX_IO_BYTES),
    # callers mask the register offset to the BAR before calling
    ArgContract("vblk_read_reg", 0, lo=0, hi=BAR_SIZE - 4),
    # probe-time ioremap cookie for the whole BAR, stable until remove
    FieldContract("vdev", "mmio", area="mmio", reserve=BAR_SIZE),
    # descriptor table and index rings are kmalloc-backed
    FieldContract("vdev", "q.desc_virt", area="heap",
                  reserve=QUEUE_ENTRIES * VDESC_SIZE),
    FieldContract("vdev", "q.avail_virt", area="heap",
                  reserve=QUEUE_ENTRIES * 4),
    FieldContract("vdev", "q.used_virt", area="heap",
                  reserve=QUEUE_ENTRIES * 4),
    # queue geometry: set once at setup, advanced modulo queue size
    FieldContract("vdev", "q.count", lo=QUEUE_ENTRIES, hi=QUEUE_ENTRIES),
    FieldContract("vdev", "q.next_to_use", lo=0, hi=QUEUE_ENTRIES - 1),
    FieldContract("vdev", "q.next_to_clean", lo=0, hi=QUEUE_ENTRIES - 1),
    FieldContract("vdev", "q.used_head", lo=0, hi=QUEUE_ENTRIES - 1),
])

__all__ = ["VBLK_CONTRACTS", "QUEUE_ENTRIES", "MAX_IO_BYTES"]
