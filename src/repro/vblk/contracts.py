"""Trusted verification contracts for the vblk mini-driver.

The -O3 verifier's trusted computing base stays **per-driver**: this set
speaks only about ``vdev`` and the vblk entry points, is registered with
the kernel under the ``vblk`` module name, and its canonical digest is
bound into vblk certificates alone — certifying one driver never widens
what another driver's module may claim.  Each contract is justified by a
kernel-enforced fact:

- ``vblk_submit_io``'s data pointer is the request buffer the blkdev
  layer hands in, always a ``kmalloc``-backed (direct-map) allocation of
  at least one maximum-size request; its queue id is computed by the
  block layer as ``1 + (cpu % nq)`` and so always lands in 1..NQ_MAX.
- ``vblk_read_reg`` is reached only through paths that mask the register
  offset to the BAR window before calling.
- ``vblk_poll_q`` / ``vblk_irq_enable_q`` take queue-block ids the
  blkdev layer derives from the device's fixed block count (0..NQ_MAX),
  and ``vblk_probe``'s queue count is clamped by the system config.
- ``vdev.mmio`` holds an ``ioremap`` cookie (vmalloc window) from probe
  until remove; every queue pair's descriptor table and avail/used
  rings hold ``kmalloc`` results; ring cursors are written once at
  setup from compile-time constants and only ever advanced modulo the
  (constant) queue size.

The per-queue state is five *named* struct fields (``aq``, ``q1`` ..
``q4``) — dotted field paths the verifier can resolve — so the contract
set simply repeats the single-queue ring contracts once per block.  All
five of a kind share one heap-area reserve, so their branch join stays
a single interval atom.
"""

from __future__ import annotations

from ..passes.absint import ArgContract, ContractSet, FieldContract
from .regs import (
    BAR_SIZE, DEFAULT_QUEUE_ENTRIES, MAX_IO_QUEUES, MAX_IO_SECTORS,
    SECTOR_SIZE, VDESC_SIZE,
)

QUEUE_ENTRIES = DEFAULT_QUEUE_ENTRIES
MAX_IO_BYTES = MAX_IO_SECTORS * SECTOR_SIZE

#: Named per-queue fields of ``struct vblk_dev`` (block 0 first).
QUEUE_FIELDS = ("aq", "q1", "q2", "q3", "q4")


def _queue_contracts() -> list:
    """The ring contracts, repeated for each queue block's named field."""
    contracts = []
    for field in QUEUE_FIELDS:
        contracts += [
            # descriptor table and index rings are kmalloc-backed
            FieldContract("vdev", f"{field}.desc_virt", area="heap",
                          reserve=QUEUE_ENTRIES * VDESC_SIZE),
            FieldContract("vdev", f"{field}.avail_virt", area="heap",
                          reserve=QUEUE_ENTRIES * 4),
            FieldContract("vdev", f"{field}.used_virt", area="heap",
                          reserve=QUEUE_ENTRIES * 4),
            # ring cursors: set at setup, advanced modulo queue size
            FieldContract("vdev", f"{field}.next_to_use",
                          lo=0, hi=QUEUE_ENTRIES - 1),
            FieldContract("vdev", f"{field}.next_to_clean",
                          lo=0, hi=QUEUE_ENTRIES - 1),
            FieldContract("vdev", f"{field}.used_head",
                          lo=0, hi=QUEUE_ENTRIES - 1),
        ]
    return contracts


VBLK_CONTRACTS = ContractSet([
    # blkdev hands submit a direct-map buffer of at least one max request
    ArgContract("vblk_submit_io", 0, area="heap", reserve=MAX_IO_BYTES),
    # ...and a block-layer-computed queue id in 1..NQ_MAX
    ArgContract("vblk_submit_io", 4, lo=1, hi=MAX_IO_QUEUES),
    # callers mask the register offset to the BAR before calling
    ArgContract("vblk_read_reg", 0, lo=0, hi=BAR_SIZE - 4),
    # queue-block ids handed in by the blkdev layer: 0..NQ_MAX
    ArgContract("vblk_poll_q", 0, lo=0, hi=MAX_IO_QUEUES),
    ArgContract("vblk_irq_enable_q", 0, lo=0, hi=MAX_IO_QUEUES),
    # the system config clamps the probe-time queue count to 1..NQ_MAX
    ArgContract("vblk_probe", 1, lo=1, hi=MAX_IO_QUEUES),
    # probe-time ioremap cookie for the whole BAR, stable until remove
    FieldContract("vdev", "mmio", area="mmio", reserve=BAR_SIZE),
] + _queue_contracts())

__all__ = ["VBLK_CONTRACTS", "QUEUE_ENTRIES", "MAX_IO_BYTES", "QUEUE_FIELDS"]
