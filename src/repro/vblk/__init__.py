"""repro.vblk: the second guarded device stack — a virtio-style block
device, its mini-C driver, per-driver -O3 contracts, the kernel-side
block request layer, and the blkblast workload generator."""

from .blaster import BlkBlastResult, BlockBlaster, PATTERNS, make_test_block
from .blkdev import (
    BlockRequestQueue,
    OP_FLUSH,
    OP_READ,
    OP_WRITE,
    STAT_NAMES,
    SubmitResult,
    VblkBlockDev,
)
from .contracts import VBLK_CONTRACTS
from .device import VblkDevice
from .driver_source import DRIVER_NAME, DRIVER_SOURCE, driver_source_lines
from . import regs

__all__ = [
    "BlkBlastResult",
    "BlockBlaster",
    "BlockRequestQueue",
    "DRIVER_NAME",
    "DRIVER_SOURCE",
    "OP_FLUSH",
    "OP_READ",
    "OP_WRITE",
    "PATTERNS",
    "STAT_NAMES",
    "SubmitResult",
    "VBLK_CONTRACTS",
    "VblkBlockDev",
    "VblkDevice",
    "driver_source_lines",
    "make_test_block",
    "regs",
]
