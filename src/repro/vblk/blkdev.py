"""Block-device glue: the kernel-side request layer between the block
stack and the (possibly protected) vblk driver module.

Models the slice of the Linux block layer the storage workload
exercises: bio buffer allocation (kmalloc), payload copy into the
request buffer (core-kernel memcpy — *not* guarded, because it is not
module code), and the call into the driver's submit path, which *is*
module code and runs under the guards.  ``BlockRequestQueue`` is the
user/kernel boundary on top: per request it charges syscall entry/exit,
block-layer traversal, and the payload copy, then runs the guarded
submit — the storage twin of ``RawPacketSocket.sendmsg``.

Multi-queue dispatch happens here, blk-mq style: the blkdev is probed
with ``queues`` I/O pairs and every submission runs on the *calling
CPU's* queue (``1 + cpu % queues``) with no cross-queue locking — CPU
k's stream is queue k's stream end to end.  Because the device moves
data synchronously at each doorbell in global submission order, the
final media image is independent of the queue count; only queue-full
stalls (and therefore cycles) change with the mapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..kernel.kernel import Kernel
from ..kernel.module_loader import LoadedModule
from ..vm.machine import MachineModel
from . import regs
from .device import VblkDevice

# errno values the driver returns (negative).
EBUSY = 16
ENODEV = 19

STAT_NAMES = (
    "reads",
    "writes",
    "flushes",
    "read_bytes",
    "write_bytes",
    "errors",
    "busy",
    "completions",
    "irq_count",
    "ring_space",
    "next_to_use",
    "next_to_clean",
    "data_sig",
    "capacity",
)

#: vblk_get_stat selector bases for the per-queue driver counters.
STAT_NQ = 14
STAT_Q_SUBMITTED = 20
STAT_Q_COMPLETED = 30

OP_READ = regs.VDESC_TYPE_READ
OP_WRITE = regs.VDESC_TYPE_WRITE
OP_FLUSH = regs.VDESC_TYPE_FLUSH


class VblkBlockDev:
    """One registered block disk backed by the driver module."""

    def __init__(self, kernel: Kernel, module: LoadedModule,
                 device: VblkDevice, queues: int = 1):
        if not 1 <= queues <= regs.MAX_IO_QUEUES:
            raise ValueError(
                f"queues must be 1..{regs.MAX_IO_QUEUES}, got {queues}"
            )
        self.kernel = kernel
        self.module = module
        self.device = device
        #: I/O queue pairs the driver brings up at probe; submissions on
        #: CPU k land on queue ``1 + k % queues``.
        self.queues = queues
        self._probed = False
        #: Fault-injection hook (see :mod:`repro.faults`).  The device
        #: model carries the vblk hooks; the glue keeps the attribute so
        #: ``FaultInjector.attach`` treats both stacks uniformly.
        self.fault_injector = None
        # Slot-keyed: re-probing after an eject replaces the hook instead
        # of stacking a stale one per recovery cycle.
        kernel.register_eject_hook(module.name, self._on_eject, slot="blkdev")
        #: /proc feed: per-queue device telemetry (pure host-side state,
        #: so rendering /proc never runs module code or moves the clock).
        kernel.blk_queue_stats = self.device.queue_stats

    def _on_eject(self, loaded: LoadedModule) -> None:
        """Quiesce the hardware before the journal frees the driver's
        rings: stop the queue engine, mask every completion vector, and
        drop in-flight requests on ALL queues, so no write-back touches
        rolled-back memory."""
        dev = self.device
        dev.vctl &= ~regs.VCTL_EN
        dev.vims = 0
        dev.vicr = 0
        for q in dev.queues:
            q.in_flight.clear()
        self._probed = False
        self.kernel.dmesg(
            f"vblk blkdev: quiesced {len(dev.queues)} queues after eject "
            f"of {loaded.name}"
        )

    def probe(self) -> None:
        """The PCI-subsystem callback: hand the driver its BAR and the
        number of I/O queue pairs to bring into service."""
        rc = self.kernel.run_function(
            self.module, "vblk_probe", [self.device.phys_base, self.queues]
        )
        if rc != 0:
            raise RuntimeError(f"vblk_probe failed: {rc}")
        self._probed = True

    def remove(self) -> None:
        if self._probed:
            self.kernel.run_function(self.module, "vblk_remove", [])
            self._probed = False

    def _queue_for_cpu(self) -> int:
        """blk-mq dispatch: the calling CPU's own queue, 1-based."""
        return 1 + (self.kernel.smp.current % self.queues)

    def _submit(self, buf: int, sector: int, length: int, op: int) -> int:
        rc = self.kernel.run_function(
            self.module, "vblk_submit_io",
            [buf, sector, length, op, self._queue_for_cpu()],
        )
        # The VM returns the unsigned i32 bit pattern; errnos are
        # negative, so re-sign it.
        return rc - (1 << 32) if rc >= 1 << 31 else rc

    def submit_read(self, sector: int, nsect: int = 1) -> tuple[int, bytes]:
        """Read ``nsect`` sectors; returns ``(rc, data)``.

        The bio buffer is kmalloc'd at the maximum request size (the
        contract the -O3 verifier trusts) and the device DMAs into it
        synchronously at the doorbell, so the data is ready when the
        driver's submit returns."""
        length = nsect * regs.SECTOR_SIZE
        alloc = self.kernel.kmalloc_allocator
        buf = alloc.kmalloc(regs.MAX_IO_SECTORS * regs.SECTOR_SIZE)
        try:
            rc = self._submit(buf, sector, length, OP_READ)
            data = b""
            if rc == 0:
                # Core-kernel copy out of the bio: native, unguarded.
                data = self.kernel.address_space.read_bytes(buf, length)
            return rc, data
        finally:
            alloc.kfree(buf)

    def submit_write(self, sector: int, payload: bytes) -> int:
        """Write whole sectors; the payload length must be a multiple of
        the sector size (the block layer never splits sectors)."""
        if not payload or len(payload) % regs.SECTOR_SIZE:
            raise ValueError("payload must be a whole number of sectors")
        alloc = self.kernel.kmalloc_allocator
        buf = alloc.kmalloc(regs.MAX_IO_SECTORS * regs.SECTOR_SIZE)
        # Core-kernel copy of the payload into the bio: native, unguarded.
        self.kernel.address_space.write_bytes(buf, payload)
        try:
            return self._submit(buf, sector, len(payload), OP_WRITE)
        finally:
            # The queue engine consumed the payload synchronously at the
            # doorbell, so the bio can be freed as soon as submit returns.
            alloc.kfree(buf)

    def flush(self) -> int:
        """Issue a cache-flush barrier (drains the submitting queue's
        write cache — the NVMe per-queue flush semantic)."""
        alloc = self.kernel.kmalloc_allocator
        # The contract says arg 0 is always a real request buffer; honour
        # it even though a flush moves no data.
        buf = alloc.kmalloc(regs.MAX_IO_SECTORS * regs.SECTOR_SIZE)
        try:
            return self._submit(buf, 0, 0, OP_FLUSH)
        finally:
            alloc.kfree(buf)

    def poll_completions(self) -> int:
        """Explicit harvest of every queue (the polling-mode service path)."""
        return self.kernel.run_function(self.module, "vblk_poll", [])

    def enable_interrupts(self) -> int:
        """Switch from polling to interrupt-driven completion harvest:
        one MSI-X-style vector per queue block (admin + each I/O pair),
        each bound to that queue's own ISR."""
        for qi in range(self.queues + 1):
            rc = self.kernel.run_function(
                self.module, "vblk_irq_enable_q",
                [qi, self.device.irq_lines[qi]],
            )
            if rc != 0:
                return rc - (1 << 32) if rc >= 1 << 31 else rc
        return 0

    def disable_interrupts(self) -> int:
        return self.kernel.run_function(self.module, "vblk_irq_disable", [])

    def ioctl_stat(self, which: int) -> int:
        """Read one stat through the /dev/vblk0 chardev path."""
        out = self.kernel.devices.ioctl("/dev/vblk0", which, b"", uid=0)
        return int.from_bytes(out, "little", signed=True)

    def stats(self) -> dict[str, int]:
        out = {}
        for i, name in enumerate(STAT_NAMES):
            v = self.kernel.run_function(self.module, "vblk_get_stat", [i])
            if v >= 1 << 63:
                v -= 1 << 64
            out[name] = v
        return out

    def queue_io_stats(self) -> list[dict[str, int]]:
        """Driver-side per-queue submit/complete counters (via the
        guarded ``vblk_get_stat`` path), one row per queue block."""
        rows = []
        for qi in range(regs.NUM_QUEUE_BLOCKS):
            rows.append({
                "queue": qi,
                "submitted": self.kernel.run_function(
                    self.module, "vblk_get_stat", [STAT_Q_SUBMITTED + qi]
                ),
                "completed": self.kernel.run_function(
                    self.module, "vblk_get_stat", [STAT_Q_COMPLETED + qi]
                ),
            })
        return rows

    def read_reg(self, reg: int) -> int:
        return self.kernel.run_function(self.module, "vblk_read_reg", [reg])


@dataclass(slots=True)
class SubmitResult:
    rc: int
    latency_cycles: float
    stalled: bool = False
    data: bytes = b""


class BlockRequestQueue:
    """The user/kernel boundary for block I/O (pread/pwrite/fsync-style).

    Charges the same boundary costs the packet socket charges — syscall
    entry/exit, stack traversal, per-byte copy — then runs the guarded
    driver submit on the calling CPU's own queue.  Queue-full handling
    mirrors the paper's outliers: on EBUSY the caller is descheduled,
    the device drains, and the retry goes through.
    """

    def __init__(self, kernel: Kernel, blkdev: VblkBlockDev,
                 machine: Optional[MachineModel] = None,
                 max_retries: int = 1):
        self.kernel = kernel
        self.blkdev = blkdev
        self.machine = machine
        self.max_retries = max_retries
        self.submitted = 0
        self.stalls = 0
        points = kernel.trace.points
        self._tp_enter = points["syscall:enter"]
        self._tp_exit = points["syscall:exit"]

    def _charge_entry(self, nbytes: int) -> None:
        timing = self.kernel.vm.timing
        machine = self.machine
        if timing is None or machine is None:
            return
        timing.add_cycles(machine.syscall_cycles)
        timing.add_cycles(machine.netstack_base_cycles)
        timing.add_cycles(machine.per_byte_cycles * nbytes)

    def _run(self, name: str, nbytes: int, op) -> SubmitResult:
        tp = self._tp_enter
        if tp.enabled:
            tp.emit(name=name, bytes=nbytes)
        timing = self.kernel.vm.timing
        start = timing.cycles if timing is not None else 0.0
        self._charge_entry(nbytes)
        rc, data = op()
        stalled = False
        attempt = 0
        while rc == -EBUSY and attempt < self.max_retries:
            attempt += 1
            stalled = True
            self.stalls += 1
            if timing is not None and self.machine is not None:
                timing.add_cycles(self.machine.deschedule_cycles * attempt)
            # While the caller slept, the device drained its queues and
            # wrote completions back.
            self.blkdev.device.sync()
            rc, data = op()
        self.submitted += 1
        latency = (timing.cycles - start) if timing is not None else 0.0
        tp = self._tp_exit
        if tp.enabled:
            tp.emit(name=name, rc=rc, cycles=latency, stalled=stalled)
        return SubmitResult(rc, latency, stalled, data)

    def pread(self, sector: int, nsect: int = 1) -> SubmitResult:
        def op():
            return self.blkdev.submit_read(sector, nsect)
        return self._run("pread", nsect * regs.SECTOR_SIZE, op)

    def pwrite(self, sector: int, payload: bytes) -> SubmitResult:
        def op():
            return self.blkdev.submit_write(sector, payload), b""
        return self._run("pwrite", len(payload), op)

    def fsync(self) -> SubmitResult:
        def op():
            return self.blkdev.flush(), b""
        return self._run("fsync", 0, op)


__all__ = [
    "EBUSY",
    "ENODEV",
    "OP_FLUSH",
    "OP_READ",
    "OP_WRITE",
    "BlockRequestQueue",
    "STAT_NAMES",
    "STAT_NQ",
    "STAT_Q_COMPLETED",
    "STAT_Q_SUBMITTED",
    "SubmitResult",
    "VblkBlockDev",
]
