'''The vblk virtio-style block driver, in mini-C.

The second guarded workload: where e1000e exercises a unidirectional
descriptor ring, vblk exercises the split-virtqueue shape — a request
descriptor table plus paired avail/used index rings — with *mixed*
read/write/flush submission and ISR-context completion harvesting.  The
guarded access patterns are the ones the paper calls out (§4): construct
request descriptors, queue them through the avail ring, ring MMIO
doorbells, and walk the used ring from interrupt context.

The exact same source compiles as the baseline (no transform) and the
protected module, mirroring §4.1.
'''

DRIVER_NAME = "vblk"

DRIVER_SOURCE = r"""
/* vblk: virtio-style block driver for the simulated device. */

enum {
    REG_VCTL  = 0x0000,
    REG_VSTS  = 0x0004,
    REG_CAP   = 0x0008,
    REG_VICR  = 0x0010,
    REG_VIMS  = 0x0014,
    REG_VIMC  = 0x0018,
    REG_DTBAL = 0x0020,
    REG_DTBAH = 0x0024,
    REG_DTLEN = 0x0028,
    REG_AVBAL = 0x0030,
    REG_AVBAH = 0x0034,
    REG_AVH   = 0x0038,
    REG_AVT   = 0x003C,
    REG_UBAL  = 0x0040,
    REG_UBAH  = 0x0044,
    REG_UH    = 0x0048,
    REG_UT    = 0x004C
};

enum {
    VCTL_RST   = 1 << 0,
    VCTL_EN    = 1 << 1,
    VSTS_READY = 1 << 0,
    VICR_USED  = 1 << 0
};

enum {
    VDESC_SIZE    = 32,
    QUEUE_ENTRIES = 64,
    SECTOR_SIZE   = 512,
    MAX_IO_BYTES  = 4096,
    OP_READ       = 0,
    OP_WRITE      = 1,
    OP_FLUSH      = 2,
    STA_DD        = 0x01,
    STA_ERR       = 0x02,
    BAR_SIZE      = 0x1000
};

enum {   /* errno values the stack understands */
    EINVAL = 22,
    EBUSY  = 16,
    ENODEV = 19,
    EIO    = 5
};

extern void *kmalloc(long size, int flags);
extern void kfree(void *p);
extern int printk(char *fmt, ...);
extern long ioremap(long phys, long size);
extern long virt_to_phys(void *p);
extern void udelay(long usec);
extern int request_irq(int line, char *handler);
extern void free_irq(int line);
extern int register_chrdev(char *path, char *handler);
extern int unregister_chrdev(char *path);

struct vblk_queue {
    long desc_virt;        /* descriptor table base (kernel virtual) */
    long desc_phys;        /* same, physical, programmed into DTBA */
    long avail_virt;       /* avail ring: u32 indexes, driver -> device */
    long avail_phys;
    long used_virt;        /* used ring: u32 indexes, device -> driver */
    long used_phys;
    int  count;
    int  next_to_use;
    int  next_to_clean;
    int  used_head;
};

struct vblk_stats {
    long reads;
    long writes;
    long flushes;
    long read_bytes;
    long write_bytes;
    long errors;
    long busy;
    long completions;
    long data_sig;
};

struct vblk_dev {
    long mmio;             /* ioremapped BAR0 */
    long mmio_phys;
    long capacity;         /* sectors */
    struct vblk_queue q;
    struct vblk_stats stats;
    int  up;
    int  irq_line;
    long irq_count;
};

struct vblk_dev vdev;

/* ---- register accessors (each is a guarded MMIO load/store) ---------- */

static unsigned int vr32(int reg) {
    unsigned int *p = (unsigned int *)(vdev.mmio + (long)reg);
    return *p;
}

static void vw32(int reg, unsigned int val) {
    unsigned int *p = (unsigned int *)(vdev.mmio + (long)reg);
    *p = val;
}

/* ---- descriptor helpers ---------------------------------------------- */

static long vblk_desc_addr(int idx) {
    return vdev.q.desc_virt + (long)idx * VDESC_SIZE;
}

static void vblk_fill_desc(int idx, long sector, long buf_phys, int len,
                           int op) {
    long base = vblk_desc_addr(idx);
    long *sec_p = (long *)base;
    *sec_p = sector;
    long *buf_p = (long *)(base + 8);
    *buf_p = buf_phys;
    unsigned int *len_p = (unsigned int *)(base + 16);
    *len_p = (unsigned int)len;
    unsigned short *op_p = (unsigned short *)(base + 20);
    *op_p = (unsigned short)op;
    unsigned char *sta_p = (unsigned char *)(base + 22);
    *sta_p = 0;
    unsigned char *pad_p = (unsigned char *)(base + 23);
    *pad_p = 0;
    long *rsv_p = (long *)(base + 24);
    *rsv_p = 0;
}

static int vblk_ring_next(int idx) {
    idx = idx + 1;
    if (idx >= vdev.q.count) {
        idx = 0;
    }
    return idx;
}

static int vblk_ring_space(void) {
    int used = vdev.q.next_to_use - vdev.q.next_to_clean;
    if (used < 0) {
        used += vdev.q.count;
    }
    return vdev.q.count - 1 - used;
}

/* ---- completion harvest (used-ring driven, runs from the ISR) -------- */

__export int vblk_poll(void) {
    int cleaned = 0;
    int ut = (int)vr32(REG_UT);
    int uh = vdev.q.used_head;
    while (uh != ut) {
        /* The device completes in submission order: the descriptor being
           retired is next_to_clean; the used-ring entry confirms it. */
        int idx = vdev.q.next_to_clean;
        unsigned int *slot_p = (unsigned int *)(vdev.q.used_virt
                                                + (long)uh * 4);
        if ((int)*slot_p != idx) {
            vdev.stats.errors += 1;
        }
        unsigned char *sta_p = (unsigned char *)(vblk_desc_addr(idx) + 22);
        int status = (int)*sta_p;
        if (status & STA_ERR) {
            vdev.stats.errors += 1;
        }
        *sta_p = 0;
        vdev.q.next_to_clean = vblk_ring_next(idx);
        vdev.stats.completions += 1;
        uh = uh + 1;
        if (uh >= vdev.q.count) {
            uh = 0;
        }
        cleaned = cleaned + 1;
    }
    vdev.q.used_head = uh;
    vw32(REG_UH, (unsigned int)uh);
    return cleaned;
}

/* ---- queue setup ------------------------------------------------------ */

static int vblk_setup_queue(void) {
    long desc_bytes = (long)QUEUE_ENTRIES * VDESC_SIZE;
    long ring_bytes = (long)QUEUE_ENTRIES * 4;
    vdev.q.desc_virt = (long)kmalloc(desc_bytes, 0);
    vdev.q.avail_virt = (long)kmalloc(ring_bytes, 0);
    vdev.q.used_virt = (long)kmalloc(ring_bytes, 0);
    if (vdev.q.desc_virt == 0 || vdev.q.avail_virt == 0
        || vdev.q.used_virt == 0) {
        return -EINVAL;
    }
    /* Zero everything (guarded stores — driver-touched memory). */
    long *p = (long *)vdev.q.desc_virt;
    for (long i = 0; i < desc_bytes / 8; i++) {
        p[i] = 0;
    }
    long *a = (long *)vdev.q.avail_virt;
    for (long i = 0; i < ring_bytes / 8; i++) {
        a[i] = 0;
    }
    long *u = (long *)vdev.q.used_virt;
    for (long i = 0; i < ring_bytes / 8; i++) {
        u[i] = 0;
    }
    vdev.q.desc_phys = virt_to_phys((void *)vdev.q.desc_virt);
    vdev.q.avail_phys = virt_to_phys((void *)vdev.q.avail_virt);
    vdev.q.used_phys = virt_to_phys((void *)vdev.q.used_virt);
    vdev.q.count = QUEUE_ENTRIES;
    vdev.q.next_to_use = 0;
    vdev.q.next_to_clean = 0;
    vdev.q.used_head = 0;
    return 0;
}

static void vblk_configure_queue(void) {
    vw32(REG_DTBAL, (unsigned int)(vdev.q.desc_phys & 0xFFFFFFFF));
    vw32(REG_DTBAH, (unsigned int)(vdev.q.desc_phys >> 32));
    vw32(REG_DTLEN, (unsigned int)(QUEUE_ENTRIES * VDESC_SIZE));
    vw32(REG_AVBAL, (unsigned int)(vdev.q.avail_phys & 0xFFFFFFFF));
    vw32(REG_AVBAH, (unsigned int)(vdev.q.avail_phys >> 32));
    vw32(REG_AVH, 0);
    vw32(REG_AVT, 0);
    vw32(REG_UBAL, (unsigned int)(vdev.q.used_phys & 0xFFFFFFFF));
    vw32(REG_UBAH, (unsigned int)(vdev.q.used_phys >> 32));
    vw32(REG_UH, 0);
    vw32(REG_VCTL, VCTL_EN);
}

static void vblk_reset_hw(void) {
    vw32(REG_VCTL, VCTL_RST);
    udelay(10);
}

/* ---- probe / remove --------------------------------------------------- */

__export int vblk_probe(long mmio_phys) {
    vdev.mmio_phys = mmio_phys;
    vdev.mmio = ioremap(mmio_phys, BAR_SIZE);
    if (vdev.mmio == 0) {
        return -ENODEV;
    }
    vblk_reset_hw();
    vdev.capacity = (long)vr32(REG_CAP);
    if (vdev.capacity == 0) {
        printk("vblk: no media");
        return -ENODEV;
    }
    int rc = vblk_setup_queue();
    if (rc != 0) {
        return rc;
    }
    vblk_configure_queue();
    unsigned int sts = vr32(REG_VSTS);
    if ((sts & VSTS_READY) == 0) {
        printk("vblk: device not ready");
        return -ENODEV;
    }
    if (register_chrdev("/dev/vblk0", "vblk_ioctl") != 0) {
        return -EINVAL;
    }
    vdev.up = 1;
    printk("vblk: probe ok, mmio %lx queue %lx cap %lx sectors", vdev.mmio,
           vdev.q.desc_virt, vdev.capacity);
    return 0;
}

__export int vblk_remove(void) {
    if (!vdev.up) {
        return -ENODEV;
    }
    vdev.up = 0;
    vw32(REG_VCTL, 0);
    vw32(REG_VIMC, 0xFFFFFFFF);
    unregister_chrdev("/dev/vblk0");
    kfree((void *)vdev.q.desc_virt);
    kfree((void *)vdev.q.avail_virt);
    kfree((void *)vdev.q.used_virt);
    vdev.q.desc_virt = 0;
    vdev.q.avail_virt = 0;
    vdev.q.used_virt = 0;
    printk("vblk: removed");
    return 0;
}

/* ---- the hot path: submit one request --------------------------------- */

__export int vblk_submit_io(void *data, long sector, int len, int op) {
    if (!vdev.up) {
        vdev.stats.errors += 1;
        return -ENODEV;
    }
    if (op < OP_READ || op > OP_FLUSH) {
        vdev.stats.errors += 1;
        return -EINVAL;
    }
    if (op == OP_FLUSH) {
        if (len != 0) {
            vdev.stats.errors += 1;
            return -EINVAL;
        }
    } else {
        if (len < SECTOR_SIZE || len > MAX_IO_BYTES) {
            vdev.stats.errors += 1;
            return -EINVAL;
        }
        if (sector < 0 || sector + (long)(len / SECTOR_SIZE) > vdev.capacity) {
            vdev.stats.errors += 1;
            return -EINVAL;
        }
    }
    if (vblk_ring_space() < 1) {
        /* Opportunistic harvest before declaring the queue full. */
        vblk_poll();
        if (vblk_ring_space() < 1) {
            vdev.stats.busy += 1;
            return -EBUSY;
        }
    }
    /* Fold the first payload word into the running signature (a guarded
       load through the request buffer, like checksumming a bio). */
    if (op == OP_WRITE) {
        long *word = (long *)data;
        vdev.stats.data_sig += *word;
    }
    int idx = vdev.q.next_to_use;
    long buf_phys = 0;
    if (op != OP_FLUSH) {
        buf_phys = virt_to_phys(data);
    }
    vblk_fill_desc(idx, sector, buf_phys, len, op);
    /* Post the index on the avail ring, then ring the doorbell. */
    unsigned int *slot_p = (unsigned int *)(vdev.q.avail_virt
                                            + (long)idx * 4);
    *slot_p = (unsigned int)idx;
    vdev.q.next_to_use = vblk_ring_next(idx);
    if (op == OP_READ) {
        vdev.stats.reads += 1;
        vdev.stats.read_bytes += len;
    }
    if (op == OP_WRITE) {
        vdev.stats.writes += 1;
        vdev.stats.write_bytes += len;
    }
    if (op == OP_FLUSH) {
        vdev.stats.flushes += 1;
    }
    vw32(REG_AVT, (unsigned int)vdev.q.next_to_use);
    /* Amortized harvest when the queue runs more than half full. */
    if (vblk_ring_space() < vdev.q.count / 2) {
        vblk_poll();
    }
    return 0;
}

/* ---- interrupt mode --------------------------------------------------- */

/* The ISR: read-to-clear VICR, then harvest the used ring. */
__export int vblk_intr(int line) {
    unsigned int icr = vr32(REG_VICR);
    if (icr == 0) {
        return 0;           /* not ours / spurious */
    }
    vdev.irq_count += 1;
    if (icr & VICR_USED) {
        vblk_poll();
    }
    return 1;
}

__export int vblk_irq_enable(int line) {
    if (request_irq(line, "vblk_intr") != 0) {
        return -EINVAL;
    }
    vdev.irq_line = line;
    vw32(REG_VIMS, VICR_USED);
    return 0;
}

__export int vblk_irq_disable(void) {
    vw32(REG_VIMC, 0xFFFFFFFF);
    if (vdev.irq_line != 0) {
        free_irq(vdev.irq_line);
        vdev.irq_line = 0;
    }
    return 0;
}

/* ---- stats / introspection (exported for the blkdev glue) ------------- */

__export long vblk_get_stat(int which) {
    if (which == 0) { return vdev.stats.reads; }
    if (which == 1) { return vdev.stats.writes; }
    if (which == 2) { return vdev.stats.flushes; }
    if (which == 3) { return vdev.stats.read_bytes; }
    if (which == 4) { return vdev.stats.write_bytes; }
    if (which == 5) { return vdev.stats.errors; }
    if (which == 6) { return vdev.stats.busy; }
    if (which == 7) { return vdev.stats.completions; }
    if (which == 8) { return vdev.irq_count; }
    if (which == 9) { return (long)vblk_ring_space(); }
    if (which == 10) { return (long)vdev.q.next_to_use; }
    if (which == 11) { return (long)vdev.q.next_to_clean; }
    if (which == 12) { return vdev.stats.data_sig; }
    if (which == 13) { return vdev.capacity; }
    return -1;
}

__export long vblk_read_reg(int reg) {
    return (long)vr32(reg);
}

/* ---- chardev ioctl (stats readout through /dev/vblk0) ----------------- */

__export long vblk_ioctl(long cmd, long arg, long len) {
    return vblk_get_stat((int)cmd);
}

__export int init_module(void) {
    vdev.up = 0;
    printk("vblk: module loaded");
    return 0;
}

__export int cleanup_module(void) {
    if (vdev.up) {
        vblk_remove();
    }
    printk("vblk: module unloaded");
    return 0;
}
"""


def driver_source_lines() -> int:
    """Non-blank source lines of the driver (for the bench metadata)."""
    return sum(1 for line in DRIVER_SOURCE.splitlines() if line.strip())


__all__ = ["DRIVER_NAME", "DRIVER_SOURCE", "driver_source_lines"]
