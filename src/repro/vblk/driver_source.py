'''The vblk virtio-style block driver, in mini-C (multi-queue).

The second guarded workload: where e1000e exercises a unidirectional
descriptor ring, vblk exercises the split-virtqueue shape — a request
descriptor table plus paired avail/used index rings — with *mixed*
read/write/flush submission and ISR-context completion harvesting.  The
guarded access patterns are the ones the paper calls out (§4): construct
request descriptors, queue them through the avail ring, ring MMIO
doorbells, and walk the used ring from interrupt context.

Since the multi-queue rework the driver is NVMe-shaped: queue block 0
is the admin pair, blocks 1..4 are per-CPU I/O pairs brought into
service by CREATE_IOQ admin commands at probe.  Submission takes an
explicit queue id and touches only that queue's rings — no cross-queue
locking, no shared ring state.  Per-queue state lives in *named*
struct fields (``aq``, ``q1``..``q4``) rather than an array, so every
ring pointer stays a contracted dotted field path the -O3 abstract
interpreter can resolve; queue-id dispatch is an if-chain over a
bounded (ArgContract'd) index, which joins to a single contract
interval per area.

The exact same source compiles as the baseline (no transform) and the
protected module, mirroring §4.1.
'''

DRIVER_NAME = "vblk"

DRIVER_SOURCE = r"""
/* vblk: multi-queue virtio-style block driver for the simulated device. */

enum {
    REG_VCTL   = 0x0000,
    REG_VSTS   = 0x0004,
    REG_CAP    = 0x0008,
    REG_VNQMAX = 0x000C,
    REG_VICR   = 0x0010,
    REG_VIMS   = 0x0014,
    REG_VIMC   = 0x0018,
    REG_VNQ    = 0x001C
};

/* Queue register blocks: block q at QBASE + q * QSTRIDE (NVMe doorbell
   stride idiom; block 0 = admin pair, blocks 1..NQ_MAX = I/O pairs). */
enum {
    QBASE     = 0x0020,
    QSTRIDE   = 0x0040,
    QOFF_DTBAL = 0x00,
    QOFF_DTBAH = 0x04,
    QOFF_DTLEN = 0x08,
    QOFF_AVBAL = 0x10,
    QOFF_AVBAH = 0x14,
    QOFF_AVH   = 0x18,
    QOFF_AVT   = 0x1C,
    QOFF_UBAL  = 0x20,
    QOFF_UBAH  = 0x24,
    QOFF_UH    = 0x28,
    QOFF_UT    = 0x2C,
    QOFF_VICR  = 0x30
};

enum {
    VCTL_RST   = 1 << 0,
    VCTL_EN    = 1 << 1,
    VSTS_READY = 1 << 0,
    VICR_Q0    = 1 << 0,
    VICR_Q1    = 1 << 1,
    VICR_Q2    = 1 << 2,
    VICR_Q3    = 1 << 3,
    VICR_Q4    = 1 << 4
};

enum {
    VDESC_SIZE    = 32,
    QUEUE_ENTRIES = 64,
    NQ_MAX        = 4,
    SECTOR_SIZE   = 512,
    MAX_IO_BYTES  = 4096,
    OP_READ       = 0,
    OP_WRITE      = 1,
    OP_FLUSH      = 2,
    OP_CREATE_IOQ = 3,
    OP_DELETE_IOQ = 4,
    STA_DD        = 0x01,
    STA_ERR       = 0x02,
    BAR_SIZE      = 0x1000
};

enum {   /* errno values the stack understands */
    EINVAL = 22,
    EBUSY  = 16,
    ENODEV = 19,
    EIO    = 5
};

extern void *kmalloc(long size, int flags);
extern void kfree(void *p);
extern int printk(char *fmt, ...);
extern long ioremap(long phys, long size);
extern long virt_to_phys(void *p);
extern void udelay(long usec);
extern int request_irq(int line, char *handler);
extern void free_irq(int line);
extern int register_chrdev(char *path, char *handler);
extern int unregister_chrdev(char *path);

struct vblk_queue {
    long desc_virt;        /* descriptor table base (kernel virtual) */
    long avail_virt;       /* avail ring: u32 indexes, driver -> device */
    long used_virt;        /* used ring: u32 indexes, device -> driver */
    int  next_to_use;
    int  next_to_clean;
    int  used_head;
    long submitted;        /* per-queue I/O submissions */
    long completed;        /* per-queue harvested completions */
};

struct vblk_stats {
    long reads;
    long writes;
    long flushes;
    long read_bytes;
    long write_bytes;
    long errors;
    long busy;
    long completions;
    long data_sig;
};

struct vblk_dev {
    long mmio;             /* ioremapped BAR0 */
    long mmio_phys;
    long capacity;         /* sectors */
    int  nq;               /* I/O queue pairs in service (0 = legacy) */
    struct vblk_queue aq;  /* admin / legacy queue pair (block 0) */
    struct vblk_queue q1;  /* per-CPU I/O pairs (blocks 1..4) */
    struct vblk_queue q2;
    struct vblk_queue q3;
    struct vblk_queue q4;
    struct vblk_stats stats;
    int  up;
    long irq_count;
    int  irq0;             /* requested vector per queue block (0 = none) */
    int  irq1;
    int  irq2;
    int  irq3;
    int  irq4;
};

struct vblk_dev vdev;

/* ---- register accessors (each is a guarded MMIO load/store) ---------- */

static int qreg(int qi, int off) {
    return QBASE + qi * QSTRIDE + off;
}

static unsigned int vr32(int reg) {
    unsigned int *p = (unsigned int *)(vdev.mmio + (long)reg);
    return *p;
}

static void vw32(int reg, unsigned int val) {
    unsigned int *p = (unsigned int *)(vdev.mmio + (long)reg);
    *p = val;
}

/* ---- queue-state accessors -------------------------------------------
   Per-queue state lives in named fields so every ring pointer is a
   contracted field path; dispatch is an if-chain over the (bounded)
   queue id.  Unknown ids fall back to the admin queue. */

static long q_desc(int qi) {
    if (qi == 1) { return vdev.q1.desc_virt; }
    if (qi == 2) { return vdev.q2.desc_virt; }
    if (qi == 3) { return vdev.q3.desc_virt; }
    if (qi == 4) { return vdev.q4.desc_virt; }
    return vdev.aq.desc_virt;
}

static long q_avail(int qi) {
    if (qi == 1) { return vdev.q1.avail_virt; }
    if (qi == 2) { return vdev.q2.avail_virt; }
    if (qi == 3) { return vdev.q3.avail_virt; }
    if (qi == 4) { return vdev.q4.avail_virt; }
    return vdev.aq.avail_virt;
}

static long q_used(int qi) {
    if (qi == 1) { return vdev.q1.used_virt; }
    if (qi == 2) { return vdev.q2.used_virt; }
    if (qi == 3) { return vdev.q3.used_virt; }
    if (qi == 4) { return vdev.q4.used_virt; }
    return vdev.aq.used_virt;
}

static int q_ntu(int qi) {
    if (qi == 1) { return vdev.q1.next_to_use; }
    if (qi == 2) { return vdev.q2.next_to_use; }
    if (qi == 3) { return vdev.q3.next_to_use; }
    if (qi == 4) { return vdev.q4.next_to_use; }
    return vdev.aq.next_to_use;
}

static void q_set_ntu(int qi, int v) {
    if (qi == 1) { vdev.q1.next_to_use = v; return; }
    if (qi == 2) { vdev.q2.next_to_use = v; return; }
    if (qi == 3) { vdev.q3.next_to_use = v; return; }
    if (qi == 4) { vdev.q4.next_to_use = v; return; }
    vdev.aq.next_to_use = v;
}

static int q_ntc(int qi) {
    if (qi == 1) { return vdev.q1.next_to_clean; }
    if (qi == 2) { return vdev.q2.next_to_clean; }
    if (qi == 3) { return vdev.q3.next_to_clean; }
    if (qi == 4) { return vdev.q4.next_to_clean; }
    return vdev.aq.next_to_clean;
}

static void q_set_ntc(int qi, int v) {
    if (qi == 1) { vdev.q1.next_to_clean = v; return; }
    if (qi == 2) { vdev.q2.next_to_clean = v; return; }
    if (qi == 3) { vdev.q3.next_to_clean = v; return; }
    if (qi == 4) { vdev.q4.next_to_clean = v; return; }
    vdev.aq.next_to_clean = v;
}

static int q_uhead(int qi) {
    if (qi == 1) { return vdev.q1.used_head; }
    if (qi == 2) { return vdev.q2.used_head; }
    if (qi == 3) { return vdev.q3.used_head; }
    if (qi == 4) { return vdev.q4.used_head; }
    return vdev.aq.used_head;
}

static void q_set_uhead(int qi, int v) {
    if (qi == 1) { vdev.q1.used_head = v; return; }
    if (qi == 2) { vdev.q2.used_head = v; return; }
    if (qi == 3) { vdev.q3.used_head = v; return; }
    if (qi == 4) { vdev.q4.used_head = v; return; }
    vdev.aq.used_head = v;
}

static void q_count_submit(int qi) {
    if (qi == 1) { vdev.q1.submitted += 1; return; }
    if (qi == 2) { vdev.q2.submitted += 1; return; }
    if (qi == 3) { vdev.q3.submitted += 1; return; }
    if (qi == 4) { vdev.q4.submitted += 1; return; }
    vdev.aq.submitted += 1;
}

static void q_count_complete(int qi) {
    if (qi == 1) { vdev.q1.completed += 1; return; }
    if (qi == 2) { vdev.q2.completed += 1; return; }
    if (qi == 3) { vdev.q3.completed += 1; return; }
    if (qi == 4) { vdev.q4.completed += 1; return; }
    vdev.aq.completed += 1;
}

/* ---- descriptor helpers ---------------------------------------------- */

static void vblk_fill_desc(long base, long sector, long buf_phys, int len,
                           int op) {
    long *sec_p = (long *)base;
    *sec_p = sector;
    long *buf_p = (long *)(base + 8);
    *buf_p = buf_phys;
    unsigned int *len_p = (unsigned int *)(base + 16);
    *len_p = (unsigned int)len;
    unsigned short *op_p = (unsigned short *)(base + 20);
    *op_p = (unsigned short)op;
    unsigned char *sta_p = (unsigned char *)(base + 22);
    *sta_p = 0;
    unsigned char *pad_p = (unsigned char *)(base + 23);
    *pad_p = 0;
    long *rsv_p = (long *)(base + 24);
    *rsv_p = 0;
}

static int vblk_ring_next(int idx) {
    idx = idx + 1;
    if (idx >= QUEUE_ENTRIES) {
        idx = 0;
    }
    return idx;
}

static int vblk_ring_space(int qi) {
    int used = q_ntu(qi) - q_ntc(qi);
    if (used < 0) {
        used += QUEUE_ENTRIES;
    }
    return QUEUE_ENTRIES - 1 - used;
}

/* ---- completion harvest (used-ring driven, runs from the ISR) -------- */

__export int vblk_poll_q(int qi) {
    int cleaned = 0;
    int ut = (int)vr32(qreg(qi, QOFF_UT));
    int uh = q_uhead(qi);
    long desc_base = q_desc(qi);
    long used_base = q_used(qi);
    while (uh != ut) {
        /* Each queue completes its own stream in submission order: the
           descriptor being retired is next_to_clean; the used-ring
           entry confirms it. */
        int idx = q_ntc(qi);
        unsigned int *slot_p = (unsigned int *)(used_base + (long)uh * 4);
        if ((int)*slot_p != idx) {
            vdev.stats.errors += 1;
        }
        unsigned char *sta_p = (unsigned char *)(desc_base
                                                 + (long)idx * VDESC_SIZE
                                                 + 22);
        int status = (int)*sta_p;
        if (status & STA_ERR) {
            vdev.stats.errors += 1;
        }
        *sta_p = 0;
        unsigned short *op_p = (unsigned short *)(desc_base
                                                  + (long)idx * VDESC_SIZE
                                                  + 20);
        int op = (int)*op_p;
        q_set_ntc(qi, vblk_ring_next(idx));
        /* The global completion counter tracks I/O; admin-command
           retirements show up only in the per-queue counters. */
        if (op <= OP_FLUSH) {
            vdev.stats.completions += 1;
        }
        q_count_complete(qi);
        uh = uh + 1;
        if (uh >= QUEUE_ENTRIES) {
            uh = 0;
        }
        cleaned = cleaned + 1;
    }
    q_set_uhead(qi, uh);
    vw32(qreg(qi, QOFF_UH), (unsigned int)uh);
    return cleaned;
}

/* Harvest every queue in service (admin first, then I/O in id order). */
__export int vblk_poll(void) {
    int cleaned = vblk_poll_q(0);
    if (vdev.nq >= 1) { cleaned += vblk_poll_q(1); }
    if (vdev.nq >= 2) { cleaned += vblk_poll_q(2); }
    if (vdev.nq >= 3) { cleaned += vblk_poll_q(3); }
    if (vdev.nq >= 4) { cleaned += vblk_poll_q(4); }
    return cleaned;
}

/* ---- queue setup ------------------------------------------------------ */

static int vblk_alloc_queue(int qi) {
    long desc_bytes = (long)QUEUE_ENTRIES * VDESC_SIZE;
    long ring_bytes = (long)QUEUE_ENTRIES * 4;
    long desc = (long)kmalloc(desc_bytes, 0);
    long avail = (long)kmalloc(ring_bytes, 0);
    long used = (long)kmalloc(ring_bytes, 0);
    if (desc == 0 || avail == 0 || used == 0) {
        return -EINVAL;
    }
    if (qi == 1) {
        vdev.q1.desc_virt = desc;
        vdev.q1.avail_virt = avail;
        vdev.q1.used_virt = used;
    }
    if (qi == 2) {
        vdev.q2.desc_virt = desc;
        vdev.q2.avail_virt = avail;
        vdev.q2.used_virt = used;
    }
    if (qi == 3) {
        vdev.q3.desc_virt = desc;
        vdev.q3.avail_virt = avail;
        vdev.q3.used_virt = used;
    }
    if (qi == 4) {
        vdev.q4.desc_virt = desc;
        vdev.q4.avail_virt = avail;
        vdev.q4.used_virt = used;
    }
    if (qi == 0) {
        vdev.aq.desc_virt = desc;
        vdev.aq.avail_virt = avail;
        vdev.aq.used_virt = used;
    }
    /* Zero everything (guarded stores — driver-touched memory). */
    long *p = (long *)q_desc(qi);
    for (long i = 0; i < desc_bytes / 8; i++) {
        p[i] = 0;
    }
    long *a = (long *)q_avail(qi);
    for (long i = 0; i < ring_bytes / 8; i++) {
        a[i] = 0;
    }
    long *u = (long *)q_used(qi);
    for (long i = 0; i < ring_bytes / 8; i++) {
        u[i] = 0;
    }
    q_set_ntu(qi, 0);
    q_set_ntc(qi, 0);
    q_set_uhead(qi, 0);
    return 0;
}

/* Program queue block qi's ring registers from its allocated state. */
static void vblk_program_queue(int qi) {
    long desc_phys = virt_to_phys((void *)q_desc(qi));
    long avail_phys = virt_to_phys((void *)q_avail(qi));
    long used_phys = virt_to_phys((void *)q_used(qi));
    vw32(qreg(qi, QOFF_DTBAL), (unsigned int)(desc_phys & 0xFFFFFFFF));
    vw32(qreg(qi, QOFF_DTBAH), (unsigned int)(desc_phys >> 32));
    vw32(qreg(qi, QOFF_DTLEN), (unsigned int)(QUEUE_ENTRIES * VDESC_SIZE));
    vw32(qreg(qi, QOFF_AVBAL), (unsigned int)(avail_phys & 0xFFFFFFFF));
    vw32(qreg(qi, QOFF_AVBAH), (unsigned int)(avail_phys >> 32));
    vw32(qreg(qi, QOFF_AVH), 0);
    vw32(qreg(qi, QOFF_AVT), 0);
    vw32(qreg(qi, QOFF_UBAL), (unsigned int)(used_phys & 0xFFFFFFFF));
    vw32(qreg(qi, QOFF_UBAH), (unsigned int)(used_phys >> 32));
    vw32(qreg(qi, QOFF_UH), 0);
}

/* Submit one admin command on queue 0 and harvest its completion (the
   device retires admin commands at the doorbell, without media time). */
static int vblk_admin_cmd(int op, long qid) {
    if (vblk_ring_space(0) < 1) {
        vblk_poll_q(0);
        if (vblk_ring_space(0) < 1) {
            return -EBUSY;
        }
    }
    int idx = q_ntu(0);
    vblk_fill_desc(vdev.aq.desc_virt + (long)idx * VDESC_SIZE,
                   qid, 0, 0, op);
    unsigned int *slot_p = (unsigned int *)(vdev.aq.avail_virt
                                            + (long)idx * 4);
    *slot_p = (unsigned int)idx;
    q_set_ntu(0, vblk_ring_next(idx));
    long errs = vdev.stats.errors;
    vw32(qreg(0, QOFF_AVT), (unsigned int)q_ntu(0));
    vblk_poll_q(0);
    if (vdev.stats.errors != errs) {
        return -EIO;
    }
    return 0;
}

/* Allocate + register + CREATE an I/O queue pair (NVMe ordering). */
static int vblk_bringup_ioq(int qi) {
    int rc = vblk_alloc_queue(qi);
    if (rc != 0) {
        return rc;
    }
    vblk_program_queue(qi);
    return vblk_admin_cmd(OP_CREATE_IOQ, (long)qi);
}

static void vblk_reset_hw(void) {
    vw32(REG_VCTL, VCTL_RST);
    udelay(10);
}

/* ---- probe / remove --------------------------------------------------- */

__export int vblk_probe(long mmio_phys, int nq) {
    vdev.mmio_phys = mmio_phys;
    vdev.mmio = ioremap(mmio_phys, BAR_SIZE);
    if (vdev.mmio == 0) {
        return -ENODEV;
    }
    vblk_reset_hw();
    vdev.capacity = (long)vr32(REG_CAP);
    if (vdev.capacity == 0) {
        printk("vblk: no media");
        return -ENODEV;
    }
    if (nq < 1 || nq > NQ_MAX || nq > (int)vr32(REG_VNQMAX)) {
        return -EINVAL;
    }
    /* Admin/legacy pair first: rings, registers, engine enable. */
    int rc = vblk_alloc_queue(0);
    if (rc != 0) {
        return rc;
    }
    vblk_program_queue(0);
    vw32(REG_VCTL, VCTL_EN);
    unsigned int sts = vr32(REG_VSTS);
    if ((sts & VSTS_READY) == 0) {
        printk("vblk: device not ready");
        return -ENODEV;
    }
    /* Then each I/O pair, activated through the admin queue. */
    if (nq >= 1) {
        rc = vblk_bringup_ioq(1);
        if (rc != 0) { return rc; }
    }
    if (nq >= 2) {
        rc = vblk_bringup_ioq(2);
        if (rc != 0) { return rc; }
    }
    if (nq >= 3) {
        rc = vblk_bringup_ioq(3);
        if (rc != 0) { return rc; }
    }
    if (nq >= 4) {
        rc = vblk_bringup_ioq(4);
        if (rc != 0) { return rc; }
    }
    if ((int)vr32(REG_VNQ) != nq) {
        printk("vblk: queue bringup mismatch");
        return -EIO;
    }
    vdev.nq = nq;
    if (register_chrdev("/dev/vblk0", "vblk_ioctl") != 0) {
        return -EINVAL;
    }
    vdev.up = 1;
    printk("vblk: probe ok, mmio %lx cap %lx sectors, %lx io queues",
           vdev.mmio, vdev.capacity, (long)nq);
    return 0;
}

static void vblk_free_queue(int qi) {
    if (q_desc(qi) != 0) {
        kfree((void *)q_desc(qi));
        kfree((void *)q_avail(qi));
        kfree((void *)q_used(qi));
    }
    if (qi == 1) { vdev.q1.desc_virt = 0; vdev.q1.avail_virt = 0;
                   vdev.q1.used_virt = 0; return; }
    if (qi == 2) { vdev.q2.desc_virt = 0; vdev.q2.avail_virt = 0;
                   vdev.q2.used_virt = 0; return; }
    if (qi == 3) { vdev.q3.desc_virt = 0; vdev.q3.avail_virt = 0;
                   vdev.q3.used_virt = 0; return; }
    if (qi == 4) { vdev.q4.desc_virt = 0; vdev.q4.avail_virt = 0;
                   vdev.q4.used_virt = 0; return; }
    vdev.aq.desc_virt = 0; vdev.aq.avail_virt = 0; vdev.aq.used_virt = 0;
}

__export int vblk_remove(void) {
    if (!vdev.up) {
        return -ENODEV;
    }
    vdev.up = 0;
    /* Retire the I/O pairs through the admin queue, then stop the
       engine and release every ring. */
    if (vdev.nq >= 1) { vblk_admin_cmd(OP_DELETE_IOQ, 1); }
    if (vdev.nq >= 2) { vblk_admin_cmd(OP_DELETE_IOQ, 2); }
    if (vdev.nq >= 3) { vblk_admin_cmd(OP_DELETE_IOQ, 3); }
    if (vdev.nq >= 4) { vblk_admin_cmd(OP_DELETE_IOQ, 4); }
    vw32(REG_VCTL, 0);
    vw32(REG_VIMC, 0xFFFFFFFF);
    unregister_chrdev("/dev/vblk0");
    if (vdev.nq >= 1) { vblk_free_queue(1); }
    if (vdev.nq >= 2) { vblk_free_queue(2); }
    if (vdev.nq >= 3) { vblk_free_queue(3); }
    if (vdev.nq >= 4) { vblk_free_queue(4); }
    vblk_free_queue(0);
    vdev.nq = 0;
    printk("vblk: removed");
    return 0;
}

/* ---- the hot path: submit one request on one queue -------------------- */

__export int vblk_submit_io(void *data, long sector, int len, int op,
                            int qi) {
    if (!vdev.up) {
        vdev.stats.errors += 1;
        return -ENODEV;
    }
    if (qi < 1 || qi > vdev.nq) {
        vdev.stats.errors += 1;
        return -EINVAL;
    }
    if (op < OP_READ || op > OP_FLUSH) {
        vdev.stats.errors += 1;
        return -EINVAL;
    }
    if (op == OP_FLUSH) {
        if (len != 0) {
            vdev.stats.errors += 1;
            return -EINVAL;
        }
    } else {
        if (len < SECTOR_SIZE || len > MAX_IO_BYTES) {
            vdev.stats.errors += 1;
            return -EINVAL;
        }
        if (sector < 0 || sector + (long)(len / SECTOR_SIZE) > vdev.capacity) {
            vdev.stats.errors += 1;
            return -EINVAL;
        }
    }
    if (vblk_ring_space(qi) < 1) {
        /* Opportunistic harvest of THIS queue before declaring it full
           (never touches a sibling queue's rings). */
        vblk_poll_q(qi);
        if (vblk_ring_space(qi) < 1) {
            vdev.stats.busy += 1;
            return -EBUSY;
        }
    }
    /* Fold the first payload word into the running signature (a guarded
       load through the request buffer, like checksumming a bio). */
    if (op == OP_WRITE) {
        long *word = (long *)data;
        vdev.stats.data_sig += *word;
    }
    int idx = q_ntu(qi);
    long buf_phys = 0;
    if (op != OP_FLUSH) {
        buf_phys = virt_to_phys(data);
    }
    vblk_fill_desc(q_desc(qi) + (long)idx * VDESC_SIZE,
                   sector, buf_phys, len, op);
    /* Post the index on this queue's avail ring, then ring ITS doorbell. */
    unsigned int *slot_p = (unsigned int *)(q_avail(qi) + (long)idx * 4);
    *slot_p = (unsigned int)idx;
    q_set_ntu(qi, vblk_ring_next(idx));
    q_count_submit(qi);
    if (op == OP_READ) {
        vdev.stats.reads += 1;
        vdev.stats.read_bytes += len;
    }
    if (op == OP_WRITE) {
        vdev.stats.writes += 1;
        vdev.stats.write_bytes += len;
    }
    if (op == OP_FLUSH) {
        vdev.stats.flushes += 1;
    }
    vw32(qreg(qi, QOFF_AVT), (unsigned int)q_ntu(qi));
    /* Amortized harvest when this queue runs more than half full. */
    if (vblk_ring_space(qi) < QUEUE_ENTRIES / 2) {
        vblk_poll_q(qi);
    }
    return 0;
}

/* ---- interrupt mode --------------------------------------------------- */

/* Legacy aggregate ISR: read-to-clear VICR (clears exactly the causes
   observed), then harvest every queue whose bit was set. */
__export int vblk_intr(int line) {
    unsigned int icr = vr32(REG_VICR);
    if (icr == 0) {
        return 0;           /* not ours / spurious */
    }
    vdev.irq_count += 1;
    if (icr & VICR_Q0) { vblk_poll_q(0); }
    if (icr & VICR_Q1) { vblk_poll_q(1); }
    if (icr & VICR_Q2) { vblk_poll_q(2); }
    if (icr & VICR_Q3) { vblk_poll_q(3); }
    if (icr & VICR_Q4) { vblk_poll_q(4); }
    return 1;
}

/* Per-queue MSI-X-style ISRs: each reads its OWN cause register
   (QVICR, read-to-clear of that bit only) so concurrent vectors can
   never wipe each other's pending causes. */

__export int vblk_intr_a(int line) {
    unsigned int icr = vr32(qreg(0, QOFF_VICR));
    if (icr == 0) { return 0; }
    vdev.irq_count += 1;
    vblk_poll_q(0);
    return 1;
}

__export int vblk_intr_q1(int line) {
    unsigned int icr = vr32(qreg(1, QOFF_VICR));
    if (icr == 0) { return 0; }
    vdev.irq_count += 1;
    vblk_poll_q(1);
    return 1;
}

__export int vblk_intr_q2(int line) {
    unsigned int icr = vr32(qreg(2, QOFF_VICR));
    if (icr == 0) { return 0; }
    vdev.irq_count += 1;
    vblk_poll_q(2);
    return 1;
}

__export int vblk_intr_q3(int line) {
    unsigned int icr = vr32(qreg(3, QOFF_VICR));
    if (icr == 0) { return 0; }
    vdev.irq_count += 1;
    vblk_poll_q(3);
    return 1;
}

__export int vblk_intr_q4(int line) {
    unsigned int icr = vr32(qreg(4, QOFF_VICR));
    if (icr == 0) { return 0; }
    vdev.irq_count += 1;
    vblk_poll_q(4);
    return 1;
}

/* Legacy single-vector enable: everything through vblk_intr. */
__export int vblk_irq_enable(int line) {
    if (request_irq(line, "vblk_intr") != 0) {
        return -EINVAL;
    }
    vdev.irq0 = line;
    vw32(REG_VIMS, VICR_Q0 | VICR_Q1 | VICR_Q2 | VICR_Q3 | VICR_Q4);
    return 0;
}

/* Per-queue vector enable: queue block qi's completions on `line`. */
__export int vblk_irq_enable_q(int qi, int line) {
    int rc = -EINVAL;
    if (qi == 0) { rc = request_irq(line, "vblk_intr_a"); }
    if (qi == 1) { rc = request_irq(line, "vblk_intr_q1"); }
    if (qi == 2) { rc = request_irq(line, "vblk_intr_q2"); }
    if (qi == 3) { rc = request_irq(line, "vblk_intr_q3"); }
    if (qi == 4) { rc = request_irq(line, "vblk_intr_q4"); }
    if (rc != 0) {
        return -EINVAL;
    }
    if (qi == 0) { vdev.irq0 = line; vw32(REG_VIMS, VICR_Q0); }
    if (qi == 1) { vdev.irq1 = line; vw32(REG_VIMS, VICR_Q1); }
    if (qi == 2) { vdev.irq2 = line; vw32(REG_VIMS, VICR_Q2); }
    if (qi == 3) { vdev.irq3 = line; vw32(REG_VIMS, VICR_Q3); }
    if (qi == 4) { vdev.irq4 = line; vw32(REG_VIMS, VICR_Q4); }
    return 0;
}

__export int vblk_irq_disable(void) {
    vw32(REG_VIMC, 0xFFFFFFFF);
    if (vdev.irq0 != 0) { free_irq(vdev.irq0); vdev.irq0 = 0; }
    if (vdev.irq1 != 0) { free_irq(vdev.irq1); vdev.irq1 = 0; }
    if (vdev.irq2 != 0) { free_irq(vdev.irq2); vdev.irq2 = 0; }
    if (vdev.irq3 != 0) { free_irq(vdev.irq3); vdev.irq3 = 0; }
    if (vdev.irq4 != 0) { free_irq(vdev.irq4); vdev.irq4 = 0; }
    return 0;
}

/* ---- stats / introspection (exported for the blkdev glue) ------------- */

static long q_submitted(int qi) {
    if (qi == 1) { return vdev.q1.submitted; }
    if (qi == 2) { return vdev.q2.submitted; }
    if (qi == 3) { return vdev.q3.submitted; }
    if (qi == 4) { return vdev.q4.submitted; }
    return vdev.aq.submitted;
}

static long q_completed(int qi) {
    if (qi == 1) { return vdev.q1.completed; }
    if (qi == 2) { return vdev.q2.completed; }
    if (qi == 3) { return vdev.q3.completed; }
    if (qi == 4) { return vdev.q4.completed; }
    return vdev.aq.completed;
}

__export long vblk_get_stat(int which) {
    if (which == 0) { return vdev.stats.reads; }
    if (which == 1) { return vdev.stats.writes; }
    if (which == 2) { return vdev.stats.flushes; }
    if (which == 3) { return vdev.stats.read_bytes; }
    if (which == 4) { return vdev.stats.write_bytes; }
    if (which == 5) { return vdev.stats.errors; }
    if (which == 6) { return vdev.stats.busy; }
    if (which == 7) { return vdev.stats.completions; }
    if (which == 8) { return vdev.irq_count; }
    if (which == 9) { return (long)vblk_ring_space(1); }
    if (which == 10) { return (long)q_ntu(1); }
    if (which == 11) { return (long)q_ntc(1); }
    if (which == 12) { return vdev.stats.data_sig; }
    if (which == 13) { return vdev.capacity; }
    if (which == 14) { return (long)vdev.nq; }
    /* 20+qi / 30+qi: per-queue submitted / completed (qi = 0..4). */
    if (which >= 20 && which <= 24) { return q_submitted(which - 20); }
    if (which >= 30 && which <= 34) { return q_completed(which - 30); }
    return -1;
}

__export long vblk_read_reg(int reg) {
    return (long)vr32(reg);
}

/* ---- chardev ioctl (stats readout through /dev/vblk0) ----------------- */

__export long vblk_ioctl(long cmd, long arg, long len) {
    return vblk_get_stat((int)cmd);
}

__export int init_module(void) {
    vdev.up = 0;
    printk("vblk: module loaded");
    return 0;
}

__export int cleanup_module(void) {
    if (vdev.up) {
        vblk_remove();
    }
    printk("vblk: module unloaded");
    return 0;
}
"""


def driver_source_lines() -> int:
    """Non-blank source lines of the driver (for the bench metadata)."""
    return sum(1 for line in DRIVER_SOURCE.splitlines() if line.strip())


__all__ = ["DRIVER_NAME", "DRIVER_SOURCE", "driver_source_lines"]
