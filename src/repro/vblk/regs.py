"""Register map for the simulated virtio-style block device.

The layout borrows the split-virtqueue shape of virtio-blk — a
descriptor table plus paired avail/used rings — but flattens it into a
legacy MMIO register file so the guarded mini-C driver programs it the
same way it programs the e1000e: typed pointer stores through an
ioremap'd BAR.  One request queue, 512-byte sectors, three request
types (read, write, flush).
"""

from __future__ import annotations

# Device control / status
VCTL = 0x0000
VSTS = 0x0004
CAP = 0x0008            # device capacity in sectors (read-only)

# Interrupts (MSI-X-style single completion vector)
VICR = 0x0010           # interrupt cause, read-to-clear
VIMS = 0x0014           # interrupt mask set (write 1s to unmask)
VIMC = 0x0018           # interrupt mask clear (write 1s to mask)

# Descriptor table
DTBAL = 0x0020          # descriptor table base, low 32 bits
DTBAH = 0x0024          # descriptor table base, high 32 bits
DTLEN = 0x0028          # descriptor table length in bytes

# Avail ring (driver -> device): u32 descriptor indexes
AVBAL = 0x0030
AVBAH = 0x0034
AVH = 0x0038            # avail head: next entry the device will fetch
AVT = 0x003C            # avail tail: doorbell — driver writes one past last posted

# Used ring (device -> driver): u32 descriptor indexes
UBAL = 0x0040
UBAH = 0x0044
UH = 0x0048             # used head: next entry the driver will harvest
UT = 0x004C             # used tail: device writes one past last completed

# Statistics (read-only telemetry)
RDOPS = 0x0060          # completed read requests
WROPS = 0x0064          # completed write requests
FLOPS = 0x0068          # completed flush requests
SECR = 0x006C           # sectors read
SECW = 0x0070           # sectors written
DERR = 0x0074           # descriptor/DMA errors

# Register window size (BAR0)
BAR_SIZE = 0x1000

# VCTL bits
VCTL_RST = 1 << 0
VCTL_EN = 1 << 1

# VSTS bits
VSTS_READY = 1 << 0

# VICR bits
VICR_USED = 1 << 0      # used ring advanced (request completed)
VICR_CFG = 1 << 1       # configuration change (unused; reserved)

# Request descriptor layout (32 bytes):
#   u64 sector; u64 buffer_addr; u32 length; u16 type; u8 status; u8 pad;
#   u64 reserved
VDESC_SIZE = 32
VDESC_TYPE_READ = 0
VDESC_TYPE_WRITE = 1
VDESC_TYPE_FLUSH = 2
VDESC_STATUS_DD = 0x01  # descriptor done
VDESC_STATUS_ERR = 0x02 # device rejected the request

SECTOR_SIZE = 512
#: Largest single request the device accepts (8 sectors = 4 KiB).
MAX_IO_SECTORS = 8

# Default queue geometry (64 descriptors, matching the driver).
DEFAULT_QUEUE_ENTRIES = 64

# Default backing-store size: 16384 sectors = 8 MiB.
DEFAULT_CAPACITY_SECTORS = 16384

__all__ = [name for name in dir() if name.isupper()]
