"""Register map for the simulated virtio-style block device.

The layout borrows the split-virtqueue shape of virtio-blk — a
descriptor table plus paired avail/used rings — but flattens it into a
legacy MMIO register file so the guarded mini-C driver programs it the
same way it programs the e1000e: typed pointer stores through an
ioremap'd BAR.

Since the multi-queue rework the register file carries **five queue
pairs** laid out NVMe-style: block 0 is the admin/legacy pair and
blocks 1..4 are per-CPU I/O pairs.  Every block repeats the same
within-block layout at ``QBASE + q * QSTRIDE`` (the e1000e RXQ_STRIDE
idiom), and block 0 lands exactly on the historic single-queue
offsets, so legacy host software that programs DTBAL/AVT/UT keeps
working unchanged.  I/O queues come into service through CREATE_IOQ
admin commands submitted on queue 0, never by doorbell alone.

512-byte sectors; five request types (read, write, flush on any queue;
create/delete-I/O-queue on the admin queue only).
"""

from __future__ import annotations

# Device control / status
VCTL = 0x0000
VSTS = 0x0004
CAP = 0x0008            # device capacity in sectors (read-only)
VNQMAX = 0x000C         # max I/O queue pairs the device supports (read-only)

# Interrupts (MSI-X-style: vector q <-> queue block q)
VICR = 0x0010           # aggregate cause; read clears the bits observed
VIMS = 0x0014           # interrupt mask set (write 1s to unmask)
VIMC = 0x0018           # interrupt mask clear (write 1s to mask)
VNQ = 0x001C            # I/O queue pairs currently created (read-only)

# Queue register blocks.  Block 0 = admin/legacy pair, blocks 1..4 =
# I/O pairs.  Block q occupies [QBASE + q*QSTRIDE, QBASE + (q+1)*QSTRIDE).
QBASE = 0x0020
QSTRIDE = 0x0040
MAX_IO_QUEUES = 4       # I/O queue pairs (block 0 not counted)
NUM_QUEUE_BLOCKS = MAX_IO_QUEUES + 1

# Within-block offsets (add to QBASE + q*QSTRIDE)
QDTBAL = 0x00           # descriptor table base, low 32 bits
QDTBAH = 0x04           # descriptor table base, high 32 bits
QDTLEN = 0x08           # descriptor table length in bytes
QAVBAL = 0x10           # avail ring base (driver -> device)
QAVBAH = 0x14
QAVH = 0x18             # avail head: next entry the device will fetch
QAVT = 0x1C             # avail tail: THE submission doorbell
QUBAL = 0x20            # used ring base (device -> driver)
QUBAH = 0x24
QUH = 0x28              # used head: next entry the driver will harvest
QUT = 0x2C              # used tail: device writes one past last completed
QVICR = 0x30            # per-queue cause, read-to-clear (own bit only)

# Legacy single-queue aliases == block 0 of the strided layout.
DTBAL = QBASE + QDTBAL  # 0x0020
DTBAH = QBASE + QDTBAH  # 0x0024
DTLEN = QBASE + QDTLEN  # 0x0028
AVBAL = QBASE + QAVBAL  # 0x0030
AVBAH = QBASE + QAVBAH  # 0x0034
AVH = QBASE + QAVH      # 0x0038
AVT = QBASE + QAVT      # 0x003C
UBAL = QBASE + QUBAL    # 0x0040
UBAH = QBASE + QUBAH    # 0x0044
UH = QBASE + QUH        # 0x0048
UT = QBASE + QUT        # 0x004C

# Statistics (read-only telemetry), above the queue blocks.
RDOPS = 0x0200          # completed read requests
WROPS = 0x0204          # completed write requests
FLOPS = 0x0208          # completed flush requests
SECR = 0x020C           # sectors read
SECW = 0x0210           # sectors written
DERR = 0x0214           # descriptor/DMA errors

# Register window size (BAR0)
BAR_SIZE = 0x1000

# VCTL bits
VCTL_RST = 1 << 0
VCTL_EN = 1 << 1

# VSTS bits
VSTS_READY = 1 << 0

# VICR bits: bit q = queue block q advanced its used ring.
VICR_USED = 1 << 0      # queue 0 (admin/legacy) completion
VICR_CFG = 1 << 31      # configuration change (unused; reserved)

# Request descriptor layout (32 bytes):
#   u64 sector; u64 buffer_addr; u32 length; u16 type; u8 status; u8 pad;
#   u64 reserved
VDESC_SIZE = 32
VDESC_TYPE_READ = 0
VDESC_TYPE_WRITE = 1
VDESC_TYPE_FLUSH = 2
# Admin-queue-only commands; qid travels in the sector field.
VDESC_TYPE_CREATE_IOQ = 3
VDESC_TYPE_DELETE_IOQ = 4
VDESC_STATUS_DD = 0x01  # descriptor done
VDESC_STATUS_ERR = 0x02 # device rejected the request

SECTOR_SIZE = 512
#: Largest single request the device accepts (8 sectors = 4 KiB).
MAX_IO_SECTORS = 8

# Default queue geometry (64 descriptors, matching the driver).
DEFAULT_QUEUE_ENTRIES = 64

# Default backing-store size: 16384 sectors = 8 MiB.
DEFAULT_CAPACITY_SECTORS = 16384


def qreg(queue: int, offset: int) -> int:
    """Absolute BAR offset of within-block register ``offset`` on ``queue``."""
    return QBASE + queue * QSTRIDE + offset


def vicr_q(queue: int) -> int:
    """The aggregate-VICR cause bit owned by queue block ``queue``."""
    return 1 << queue


def queue_block(offset: int) -> "tuple[int, int] | None":
    """Map an absolute BAR offset into ``(queue, within-block offset)``.

    Returns None for offsets outside the strided queue-block window.
    """
    rel = offset - QBASE
    if 0 <= rel < NUM_QUEUE_BLOCKS * QSTRIDE:
        return divmod(rel, QSTRIDE)
    return None


__all__ = [name for name in dir() if name.isupper()] + [
    "qreg", "vicr_q", "queue_block",
]
