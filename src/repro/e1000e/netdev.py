"""Net-device glue: the kernel-side bridge between the network stack and
the (possibly protected) driver module.

Models the slice of the Linux netdev layer the evaluation exercises:
skb allocation (kmalloc), payload copy into the skb (core-kernel memcpy —
*not* guarded, because it is not module code), and the call into the
driver's ``ndo_start_xmit`` equivalent, which *is* module code and runs
under the guards.
"""

from __future__ import annotations

import struct
from typing import Union

from ..kernel import layout
from ..kernel.kernel import Kernel
from ..kernel.module_loader import LoadedModule
from ..net.frame import ETH_ZLEN, EthernetFrame
from . import regs
from .device import E1000EDevice

# errno values the driver returns (negative).
ENETDOWN = 100
EBUSY = 16

STAT_NAMES = (
    "tx_packets",
    "tx_bytes",
    "tx_errors",
    "tx_busy",
    "cleaned",
    "ring_space",
    "next_to_use",
    "next_to_clean",
    "rx_packets",
    "rx_bytes",
    "irq_count",
)


class E1000ENetDev:
    """One registered network interface backed by the driver module."""

    def __init__(self, kernel: Kernel, module: LoadedModule, device: E1000EDevice):
        self.kernel = kernel
        self.module = module
        self.device = device
        self._probed = False
        #: Frames the driver handed up through netif_rx (newest last).
        self.rx_queue: list[bytes] = []
        #: Fault-injection hook (see :mod:`repro.faults`): may interpose
        #: transient stack-level xmit failures.  None = healthy path.
        self.fault_injector = None
        kernel.netif_rx_handler = self._netif_rx
        # Slot-keyed: re-probing after an eject replaces the hook instead
        # of stacking a stale one per recovery cycle.
        kernel.register_eject_hook(module.name, self._on_eject, slot="netdev")
        # Multi-queue RX (queues >= 1, kernel-side): descriptor rings and
        # buffers this netdev owns, plus the NAPI poller state.  Queue 0
        # stays with the guarded driver and its line interrupt.
        self._rx_rings: dict[int, tuple[int, list[int], int]] = {}
        self._rxq_clean: dict[int, int] = {}
        #: Queues whose vector fired and is masked, awaiting a poll pass
        #: (FIFO arming order, like the softirq NAPI list).
        self._napi_armed: list[int] = []
        self.napi_budget = 64
        self.napi_schedules = 0
        self.napi_polls = 0
        self.rxq_packets: dict[int, int] = {}
        self._tp_napi = kernel.trace.point("napi:poll")

    def _on_eject(self, loaded: LoadedModule) -> None:
        """Quiesce the hardware before the journal frees the driver's
        rings: stop both DMA engines, mask interrupts, and detach the
        netif_rx path, so no in-flight work touches rolled-back memory."""
        dev = self.device
        dev.tctl &= ~regs.TCTL_EN
        dev.rctl &= ~regs.RCTL_EN
        dev.ims = 0
        dev.icr = 0
        dev._in_flight.clear()
        dev.napi_notify = None
        self._napi_armed.clear()
        if self.kernel.netif_rx_handler is self._netif_rx:
            self.kernel.netif_rx_handler = None
        self._probed = False
        self.kernel.dmesg(
            f"e1000e netdev: quiesced after eject of {loaded.name}"
        )

    def _netif_rx(self, ctx, data: int, length: int) -> None:
        """The core network stack's receive entry: copy the frame out of
        the driver's RX buffer (core-kernel copy, unguarded) and queue it."""
        self.rx_queue.append(
            self.kernel.address_space.read_bytes(int(data), int(length))
        )

    def probe(self) -> None:
        """The PCI-subsystem callback: hand the driver its BAR."""
        rc = self.kernel.run_function(
            self.module, "e1000e_probe", [self.device.phys_base]
        )
        if rc != 0:
            raise RuntimeError(f"e1000e_probe failed: {rc}")
        self._probed = True

    def remove(self) -> None:
        if self._probed:
            self.kernel.run_function(self.module, "e1000e_remove", [])
            self._probed = False
        self.device.napi_notify = None
        self._napi_armed.clear()

    def up(self) -> int:
        return self.kernel.run_function(self.module, "e1000e_up", [])

    def down(self) -> int:
        return self.kernel.run_function(self.module, "e1000e_down", [])

    def xmit(self, frame: Union[EthernetFrame, bytes]) -> int:
        """Queue one frame; returns 0 or a negative errno from the driver.

        The skb buffer is kmalloc'd with room for runt padding (the driver
        writes the pad bytes itself, under guards).
        """
        raw = frame.encode() if isinstance(frame, EthernetFrame) else bytes(frame)
        if self.fault_injector is not None and self.fault_injector.xmit_transient():
            return -EBUSY
        skb_len = max(len(raw), ETH_ZLEN)
        skb = self.kernel.kmalloc_allocator.kmalloc(skb_len)
        # Core-kernel copy of the payload into the skb: native, unguarded.
        self.kernel.address_space.write_bytes(skb, raw)
        try:
            rc = self.kernel.run_function(
                self.module, "e1000e_xmit_frame", [skb, len(raw)]
            )
            # The VM returns the unsigned i32 bit pattern; errnos are
            # negative, so re-sign it.
            return rc - (1 << 32) if rc >= 1 << 31 else rc
        finally:
            # The DMA engine consumed the payload synchronously at the
            # doorbell, so the skb can be freed as soon as xmit returns.
            self.kernel.kmalloc_allocator.kfree(skb)

    def enable_interrupts(self) -> int:
        """Switch from polling to interrupt-driven TX/RX servicing."""
        return self.kernel.run_function(
            self.module, "e1000e_irq_enable", [self.device.irq_line]
        )

    def disable_interrupts(self) -> int:
        return self.kernel.run_function(self.module, "e1000e_irq_disable", [])

    def inject_rx(self, frame: Union[EthernetFrame, bytes]) -> bool:
        """A frame arrives on the wire (test-peer side of the link)."""
        raw = frame.encode() if isinstance(frame, EthernetFrame) else bytes(frame)
        return self.device.receive(raw)

    def poll_rx(self, budget: int = 64) -> int:
        """NAPI-style poll: let the driver clean its RX ring.

        Returns the number of frames the driver handed up."""
        return self.kernel.run_function(
            self.module, "e1000e_clean_rx_irq", [budget]
        )

    # -- multi-queue RX + NAPI (queues >= 1, kernel-side) -----------------------

    def setup_rx_queue(self, queue: int, entries: int = 64) -> None:
        """Allocate and program RX queue ``queue`` (>= 1).

        The ring and its buffers are kernel-side allocations (the netdev
        layer owns scale-out queues, the way the stack owns RSS queues);
        the guarded driver's queue-0 bring-up is untouched, so single-
        queue runs stay byte-identical.
        """
        if not 1 <= queue < regs.MAX_RX_QUEUES:
            raise ValueError(f"queue must be 1..{regs.MAX_RX_QUEUES - 1}")
        alloc = self.kernel.kmalloc_allocator
        aspace = self.kernel.address_space
        ring = alloc.kmalloc(entries * regs.RDESC_SIZE)
        bufs = []
        for i in range(entries):
            buf = alloc.kmalloc(regs.RX_BUFFER_SIZE)
            bufs.append(buf)
            # Descriptors carry bus (physical) buffer addresses — the
            # device DMAs straight into RAM, like the driver's queue 0.
            aspace.write_bytes(
                ring + i * regs.RDESC_SIZE,
                struct.pack(
                    "<QHHBBH", layout.direct_map_to_phys(buf), 0, 0, 0, 0, 0
                ),
            )
        dev = self.device
        ring_phys = layout.direct_map_to_phys(ring)
        dev.mmio_write(
            regs.rxq_reg(regs.RDBAL, queue), 4, ring_phys & 0xFFFFFFFF
        )
        dev.mmio_write(regs.rxq_reg(regs.RDBAH, queue), 4, ring_phys >> 32)
        dev.mmio_write(
            regs.rxq_reg(regs.RDLEN, queue), 4, entries * regs.RDESC_SIZE
        )
        dev.mmio_write(regs.rxq_reg(regs.RDH, queue), 4, 0)
        dev.mmio_write(regs.rxq_reg(regs.RDT, queue), 4, entries - 1)
        self._rx_rings[queue] = (ring, bufs, entries)
        self._rxq_clean[queue] = 0

    def enable_rss(self, nqueues: int, entries: int = 64,
                   budget: int = 64) -> None:
        """Spread RX across ``nqueues`` queues with NAPI batch polling.

        Queues 1..nqueues-1 are set up kernel-side; RSS steering and the
        per-queue vectors are unmasked; one arriving frame on a quiet
        queue arms its poller, which then drains up to ``budget``
        descriptors per pass before re-enabling the vector.
        """
        for q in range(1, nqueues):
            if q not in self._rx_rings:
                self.setup_rx_queue(q, entries)
        dev = self.device
        self.napi_budget = budget
        ims = 0
        for q in range(1, nqueues):
            ims |= regs.icr_rxq(q)
        dev.mmio_write(regs.IMS, 4, ims)
        dev.mmio_write(regs.MRQC, 4, regs.MRQC_RSS_EN)
        dev.napi_notify = self._napi_schedule

    def _napi_schedule(self, queue: int) -> None:
        """The queue's vector fired: mask it and arm the poller (the
        ISR half of NAPI — no frame work happens here)."""
        self.device.mmio_write(regs.IMC, 4, regs.icr_rxq(queue))
        if queue not in self._napi_armed:
            self._napi_armed.append(queue)
            self.napi_schedules += 1

    def napi_poll(self, budget: int = 0) -> int:
        """One softirq pass: drain every armed queue, up to ``budget``
        frames each.  A queue that drains below budget completes NAPI
        (vector re-enabled); a saturated queue stays armed for the next
        pass.  Returns total frames handed up."""
        budget = budget or self.napi_budget
        total = 0
        for queue in list(self._napi_armed):
            work = self._clean_rx_queue(queue, budget)
            total += work
            self.napi_polls += 1
            if work < budget:
                self._napi_armed.remove(queue)
                self.device.mmio_write(regs.IMS, 4, regs.icr_rxq(queue))
        return total

    def _clean_rx_queue(self, queue: int, budget: int) -> int:
        """Harvest completed descriptors from one kernel-side queue.

        Runs attributed to CPU ``queue % ncpus`` (the RSS queue<->CPU
        affinity), so per-CPU trace rings and counters see the work
        where a real flow-steered softirq would run it."""
        ring, bufs, entries = self._rx_rings[queue]
        aspace = self.kernel.address_space
        smp = self.kernel.smp
        ntc = self._rxq_clean[queue]
        work = 0
        with smp.on(queue % smp.ncpus):
            while work < budget:
                desc = ring + ntc * regs.RDESC_SIZE
                status = aspace.read_bytes(desc + 12, 1)[0]
                if not (status & regs.RDESC_STATUS_DD):
                    break
                (length,) = struct.unpack(
                    "<H", aspace.read_bytes(desc + 8, 2)
                )
                self.rx_queue.append(aspace.read_bytes(bufs[ntc], length))
                aspace.write_bytes(desc + 12, b"\x00")
                ntc = (ntc + 1) % entries
                work += 1
            if work and self._tp_napi.enabled:
                # Emitted on the queue's CPU, so per-CPU trace rings see
                # the poll where the flow-steered softirq ran it.
                self._tp_napi.emit(queue=queue, work=work)
        if work:
            self._rxq_clean[queue] = ntc
            # Return the harvested descriptors in one batched tail write.
            self.device.mmio_write(
                regs.rxq_reg(regs.RDT, queue), 4, (ntc - 1) % entries
            )
            self.rxq_packets[queue] = self.rxq_packets.get(queue, 0) + work
        return work

    def napi_stats(self) -> dict[str, object]:
        return {
            "budget": self.napi_budget,
            "schedules": self.napi_schedules,
            "polls": self.napi_polls,
            "armed": list(self._napi_armed),
            "rxq_packets": dict(self.rxq_packets),
            "rxq_hw_packets": {
                q: s.packets for q, s in enumerate(self.device.rx_queues)
                if s.packets
            },
        }

    def stats(self) -> dict[str, int]:
        out = {}
        for i, name in enumerate(STAT_NAMES):
            v = self.kernel.run_function(self.module, "e1000e_get_stat", [i])
            if v >= 1 << 63:
                v -= 1 << 64
            out[name] = v
        return out

    def read_reg(self, reg: int) -> int:
        return self.kernel.run_function(self.module, "e1000e_read_reg", [reg])


__all__ = ["EBUSY", "ENETDOWN", "E1000ENetDev", "STAT_NAMES"]
