"""Net-device glue: the kernel-side bridge between the network stack and
the (possibly protected) driver module.

Models the slice of the Linux netdev layer the evaluation exercises:
skb allocation (kmalloc), payload copy into the skb (core-kernel memcpy —
*not* guarded, because it is not module code), and the call into the
driver's ``ndo_start_xmit`` equivalent, which *is* module code and runs
under the guards.
"""

from __future__ import annotations

from typing import Union

from ..kernel.kernel import Kernel
from ..kernel.module_loader import LoadedModule
from ..net.frame import ETH_ZLEN, EthernetFrame
from . import regs
from .device import E1000EDevice

# errno values the driver returns (negative).
ENETDOWN = 100
EBUSY = 16

STAT_NAMES = (
    "tx_packets",
    "tx_bytes",
    "tx_errors",
    "tx_busy",
    "cleaned",
    "ring_space",
    "next_to_use",
    "next_to_clean",
    "rx_packets",
    "rx_bytes",
    "irq_count",
)


class E1000ENetDev:
    """One registered network interface backed by the driver module."""

    def __init__(self, kernel: Kernel, module: LoadedModule, device: E1000EDevice):
        self.kernel = kernel
        self.module = module
        self.device = device
        self._probed = False
        #: Frames the driver handed up through netif_rx (newest last).
        self.rx_queue: list[bytes] = []
        #: Fault-injection hook (see :mod:`repro.faults`): may interpose
        #: transient stack-level xmit failures.  None = healthy path.
        self.fault_injector = None
        kernel.netif_rx_handler = self._netif_rx
        # Slot-keyed: re-probing after an eject replaces the hook instead
        # of stacking a stale one per recovery cycle.
        kernel.register_eject_hook(module.name, self._on_eject, slot="netdev")

    def _on_eject(self, loaded: LoadedModule) -> None:
        """Quiesce the hardware before the journal frees the driver's
        rings: stop both DMA engines, mask interrupts, and detach the
        netif_rx path, so no in-flight work touches rolled-back memory."""
        dev = self.device
        dev.tctl &= ~regs.TCTL_EN
        dev.rctl &= ~regs.RCTL_EN
        dev.ims = 0
        dev.icr = 0
        dev._in_flight.clear()
        if self.kernel.netif_rx_handler is self._netif_rx:
            self.kernel.netif_rx_handler = None
        self._probed = False
        self.kernel.dmesg(
            f"e1000e netdev: quiesced after eject of {loaded.name}"
        )

    def _netif_rx(self, ctx, data: int, length: int) -> None:
        """The core network stack's receive entry: copy the frame out of
        the driver's RX buffer (core-kernel copy, unguarded) and queue it."""
        self.rx_queue.append(
            self.kernel.address_space.read_bytes(int(data), int(length))
        )

    def probe(self) -> None:
        """The PCI-subsystem callback: hand the driver its BAR."""
        rc = self.kernel.run_function(
            self.module, "e1000e_probe", [self.device.phys_base]
        )
        if rc != 0:
            raise RuntimeError(f"e1000e_probe failed: {rc}")
        self._probed = True

    def remove(self) -> None:
        if self._probed:
            self.kernel.run_function(self.module, "e1000e_remove", [])
            self._probed = False

    def up(self) -> int:
        return self.kernel.run_function(self.module, "e1000e_up", [])

    def down(self) -> int:
        return self.kernel.run_function(self.module, "e1000e_down", [])

    def xmit(self, frame: Union[EthernetFrame, bytes]) -> int:
        """Queue one frame; returns 0 or a negative errno from the driver.

        The skb buffer is kmalloc'd with room for runt padding (the driver
        writes the pad bytes itself, under guards).
        """
        raw = frame.encode() if isinstance(frame, EthernetFrame) else bytes(frame)
        if self.fault_injector is not None and self.fault_injector.xmit_transient():
            return -EBUSY
        skb_len = max(len(raw), ETH_ZLEN)
        skb = self.kernel.kmalloc_allocator.kmalloc(skb_len)
        # Core-kernel copy of the payload into the skb: native, unguarded.
        self.kernel.address_space.write_bytes(skb, raw)
        try:
            rc = self.kernel.run_function(
                self.module, "e1000e_xmit_frame", [skb, len(raw)]
            )
            # The VM returns the unsigned i32 bit pattern; errnos are
            # negative, so re-sign it.
            return rc - (1 << 32) if rc >= 1 << 31 else rc
        finally:
            # The DMA engine consumed the payload synchronously at the
            # doorbell, so the skb can be freed as soon as xmit returns.
            self.kernel.kmalloc_allocator.kfree(skb)

    def enable_interrupts(self) -> int:
        """Switch from polling to interrupt-driven TX/RX servicing."""
        return self.kernel.run_function(
            self.module, "e1000e_irq_enable", [self.device.irq_line]
        )

    def disable_interrupts(self) -> int:
        return self.kernel.run_function(self.module, "e1000e_irq_disable", [])

    def inject_rx(self, frame: Union[EthernetFrame, bytes]) -> bool:
        """A frame arrives on the wire (test-peer side of the link)."""
        raw = frame.encode() if isinstance(frame, EthernetFrame) else bytes(frame)
        return self.device.receive(raw)

    def poll_rx(self, budget: int = 64) -> int:
        """NAPI-style poll: let the driver clean its RX ring.

        Returns the number of frames the driver handed up."""
        return self.kernel.run_function(
            self.module, "e1000e_clean_rx_irq", [budget]
        )

    def stats(self) -> dict[str, int]:
        out = {}
        for i, name in enumerate(STAT_NAMES):
            v = self.kernel.run_function(self.module, "e1000e_get_stat", [i])
            if v >= 1 << 63:
                v -= 1 << 64
            out[name] = v
        return out

    def read_reg(self, reg: int) -> int:
        return self.kernel.run_function(self.module, "e1000e_read_reg", [reg])


__all__ = ["EBUSY", "ENETDOWN", "E1000ENetDev", "STAT_NAMES"]
