"""The simulated Intel 82574L NIC.

The device is the other half of the driver contract: an MMIO register
window plus a **DMA engine** that reads TX descriptors and frame payloads
straight out of physical memory.  DMA accesses bypass the guard machinery
*by construction* — they never pass through module code — which models
the paper's scoping (§4 fn 3: "The natural way to control memory access
from DMA is using a technology like the IOMMU or SR-IOV, and is outside
the scope of this paper"), and is also why CARAT KOP's overhead is
independent of how many bytes the NIC moves (§4: "the overwhelming amount
of data transfer occurs due to the DMA engine on the NIC, which is not
checked (and thus not slowed)").

Timing: the wire drains at 1 Gbit/s.  When a cycle clock is available
(machine-model runs), descriptor completion (DD write-back, TDH advance)
happens as simulated wire time elapses; without a clock, completion is
immediate (functional mode).
"""

from __future__ import annotations

import struct
import zlib
from collections import deque
from typing import Callable, Optional

from ..kernel.kernel import Kernel
from ..kernel.panic import MemoryFault
from ..net.sink import PacketSink
from . import regs

_LINE_RATE_BITS_PER_SEC = 1_000_000_000
#: Preamble + SFD + IFG + FCS per frame on the wire.
_WIRE_OVERHEAD_BYTES = 24


class RxQueueState:
    """One RX queue's ring registers (hardware-side view)."""

    __slots__ = ("rdba", "rdlen", "rdh", "rdt", "packets")

    def __init__(self) -> None:
        self.rdba = 0
        self.rdlen = 0
        self.rdh = 0
        self.rdt = 0
        self.packets = 0

    def entries(self, desc_size: int) -> int:
        return self.rdlen // desc_size if self.rdlen else 0


class E1000EDevice:
    """Register file + DMA engine + wire model."""

    def __init__(
        self,
        kernel: Kernel,
        sink: PacketSink,
        mac: bytes = b"\x52\x54\x00\x12\x34\x56",
        clock: Optional[Callable[[], float]] = None,
        freq_hz: Optional[float] = None,
        ring_entries_max: int = 4096,
    ):
        if len(mac) != 6:
            raise ValueError("MAC must be 6 bytes")
        self.kernel = kernel
        self.sink = sink
        self.mac = mac
        #: Returns "now" in CPU cycles; None = functional (untimed) mode.
        self.clock = clock
        self.freq_hz = freq_hz
        self.ring_entries_max = ring_entries_max
        self.phys_base = kernel.register_mmio(self, regs.BAR_SIZE, "e1000e")
        #: Interrupt line (assigned by the "PCI subsystem" at attach time).
        self.irq_line = kernel.irq.allocate_line()
        #: Fault-injection hook (see :mod:`repro.faults`): may garble
        #: telemetry-register reads and stall the DMA wire model.  None =
        #: healthy hardware.
        self.fault_injector = None
        #: NAPI notify callback ``(queue) -> None`` the netdev installs
        #: for queues >= 1 (its MSI-X vector).  Queue 0 keeps the legacy
        #: line interrupt through the guarded driver's ISR.
        self.napi_notify: Optional[Callable[[int], None]] = None
        points = kernel.trace.points
        self._tp_fetch = points["dma:fetch"]
        self._tp_writeback = points["dma:writeback"]
        self._tp_rx = points["dma:rx"]
        self.reset()

    # -- device state --------------------------------------------------------

    def reset(self) -> None:
        self.ctrl = 0
        self.tctl = 0
        self.rctl = 0
        self.tipg = 0
        self.ims = 0
        self.icr = 0
        self.tdba = 0
        self.tdlen = 0
        self.tdh = 0
        self.tdt = 0
        self.gptc = 0
        self.total_octets = 0
        # In-flight frames: (completion_cycle, ring_index)
        self._in_flight: deque[tuple[float, int]] = deque()
        self._wire_free_at = 0.0
        # RX ring state, one register block per queue.  Queue 0 is the
        # legacy ring the guarded driver programs; the ``rdba``/``rdh``/
        # ... properties proxy it so single-queue code never changes.
        self.rx_queues = [
            RxQueueState() for _ in range(regs.MAX_RX_QUEUES)
        ]
        self.mrqc = 0
        self.gprc = 0
        self.mpc = 0  # missed packets: RX ring had no free descriptors
        #: DMA master aborts: the driver programmed a bogus bus address.
        #: Real hardware reads all-ones and sets an error; it never faults
        #: the CPU instruction that rang the doorbell.
        self.dma_errors = 0

    @property
    def ring_entries(self) -> int:
        return self.tdlen // regs.TDESC_SIZE if self.tdlen else 0

    @property
    def rx_ring_entries(self) -> int:
        return self.rx_queues[0].entries(regs.RDESC_SIZE)

    # Legacy single-queue register aliases (queue 0).

    @property
    def rdba(self) -> int:
        return self.rx_queues[0].rdba

    @rdba.setter
    def rdba(self, value: int) -> None:
        self.rx_queues[0].rdba = value

    @property
    def rdlen(self) -> int:
        return self.rx_queues[0].rdlen

    @rdlen.setter
    def rdlen(self, value: int) -> None:
        self.rx_queues[0].rdlen = value

    @property
    def rdh(self) -> int:
        return self.rx_queues[0].rdh

    @rdh.setter
    def rdh(self, value: int) -> None:
        self.rx_queues[0].rdh = value

    @property
    def rdt(self) -> int:
        return self.rx_queues[0].rdt

    @rdt.setter
    def rdt(self, value: int) -> None:
        self.rx_queues[0].rdt = value

    def rx_queues_configured(self) -> int:
        """Queues with a programmed ring (contiguous from queue 0)."""
        n = 0
        for q in self.rx_queues:
            if not q.entries(regs.RDESC_SIZE):
                break
            n += 1
        return n

    def rss_queue(self, frame: bytes) -> int:
        """RSS-style steering: a deterministic hash of the frame header
        picks the RX queue.  Single-queue or RSS-disabled: queue 0."""
        if not (self.mrqc & regs.MRQC_RSS_EN):
            return 0
        nq = self.rx_queues_configured()
        if nq <= 1:
            return 0
        # Hash the Ethernet header plus the flow-identifying payload
        # prefix (the spot real RSS hashes the IP/port tuple from).
        return zlib.crc32(frame[:34]) % nq

    def _now(self) -> float:
        return self.clock() if self.clock is not None else 0.0

    def _cycles_for_frame(self, length: int) -> float:
        if self.freq_hz is None:
            return 0.0
        seconds = (length + _WIRE_OVERHEAD_BYTES) * 8 / _LINE_RATE_BITS_PER_SEC
        return seconds * self.freq_hz

    # -- MMIO interface -----------------------------------------------------------

    @staticmethod
    def _rxq_for_offset(offset: int) -> Optional[tuple[int, int]]:
        """Map an offset inside a queue>=1 RX register block to
        ``(queue, base_register)``; None for everything else."""
        if not regs.RDBAL < offset < regs.RDT + (
            regs.MAX_RX_QUEUES * regs.RXQ_STRIDE
        ):
            return None
        queue, base = divmod(offset - regs.RDBAL, regs.RXQ_STRIDE)
        base += regs.RDBAL
        if (1 <= queue < regs.MAX_RX_QUEUES
                and base in (regs.RDBAL, regs.RDBAH, regs.RDLEN,
                             regs.RDH, regs.RDT)):
            return queue, base
        return None

    def mmio_read(self, offset: int, size: int) -> int:
        if self.fault_injector is not None:
            garbled = self.fault_injector.mmio_garble(offset)
            if garbled is not None:
                return garbled
        if offset == regs.STATUS:
            return regs.STATUS_LU | regs.STATUS_FD
        if offset == regs.CTRL:
            return self.ctrl
        if offset == regs.TCTL:
            return self.tctl
        if offset == regs.TDH:
            self._process_completions()
            return self.tdh
        if offset == regs.TDT:
            return self.tdt
        if offset == regs.TDLEN:
            return self.tdlen
        if offset == regs.TDBAL:
            return self.tdba & 0xFFFFFFFF
        if offset == regs.TDBAH:
            return self.tdba >> 32
        if offset == regs.RDH:
            return self.rdh
        if offset == regs.RDT:
            return self.rdt
        if offset == regs.RDLEN:
            return self.rdlen
        if offset == regs.RDBAL:
            return self.rdba & 0xFFFFFFFF
        if offset == regs.RDBAH:
            return self.rdba >> 32
        if offset == regs.RCTL:
            return self.rctl
        if offset == regs.GPRC:
            return self.gprc
        if offset == regs.MPC:
            return self.mpc
        if offset == regs.GPTC:
            self._process_completions()
            return self.gptc
        if offset == regs.TOTL:
            self._process_completions()
            return self.total_octets & 0xFFFFFFFF
        if offset == regs.TOTH:
            return self.total_octets >> 32
        if offset == regs.RAL0:
            return int.from_bytes(self.mac[:4], "little")
        if offset == regs.RAH0:
            return int.from_bytes(self.mac[4:6], "little") | regs.RAH_AV
        if offset == regs.ICR:
            value, self.icr = self.icr, 0  # read-to-clear
            return value
        if offset in (regs.IMS, regs.IMC):
            return self.ims
        if offset == regs.MRQC:
            return self.mrqc
        rxq = self._rxq_for_offset(offset)
        if rxq is not None:
            queue, base = rxq
            state = self.rx_queues[queue]
            if base == regs.RDBAL:
                return state.rdba & 0xFFFFFFFF
            if base == regs.RDBAH:
                return state.rdba >> 32
            if base == regs.RDLEN:
                return state.rdlen
            if base == regs.RDH:
                return state.rdh
            return state.rdt
        return 0

    def mmio_write(self, offset: int, size: int, value: int) -> None:
        if offset == regs.CTRL:
            if value & regs.CTRL_RST:
                self.reset()
                return
            self.ctrl = value
        elif offset == regs.TCTL:
            self.tctl = value
        elif offset == regs.TIPG:
            self.tipg = value
        elif offset == regs.TDBAL:
            self.tdba = (self.tdba & ~0xFFFFFFFF) | (value & 0xFFFFFFFF)
        elif offset == regs.TDBAH:
            self.tdba = (self.tdba & 0xFFFFFFFF) | (value << 32)
        elif offset == regs.TDLEN:
            if value % regs.TDESC_SIZE or value // regs.TDESC_SIZE > self.ring_entries_max:
                # Hardware ignores out-of-spec ring lengths; it must not
                # fault the CPU store that wrote them.
                self.kernel.dmesg(f"e1000e device: ignoring bad TDLEN {value:#x}")
            else:
                self.tdlen = value
        elif offset == regs.TDH:
            self.tdh = value % max(self.ring_entries, 1)
        elif offset == regs.TDT:
            self.tdt = value % max(self.ring_entries, 1)
            self._dma_kick()
        elif offset == regs.IMS:
            self.ims |= value
        elif offset == regs.IMC:
            self.ims &= ~value
        elif offset == regs.RCTL:
            self.rctl = value
        elif offset == regs.RDBAL:
            self.rdba = (self.rdba & ~0xFFFFFFFF) | (value & 0xFFFFFFFF)
        elif offset == regs.RDBAH:
            self.rdba = (self.rdba & 0xFFFFFFFF) | (value << 32)
        elif offset == regs.RDLEN:
            if value % regs.RDESC_SIZE or value // regs.RDESC_SIZE > self.ring_entries_max:
                self.kernel.dmesg(f"e1000e device: ignoring bad RDLEN {value:#x}")
            else:
                self.rdlen = value
        elif offset == regs.RDH:
            self.rdh = value % max(self.rx_ring_entries, 1)
        elif offset == regs.RDT:
            self.rdt = value % max(self.rx_ring_entries, 1)
        elif offset == regs.MRQC:
            self.mrqc = value
        else:
            rxq = self._rxq_for_offset(offset)
            if rxq is not None:
                queue, base = rxq
                state = self.rx_queues[queue]
                if base == regs.RDBAL:
                    state.rdba = (state.rdba & ~0xFFFFFFFF) | (value & 0xFFFFFFFF)
                elif base == regs.RDBAH:
                    state.rdba = (state.rdba & 0xFFFFFFFF) | (value << 32)
                elif base == regs.RDLEN:
                    if (value % regs.RDESC_SIZE
                            or value // regs.RDESC_SIZE > self.ring_entries_max):
                        self.kernel.dmesg(
                            f"e1000e device: ignoring bad RDLEN {value:#x} "
                            f"for queue {queue}"
                        )
                    else:
                        state.rdlen = value
                elif base == regs.RDH:
                    state.rdh = value % max(state.entries(regs.RDESC_SIZE), 1)
                elif base == regs.RDT:
                    state.rdt = value % max(state.entries(regs.RDESC_SIZE), 1)
        # Stats registers and unknown offsets ignore writes, like hardware.

    # -- DMA engine -----------------------------------------------------------------

    def _dma_kick(self) -> None:
        """TDT moved: fetch new descriptors and put frames on the wire."""
        if not (self.tctl & regs.TCTL_EN) or not self.ring_entries:
            return
        self._process_completions()
        ram = self.kernel.ram
        n = self.ring_entries
        # Descriptors [next_fetch, tdt) are new.  We track the fetch point
        # implicitly: everything in flight + completed equals [0..) modulo
        # ring; the next to fetch is tdh + len(in_flight).
        next_fetch = (self.tdh + len(self._in_flight)) % n
        now = self._now()
        wire_at = max(self._wire_free_at, now)
        while next_fetch != self.tdt:
            desc_phys = self.tdba + next_fetch * regs.TDESC_SIZE
            try:
                raw = ram.read(desc_phys, regs.TDESC_SIZE)
            except MemoryFault:
                self._master_abort(f"descriptor fetch at {desc_phys:#x}")
                return
            buf_addr, length, _cso, cmd, _status, _css, _special = struct.unpack(
                "<QHBBBBH", raw
            )
            try:
                payload = ram.read(buf_addr, length)  # DMA: unguarded
            except MemoryFault:
                self._master_abort(f"payload fetch at {buf_addr:#x}")
                return
            wire_at += self._cycles_for_frame(length)
            if self.fault_injector is not None:
                wire_at += self.fault_injector.dma_stall_cycles(length)
            tp = self._tp_fetch
            if tp.enabled:
                tp.emit(index=next_fetch, addr=buf_addr, len=length)
            self._in_flight.append((wire_at, next_fetch))
            self.sink.deliver(payload)
            self.gptc += 1
            self.total_octets += length
            next_fetch = (next_fetch + 1) % n
        self._wire_free_at = wire_at
        if self.clock is None:
            self._process_completions()

    def _master_abort(self, what: str) -> None:
        """A DMA access hit an invalid bus address: log + disable TX.

        Hardware sets a fatal error status and stops the DMA engine;
        crucially the CPU instruction that triggered the kick is NOT
        faulted — the damage shows up asynchronously."""
        self.dma_errors += 1
        self.tctl &= ~regs.TCTL_EN
        self.kernel.dmesg(f"e1000e device: DMA master abort ({what})")

    def _process_completions(self) -> None:
        """Write back DD for frames whose wire time has passed."""
        now = self._now()
        ram = self.kernel.ram
        while self._in_flight:
            done_at, idx = self._in_flight[0]
            if self.clock is not None and done_at > now:
                break
            self._in_flight.popleft()
            desc_phys = self.tdba + idx * regs.TDESC_SIZE
            status_off = desc_phys + 12  # u8 status
            try:
                status = ram.read(status_off, 1)[0] | regs.TDESC_STATUS_DD
                ram.write(status_off, bytes([status]))
            except MemoryFault:
                self._master_abort(f"DD write-back at {status_off:#x}")
                return
            tp = self._tp_writeback
            if tp.enabled:
                tp.emit(index=idx)
            self.tdh = (idx + 1) % self.ring_entries
            self.icr |= regs.ICR_TXDW
        self._maybe_interrupt()

    # -- RX engine --------------------------------------------------------------------

    def receive(self, frame: bytes) -> bool:
        """A frame arrives from the wire: DMA it into the next RX buffer
        of the queue RSS steers it to (queue 0 without RSS).

        Returns True if delivered; False (and counts MPC) when receive is
        disabled or the driver has not replenished descriptors — exactly
        how the hardware drops on ring exhaustion.
        """
        if not (self.rctl & regs.RCTL_EN) or not self.rx_ring_entries:
            self.mpc += 1
            return False
        queue = self.rss_queue(frame)
        state = self.rx_queues[queue]
        n = state.entries(regs.RDESC_SIZE)
        # Hardware owns descriptors [rdh, rdt): empty ring when rdh == rdt.
        if state.rdh == state.rdt:
            self.mpc += 1
            return False
        if len(frame) > regs.RX_BUFFER_SIZE:
            self.mpc += 1
            return False
        ram = self.kernel.ram
        desc_phys = state.rdba + state.rdh * regs.RDESC_SIZE
        try:
            raw = ram.read(desc_phys, regs.RDESC_SIZE)
            buf_addr = struct.unpack("<Q", raw[:8])[0]
            ram.write(buf_addr, frame)  # DMA write: unguarded by design
            # Write back length + DD|EOP status.
            ram.write(desc_phys + 8, struct.pack("<H", len(frame)))
            ram.write(
                desc_phys + 12,
                bytes([regs.RDESC_STATUS_DD | regs.RDESC_STATUS_EOP]),
            )
        except MemoryFault:
            self._master_abort(f"RX DMA at queue {queue} slot {state.rdh}")
            self.mpc += 1
            return False
        tp = self._tp_rx
        if tp.enabled:
            tp.emit(index=state.rdh, len=len(frame))
        state.rdh = (state.rdh + 1) % n
        state.packets += 1
        self.gprc += 1
        if queue == 0:
            # Legacy cause + line interrupt through the driver's ISR.
            self.icr |= regs.ICR_RXT0
            self._maybe_interrupt()
        else:
            # Per-queue MSI-X-style vector: notify the netdev's NAPI
            # context while the cause is unmasked; the poller masks it
            # and drains in batches.
            cause = regs.icr_rxq(queue)
            self.icr |= cause
            if (self.ims & cause) and self.napi_notify is not None:
                self.napi_notify(queue)
        return True

    def _maybe_interrupt(self) -> None:
        """Raise the line when an unmasked cause is pending (IMS gates)."""
        if self.icr & self.ims:
            self.kernel.irq.raise_irq(self.irq_line)

    def sync(self) -> None:
        """Process pending completions against the current clock.

        Real hardware writes DD back autonomously as frames leave the
        wire; the lazy model needs an explicit poke when simulated time
        passes without any MMIO access (e.g. while the sender sleeps)."""
        self._process_completions()

    # -- introspection ---------------------------------------------------------------

    def stats(self) -> dict[str, int]:
        self._process_completions()
        return {
            "packets": self.gptc,
            "octets": self.total_octets,
            "in_flight": len(self._in_flight),
            "tdh": self.tdh,
            "tdt": self.tdt,
        }


__all__ = ["E1000EDevice", "RxQueueState"]
