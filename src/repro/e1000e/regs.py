"""Register map for the simulated Intel 1 GbE MAC (e1000/e1000e family).

Offsets follow the Intel 8254x/82574 software developer's manual subset
that the TX path and driver bring-up actually touch.  The test NIC in the
paper is "an Intel CT (EXPI9301CTBLK) PCIe board that contains an Intel
82574L chipset" (§4.2; the paper spells it 82754L).
"""

from __future__ import annotations

# Device control / status
CTRL = 0x0000
STATUS = 0x0008
EECD = 0x0010

# Interrupts
ICR = 0x00C0
IMS = 0x00D0
IMC = 0x00D8

# Receive
RCTL = 0x0100
RDBAL = 0x2800
RDBAH = 0x2804
RDLEN = 0x2808
RDH = 0x2810
RDT = 0x2818

# Multi-queue receive: queue q's register block sits at the queue-0
# offset plus q * RXQ_STRIDE (the 82574 puts RDBAL1 at 0x2900).  The
# guarded driver only ever programs queue 0; queues >= 1 are owned by
# the kernel-side netdev (RSS scale-out).
RXQ_STRIDE = 0x100
MAX_RX_QUEUES = 4
MRQC = 0x5818           # multiple receive queues command
MRQC_RSS_EN = 1 << 0    # enable RSS hashing/steering


def rxq_reg(base: int, queue: int) -> int:
    """The per-queue offset of an RX ring register (RDBAL/RDH/...)."""
    return base + queue * RXQ_STRIDE


def icr_rxq(queue: int) -> int:
    """The per-queue RX interrupt cause (82574 MSI-X style vectors)."""
    return 1 << (20 + queue)

# Transmit
TCTL = 0x0400
TIPG = 0x0410
TDBAL = 0x3800
TDBAH = 0x3804
TDLEN = 0x3808
TDH = 0x3810
TDT = 0x3818
TXDCTL = 0x3828

# Statistics
GPRC = 0x4074   # good packets received
MPC = 0x4010    # missed packets (RX ring exhausted)
GPTC = 0x4080   # good packets transmitted
TOTL = 0x40C4   # total octets transmitted (low)
TOTH = 0x40C8   # total octets transmitted (high)
COLC = 0x4028   # collision count (always 0 here)

# Receive address (MAC)
RAL0 = 0x5400
RAH0 = 0x5404

# Register window size (BAR0)
BAR_SIZE = 0x20000

# CTRL bits
CTRL_RST = 1 << 26
CTRL_SLU = 1 << 6

# STATUS bits
STATUS_LU = 1 << 1
STATUS_FD = 1 << 0

# TCTL bits
TCTL_EN = 1 << 1
TCTL_PSP = 1 << 3

# RCTL bits
RCTL_EN = 1 << 1
RCTL_BAM = 1 << 15

# ICR bits
ICR_TXDW = 1 << 0
ICR_RXT0 = 1 << 7

# RAH bits
RAH_AV = 1 << 31

# Legacy TX descriptor layout (16 bytes):
#   u64 buffer_addr; u16 length; u8 cso; u8 cmd; u8 status; u8 css; u16 special
TDESC_SIZE = 16

# Legacy RX descriptor layout (16 bytes):
#   u64 buffer_addr; u16 length; u16 csum; u8 status; u8 errors; u16 special
RDESC_SIZE = 16
RDESC_STATUS_DD = 0x01
RDESC_STATUS_EOP = 0x02
RX_BUFFER_SIZE = 2048
TDESC_CMD_EOP = 0x01
TDESC_CMD_IFCS = 0x02
TDESC_CMD_RS = 0x08
TDESC_STATUS_DD = 0x01

# Default ring geometry (256 descriptors, like the driver's default).
DEFAULT_RING_ENTRIES = 256

__all__ = [name for name in dir() if name.isupper()] + ["icr_rxq", "rxq_reg"]
