'''The e1000e-style network driver, in mini-C (the paper's §4 workload).

The real evaluation extracted the in-tree e1000e driver (~19k LoC) and
rebuilt it out-of-tree with and without the CARAT KOP transform, with "no
code modified in the driver" (§4.1).  This is the equivalent driver for
our simulated 82574L: probe/reset/ring bring-up, the descriptor-queueing
hot path, DD-writeback TX cleaning, MMIO register I/O, and stats — every
memory-touching pattern the paper calls out as what actually gets guarded
("construct packet headers and transfer descriptors, queue transfer
descriptors, and access MMIO device registers", §4).

The exact same source compiles as the baseline (no transform) and the
protected module (guard pass on), mirroring §4.1.
'''

DRIVER_NAME = "e1000e"

DRIVER_SOURCE = r"""
/* e1000e-style gigabit Ethernet driver for the simulated 82574L. */

enum {
    REG_CTRL   = 0x0000,
    REG_STATUS = 0x0008,
    REG_ICR    = 0x00C0,
    REG_IMS    = 0x00D0,
    REG_IMC    = 0x00D8,
    REG_RCTL   = 0x0100,
    REG_TCTL   = 0x0400,
    REG_TIPG   = 0x0410,
    REG_RDBAL  = 0x2800,
    REG_RDBAH  = 0x2804,
    REG_RDLEN  = 0x2808,
    REG_RDH    = 0x2810,
    REG_RDT    = 0x2818,
    REG_TDBAL  = 0x3800,
    REG_TDBAH  = 0x3804,
    REG_TDLEN  = 0x3808,
    REG_TDH    = 0x3810,
    REG_TDT    = 0x3818,
    REG_GPRC   = 0x4074,
    REG_MPC    = 0x4010,
    REG_GPTC   = 0x4080,
    REG_TOTL   = 0x40C4,
    REG_RAL0   = 0x5400,
    REG_RAH0   = 0x5404
};

enum {
    CTRL_RST  = 1 << 26,
    CTRL_SLU  = 1 << 6,
    STATUS_LU = 1 << 1,
    TCTL_EN   = 1 << 1,
    TCTL_PSP  = 1 << 3,
    RCTL_EN   = 1 << 1,
    RCTL_BAM  = 1 << 15
};

enum {
    TDESC_SIZE   = 16,
    RDESC_SIZE   = 16,
    RING_ENTRIES = 256,
    RX_ENTRIES   = 128,
    RX_BUF_SIZE  = 2048,
    CMD_EOP      = 0x01,
    CMD_IFCS     = 0x02,
    CMD_RS       = 0x08,
    STATUS_DD    = 0x01,
    RX_DD        = 0x01,
    RX_EOP       = 0x02
};

enum {
    ETH_HLEN      = 14,
    ETH_ZLEN      = 60,
    ETH_FRAME_LEN = 1514,
    BAR_SIZE      = 0x20000
};

enum {   /* errno values the stack understands */
    EINVAL = 22,
    EBUSY  = 16,
    ENODEV = 19,
    ENETDOWN = 100
};

extern void *kmalloc(long size, int flags);
extern void kfree(void *p);
extern int printk(char *fmt, ...);
extern long ioremap(long phys, long size);
extern long virt_to_phys(void *p);
extern void udelay(long usec);
extern void netif_rx(void *data, int len);
extern int request_irq(int line, char *handler);
extern void free_irq(int line);

struct e1000_ring {
    long desc_virt;        /* descriptor ring base (kernel virtual) */
    long desc_phys;        /* same, physical, programmed into TDBA */
    int  count;
    int  next_to_use;
    int  next_to_clean;
    int  pad;
};

struct e1000_rx_ring {
    long desc_virt;
    long desc_phys;
    long buffers;          /* one RX_BUF_SIZE buffer per descriptor */
    int  count;
    int  next_to_clean;
};

struct e1000_stats {
    long tx_packets;
    long tx_bytes;
    long tx_errors;
    long tx_busy;
    long restarts;
    long cleaned;
    long rx_packets;
    long rx_bytes;
};

struct e1000_adapter {
    long mmio;             /* ioremapped BAR0 */
    long mmio_phys;
    struct e1000_ring tx;
    struct e1000_rx_ring rx;
    struct e1000_stats stats;
    int  up;
    int  mac_lo;
    int  mac_hi;
    int  irq_line;
    long irq_count;
};

enum { ICR_TXDW = 1 << 0, ICR_RXT0 = 1 << 7 };

struct e1000_adapter adapter;

/* ---- register accessors (each is a guarded MMIO load/store) ---------- */

static unsigned int er32(int reg) {
    unsigned int *p = (unsigned int *)(adapter.mmio + (long)reg);
    return *p;
}

static void ew32(int reg, unsigned int val) {
    unsigned int *p = (unsigned int *)(adapter.mmio + (long)reg);
    *p = val;
}

/* ---- descriptor helpers ---------------------------------------------- */

static long tx_desc_addr(int idx) {
    return adapter.tx.desc_virt + (long)idx * TDESC_SIZE;
}

static void tx_fill_desc(int idx, long buf_phys, int len, int cmd) {
    long base = tx_desc_addr(idx);
    long *addr_p = (long *)base;
    *addr_p = buf_phys;
    unsigned short *len_p = (unsigned short *)(base + 8);
    *len_p = (unsigned short)len;
    unsigned char *cso_p = (unsigned char *)(base + 10);
    *cso_p = 0;
    unsigned char *cmd_p = (unsigned char *)(base + 11);
    *cmd_p = (unsigned char)cmd;
    unsigned char *sta_p = (unsigned char *)(base + 12);
    *sta_p = 0;
    unsigned char *css_p = (unsigned char *)(base + 13);
    *css_p = 0;
    unsigned short *spc_p = (unsigned short *)(base + 14);
    *spc_p = 0;
}

static int tx_desc_done(int idx) {
    unsigned char *sta_p = (unsigned char *)(tx_desc_addr(idx) + 12);
    return (*sta_p & STATUS_DD) != 0;
}

static int tx_ring_next(int idx) {
    idx = idx + 1;
    if (idx >= adapter.tx.count) {
        idx = 0;
    }
    return idx;
}

static int tx_ring_space(void) {
    int used = adapter.tx.next_to_use - adapter.tx.next_to_clean;
    if (used < 0) {
        used += adapter.tx.count;
    }
    return adapter.tx.count - 1 - used;
}

/* ---- TX clean path (DD write-back driven, like the real driver) ------ */

static int e1000e_clean_tx_irq(void) {
    int cleaned = 0;
    int i = adapter.tx.next_to_clean;
    while (i != adapter.tx.next_to_use) {
        if (!tx_desc_done(i)) {
            break;
        }
        i = tx_ring_next(i);
        cleaned = cleaned + 1;
    }
    adapter.tx.next_to_clean = i;
    adapter.stats.cleaned += cleaned;
    return cleaned;
}

/* ---- RX path ------------------------------------------------------------ */

static long rx_desc_addr(int idx) {
    return adapter.rx.desc_virt + (long)idx * RDESC_SIZE;
}

static int e1000e_setup_rx_resources(void) {
    long bytes = (long)RX_ENTRIES * RDESC_SIZE;
    adapter.rx.desc_virt = (long)kmalloc(bytes, 0);
    adapter.rx.buffers = (long)kmalloc((long)RX_ENTRIES * RX_BUF_SIZE, 0);
    if (adapter.rx.desc_virt == 0 || adapter.rx.buffers == 0) {
        return -EINVAL;
    }
    /* Point every descriptor at its buffer; clear status. */
    for (int i = 0; i < RX_ENTRIES; i++) {
        long base = rx_desc_addr(i);
        long buf = adapter.rx.buffers + (long)i * RX_BUF_SIZE;
        long *addr_p = (long *)base;
        *addr_p = virt_to_phys((void *)buf);
        unsigned short *len_p = (unsigned short *)(base + 8);
        *len_p = 0;
        unsigned char *sta_p = (unsigned char *)(base + 12);
        *sta_p = 0;
    }
    adapter.rx.desc_phys = virt_to_phys((void *)adapter.rx.desc_virt);
    adapter.rx.count = RX_ENTRIES;
    adapter.rx.next_to_clean = 0;
    return 0;
}

static void e1000e_configure_rx(void) {
    ew32(REG_RDBAL, (unsigned int)(adapter.rx.desc_phys & 0xFFFFFFFF));
    ew32(REG_RDBAH, (unsigned int)(adapter.rx.desc_phys >> 32));
    ew32(REG_RDLEN, (unsigned int)(RX_ENTRIES * RDESC_SIZE));
    ew32(REG_RDH, 0);
    /* Hand the hardware all but one descriptor (the classic e1000 gap). */
    ew32(REG_RDT, RX_ENTRIES - 1);
    ew32(REG_RCTL, RCTL_EN | RCTL_BAM);
}

/* Poll completed RX descriptors, hand frames to the stack, recycle the
   buffers.  Returns the number of frames processed (<= budget). */
__export int e1000e_clean_rx_irq(int budget) {
    int cleaned = 0;
    int i = adapter.rx.next_to_clean;
    while (cleaned < budget) {
        long base = rx_desc_addr(i);
        unsigned char *sta_p = (unsigned char *)(base + 12);
        if ((*sta_p & RX_DD) == 0) {
            break;
        }
        unsigned short *len_p = (unsigned short *)(base + 8);
        int len = (int)*len_p;
        long buf = adapter.rx.buffers + (long)i * RX_BUF_SIZE;
        adapter.stats.rx_packets += 1;
        adapter.stats.rx_bytes += len;
        netif_rx((void *)buf, len);
        /* Recycle: clear status, return the descriptor via RDT. */
        *sta_p = 0;
        ew32(REG_RDT, (unsigned int)i);
        i = i + 1;
        if (i >= adapter.rx.count) {
            i = 0;
        }
        cleaned = cleaned + 1;
    }
    adapter.rx.next_to_clean = i;
    return cleaned;
}

/* ---- ring setup -------------------------------------------------------- */

static int e1000e_setup_tx_resources(void) {
    long bytes = (long)RING_ENTRIES * TDESC_SIZE;
    adapter.tx.desc_virt = (long)kmalloc(bytes, 0);
    if (adapter.tx.desc_virt == 0) {
        return -EINVAL;
    }
    /* Zero the ring (guarded stores — driver-touched memory). */
    long *p = (long *)adapter.tx.desc_virt;
    for (long i = 0; i < bytes / 8; i++) {
        p[i] = 0;
    }
    adapter.tx.desc_phys = virt_to_phys((void *)adapter.tx.desc_virt);
    adapter.tx.count = RING_ENTRIES;
    adapter.tx.next_to_use = 0;
    adapter.tx.next_to_clean = 0;
    return 0;
}

static void e1000e_configure_tx(void) {
    ew32(REG_TDBAL, (unsigned int)(adapter.tx.desc_phys & 0xFFFFFFFF));
    ew32(REG_TDBAH, (unsigned int)(adapter.tx.desc_phys >> 32));
    ew32(REG_TDLEN, (unsigned int)(RING_ENTRIES * TDESC_SIZE));
    ew32(REG_TDH, 0);
    ew32(REG_TDT, 0);
    ew32(REG_TIPG, 10);
    ew32(REG_TCTL, TCTL_EN | TCTL_PSP);
}

static void e1000e_reset_hw(void) {
    ew32(REG_CTRL, CTRL_RST);
    udelay(10);
    ew32(REG_CTRL, CTRL_SLU);
}

/* ---- probe / remove ----------------------------------------------------- */

__export int e1000e_probe(long mmio_phys) {
    adapter.mmio_phys = mmio_phys;
    adapter.mmio = ioremap(mmio_phys, BAR_SIZE);
    if (adapter.mmio == 0) {
        return -ENODEV;
    }
    e1000e_reset_hw();
    unsigned int status = er32(REG_STATUS);
    if ((status & STATUS_LU) == 0) {
        printk("e1000e: link is down");
        return -ENODEV;
    }
    int rc = e1000e_setup_tx_resources();
    if (rc != 0) {
        return rc;
    }
    e1000e_configure_tx();
    rc = e1000e_setup_rx_resources();
    if (rc != 0) {
        return rc;
    }
    e1000e_configure_rx();
    adapter.mac_lo = (int)er32(REG_RAL0);
    adapter.mac_hi = (int)(er32(REG_RAH0) & 0xFFFF);
    adapter.up = 1;
    printk("e1000e: probe ok, mmio %lx ring %lx", adapter.mmio,
           adapter.tx.desc_virt);
    return 0;
}

__export int e1000e_remove(void) {
    if (!adapter.up) {
        return -ENODEV;
    }
    adapter.up = 0;
    ew32(REG_TCTL, 0);
    ew32(REG_RCTL, 0);
    ew32(REG_IMC, 0xFFFFFFFF);
    kfree((void *)adapter.tx.desc_virt);
    adapter.tx.desc_virt = 0;
    kfree((void *)adapter.rx.desc_virt);
    kfree((void *)adapter.rx.buffers);
    adapter.rx.desc_virt = 0;
    adapter.rx.buffers = 0;
    printk("e1000e: removed");
    return 0;
}

__export int e1000e_up(void) {
    if (adapter.tx.desc_virt == 0) {
        return -ENODEV;
    }
    adapter.up = 1;
    ew32(REG_TCTL, TCTL_EN | TCTL_PSP);
    return 0;
}

__export int e1000e_down(void) {
    adapter.up = 0;
    ew32(REG_TCTL, 0);
    return 0;
}

/* ---- the hot path: queue one frame -------------------------------------- */

__export int e1000e_xmit_frame(void *data, int len) {
    if (!adapter.up) {
        adapter.stats.tx_errors += 1;
        return -ENETDOWN;
    }
    if (len < ETH_HLEN || len > ETH_FRAME_LEN) {
        adapter.stats.tx_errors += 1;
        return -EINVAL;
    }
    if (tx_ring_space() < 1) {
        /* Opportunistic clean before declaring the ring full. */
        e1000e_clean_tx_irq();
        if (tx_ring_space() < 1) {
            adapter.stats.tx_busy += 1;
            return -EBUSY;
        }
    }
    /* Pad runt frames to the wire minimum (touches the skb tail). */
    int wire_len = len;
    if (wire_len < ETH_ZLEN) {
        char *tail = (char *)data;
        for (int i = len; i < ETH_ZLEN; i++) {
            tail[i] = 0;
        }
        wire_len = ETH_ZLEN;
    }
    int idx = adapter.tx.next_to_use;
    long buf_phys = virt_to_phys(data);
    tx_fill_desc(idx, buf_phys, wire_len, CMD_EOP | CMD_IFCS | CMD_RS);
    adapter.tx.next_to_use = tx_ring_next(idx);
    adapter.stats.tx_packets += 1;
    adapter.stats.tx_bytes += wire_len;
    /* Doorbell: tell the NIC new descriptors are ready. */
    ew32(REG_TDT, (unsigned int)adapter.tx.next_to_use);
    /* Amortized clean, as the real driver does from the xmit path when
       the ring is more than half full. */
    if (tx_ring_space() < adapter.tx.count / 2) {
        e1000e_clean_tx_irq();
    }
    return 0;
}

/* ---- interrupt mode (optional; the evaluation path polls) --------------- */

/* The ISR: read-to-clear ICR, then service whatever fired. */
__export int e1000e_intr(int line) {
    unsigned int icr = er32(REG_ICR);
    if (icr == 0) {
        return 0;           /* not ours / spurious */
    }
    adapter.irq_count += 1;
    if (icr & ICR_TXDW) {
        e1000e_clean_tx_irq();
    }
    if (icr & ICR_RXT0) {
        e1000e_clean_rx_irq(64);
    }
    return 1;
}

__export int e1000e_irq_enable(int line) {
    if (request_irq(line, "e1000e_intr") != 0) {
        return -EINVAL;
    }
    adapter.irq_line = line;
    ew32(REG_IMS, ICR_TXDW | ICR_RXT0);
    return 0;
}

__export int e1000e_irq_disable(void) {
    ew32(REG_IMC, 0xFFFFFFFF);
    if (adapter.irq_line != 0) {
        free_irq(adapter.irq_line);
        adapter.irq_line = 0;
    }
    return 0;
}

/* ---- stats / introspection (exported for the netdev glue) --------------- */

__export long e1000e_get_stat(int which) {
    if (which == 0) { return adapter.stats.tx_packets; }
    if (which == 1) { return adapter.stats.tx_bytes; }
    if (which == 2) { return adapter.stats.tx_errors; }
    if (which == 3) { return adapter.stats.tx_busy; }
    if (which == 4) { return adapter.stats.cleaned; }
    if (which == 5) { return (long)tx_ring_space(); }
    if (which == 6) { return (long)adapter.tx.next_to_use; }
    if (which == 7) { return (long)adapter.tx.next_to_clean; }
    if (which == 8) { return adapter.stats.rx_packets; }
    if (which == 9) { return adapter.stats.rx_bytes; }
    if (which == 10) { return adapter.irq_count; }
    return -1;
}

__export long e1000e_read_reg(int reg) {
    return (long)er32(reg);
}

__export int init_module(void) {
    adapter.up = 0;
    printk("e1000e: module loaded");
    return 0;
}

__export int cleanup_module(void) {
    if (adapter.up) {
        e1000e_remove();
    }
    printk("e1000e: module unloaded");
    return 0;
}
"""


def driver_source_lines() -> int:
    """Non-blank source lines of the driver (for the abl3 bench)."""
    return sum(1 for line in DRIVER_SOURCE.splitlines() if line.strip())


__all__ = ["DRIVER_NAME", "DRIVER_SOURCE", "driver_source_lines"]
