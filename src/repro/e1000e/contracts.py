"""Trusted verification contracts for the e1000e mini-driver.

These are the invariants the load-time verifier (`repro.passes.absint`)
cannot derive from the module IR alone but which the kernel vouches for
— the role eBPF helper annotations play for the eBPF verifier.  Each is
justified by a kernel-enforced fact:

- ``e1000e_xmit_frame``'s data pointer is the frame buffer the netdev
  layer hands in, always a ``kmalloc``-backed (direct-map) allocation.
- ``e1000e_read_reg`` is reached only through the chardev ioctl path,
  which masks the register offset to the BAR window before calling.
- ``adapter.mmio`` holds an ``ioremap`` cookie (vmalloc window) from
  probe until remove; ring pointers hold ``kmalloc`` results; ring
  geometry fields are written once at setup from compile-time constants
  and only ever advanced modulo the ring size.

Contracts are part of the trusted computing base: their canonical
digest is bound into every verification certificate, and insmod
re-verifies against the kernel's registered set — a module cannot ship
its own.
"""

from __future__ import annotations

from ..passes.absint import ArgContract, ContractSet, FieldContract
from .regs import BAR_SIZE

RING_ENTRIES = 256
RX_ENTRIES = 128
TDESC_SIZE = 16
RX_BUF_SIZE = 2048

DRIVER_CONTRACTS = ContractSet([
    # netdev hands xmit a direct-map frame buffer of at least one MTU
    ArgContract("e1000e_xmit_frame", 0, area="heap", reserve=RX_BUF_SIZE),
    # ioctl path masks the register offset to the BAR before calling
    ArgContract("e1000e_read_reg", 0, lo=0, hi=BAR_SIZE - 4),
    # probe-time ioremap cookie for the whole BAR, stable until remove
    FieldContract("adapter", "mmio", area="mmio", reserve=BAR_SIZE),
    # ring descriptor arrays and RX buffer slab are kmalloc-backed
    FieldContract("adapter", "tx.desc_virt", area="heap",
                  reserve=RING_ENTRIES * TDESC_SIZE),
    FieldContract("adapter", "rx.desc_virt", area="heap",
                  reserve=RX_ENTRIES * TDESC_SIZE),
    FieldContract("adapter", "rx.buffers", area="heap",
                  reserve=RX_ENTRIES * RX_BUF_SIZE),
    # ring geometry: set once at setup, advanced modulo ring size
    FieldContract("adapter", "tx.count", lo=RING_ENTRIES, hi=RING_ENTRIES),
    FieldContract("adapter", "tx.next_to_use", lo=0, hi=RING_ENTRIES - 1),
    FieldContract("adapter", "tx.next_to_clean", lo=0, hi=RING_ENTRIES - 1),
    FieldContract("adapter", "rx.count", lo=RX_ENTRIES, hi=RX_ENTRIES),
    FieldContract("adapter", "rx.next_to_clean", lo=0, hi=RX_ENTRIES - 1),
])

__all__ = ["DRIVER_CONTRACTS"]
