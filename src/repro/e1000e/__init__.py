"""e1000e substrate: the simulated 82574L NIC and its mini-C driver."""

from .device import E1000EDevice, RxQueueState
from .driver_source import DRIVER_NAME, DRIVER_SOURCE, driver_source_lines
from .netdev import E1000ENetDev, STAT_NAMES
from . import regs

__all__ = [
    "DRIVER_NAME",
    "DRIVER_SOURCE",
    "E1000EDevice",
    "E1000ENetDev",
    "RxQueueState",
    "STAT_NAMES",
    "driver_source_lines",
    "regs",
]
