"""Verification certificates: the static-verifier analogue of a signature.

A certificate records what the load-time verifier (`repro.passes.absint`)
proved about a module *against a specific policy table and contract set*:
per-guard-site verdict bits, the policy digest/epoch the verdicts were
computed under, and the digest of the trusted contracts used.  It travels
alongside the PR 3 HMAC signature in :class:`CompiledModule`.

The kernel never trusts a certificate by itself.  At insmod it checks
that the certificate's IR digest matches the module being loaded, that
the policy digest matches the *live* table, that the contract digest
matches the kernel's registered contracts — and then re-runs the
deterministic analysis and compares verdict-for-verdict.  A certificate
can therefore only ever *lose* elisions (stale/tampered → demoted to
full dynamic guarding, or rejected under ``--verify-policy strict``);
it can never smuggle an unsound one in.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass


class CertificateError(ValueError):
    """Certificate stale, mismatched, or failing re-verification."""


@dataclass(frozen=True)
class VerificationCertificate:
    """Per-guard static verdicts bound to (IR, policy, contracts)."""

    module_name: str
    #: sha256 of the module's canonical IR bytes (same serialization the
    #: HMAC signature covers).
    ir_digest: str
    #: Content digest + epoch of the policy table verdicts were computed
    #: against.  The digest detects a *different* table; the epoch
    #: additionally detects same-content tables republished after
    #: intervening mutations (cheap staleness token for demotion).
    policy_digest: str
    policy_epoch: int
    #: Digest of the trusted contract set the analysis consumed.
    contracts_digest: str
    #: ``(function_name, verdict_bits)`` per defined function, guard
    #: sites in block order — the same ordinal scheme the execution
    #: engines use for guard site IDs.
    verdicts: tuple[tuple[str, tuple[int, ...]], ...]
    guards_proven: int = 0
    guards_dynamic: int = 0

    def payload(self) -> bytes:
        lines = [
            f"module={self.module_name}",
            f"ir={self.ir_digest}",
            f"policy={self.policy_digest}@{self.policy_epoch}",
            f"contracts={self.contracts_digest}",
        ]
        for fn, bits in self.verdicts:
            lines.append(f"{fn}:{''.join(str(b) for b in bits)}")
        return "\n".join(lines).encode()

    def digest(self) -> str:
        return hashlib.sha256(self.payload()).hexdigest()

    def verdict_map(self) -> dict[str, tuple[int, ...]]:
        return dict(self.verdicts)


__all__ = ["CertificateError", "VerificationCertificate"]
