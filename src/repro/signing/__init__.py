"""Code signing and load-time validation (paper §2, §3.2).

CARAT CAKE "performs cryptographic code signing ... used at load time to
prove to the kernel that the proper processing has been performed (e.g.,
that guards have been injected) and by which compiler"; CARAT KOP "needs
a similar code signing and validation process".

We implement that chain with HMAC-SHA256 over the module's canonical
textual serialization plus its attestation metadata.  The signing key
stands in for the build infrastructure's private key; the kernel is
provisioned with the same key (HMAC = symmetric, which is enough to model
the trust relationship — the interesting failure modes are *tampered
code*, *stripped guards*, and *forged attestation*, all of which tests
exercise).

`certificate` extends the chain with the -O3 static-verification tier:
a :class:`VerificationCertificate` records per-guard verdicts bound to a
policy-table digest/epoch, validated (and re-derived) at insmod.
"""

from .certificate import CertificateError, VerificationCertificate
from .signer import (
    ModuleSignature,
    SignatureError,
    SigningKey,
    canonical_bytes,
    sign_module,
    verify_signature,
)

__all__ = [
    "CertificateError",
    "ModuleSignature",
    "SignatureError",
    "SigningKey",
    "VerificationCertificate",
    "canonical_bytes",
    "sign_module",
    "verify_signature",
]
