"""HMAC-based module signing over the canonical IR serialization."""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass

from .. import abi
from ..ir import Module, print_module


class SignatureError(ValueError):
    """Signature missing, malformed, or failing verification."""


@dataclass(frozen=True)
class SigningKey:
    """A shared secret provisioned to both the build system and the kernel."""

    key_id: str
    secret: bytes

    @classmethod
    def generate(cls, key_id: str = "carat-kop-build") -> "SigningKey":
        # Deterministic derivation keeps test runs reproducible; a real
        # deployment would use a random key from the vendor's HSM.
        secret = hashlib.sha256(f"carat-kop::{key_id}".encode()).digest()
        return cls(key_id, secret)


@dataclass(frozen=True)
class ModuleSignature:
    """What the compiler asserts about a module, bound by an HMAC tag.

    ``guarded`` and ``has_inline_asm`` are the §2 attestations; the digest
    covers the exact IR text, so any post-signing tamper (including guard
    stripping) is detected at insmod.
    """

    module_name: str
    digest: str
    tag: str
    key_id: str
    compiler: str
    guarded: bool
    guard_count: int
    has_inline_asm: bool

    def payload(self) -> bytes:
        return "|".join(
            [
                self.module_name,
                self.digest,
                self.compiler,
                f"guarded={int(self.guarded)}",
                f"guards={self.guard_count}",
                f"asm={int(self.has_inline_asm)}",
            ]
        ).encode()


def canonical_bytes(module: Module) -> bytes:
    """The exact byte sequence a signature covers."""
    return print_module(module).encode()


def sign_module(module: Module, key: SigningKey) -> ModuleSignature:
    """Sign a compiled module, embedding the attestation metadata.

    Requires that the attestation pass ran (the metadata must exist);
    the compiler drives this ordering in :mod:`repro.core.pipeline`.
    """
    if abi.META_HAS_ASM not in module.metadata:
        raise SignatureError(
            "module lacks attestation metadata; run the attestation pass first"
        )
    digest = hashlib.sha256(canonical_bytes(module)).hexdigest()
    sig = ModuleSignature(
        module_name=module.name,
        digest=digest,
        tag="",
        key_id=key.key_id,
        compiler=str(module.metadata.get(abi.META_COMPILER, "unknown")),
        guarded=bool(module.metadata.get(abi.META_GUARDED, False)),
        guard_count=int(module.metadata.get(abi.META_GUARD_COUNT, 0)),  # type: ignore[arg-type]
        has_inline_asm=bool(module.metadata.get(abi.META_HAS_ASM, False)),
    )
    tag = hmac.new(key.secret, sig.payload(), hashlib.sha256).hexdigest()
    return ModuleSignature(**{**sig.__dict__, "tag": tag})


def verify_signature(
    module: Module, signature: ModuleSignature, key: SigningKey
) -> None:
    """Kernel-side validation; raises :class:`SignatureError` on any mismatch."""
    if signature.key_id != key.key_id:
        raise SignatureError(
            f"module {module.name}: signed with unknown key {signature.key_id!r}"
        )
    digest = hashlib.sha256(canonical_bytes(module)).hexdigest()
    if digest != signature.digest:
        raise SignatureError(
            f"module {module.name}: IR digest mismatch (module was modified "
            "after signing)"
        )
    expected = hmac.new(key.secret, signature.payload(), hashlib.sha256).hexdigest()
    if not hmac.compare_digest(expected, signature.tag):
        raise SignatureError(f"module {module.name}: bad signature tag")
    # Cross-check the attestation against the (digest-covered) metadata, so
    # a signature from one module cannot be replayed onto another.
    if bool(module.metadata.get(abi.META_GUARDED, False)) != signature.guarded:
        raise SignatureError(
            f"module {module.name}: guard attestation mismatch"
        )
    if bool(module.metadata.get(abi.META_HAS_ASM, False)) != signature.has_inline_asm:
        raise SignatureError(
            f"module {module.name}: inline-asm attestation mismatch"
        )


__all__ = [
    "ModuleSignature",
    "SignatureError",
    "SigningKey",
    "canonical_bytes",
    "sign_module",
    "verify_signature",
]
