"""Command-line entry points.

The tools mirror the paper's artifacts:

- ``caratcc``       — the compiler wrapper (§3.3, Figure 2)
- ``policy-manager``— the ioctl policy tool (§3.1, Figure 1), demo mode
- ``pktblast``      — the user-level packet test tool (§4.2)
- ``caratkop-blkblast`` — the storage twin: block I/O through repro.vblk
- ``caratkop-bench``— regenerate any paper figure
- ``caratkop-soak`` — the violation/eject/recovery fault-injection soak
- ``caratkop-trace``— the ftrace/perf-style tracing front end
"""

from __future__ import annotations

import argparse
import sys

from . import abi
from .core.pipeline import CompileOptions, compile_module
from .core.system import CaratKopSystem, SystemConfig
from .ir import print_module
from .signing import SigningKey


def caratcc_main(argv: list[str] | None = None) -> int:
    """Compile a mini-C file, optionally applying the CARAT KOP transform."""
    ap = argparse.ArgumentParser(
        prog="caratcc",
        description="CARAT KOP compiler: mini-C -> guarded, signed module IR",
    )
    ap.add_argument("source", help="mini-C source file")
    ap.add_argument("-o", "--output", help="write IR here (default: stdout)")
    ap.add_argument(
        "--kop", metavar="FILE",
        help="also write a signed .kop module container (the deployable)",
    )
    ap.add_argument("--name", default=None, help="module name")
    ap.add_argument(
        "--no-protect", action="store_true",
        help="build the baseline (no guard injection)",
    )
    ap.add_argument(
        "--optimize-guards", action="store_true",
        help="run the CARAT CAKE-style guard optimizer (ablation)",
    )
    ap.add_argument(
        "--guard-intrinsics", action="store_true",
        help="also guard privileged intrinsics (paper §5 extension)",
    )
    ap.add_argument("--stats", action="store_true", help="print transform stats")
    args = ap.parse_args(argv)

    with open(args.source) as f:
        source = f.read()
    name = args.name or args.source.rsplit("/", 1)[-1].rsplit(".", 1)[0]
    compiled = compile_module(
        source,
        CompileOptions(
            module_name=name,
            protect=not args.no_protect,
            optimize_guards=args.optimize_guards,
            guard_intrinsics=args.guard_intrinsics,
            key=SigningKey.generate(),
        ),
    )
    text = print_module(compiled.ir)
    if args.kop:
        from .core.container import save_module

        save_module(compiled, args.kop)
    if args.output:
        with open(args.output, "w") as f:
            f.write(text)
    elif not args.kop:
        sys.stdout.write(text)
    if args.stats:
        st = compiled.stats
        print(
            f"\n; source lines: {st.source_lines}\n"
            f"; functions: {st.functions}\n"
            f"; instructions: {st.instructions_after} "
            f"(x{st.code_growth:.2f} growth from guards)\n"
            f"; loads/stores: {st.loads}/{st.stores}\n"
            f"; guards: {st.guards}",
            file=sys.stderr,
        )
    return 0


def policy_manager_main(argv: list[str] | None = None) -> int:
    """Demonstrate the ioctl policy protocol against a live system."""
    ap = argparse.ArgumentParser(
        prog="policy-manager",
        description=(
            "Configure a CARAT KOP policy over /dev/carat (runs against a "
            "freshly booted simulated system; see examples/ for library use)"
        ),
    )
    ap.add_argument("--machine", default="r350", choices=["r350", "r415"])
    ap.add_argument("--regions", type=int, default=2)
    ap.add_argument(
        "--engine", default="compiled", choices=["interp", "compiled"],
        help="execution engine (compiled = translate-once closures)",
    )
    ap.add_argument("--show-stats", action="store_true")
    args = ap.parse_args(argv)

    system = CaratKopSystem(
        SystemConfig(machine=args.machine, regions=args.regions,
                     engine=args.engine)
    )
    print(f"booted {system.machine.name}; policy via /dev/carat:")
    print(system.policy_manager.describe())
    if args.show_stats:
        system.blast(size=128, count=100)
        print("after 100 packets:", system.policy_manager.stats())
    return 0


def pktblast_main(argv: list[str] | None = None) -> int:
    """The user-level raw-Ethernet test tool (paper §4.2)."""
    ap = argparse.ArgumentParser(
        prog="pktblast",
        description="send raw Ethernet packets through the simulated e1000e",
    )
    ap.add_argument("--machine", default="r350", choices=["r350", "r415"])
    ap.add_argument("--size", type=int, default=128, help="frame bytes")
    ap.add_argument("--count", type=int, default=1000, help="packets to send")
    ap.add_argument("--baseline", action="store_true", help="unguarded driver")
    ap.add_argument("--regions", type=int, default=2)
    ap.add_argument(
        "--engine", default="compiled", choices=["interp", "compiled"],
        help="execution engine (compiled = translate-once closures)",
    )
    ap.add_argument("--latency", action="store_true", help="report latencies")
    ap.add_argument(
        "--profile", action="store_true",
        help="per-function execution profile (instructions, guards, cycles)",
    )
    ap.add_argument(
        "--enforce-mode", default=None,
        choices=["audit", "panic", "eject", "isolate"],
        help="what a guard denial does (default: panic, the paper behaviour)",
    )
    ap.add_argument(
        "--opt-level", type=int, default=2, choices=[0, 1, 2, 3],
        help="guard optimization level: 0 = faithful paper build (a guard "
             "before every load/store), 1 = eliminate+hoist, 2 = adds "
             "range coalescing, 3 = adds load-time static verification "
             "(prove guards in-policy, elide them at insmod) "
             "(default: 2, the production tier)",
    )
    ap.add_argument(
        "--verify-policy", default="demote",
        choices=["strict", "demote", "off"],
        help="what insmod does with a stale or invalid -O3 verification "
             "certificate: strict = reject the module, demote = load with "
             "full dynamic guarding (default), off = ignore certificates",
    )
    ap.add_argument(
        "--policy-index", default="interval",
        choices=["linear", "interval"],
        help="region-table structure: linear = the paper's O(n) scan, "
             "interval = overlap-aware binary search (default: interval)",
    )
    ap.add_argument(
        "--cpus", type=int, default=1,
        help="simulated CPUs (cooperative model; 1 = historic behaviour)",
    )
    ap.add_argument(
        "--smp-seed", type=int, default=0,
        help="round-robin scheduler seed (0 = unsharded global order)",
    )
    ap.add_argument(
        "--workers", type=int, default=0,
        help="partition the blast across N OS processes (real parallelism)",
    )
    args = ap.parse_args(argv)

    if args.workers > 1:
        from .net.pool import pool_blast

        pool = pool_blast(
            args.workers,
            size=args.size,
            count=args.count,
            config_kwargs=dict(
                machine=args.machine, protect=not args.baseline,
                regions=args.regions, engine=args.engine,
                enforce_mode=args.enforce_mode,
                cpus=args.cpus, smp_seed=args.smp_seed,
                opt_level=args.opt_level, policy_index=args.policy_index,
                verify_policy=args.verify_policy,
            ),
        )
        technique = "baseline" if args.baseline else "carat"
        print(
            f"{technique}: {pool.packets_sent}/{pool.packets_requested} "
            f"packets across {pool.workers} workers, "
            f"{pool.wall_pps:,.0f} wall pps "
            f"(slowest worker {pool.wall_elapsed_s:.3f}s), "
            f"{pool.errors} errors, {pool.stalls} stalls"
        )
        stats = pool.guard_stats
        print(
            f"guards (merged): {stats['checks']:,} checks, "
            f"{stats['denied']} denied"
        )
        return 0

    system = CaratKopSystem(
        SystemConfig(
            machine=args.machine, protect=not args.baseline,
            regions=args.regions, engine=args.engine,
            enforce_mode=args.enforce_mode,
            cpus=args.cpus, smp_seed=args.smp_seed,
            opt_level=args.opt_level, policy_index=args.policy_index,
            verify_policy=args.verify_policy,
        )
    )
    profiler = None
    if args.profile:
        from .vm import Profiler

        profiler = Profiler()
        system.kernel.vm.profiler = profiler
    result = system.blast(
        size=args.size, count=args.count, capture_latency=args.latency
    )
    print(
        f"{system.technique}: {result.packets_sent}/{result.packets_requested} "
        f"packets, {result.throughput_pps:,.0f} pps, "
        f"{result.errors} errors, {result.stalls} stalls"
    )
    if args.latency and result.latencies:
        lat = sorted(result.latencies)
        mid = lat[len(lat) // 2]
        print(f"sendmsg latency: median {mid:,.0f} cycles, "
              f"min {lat[0]:,.0f}, max {lat[-1]:,.0f}")
    stats = system.guard_stats()
    print(f"guards: {stats['checks']:,} checks, {stats['denied']} denied, "
          f"decision cache {stats['guard_cache_hits']:,} hits / "
          f"{stats['guard_cache_misses']:,} misses")
    if profiler is not None:
        print()
        print(profiler.report())
    return 0


def blkblast_main(argv: list[str] | None = None) -> int:
    """The user-level block-I/O test tool (the storage twin of pktblast)."""
    ap = argparse.ArgumentParser(
        prog="caratkop-blkblast",
        description="drive mixed block I/O through the simulated vblk disk",
    )
    ap.add_argument("--machine", default="r350", choices=["r350", "r415"])
    ap.add_argument("--count", type=int, default=1000,
                    help="requests to issue")
    ap.add_argument("--nsect", type=int, default=2,
                    help="sectors per request")
    ap.add_argument(
        "--pattern", default="seq", choices=["seq", "rand", "hotspot"],
        help="access pattern: sequential, uniform random, or hot-spot "
             "(90%% of requests in a 1/32-of-the-disk window)",
    )
    ap.add_argument("--seed", type=int, default=1,
                    help="stream seed (same seed = same request stream)")
    ap.add_argument("--read-frac", type=int, default=50,
                    help="percentage of non-flush requests that read")
    ap.add_argument("--flush-interval", type=int, default=16,
                    help="every Nth request is a flush barrier (0 = never)")
    ap.add_argument("--baseline", action="store_true", help="unguarded driver")
    ap.add_argument("--regions", type=int, default=2)
    ap.add_argument(
        "--engine", default="compiled", choices=["interp", "compiled"],
        help="execution engine (compiled = translate-once closures)",
    )
    ap.add_argument("--latency", action="store_true", help="report latencies")
    ap.add_argument(
        "--profile", action="store_true",
        help="per-function execution profile (instructions, guards, cycles)",
    )
    ap.add_argument(
        "--enforce-mode", default=None,
        choices=["audit", "panic", "eject", "isolate"],
        help="what a guard denial does (default: panic, the paper behaviour)",
    )
    ap.add_argument(
        "--opt-level", type=int, default=2, choices=[0, 1, 2, 3],
        help="guard optimization level: 0 = faithful paper build (a guard "
             "before every load/store), 1 = eliminate+hoist, 2 = adds "
             "range coalescing, 3 = adds load-time static verification "
             "(prove guards in-policy, elide them at insmod) "
             "(default: 2, the production tier)",
    )
    ap.add_argument(
        "--verify-policy", default="demote",
        choices=["strict", "demote", "off"],
        help="what insmod does with a stale or invalid -O3 verification "
             "certificate: strict = reject the module, demote = load with "
             "full dynamic guarding (default), off = ignore certificates",
    )
    ap.add_argument(
        "--policy-index", default="interval",
        choices=["linear", "interval"],
        help="region-table structure: linear = the paper's O(n) scan, "
             "interval = overlap-aware binary search (default: interval)",
    )
    ap.add_argument(
        "--cpus", type=int, default=1,
        help="simulated CPUs (cooperative model; 1 = historic behaviour)",
    )
    ap.add_argument(
        "--smp-seed", type=int, default=0,
        help="round-robin scheduler seed (0 = unsharded global order)",
    )
    ap.add_argument(
        "--queues", default="auto", choices=["1", "2", "3", "4", "auto"],
        help="vblk I/O queue pairs (NVMe-style): auto = one per CPU "
             "(default), 1 = the historic single shared queue",
    )
    args = ap.parse_args(argv)

    queues = args.queues if args.queues == "auto" else int(args.queues)
    system = CaratKopSystem(
        SystemConfig(
            machine=args.machine, driver="vblk", protect=not args.baseline,
            regions=args.regions, engine=args.engine,
            enforce_mode=args.enforce_mode,
            cpus=args.cpus, smp_seed=args.smp_seed,
            opt_level=args.opt_level, policy_index=args.policy_index,
            verify_policy=args.verify_policy, queues=queues,
        )
    )
    profiler = None
    if args.profile:
        from .vm import Profiler

        profiler = Profiler()
        system.kernel.vm.profiler = profiler
    result = system.blkblast(
        count=args.count, nsect=args.nsect, pattern=args.pattern,
        seed=args.seed, read_frac=args.read_frac,
        flush_interval=args.flush_interval, capture_latency=args.latency,
    )
    print(
        f"{system.technique}: {result.ops_done}/{result.ops_requested} ops "
        f"({result.reads} reads, {result.writes} writes, "
        f"{result.flushes} flushes), {result.throughput_iops:,.0f} iops, "
        f"{result.errors} errors, {result.stalls} stalls"
    )
    print(
        f"moved: {result.bytes_read:,} bytes read, "
        f"{result.bytes_written:,} bytes written"
    )
    for row in system.device.queue_stats():
        if not row["created"] or (row["queue"] != 0 and not row["doorbells"]):
            continue
        kind = "admin" if row["queue"] == 0 else "io"
        print(
            f"queue[{row['queue']}] ({kind}): {row['doorbells']} doorbells, "
            f"{row['fetched']} fetched, {row['completed']} completed, "
            f"{row['errors']} errors"
        )
    if args.latency and result.latencies:
        lat = sorted(result.latencies)
        mid = lat[len(lat) // 2]
        print(f"request latency: median {mid:,.0f} cycles, "
              f"min {lat[0]:,.0f}, max {lat[-1]:,.0f}")
    stats = system.guard_stats()
    print(f"guards: {stats['checks']:,} checks, {stats['denied']} denied, "
          f"decision cache {stats['guard_cache_hits']:,} hits / "
          f"{stats['guard_cache_misses']:,} misses")
    if profiler is not None:
        print()
        print(profiler.report())
    return 0


def soak_main(argv: list[str] | None = None) -> int:
    """Run the violation->eject->recovery soak (fault-injection harness)."""
    import json

    from .faults import FaultInjector, run_soak
    from .faults.soak import SoakError

    ap = argparse.ArgumentParser(
        prog="caratkop-soak",
        description=(
            "repeatedly violate policy in eject mode under device fault "
            "injection; audit every rollback for leaks"
        ),
    )
    ap.add_argument("--cycles", type=int, default=50)
    ap.add_argument(
        "--machine", default=None, choices=["r350", "r415"],
        help="machine model (default: untimed functional run)",
    )
    ap.add_argument(
        "--engine", default="compiled", choices=["interp", "compiled"],
    )
    ap.add_argument("--size", type=int, default=128, help="frame bytes")
    ap.add_argument("--count", type=int, default=20,
                    help="packets per recovery blast")
    ap.add_argument("--mmio-garble-period", type=int, default=7)
    ap.add_argument("--dma-stall-period", type=int, default=13)
    ap.add_argument("--irq-drop-period", type=int, default=5)
    ap.add_argument("--xmit-fail-period", type=int, default=11)
    ap.add_argument("--no-vblk", action="store_true",
                    help="NIC-only soak (skip the vblk block stack half)")
    ap.add_argument("--blk-count", type=int, default=16,
                    help="block ops per vblk recovery blast")
    ap.add_argument("--vblk-desc-garble-period", type=int, default=9)
    ap.add_argument("--vblk-stall-period", type=int, default=17)
    ap.add_argument("--vblk-writeback-drop-period", type=int, default=23)
    ap.add_argument("--vblk-doorbell-drop-period", type=int, default=27,
                    help="swallow every Nth queue doorbell kick (0 = off)")
    ap.add_argument("--vblk-cq-stall-period", type=int, default=31,
                    help="stall every Nth completion-queue drain (0 = off)")
    ap.add_argument("--blk-cpus", type=int, default=2,
                    help="CPUs (= I/O queues) for the vblk soak half")
    ap.add_argument("--report", metavar="FILE",
                    help="write the JSON violation/recovery report here")
    args = ap.parse_args(argv)

    injector = FaultInjector(
        mmio_garble_period=args.mmio_garble_period,
        dma_stall_period=args.dma_stall_period,
        irq_drop_period=args.irq_drop_period,
        xmit_fail_period=args.xmit_fail_period,
    )
    vblk_injector = None
    if not args.no_vblk:
        vblk_injector = FaultInjector(
            vblk_desc_garble_period=args.vblk_desc_garble_period,
            vblk_stall_period=args.vblk_stall_period,
            vblk_writeback_drop_period=args.vblk_writeback_drop_period,
            vblk_doorbell_drop_period=args.vblk_doorbell_drop_period,
            vblk_cq_stall_period=args.vblk_cq_stall_period,
        )
    try:
        report = run_soak(
            cycles=args.cycles, machine=args.machine, engine=args.engine,
            blast_size=args.size, blast_count=args.count, injector=injector,
            vblk=not args.no_vblk, blk_count=args.blk_count,
            vblk_injector=vblk_injector, blk_cpus=args.blk_cpus,
        )
        failed = None
    except SoakError as e:
        report = e.report
        failed = str(e)
        report["failure"] = failed
        report["injector"] = injector.report()
        if vblk_injector is not None:
            report["vblk_injector"] = vblk_injector.report()
    if args.report:
        with open(args.report, "w") as f:
            json.dump(report, f, indent=2)
    print(
        f"soak: {report['cycles_completed']}/{report['cycles_requested']} "
        f"cycles, {report['ejections']} ejections, "
        f"{report['leaked_bytes_total']} bytes leaked, "
        f"{report['delivered_frames']} frames delivered post-recovery"
    )
    if report.get("injector"):
        inj = report["injector"]
        print(
            f"faults injected: {inj['garbled_reads']} garbled reads, "
            f"{inj['stalled_frames']} DMA stalls, "
            f"{inj['dropped_irqs']} dropped irqs, "
            f"{inj['failed_xmits']} xmit transients"
        )
    if "vblk_ejections" in report:
        print(
            f"vblk: {report['vblk_ejections']} ejections, "
            f"{report['blk_ops_done']} block ops post-recovery"
        )
    if report.get("vblk_injector"):
        vinj = report["vblk_injector"]
        print(
            f"vblk faults injected: "
            f"{vinj['garbled_descriptors']} torn descriptors, "
            f"{vinj['stalled_completions']} media stalls, "
            f"{vinj['dropped_writebacks']} dropped write-backs, "
            f"{vinj.get('dropped_doorbells', 0)} dropped doorbells, "
            f"{vinj.get('stalled_cqs', 0)} CQ stalls"
        )
    if failed is not None:
        print(f"FAILED: {failed}", file=sys.stderr)
        return 1
    return 0


def policyd_main(argv: list[str] | None = None) -> int:
    """Run the multi-tenant control-plane service/benchmark."""
    import json

    from .policy.policyd import chaos_injector, run_policyd

    ap = argparse.ArgumentParser(
        prog="caratkop-policyd",
        description=(
            "drive N tenants of transactional batch mutations and staged "
            "canary rollouts against one simulated kernel, optionally with "
            "every control-plane fault hook armed; digests the guard-visible "
            "policy state so chaos runs can be proven identical to clean runs"
        ),
    )
    ap.add_argument("--tenants", type=int, default=4)
    ap.add_argument("--regions", type=int, default=1024,
                    help="total regions across tenants")
    ap.add_argument("--rounds", type=int, default=3)
    ap.add_argument("--batch-ops", type=int, default=16,
                    help="mutations per transactional batch")
    ap.add_argument(
        "--engine", default="compiled", choices=["interp", "compiled"],
    )
    ap.add_argument("--cpus", type=int, default=1)
    ap.add_argument(
        "--machine", default=None, choices=["r350", "r415"],
        help="machine model (default: untimed functional run)",
    )
    ap.add_argument(
        "--policy-index", default=None, choices=["linear", "interval"],
    )
    ap.add_argument("--chaos", action="store_true",
                    help="arm all five control-plane fault hooks")
    ap.add_argument(
        "--compare-clean", action="store_true",
        help="also run fault-free and assert both digests are identical "
             "(exits nonzero on divergence)",
    )
    ap.add_argument("--report", metavar="FILE",
                    help="write the JSON report here")
    args = ap.parse_args(argv)

    def one(injector):
        return run_policyd(
            tenants=args.tenants, regions=args.regions, rounds=args.rounds,
            batch_ops=args.batch_ops, engine=args.engine, cpus=args.cpus,
            machine=args.machine, policy_index=args.policy_index,
            injector=injector,
        )

    report = one(chaos_injector() if args.chaos else None)
    status = 0
    if args.compare_clean:
        clean = one(None)
        report["clean"] = {
            "settled_digest": clean["settled_digest"],
            "full_digest": clean["full_digest"],
            "generation": clean["generation"],
            "rollbacks": clean["rollbacks"],
        }
        same = (report["settled_digest"] == clean["settled_digest"]
                and report["full_digest"] == clean["full_digest"])
        report["chaos_equals_clean"] = same
        if not same:
            print("FAILED: chaos run diverged from fault-free run",
                  file=sys.stderr)
            status = 1
    if args.report:
        with open(args.report, "w") as f:
            json.dump(report, f, indent=2)
    print(
        f"policyd: {report['tenants']}+1 tenants, "
        f"{report['composed_regions']} composed regions, "
        f"gen {report['generation']} "
        f"({report['promotions']} promotions, "
        f"{report['rollbacks']} rollbacks)"
    )
    print(
        f"publish path: {report['publish_retries']} retries, "
        f"{report['publish_failures']} exhaustions, "
        f"{report['replica_repairs']} replica repairs, "
        f"divergence {report['replica_divergence']}"
    )
    if report.get("injector"):
        inj = report["injector"]
        print(
            f"faults injected: {inj['dropped_publishes']} dropped publishes, "
            f"{inj['stalled_publishes']} stalls, "
            f"{inj['corrupted_replicas']} corruptions, "
            f"{inj['torn_batches']} torn batches, "
            f"{inj['quota_race_storms']} quota races"
        )
    print(f"settled digest: {report['settled_digest'][:16]}…"
          + (" (chaos==clean)" if report.get("chaos_equals_clean") else ""))
    return status


def bench_main(argv: list[str] | None = None) -> int:
    """Regenerate paper figures."""
    from .bench import ALL_FIGURES, render_figure

    ap = argparse.ArgumentParser(
        prog="caratkop-bench",
        description="regenerate the paper's figures (3-7) from the simulation",
    )
    ap.add_argument(
        "figures", nargs="*", default=sorted(ALL_FIGURES),
        help="figure ids (default: all)",
    )
    ap.add_argument("--trials", type=int, default=41)
    ap.add_argument(
        "--opt-level", type=int, default=2, choices=[0, 1, 2, 3],
        help="guard optimization level for the throughput figure (fig3); "
             "0 --policy-index linear reproduces the faithful paper build, "
             "3 adds load-time static verification "
             "(default: 2, the production tier)",
    )
    ap.add_argument(
        "--policy-index", default="interval",
        choices=["linear", "interval"],
        help="region-table structure for fig3 (default: interval)",
    )
    ap.add_argument(
        "--queues", default="auto", choices=["1", "2", "3", "4", "auto"],
        help="vblk I/O queue pairs for the multi-queue cells of the "
             "block figure (figblk); auto = one per CPU (default)",
    )
    ap.add_argument(
        "--blk-trials", type=int, default=5,
        help="fully-executed trials per figblk cell (every op runs on "
             "the VM, so this is costlier than --trials)",
    )
    ap.add_argument(
        "--markdown", action="store_true",
        help="emit the EXPERIMENTS.md paper-vs-measured summary table",
    )
    ap.add_argument(
        "--trace-dir", metavar="DIR", default=None,
        help="also emit per-figure trace artifacts (chrome trace, folded "
             "stacks, /proc/trace_stat dump, per-callsite guard costs)",
    )
    ap.add_argument(
        "--trace-packets", type=int, default=1000,
        help="packets per traced artifact run (default 1000)",
    )
    args = ap.parse_args(argv)

    results = {}
    for fid in args.figures:
        runner = ALL_FIGURES.get(fid)
        if runner is None:
            print(f"unknown figure {fid!r}; have {sorted(ALL_FIGURES)}")
            return 2
        if fid == "fig7":
            result = runner()
        elif fid == "figblk":
            queues = args.queues if args.queues == "auto" else int(args.queues)
            result = runner(trials=args.blk_trials, queues=queues)
        elif fid == "fig3":
            # The throughput figure is the one the guard-optimizer tier
            # parameterizes; the rest keep their paper configuration.
            result = runner(
                trials=args.trials,
                opt_level=args.opt_level, policy_index=args.policy_index,
            )
        else:
            result = runner(trials=args.trials)
        results[fid] = result
        if not args.markdown:
            print(render_figure(result))
            print()
    if args.markdown:
        from .bench import experiments_md_rows

        print(experiments_md_rows(results))
    if args.trace_dir:
        from .bench import emit_trace_artifact

        for fid in results:
            summary = emit_trace_artifact(
                args.trace_dir, fid=fid, count=args.trace_packets
            )
            print(
                f"{fid} trace: {summary['events']} events "
                f"({summary['events_lost']} lost), "
                f"{summary['guard_checks']} guard checks; hottest "
                f"{', '.join(summary['top_sites'])} -> "
                f"{summary['paths']['chrome']}"
            )
    return 0


def trace_main(argv: list[str] | None = None) -> int:
    """The tracing front end: run traced workloads, validate artifacts."""
    import json

    ap = argparse.ArgumentParser(
        prog="caratkop-trace",
        description="ftrace/perf-style tracing for the simulated kernel",
    )
    sub = ap.add_subparsers(dest="verb", required=True)

    run_p = sub.add_parser(
        "run", help="run pktblast with tracing on and export artifacts"
    )
    run_p.add_argument("--machine", default="r350", choices=["r350", "r415"])
    run_p.add_argument("--size", type=int, default=128, help="frame bytes")
    run_p.add_argument("--count", type=int, default=1000)
    run_p.add_argument("--baseline", action="store_true")
    run_p.add_argument("--regions", type=int, default=2)
    run_p.add_argument(
        "--engine", default="compiled", choices=["interp", "compiled"]
    )
    run_p.add_argument(
        "--ring-capacity", type=int, default=65536,
        help="trace ring buffer entries",
    )
    run_p.add_argument(
        "--ring-mode", default="overwrite", choices=["overwrite", "drop"]
    )
    run_p.add_argument("--chrome", metavar="FILE",
                       help="write chrome://tracing JSON here")
    run_p.add_argument("--folded", metavar="FILE",
                       help="write folded flamegraph stacks here")
    run_p.add_argument("--perf", metavar="FILE",
                       help="write the perf-script text dump here")
    run_p.add_argument("--stat-out", metavar="FILE",
                       help="write the /proc/trace_stat dump here")

    val_p = sub.add_parser(
        "validate", help="schema-check a chrome trace JSON artifact"
    )
    val_p.add_argument("file", help="chrome trace JSON file")

    sub.add_parser("schema", help="print the tracepoint event catalog")

    args = ap.parse_args(argv)

    if args.verb == "schema":
        from .trace.events import describe_schema

        print(describe_schema())
        return 0

    if args.verb == "validate":
        from .trace import validate_chrome_trace

        with open(args.file) as f:
            doc = json.load(f)
        problems = validate_chrome_trace(doc)
        if problems:
            for p in problems:
                print(p, file=sys.stderr)
            print(f"INVALID: {len(problems)} problem(s)", file=sys.stderr)
            return 1
        n = len(doc["traceEvents"])
        print(f"OK: {args.file} valid chrome trace, {n} events")
        return 0

    # run
    from .trace import to_chrome_trace, to_folded, to_perf_script

    system = CaratKopSystem(
        SystemConfig(
            machine=args.machine, protect=not args.baseline,
            regions=args.regions, engine=args.engine,
        )
    )
    trace = system.kernel.trace
    trace.configure(capacity=args.ring_capacity, mode=args.ring_mode)
    trace.enable()
    result = system.blast(size=args.size, count=args.count)
    trace.disable()
    events = trace.snapshot()
    ring = trace.ring_stats()
    print(
        f"{system.technique}: {result.packets_sent} packets, "
        f"{ring['total']} events ({ring['lost']} lost), "
        f"{trace.guard_hist.count} guard checks over "
        f"{len(trace.guard_sites)} sites"
    )
    if args.chrome:
        with open(args.chrome, "w") as f:
            json.dump(to_chrome_trace(events, freq_hz=trace.freq_hz), f)
        print(f"wrote {args.chrome}")
    if args.folded:
        with open(args.folded, "w") as f:
            f.write(to_folded(events, weight="cycles"))
        print(f"wrote {args.folded}")
    if args.perf:
        with open(args.perf, "w") as f:
            f.write(to_perf_script(events))
        print(f"wrote {args.perf}")
    if args.stat_out:
        with open(args.stat_out, "w") as f:
            f.write(trace.render_stat())
        print(f"wrote {args.stat_out}")
    if not (args.chrome or args.folded or args.perf or args.stat_out):
        print(trace.render_stat())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(bench_main())
