"""The user/kernel syscall boundary for raw packet sockets.

``RawPacketSocket.sendmsg`` is the measured section of Figure 7: "The
latency is measured, in cycles using the cycle counter, as the time spent
in the sendmsg() call from the user-space test application's point of
view" (§4.2).  Per call it charges syscall entry/exit, the core network
stack traversal (socket lookup, qdisc, skb setup — all core-kernel code,
unguarded), the payload copy, and then runs the driver's xmit path on the
VM, where guard costs accrue.

Ring-full handling models the paper's outliers: when the driver returns
EBUSY the application is descheduled (~10⁷ cycles), after which the wire
has drained and the retry succeeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Union

from ..kernel.kernel import Kernel
from ..net.frame import EthernetFrame
from ..vm.machine import MachineModel

if TYPE_CHECKING:  # pragma: no cover
    from ..e1000e.netdev import E1000ENetDev

EBUSY = 16


@dataclass(slots=True)
class SendResult:
    rc: int
    latency_cycles: float
    stalled: bool = False


class RawPacketSocket:
    """An AF_PACKET-style raw socket bound to one interface."""

    def __init__(self, kernel: Kernel, netdev: "E1000ENetDev",
                 machine: Optional[MachineModel] = None,
                 max_retries: int = 1):
        self.kernel = kernel
        self.netdev = netdev
        self.machine = machine
        #: Bounded EBUSY retries per sendmsg.  The default (1) is the
        #: paper's behaviour: one deschedule, one retry.  Fault-injection
        #: runs raise it so transient driver-path errors are ridden out
        #: with linear backoff instead of surfacing to the caller.
        self.max_retries = max_retries
        self.sent = 0
        self.stalls = 0
        points = kernel.trace.points
        self._tp_enter = points["syscall:enter"]
        self._tp_exit = points["syscall:exit"]

    def sendmsg(self, frame: Union[EthernetFrame, bytes]) -> SendResult:
        raw = frame.encode() if isinstance(frame, EthernetFrame) else bytes(frame)
        tp = self._tp_enter
        if tp.enabled:
            tp.emit(name="sendmsg", bytes=len(raw))
        timing = self.kernel.vm.timing
        machine = self.machine
        if timing is None or machine is None:
            rc = self._xmit_with_retry(raw)
            self.sent += 1
            tp = self._tp_exit
            if tp.enabled:
                tp.emit(name="sendmsg", rc=rc, cycles=0.0, stalled=False)
            return SendResult(rc, 0.0)
        start = timing.cycles
        timing.add_cycles(machine.syscall_cycles)
        timing.add_cycles(machine.netstack_base_cycles)
        timing.add_cycles(machine.per_byte_cycles * len(raw))
        rc = self.netdev.xmit(raw)
        stalled = False
        attempt = 0
        while rc == -EBUSY and attempt < self.max_retries:
            # Descheduled until the NIC drains (paper: outliers "in excess
            # of 10 million cycles ... when the ring is full and the test
            # application is descheduled").  Repeated EBUSY backs off
            # linearly — the scheduler keeps the starved sender off-CPU
            # longer each time.
            attempt += 1
            stalled = True
            self.stalls += 1
            timing.add_cycles(machine.deschedule_cycles * attempt)
            # While the sender slept, the NIC drained the wire and wrote
            # descriptor status back.
            self.netdev.device.sync()
            rc = self.netdev.xmit(raw)
        self.sent += 1
        latency = timing.cycles - start
        tp = self._tp_exit
        if tp.enabled:
            tp.emit(name="sendmsg", rc=rc, cycles=latency, stalled=stalled)
        return SendResult(rc, latency, stalled)

    def _xmit_with_retry(self, raw: bytes) -> int:
        rc = self.netdev.xmit(raw)
        attempt = 0
        while rc == -EBUSY and attempt < self.max_retries:
            attempt += 1
            rc = self.netdev.xmit(raw)
        return rc


__all__ = ["RawPacketSocket", "SendResult"]
