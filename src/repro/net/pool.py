"""Process-pool pktblast: scale-out across real OS processes.

The cooperative SMP model (:mod:`repro.kernel.smp`) shards a workload
across *simulated* CPUs on one host thread — deterministic, bit-exact,
but no wall-clock speedup.  This module is the other axis: ``--workers
N`` partitions one blast across N OS processes, each running its own
complete :class:`~repro.core.system.CaratKopSystem` on the compiled
engine, and merges the results deterministically (workers are summed in
worker-index order; wall-clock throughput divides the total stream by
the slowest worker's blast time, the way a real fan-out is gated by its
straggler).

Simulated quantities (cycles, guard decisions, trace counters) are
per-worker exact and merge by summation; wall-clock speedup is a host
property and is only asserted where the host actually has the cores.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Optional


def partition(count: int, workers: int) -> list[int]:
    """Deterministic near-even split of ``count`` packets (earlier
    workers take the remainder, so the split is stable and ordered)."""
    if workers < 1:
        raise ValueError("need at least one worker")
    base, extra = divmod(count, workers)
    return [base + (1 if w < extra else 0) for w in range(workers)]


def _run_worker(args: tuple) -> dict:
    """One worker process: build a system, blast its share, report.

    Module-level so it pickles under every multiprocessing start method.
    """
    worker_index, config_kwargs, size, count, trace = args
    from ..core.system import CaratKopSystem, SystemConfig

    system = CaratKopSystem(SystemConfig(**config_kwargs))
    if trace:
        system.kernel.trace.enable()
    wall_start = time.perf_counter()
    result = system.blast(size=size, count=count)
    wall_elapsed = time.perf_counter() - wall_start
    if trace:
        system.kernel.trace.disable()
    trace_sub = system.kernel.trace
    return {
        "worker": worker_index,
        "packets_requested": result.packets_requested,
        "packets_sent": result.packets_sent,
        "errors": result.errors,
        "stalls": result.stalls,
        "total_cycles": result.total_cycles,
        "throughput_pps": result.throughput_pps,
        "wall_elapsed_s": wall_elapsed,
        "guard_stats": system.guard_stats(),
        "trace_events": trace_sub.counters.as_dict(),
        "ring_stats": trace_sub.ring_stats(),
        "rings_per_cpu": [r.stats() for r in trace_sub.rings],
    }


@dataclass(slots=True)
class PoolResult:
    """The deterministic merge of one process-pool blast."""

    workers: int
    packets_requested: int
    packets_sent: int
    errors: int
    stalls: int
    #: Slowest worker's blast wall time — the fan-out's critical path.
    wall_elapsed_s: float
    #: Total stream / slowest worker: the wall-clock scale-out number.
    wall_pps: float
    #: Summed simulated cycles across workers (each worker's own clock).
    total_cycles: float
    #: Field-wise sums of every worker's guard stats.
    guard_stats: dict[str, int] = field(default_factory=dict)
    #: Summed trace event counters (when tracing was on).
    trace_events: dict[str, int] = field(default_factory=dict)
    #: Per-worker raw reports, ordered by worker index.
    per_worker: list[dict] = field(default_factory=list)


def pool_blast(
    workers: int,
    size: int = 128,
    count: int = 1000,
    config_kwargs: Optional[dict] = None,
    trace: bool = False,
    processes: bool = True,
) -> PoolResult:
    """Partition one blast across ``workers`` processes and merge.

    ``config_kwargs`` are :class:`~repro.core.system.SystemConfig`
    fields (picklable primitives only).  ``processes=False`` runs the
    workers sequentially in-process — same merge math, no
    multiprocessing — for tests and single-core hosts.
    """
    shares = partition(count, workers)
    kwargs = dict(config_kwargs or {})
    jobs = [
        (w, kwargs, size, shares[w], trace) for w in range(workers)
    ]
    if processes and workers > 1:
        with multiprocessing.Pool(processes=workers) as pool:
            reports = pool.map(_run_worker, jobs)
    else:
        reports = [_run_worker(job) for job in jobs]
    reports.sort(key=lambda r: r["worker"])

    guard_stats: dict[str, int] = {}
    trace_events: dict[str, int] = {}
    for report in reports:
        for key, value in report["guard_stats"].items():
            guard_stats[key] = guard_stats.get(key, 0) + value
        for key, value in report["trace_events"].items():
            trace_events[key] = trace_events.get(key, 0) + value
    packets_sent = sum(r["packets_sent"] for r in reports)
    slowest = max(r["wall_elapsed_s"] for r in reports)
    return PoolResult(
        workers=workers,
        packets_requested=count,
        packets_sent=packets_sent,
        errors=sum(r["errors"] for r in reports),
        stalls=sum(r["stalls"] for r in reports),
        wall_elapsed_s=slowest,
        wall_pps=packets_sent / slowest if slowest > 0 else 0.0,
        total_cycles=sum(r["total_cycles"] for r in reports),
        guard_stats=guard_stats,
        trace_events=trace_events,
        per_worker=reports,
    )


__all__ = ["PoolResult", "partition", "pool_blast"]
