"""Network substrate: frames, sink, raw sockets, the pktblast tool."""

from .blaster import BlastResult, PacketBlaster
from .frame import (
    ETH_DATA_LEN,
    ETH_FRAME_LEN,
    ETH_HEADER_LEN,
    ETH_ZLEN,
    ETHERTYPE_EXPERIMENTAL,
    EthernetFrame,
    make_test_frame,
)
from .pool import PoolResult, partition, pool_blast
from .sink import PacketSink
from .syscalls import RawPacketSocket, SendResult

__all__ = [
    "BlastResult",
    "ETH_DATA_LEN",
    "ETH_FRAME_LEN",
    "ETH_HEADER_LEN",
    "ETH_ZLEN",
    "ETHERTYPE_EXPERIMENTAL",
    "EthernetFrame",
    "PacketBlaster",
    "PacketSink",
    "PoolResult",
    "RawPacketSocket",
    "SendResult",
    "make_test_frame",
    "partition",
    "pool_blast",
]
