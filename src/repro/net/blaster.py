"""pktblast: the user-level raw-Ethernet test tool (paper §4.2).

"We bring the NIC up on a private IP address, and then test using a
user-level tool that sends raw Ethernet packets to a fake destination.
The tool can vary the number of packets sent and the size of the packets.
The tool measures the throughput of the packet transmissions, and the
latency of individual packet launches."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..net.frame import make_test_frame
from ..net.syscalls import RawPacketSocket
from ..vm.machine import MachineModel


@dataclass(slots=True)
class BlastResult:
    """One trial's measurements."""

    packets_requested: int
    packets_sent: int
    errors: int
    stalls: int
    total_cycles: float
    throughput_pps: float
    #: Per-packet sendmsg latencies in cycles (empty if latency capture
    #: was off — it costs memory at 100k packets/trial).
    latencies: list[float] = field(default_factory=list)

    @property
    def mean_latency(self) -> float:
        return sum(self.latencies) / len(self.latencies) if self.latencies else 0.0


class PacketBlaster:
    """Drives one trial: N packets of a fixed size through sendmsg."""

    def __init__(
        self,
        socket: RawPacketSocket,
        machine: Optional[MachineModel] = None,
    ):
        self.socket = socket
        self.machine = machine if machine is not None else socket.machine

    def blast(
        self,
        size: int,
        count: int,
        capture_latency: bool = False,
    ) -> BlastResult:
        """Send ``count`` frames of ``size`` bytes; measure as the tool does.

        Throughput counts wall-clock (simulated) time per iteration: the
        sendmsg window plus the tool's own user-space loop cost.
        """
        machine = self.machine
        kernel = self.socket.kernel
        timing = kernel.vm.timing
        smp = kernel.smp
        errors = 0
        stalls_before = self.socket.stalls
        latencies: list[float] = [] if capture_latency else None  # type: ignore[assignment]
        start_cycles = timing.cycles if timing is not None else 0.0

        def shard(seqs: range):
            """One CPU's slice of the stream, one packet per turn."""
            nonlocal errors
            for seq in seqs:
                frame = make_test_frame(size, seq)
                # The tool's own per-iteration work happens on the same
                # clock the device drains against — without it the
                # producer would look impossibly fast and the TX ring
                # would always be full.
                if timing is not None and machine is not None:
                    timing.add_cycles(machine.userspace_per_packet_cycles)
                result = self.socket.sendmsg(frame)
                if result.rc != 0:
                    errors += 1
                if capture_latency:
                    latencies.append(result.latency_cycles)
                yield

        # Shard the stream round-robin across the simulated CPUs and
        # drain it round-robin: CPU k sends the seqs congruent to its
        # turn offset, so the cooperative scheduler reconstructs the
        # exact single-CPU global order for any CPU count.
        start = smp.seed % smp.ncpus
        tasks = [
            shard(range((cpu - start) % smp.ncpus, count, smp.ncpus))
            for cpu in range(smp.ncpus)
        ]
        smp.run_round_robin(tasks)
        total = (timing.cycles - start_cycles) if timing is not None else 0.0
        if machine is not None and total > 0:
            pps = count / machine.seconds(total)
        else:
            pps = 0.0
        return BlastResult(
            packets_requested=count,
            packets_sent=count - errors,
            errors=errors,
            stalls=self.socket.stalls - stalls_before,
            total_cycles=total,
            throughput_pps=pps,
            latencies=latencies or [],
        )


__all__ = ["BlastResult", "PacketBlaster"]
