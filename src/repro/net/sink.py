"""The packet sink the testbed NIC is "attached to" (paper §4.2).

Counts and optionally retains frames so tests can assert on exactly what
went out on the wire.
"""

from __future__ import annotations

from typing import Optional


class PacketSink:
    """Counts delivered frames; optionally keeps the most recent ones."""

    def __init__(self, keep_last: int = 64):
        self.keep_last = keep_last
        self.packets = 0
        self.octets = 0
        self.recent: list[bytes] = []
        self.size_histogram: dict[int, int] = {}

    def deliver(self, frame: bytes) -> None:
        self.packets += 1
        self.octets += len(frame)
        self.size_histogram[len(frame)] = self.size_histogram.get(len(frame), 0) + 1
        if self.keep_last:
            self.recent.append(frame)
            if len(self.recent) > self.keep_last:
                del self.recent[0]

    def last(self) -> Optional[bytes]:
        return self.recent[-1] if self.recent else None

    def reset(self) -> None:
        self.packets = 0
        self.octets = 0
        self.recent.clear()
        self.size_histogram.clear()


__all__ = ["PacketSink"]
