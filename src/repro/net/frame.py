"""Ethernet framing for the raw-packet test tool.

The paper's tool "sends raw Ethernet packets to a fake destination"
(§4.2); these helpers build and parse those frames.
"""

from __future__ import annotations

import struct

ETH_HEADER_LEN = 14
ETH_ZLEN = 60          # minimum frame length without FCS
ETH_DATA_LEN = 1500    # MTU
ETH_FRAME_LEN = 1514   # max frame without FCS

ETHERTYPE_EXPERIMENTAL = 0x88B5  # IEEE 802 local experimental


class EthernetFrame:
    """A raw Ethernet II frame."""

    __slots__ = ("dst", "src", "ethertype", "payload")

    def __init__(self, dst: bytes, src: bytes, ethertype: int, payload: bytes):
        if len(dst) != 6 or len(src) != 6:
            raise ValueError("MAC addresses are 6 bytes")
        if not 0 <= ethertype <= 0xFFFF:
            raise ValueError("bad ethertype")
        self.dst = dst
        self.src = src
        self.ethertype = ethertype
        self.payload = payload

    def encode(self) -> bytes:
        return self.dst + self.src + struct.pack(">H", self.ethertype) + self.payload

    @classmethod
    def decode(cls, raw: bytes) -> "EthernetFrame":
        if len(raw) < ETH_HEADER_LEN:
            raise ValueError("frame shorter than an Ethernet header")
        ethertype = struct.unpack(">H", raw[12:14])[0]
        return cls(raw[0:6], raw[6:12], ethertype, raw[14:])

    def __len__(self) -> int:
        return ETH_HEADER_LEN + len(self.payload)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<EthernetFrame {self.src.hex(':')} -> {self.dst.hex(':')} "
            f"type={self.ethertype:#06x} len={len(self)}>"
        )


def make_test_frame(size: int, seq: int = 0,
                    dst: bytes = b"\x02\x00\x00\x00\xbe\xef",
                    src: bytes = b"\x52\x54\x00\x12\x34\x56") -> EthernetFrame:
    """A ``size``-byte frame (header included) to the fake destination.

    The payload is a recognizable pattern carrying the sequence number so
    sink-side tests can verify ordering and integrity.
    """
    if size < ETH_HEADER_LEN:
        raise ValueError(f"frame size {size} below Ethernet header length")
    if size > ETH_FRAME_LEN:
        raise ValueError(f"frame size {size} above {ETH_FRAME_LEN}")
    payload_len = size - ETH_HEADER_LEN
    seed = struct.pack(">I", seq & 0xFFFFFFFF)
    reps = payload_len // len(seed) + 1
    payload = (seed * reps)[:payload_len]
    return EthernetFrame(dst, src, ETHERTYPE_EXPERIMENTAL, payload)


__all__ = [
    "ETH_DATA_LEN",
    "ETH_FRAME_LEN",
    "ETH_HEADER_LEN",
    "ETH_ZLEN",
    "ETHERTYPE_EXPERIMENTAL",
    "EthernetFrame",
    "make_test_frame",
]
