"""Lexer for the mini-C front end.

Mini-C is the C subset the reproduction's kernel modules are written in
(standing in for the C the e1000e driver is written in).  The lexer is a
single-pass scanner producing a flat token list; there is no preprocessor
— constants use ``enum`` and ``static const`` instead of ``#define``.
"""

from __future__ import annotations

import re


KEYWORDS = frozenset(
    {
        "void", "char", "short", "int", "long", "float", "double",
        "unsigned", "signed", "struct", "enum", "sizeof",
        "if", "else", "while", "do", "for", "return", "break", "continue",
        "switch", "case", "default",
        "static", "extern", "const", "volatile",
        "__export", "__asm__", "null",
    }
)

PUNCTUATION = (
    # Three-char operators first so maximal munch works.
    "<<=", ">>=", "...",
    "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^",
    "(", ")", "{", "}", "[", "]", ";", ",", ".", "?", ":",
)

_PUNCT_RE = re.compile("|".join(re.escape(p) for p in PUNCTUATION))
_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_HEX_RE = re.compile(r"0[xX][0-9a-fA-F]+")
_FLOAT_RE = re.compile(r"\d+\.\d+([eE][-+]?\d+)?[fF]?|\d+[eE][-+]?\d+[fF]?")
_INT_RE = re.compile(r"\d+")
_SUFFIX_RE = re.compile(r"[uUlL]*")


class Token:
    """A lexical token with source position for diagnostics."""

    __slots__ = ("kind", "text", "value", "line", "col")

    def __init__(self, kind: str, text: str, line: int, col: int, value=None):
        self.kind = kind  # 'kw' | 'ident' | 'int' | 'float' | 'char' | 'string' | 'punct' | 'eof'
        self.text = text
        self.value = value
        self.line = line
        self.col = col

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.text!r}, L{self.line})"


class LexError(ValueError):
    def __init__(self, message: str, line: int, col: int):
        super().__init__(f"{line}:{col}: {message}")
        self.line = line
        self.col = col


_ESCAPES = {
    "n": 10, "t": 9, "r": 13, "0": 0, "\\": 92, "'": 39, '"': 34,
    "a": 7, "b": 8, "f": 12, "v": 11,
}


def _scan_escape(src: str, i: int, line: int, col: int) -> tuple[int, int]:
    """Scan an escape sequence starting after the backslash.

    Returns (byte_value, next_index).
    """
    if i >= len(src):
        raise LexError("escape at end of input", line, col)
    c = src[i]
    if c == "x":
        # Unlike C's maximal munch, mini-C caps \x at two digits so
        # "\x00c" means NUL followed by 'c'.
        j = i + 1
        while j < len(src) and j - i <= 2 and src[j] in "0123456789abcdefABCDEF":
            j += 1
        if j == i + 1:
            raise LexError("empty hex escape", line, col)
        return int(src[i + 1 : j], 16) & 0xFF, j
    if c in _ESCAPES:
        return _ESCAPES[c], i + 1
    raise LexError(f"unknown escape \\{c}", line, col)


def tokenize(source: str) -> list[Token]:
    """Tokenize mini-C source; raises :class:`LexError` on bad input."""
    tokens: list[Token] = []
    i = 0
    line = 1
    line_start = 0
    n = len(source)
    while i < n:
        c = source[i]
        col = i - line_start + 1
        if c == "\n":
            line += 1
            i += 1
            line_start = i
            continue
        if c in " \t\r":
            i += 1
            continue
        if source.startswith("//", i):
            j = source.find("\n", i)
            i = n if j < 0 else j
            continue
        if source.startswith("/*", i):
            j = source.find("*/", i + 2)
            if j < 0:
                raise LexError("unterminated block comment", line, col)
            line += source.count("\n", i, j)
            # Recompute line_start so columns stay sane after the comment.
            nl = source.rfind("\n", i, j)
            if nl >= 0:
                line_start = nl + 1
            i = j + 2
            continue
        if c == "'":
            j = i + 1
            if j < n and source[j] == "\\":
                value, j = _scan_escape(source, j + 1, line, col)
            elif j < n:
                value = ord(source[j])
                j += 1
            else:
                raise LexError("unterminated char literal", line, col)
            if j >= n or source[j] != "'":
                raise LexError("unterminated char literal", line, col)
            tokens.append(Token("char", source[i : j + 1], line, col, value))
            i = j + 1
            continue
        if c == '"':
            j = i + 1
            data = bytearray()
            while j < n and source[j] != '"':
                if source[j] == "\\":
                    b, j = _scan_escape(source, j + 1, line, col)
                    data.append(b)
                elif source[j] == "\n":
                    raise LexError("newline in string literal", line, col)
                else:
                    data.append(ord(source[j]))
                    j += 1
            if j >= n:
                raise LexError("unterminated string literal", line, col)
            tokens.append(Token("string", source[i : j + 1], line, col, bytes(data)))
            i = j + 1
            continue
        m = _HEX_RE.match(source, i)
        if m:
            end = _SUFFIX_RE.match(source, m.end()).end()  # type: ignore[union-attr]
            tokens.append(
                Token("int", source[i:end], line, col, int(m.group(), 16))
            )
            i = end
            continue
        m = _FLOAT_RE.match(source, i)
        if m:
            text = m.group()
            tokens.append(
                Token("float", text, line, col, float(text.rstrip("fF")))
            )
            i = m.end()
            continue
        m = _INT_RE.match(source, i)
        if m:
            end = _SUFFIX_RE.match(source, m.end()).end()  # type: ignore[union-attr]
            tokens.append(Token("int", source[i:end], line, col, int(m.group())))
            i = end
            continue
        m = _IDENT_RE.match(source, i)
        if m:
            text = m.group()
            kind = "kw" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, line, col))
            i = m.end()
            continue
        m = _PUNCT_RE.match(source, i)
        if m:
            tokens.append(Token("punct", m.group(), line, col))
            i = m.end()
            continue
        raise LexError(f"unexpected character {c!r}", line, col)
    tokens.append(Token("eof", "", line, i - line_start + 1))
    return tokens


__all__ = ["KEYWORDS", "LexError", "Token", "tokenize"]
