"""Mini-C front end: the C subset kernel modules are written in."""

from .codegen import CodeGenerator, CompileError, compile_source
from .ctypes_ import CType
from .lexer import LexError, Token, tokenize
from .parser import CParseError, parse

__all__ = [
    "CodeGenerator",
    "CompileError",
    "CParseError",
    "CType",
    "LexError",
    "Token",
    "compile_source",
    "parse",
    "tokenize",
]
