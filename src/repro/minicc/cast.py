"""AST node definitions for mini-C.

Nodes are plain dataclass-style containers; all semantic analysis lives in
the code generator (:mod:`repro.minicc.codegen`), which type-checks while
lowering, the way a one-pass C compiler front end does.
"""

from __future__ import annotations

from typing import Optional, Sequence


class Node:
    """Base AST node carrying a source line for diagnostics."""

    __slots__ = ("line",)

    def __init__(self, line: int):
        self.line = line


# ---------------------------------------------------------------------------
# Type expressions (syntactic; resolved against struct defs during codegen)
# ---------------------------------------------------------------------------


class TypeExpr(Node):
    __slots__ = ()


class NamedType(TypeExpr):
    """``int``, ``unsigned long``, ``void`` ... — a base-type spelling."""

    __slots__ = ("name", "unsigned")

    def __init__(self, name: str, unsigned: bool, line: int):
        super().__init__(line)
        self.name = name
        self.unsigned = unsigned


class StructRef(TypeExpr):
    """``struct Name`` used as a type."""

    __slots__ = ("name",)

    def __init__(self, name: str, line: int):
        super().__init__(line)
        self.name = name


class PointerTo(TypeExpr):
    __slots__ = ("inner",)

    def __init__(self, inner: TypeExpr, line: int):
        super().__init__(line)
        self.inner = inner


class ArrayOf(TypeExpr):
    __slots__ = ("inner", "count")

    def __init__(self, inner: TypeExpr, count: int, line: int):
        super().__init__(line)
        self.inner = inner
        self.count = count


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr(Node):
    __slots__ = ()


class IntLit(Expr):
    __slots__ = ("value", "is_long", "is_unsigned")

    def __init__(self, value: int, line: int, is_long: bool = False,
                 is_unsigned: bool = False):
        super().__init__(line)
        self.value = value
        self.is_long = is_long
        self.is_unsigned = is_unsigned


class FloatLit(Expr):
    __slots__ = ("value",)

    def __init__(self, value: float, line: int):
        super().__init__(line)
        self.value = value


class StringLit(Expr):
    __slots__ = ("data",)

    def __init__(self, data: bytes, line: int):
        super().__init__(line)
        self.data = data


class NullLit(Expr):
    __slots__ = ()


class Ident(Expr):
    __slots__ = ("name",)

    def __init__(self, name: str, line: int):
        super().__init__(line)
        self.name = name


class Unary(Expr):
    """``op operand`` where op in ``! ~ - * & ++ -- post++ post--``."""

    __slots__ = ("op", "operand")

    def __init__(self, op: str, operand: Expr, line: int):
        super().__init__(line)
        self.op = op
        self.operand = operand


class Binary(Expr):
    __slots__ = ("op", "lhs", "rhs")

    def __init__(self, op: str, lhs: Expr, rhs: Expr, line: int):
        super().__init__(line)
        self.op = op
        self.lhs = lhs
        self.rhs = rhs


class Assign(Expr):
    """``lhs op rhs`` where op in ``= += -= *= /= %= &= |= ^= <<= >>=``."""

    __slots__ = ("op", "lhs", "rhs")

    def __init__(self, op: str, lhs: Expr, rhs: Expr, line: int):
        super().__init__(line)
        self.op = op
        self.lhs = lhs
        self.rhs = rhs


class Conditional(Expr):
    __slots__ = ("cond", "then", "other")

    def __init__(self, cond: Expr, then: Expr, other: Expr, line: int):
        super().__init__(line)
        self.cond = cond
        self.then = then
        self.other = other


class CastExpr(Expr):
    __slots__ = ("target", "operand")

    def __init__(self, target: TypeExpr, operand: Expr, line: int):
        super().__init__(line)
        self.target = target
        self.operand = operand


class SizeofType(Expr):
    __slots__ = ("target",)

    def __init__(self, target: TypeExpr, line: int):
        super().__init__(line)
        self.target = target


class SizeofExpr(Expr):
    __slots__ = ("operand",)

    def __init__(self, operand: Expr, line: int):
        super().__init__(line)
        self.operand = operand


class CallExpr(Expr):
    __slots__ = ("name", "args")

    def __init__(self, name: str, args: Sequence[Expr], line: int):
        super().__init__(line)
        self.name = name
        self.args = list(args)


class Index(Expr):
    __slots__ = ("base", "index")

    def __init__(self, base: Expr, index: Expr, line: int):
        super().__init__(line)
        self.base = base
        self.index = index


class Member(Expr):
    """``base.field`` (arrow=False) or ``base->field`` (arrow=True)."""

    __slots__ = ("base", "field", "arrow")

    def __init__(self, base: Expr, field: str, arrow: bool, line: int):
        super().__init__(line)
        self.base = base
        self.field = field
        self.arrow = arrow


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Stmt(Node):
    __slots__ = ()


class Block(Stmt):
    __slots__ = ("statements",)

    def __init__(self, statements: Sequence[Stmt], line: int):
        super().__init__(line)
        self.statements = list(statements)


class ExprStmt(Stmt):
    __slots__ = ("expr",)

    def __init__(self, expr: Expr, line: int):
        super().__init__(line)
        self.expr = expr


class LocalDecl(Stmt):
    __slots__ = ("type", "name", "init")

    def __init__(self, type: TypeExpr, name: str, init: Optional[Expr], line: int):
        super().__init__(line)
        self.type = type
        self.name = name
        self.init = init


class If(Stmt):
    __slots__ = ("cond", "then", "other")

    def __init__(self, cond: Expr, then: Stmt, other: Optional[Stmt], line: int):
        super().__init__(line)
        self.cond = cond
        self.then = then
        self.other = other


class While(Stmt):
    __slots__ = ("cond", "body")

    def __init__(self, cond: Expr, body: Stmt, line: int):
        super().__init__(line)
        self.cond = cond
        self.body = body


class DoWhile(Stmt):
    __slots__ = ("body", "cond")

    def __init__(self, body: Stmt, cond: Expr, line: int):
        super().__init__(line)
        self.body = body
        self.cond = cond


class For(Stmt):
    __slots__ = ("init", "cond", "step", "body")

    def __init__(
        self,
        init: Optional[Stmt],
        cond: Optional[Expr],
        step: Optional[Expr],
        body: Stmt,
        line: int,
    ):
        super().__init__(line)
        self.init = init
        self.cond = cond
        self.step = step
        self.body = body


class Return(Stmt):
    __slots__ = ("value",)

    def __init__(self, value: Optional[Expr], line: int):
        super().__init__(line)
        self.value = value


class Break(Stmt):
    __slots__ = ()


class Continue(Stmt):
    __slots__ = ()


class SwitchCase:
    """One ``case``/``default`` arm: labels plus body statements.

    ``values`` is empty for ``default``.  C fallthrough is preserved: a
    case whose body does not break falls into the next arm.
    """

    __slots__ = ("values", "body", "is_default", "line")

    def __init__(self, values: list[int], body: list[Stmt], is_default: bool, line: int):
        self.values = values
        self.body = body
        self.is_default = is_default
        self.line = line


class SwitchStmt(Stmt):
    __slots__ = ("value", "cases")

    def __init__(self, value: Expr, cases: list[SwitchCase], line: int):
        super().__init__(line)
        self.value = value
        self.cases = cases


class AsmStmt(Stmt):
    """``__asm__("...");`` — exists to exercise the attestation path."""

    __slots__ = ("text",)

    def __init__(self, text: str, line: int):
        super().__init__(line)
        self.text = text


# ---------------------------------------------------------------------------
# Top level
# ---------------------------------------------------------------------------


class StructDef(Node):
    __slots__ = ("name", "fields")

    def __init__(self, name: str, fields: list[tuple[TypeExpr, str]], line: int):
        super().__init__(line)
        self.name = name
        self.fields = fields


class EnumDef(Node):
    __slots__ = ("constants",)

    def __init__(self, constants: list[tuple[str, int]], line: int):
        super().__init__(line)
        self.constants = constants


class GlobalDecl(Node):
    __slots__ = ("type", "name", "init", "is_static", "is_extern", "is_const",
                 "is_export")

    def __init__(
        self,
        type: TypeExpr,
        name: str,
        init: Optional[Expr],
        is_static: bool,
        is_extern: bool,
        is_const: bool,
        line: int,
        is_export: bool = False,
    ):
        super().__init__(line)
        self.type = type
        self.name = name
        self.init = init
        self.is_static = is_static
        self.is_extern = is_extern
        self.is_const = is_const
        self.is_export = is_export


class Param:
    __slots__ = ("type", "name", "line")

    def __init__(self, type: TypeExpr, name: str, line: int):
        self.type = type
        self.name = name
        self.line = line


class FunctionDef(Node):
    """A function definition or (body is None) declaration."""

    __slots__ = ("ret", "name", "params", "body", "is_static", "is_extern",
                 "is_export", "vararg")

    def __init__(
        self,
        ret: TypeExpr,
        name: str,
        params: list[Param],
        body: Optional[Block],
        is_static: bool,
        is_extern: bool,
        is_export: bool,
        vararg: bool,
        line: int,
    ):
        super().__init__(line)
        self.ret = ret
        self.name = name
        self.params = params
        self.body = body
        self.is_static = is_static
        self.is_extern = is_extern
        self.is_export = is_export
        self.vararg = vararg


class TranslationUnit(Node):
    __slots__ = ("items",)

    def __init__(self, items: list[Node]):
        super().__init__(1)
        self.items = items
