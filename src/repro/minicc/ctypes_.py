"""C-level type model for mini-C and its mapping onto IR types.

The key design rule: **pointers are materialized as ``i64`` in memory**
(globals, struct fields, array elements, and stack slots all store
addresses as 64-bit integers), while SSA values carry typed pointers.
This sidesteps recursive struct types (``struct foo { struct foo *next; }``)
without weakening the IR's typed loads/stores — every load still knows its
access width, which is all the guard pass needs (paper §3.1: the guard
receives ``(addr, size, flags)``).
"""

from __future__ import annotations

from typing import Optional

from ..ir import types as irt


class CType:
    """A C type: void, integer, float, pointer, array, or struct."""

    __slots__ = ("kind", "bits", "signed", "pointee", "element", "count",
                 "name", "fields", "_ir_struct")

    def __init__(self, kind: str, **kw):
        self.kind = kind
        self.bits: int = kw.get("bits", 0)
        self.signed: bool = kw.get("signed", True)
        self.pointee: Optional[CType] = kw.get("pointee")
        self.element: Optional[CType] = kw.get("element")
        self.count: int = kw.get("count", 0)
        self.name: str = kw.get("name", "")
        self.fields: list[tuple[str, CType]] = kw.get("fields", [])
        self._ir_struct: Optional[irt.StructType] = kw.get("ir_struct")

    # -- predicates ----------------------------------------------------------

    @property
    def is_void(self) -> bool:
        return self.kind == "void"

    @property
    def is_int(self) -> bool:
        return self.kind == "int"

    @property
    def is_float(self) -> bool:
        return self.kind == "float"

    @property
    def is_ptr(self) -> bool:
        return self.kind == "ptr"

    @property
    def is_array(self) -> bool:
        return self.kind == "array"

    @property
    def is_struct(self) -> bool:
        return self.kind == "struct"

    @property
    def is_arith(self) -> bool:
        return self.kind in ("int", "float")

    @property
    def is_scalar(self) -> bool:
        return self.kind in ("int", "float", "ptr")

    # -- layout ----------------------------------------------------------------

    def memory_type(self) -> irt.IRType:
        """The IR type of this C type *as stored in memory*."""
        if self.kind == "int":
            return irt.IntType(self.bits)
        if self.kind == "float":
            return irt.FloatType(self.bits)
        if self.kind == "ptr":
            return irt.I64
        if self.kind == "array":
            assert self.element is not None
            return irt.ArrayType(self.element.memory_type(), self.count)
        if self.kind == "struct":
            if self._ir_struct is None:
                raise TypeError(f"struct {self.name} is incomplete")
            return self._ir_struct
        raise TypeError(f"{self} has no memory representation")

    def value_type(self) -> irt.IRType:
        """The IR type of this C type *as an SSA value*."""
        if self.kind == "ptr":
            assert self.pointee is not None
            if self.pointee.is_void:
                return irt.I8PTR
            return irt.PointerType(self.pointee.memory_type())
        if self.kind == "void":
            return irt.VOID
        return self.memory_type()

    def sizeof(self) -> int:
        return self.memory_type().size_bytes()

    # -- struct helpers -----------------------------------------------------------

    def field(self, name: str) -> tuple[int, "CType"]:
        """(field index, field CType); raises KeyError when absent."""
        for i, (fname, ftype) in enumerate(self.fields):
            if fname == name:
                return i, ftype
        raise KeyError(f"struct {self.name} has no field {name!r}")

    def field_offset(self, index: int) -> int:
        if self._ir_struct is None:
            raise TypeError(f"struct {self.name} is incomplete")
        return self._ir_struct.field_offset(index)

    def complete_struct(self) -> None:
        """Compute the IR layout once all fields are known."""
        self._ir_struct = irt.StructType(
            self.name,
            [f.memory_type() for _, f in self.fields],
            [n for n, _ in self.fields],
        )

    # -- identity -------------------------------------------------------------------

    def same(self, other: "CType") -> bool:
        """Structural type equality (used for call/assign checking)."""
        if self.kind != other.kind:
            return False
        if self.kind == "int":
            return self.bits == other.bits and self.signed == other.signed
        if self.kind == "float":
            return self.bits == other.bits
        if self.kind == "ptr":
            assert self.pointee is not None and other.pointee is not None
            return self.pointee.same(other.pointee)
        if self.kind == "array":
            assert self.element is not None and other.element is not None
            return self.count == other.count and self.element.same(other.element)
        if self.kind == "struct":
            return self.name == other.name
        return True  # void

    def __str__(self) -> str:
        if self.kind == "int":
            base = {8: "char", 16: "short", 32: "int", 64: "long"}[self.bits]
            return base if self.signed else f"unsigned {base}"
        if self.kind == "float":
            return "float" if self.bits == 32 else "double"
        if self.kind == "ptr":
            return f"{self.pointee}*"
        if self.kind == "array":
            return f"{self.element}[{self.count}]"
        if self.kind == "struct":
            return f"struct {self.name}"
        return "void"

    def __repr__(self) -> str:  # pragma: no cover
        return f"<CType {self}>"


# Canonical scalars.
VOID = CType("void")
CHAR = CType("int", bits=8, signed=True)
UCHAR = CType("int", bits=8, signed=False)
SHORT = CType("int", bits=16, signed=True)
USHORT = CType("int", bits=16, signed=False)
INT = CType("int", bits=32, signed=True)
UINT = CType("int", bits=32, signed=False)
LONG = CType("int", bits=64, signed=True)
ULONG = CType("int", bits=64, signed=False)
FLOAT = CType("float", bits=32)
DOUBLE = CType("float", bits=64)
BOOL_RESULT = INT  # C comparison/logical results are int


def pointer_to(ct: CType) -> CType:
    return CType("ptr", pointee=ct)


def array_of(ct: CType, count: int) -> CType:
    return CType("array", element=ct, count=count)


VOID_PTR = pointer_to(VOID)
CHAR_PTR = pointer_to(CHAR)

_NAMED = {
    ("void", False): VOID,
    ("char", False): CHAR,
    ("char", True): UCHAR,
    ("short", False): SHORT,
    ("short", True): USHORT,
    ("int", False): INT,
    ("int", True): UINT,
    ("long", False): LONG,
    ("long", True): ULONG,
    ("float", False): FLOAT,
    ("double", False): DOUBLE,
}


def named_type(name: str, unsigned: bool) -> CType:
    try:
        return _NAMED[(name, unsigned)]
    except KeyError:
        raise TypeError(f"unknown type {'unsigned ' if unsigned else ''}{name}")


def promote(ct: CType) -> CType:
    """C integer promotion: anything narrower than int becomes int."""
    if ct.is_int and ct.bits < 32:
        return INT
    return ct


def usual_arithmetic(a: CType, b: CType) -> CType:
    """The C 'usual arithmetic conversions' for two arithmetic operands."""
    if a.is_float or b.is_float:
        if (a.is_float and a.bits == 64) or (b.is_float and b.bits == 64):
            return DOUBLE
        return FLOAT if (a.is_float or b.is_float) else DOUBLE
    a, b = promote(a), promote(b)
    if a.bits == b.bits:
        if a.signed == b.signed:
            return a
        return a if not a.signed else b  # unsigned wins at equal rank
    wider = a if a.bits > b.bits else b
    narrower = b if a.bits > b.bits else a
    if wider.signed and not narrower.signed and wider.bits > narrower.bits:
        return wider  # wider signed can represent all narrower unsigned
    return wider


__all__ = [
    "BOOL_RESULT", "CHAR", "CHAR_PTR", "CType", "DOUBLE", "FLOAT", "INT",
    "LONG", "SHORT", "UCHAR", "UINT", "ULONG", "USHORT", "VOID", "VOID_PTR",
    "array_of", "named_type", "pointer_to", "promote", "usual_arithmetic",
]
