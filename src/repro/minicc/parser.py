"""Recursive-descent parser for mini-C.

Grammar summary (C subset)::

    unit      := (struct_def | enum_def | global | function)*
    struct_def:= 'struct' IDENT '{' (type declarator ';')+ '}' ';'
    enum_def  := 'enum' '{' IDENT ('=' const_expr)? (',' ...)* '}' ';'
    function  := quals type declarator '(' params ')' (block | ';')
    global    := quals type declarator ('=' init)? ';'
    stmt      := block | if | while | do-while | for | switch | return
               | break | continue | decl | expr ';' | asm
    expr      := assignment with full C operator precedence, short-circuit
                 '&&'/'||', '?:', casts, sizeof, pointer arithmetic

Enum constants are resolved at parse time so they can appear in ``case``
labels and array sizes (the driver's register maps rely on this).
"""

from __future__ import annotations

from typing import Optional

from . import cast as A
from .lexer import Token, tokenize


class CParseError(ValueError):
    def __init__(self, message: str, line: int):
        super().__init__(f"line {line}: {message}")
        self.line = line


_BASE_TYPES = frozenset({"void", "char", "short", "int", "long", "float", "double"})
_TYPE_STARTERS = _BASE_TYPES | {"unsigned", "signed", "struct", "const", "volatile"}


class Parser:
    def __init__(self, source: str):
        self.tokens = tokenize(source)
        self.pos = 0
        self.enum_constants: dict[str, int] = {}
        self.struct_names: set[str] = set()

    # -- token helpers ----------------------------------------------------

    @property
    def cur(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, offset: int = 1) -> Token:
        idx = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        tok = self.cur
        if tok.kind == kind and (text is None or tok.text == text):
            return self.advance()
        return None

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        tok = self.cur
        if tok.kind != kind or (text is not None and tok.text != text):
            want = text if text is not None else kind
            raise CParseError(f"expected {want!r}, got {tok.text!r}", tok.line)
        return self.advance()

    def error(self, msg: str) -> CParseError:
        return CParseError(msg, self.cur.line)

    # -- types --------------------------------------------------------------

    def at_type(self) -> bool:
        tok = self.cur
        return tok.kind == "kw" and tok.text in _TYPE_STARTERS

    def parse_base_type(self) -> A.TypeExpr:
        line = self.cur.line
        # qualifiers are accepted and ignored semantically (const is used
        # for globals only, captured by the caller)
        while self.accept("kw", "const") or self.accept("kw", "volatile"):
            pass
        unsigned = False
        if self.accept("kw", "unsigned"):
            unsigned = True
        elif self.accept("kw", "signed"):
            pass
        if self.accept("kw", "struct"):
            name = self.expect("ident").text
            base: A.TypeExpr = A.StructRef(name, line)
        else:
            tok = self.cur
            if tok.kind == "kw" and tok.text in _BASE_TYPES:
                self.advance()
                name = tok.text
                if name == "long" and self.accept("kw", "long"):
                    name = "long"  # long long == long (both i64)
                if name in ("char", "short", "int", "long") and self.accept("kw", "int"):
                    pass  # 'short int', 'long int'
                base = A.NamedType(name, unsigned, line)
            elif unsigned:
                base = A.NamedType("int", True, line)
            else:
                raise self.error(f"expected type, got {tok.text!r}")
        while self.accept("kw", "const") or self.accept("kw", "volatile"):
            pass
        return base

    def parse_pointers(self, base: A.TypeExpr) -> A.TypeExpr:
        while self.cur.kind == "punct" and self.cur.text == "*":
            line = self.advance().line
            base = A.PointerTo(base, line)
            while self.accept("kw", "const") or self.accept("kw", "volatile"):
                pass
        return base

    def parse_type(self) -> A.TypeExpr:
        """A full abstract type (for casts and sizeof): base + pointers."""
        return self.parse_pointers(self.parse_base_type())

    def parse_array_suffix(self, base: A.TypeExpr) -> A.TypeExpr:
        dims: list[int] = []
        while self.accept("punct", "["):
            dims.append(self.parse_const_expr())
            self.expect("punct", "]")
        for count in reversed(dims):
            base = A.ArrayOf(base, count, base.line)
        return base

    # -- constant expressions (for enum values, array sizes, case labels) ----

    def parse_const_expr(self) -> int:
        return self._const_ternary()

    def _const_ternary(self) -> int:
        v = self._const_or()
        if self.accept("punct", "?"):
            a = self._const_ternary()
            self.expect("punct", ":")
            b = self._const_ternary()
            return a if v else b
        return v

    def _const_or(self) -> int:
        v = self._const_xor()
        while self.cur.kind == "punct" and self.cur.text == "|" and self.peek().text != "|":
            self.advance()
            v |= self._const_xor()
        return v

    def _const_xor(self) -> int:
        v = self._const_and()
        while self.accept("punct", "^"):
            v ^= self._const_and()
        return v

    def _const_and(self) -> int:
        v = self._const_shift()
        while self.cur.kind == "punct" and self.cur.text == "&" and self.peek().text != "&":
            self.advance()
            v &= self._const_shift()
        return v

    def _const_shift(self) -> int:
        v = self._const_add()
        while self.cur.kind == "punct" and self.cur.text in ("<<", ">>"):
            op = self.advance().text
            rhs = self._const_add()
            v = v << rhs if op == "<<" else v >> rhs
        return v

    def _const_add(self) -> int:
        v = self._const_mul()
        while self.cur.kind == "punct" and self.cur.text in ("+", "-"):
            op = self.advance().text
            rhs = self._const_mul()
            v = v + rhs if op == "+" else v - rhs
        return v

    def _const_mul(self) -> int:
        v = self._const_unary()
        while self.cur.kind == "punct" and self.cur.text in ("*", "/", "%"):
            op = self.advance().text
            rhs = self._const_unary()
            if op == "*":
                v *= rhs
            elif op == "/":
                v = int(v / rhs)
            else:
                v = v - int(v / rhs) * rhs
        return v

    def _const_unary(self) -> int:
        if self.accept("punct", "-"):
            return -self._const_unary()
        if self.accept("punct", "~"):
            return ~self._const_unary()
        if self.accept("punct", "("):
            v = self.parse_const_expr()
            self.expect("punct", ")")
            return v
        tok = self.cur
        if tok.kind in ("int", "char"):
            self.advance()
            return int(tok.value)
        if tok.kind == "ident" and tok.text in self.enum_constants:
            self.advance()
            return self.enum_constants[tok.text]
        raise self.error(f"expected constant expression, got {tok.text!r}")

    # -- top level ------------------------------------------------------------

    def parse_unit(self) -> A.TranslationUnit:
        items: list[A.Node] = []
        while self.cur.kind != "eof":
            item = self.parse_top_level()
            if item is not None:
                items.append(item)
        return A.TranslationUnit(items)

    def parse_top_level(self) -> Optional[A.Node]:
        line = self.cur.line
        if self.cur.kind == "kw" and self.cur.text == "enum":
            return self.parse_enum()
        if (
            self.cur.kind == "kw"
            and self.cur.text == "struct"
            and self.peek().kind == "ident"
            and self.peek(2).text == "{"
        ):
            return self.parse_struct()
        # qualifiers
        is_static = is_extern = is_export = is_const = False
        while True:
            if self.accept("kw", "static"):
                is_static = True
            elif self.accept("kw", "extern"):
                is_extern = True
            elif self.accept("kw", "__export"):
                is_export = True
            elif self.cur.kind == "kw" and self.cur.text == "const":
                is_const = True
                self.advance()
            else:
                break
        base = self.parse_base_type()
        decl_type = self.parse_pointers(base)
        name = self.expect("ident").text
        if self.cur.kind == "punct" and self.cur.text == "(":
            return self.parse_function(
                decl_type, name, is_static, is_extern, is_export, line
            )
        decl_type = self.parse_array_suffix(decl_type)
        init: Optional[A.Expr] = None
        if self.accept("punct", "="):
            init = self.parse_assignment()
        self.expect("punct", ";")
        return A.GlobalDecl(
            decl_type, name, init, is_static, is_extern, is_const, line,
            is_export=is_export,
        )

    def parse_struct(self) -> A.StructDef:
        line = self.expect("kw", "struct").line
        name = self.expect("ident").text
        self.struct_names.add(name)
        self.expect("punct", "{")
        fields: list[tuple[A.TypeExpr, str]] = []
        while not self.accept("punct", "}"):
            base = self.parse_base_type()
            while True:
                ftype = self.parse_pointers(base)
                fname = self.expect("ident").text
                ftype = self.parse_array_suffix(ftype)
                fields.append((ftype, fname))
                if not self.accept("punct", ","):
                    break
            self.expect("punct", ";")
        self.expect("punct", ";")
        return A.StructDef(name, fields, line)

    def parse_enum(self) -> A.EnumDef:
        line = self.expect("kw", "enum").line
        self.accept("ident")  # optional tag, unused
        self.expect("punct", "{")
        constants: list[tuple[str, int]] = []
        next_value = 0
        while not self.accept("punct", "}"):
            cname = self.expect("ident").text
            if self.accept("punct", "="):
                next_value = self.parse_const_expr()
            constants.append((cname, next_value))
            self.enum_constants[cname] = next_value
            next_value += 1
            if not self.accept("punct", ","):
                self.expect("punct", "}")
                break
        self.expect("punct", ";")
        return A.EnumDef(constants, line)

    def parse_function(
        self,
        ret: A.TypeExpr,
        name: str,
        is_static: bool,
        is_extern: bool,
        is_export: bool,
        line: int,
    ) -> A.FunctionDef:
        self.expect("punct", "(")
        params: list[A.Param] = []
        vararg = False
        if not self.accept("punct", ")"):
            if self.cur.kind == "kw" and self.cur.text == "void" and self.peek().text == ")":
                self.advance()
            else:
                while True:
                    if self.accept("punct", "..."):
                        vararg = True
                        break
                    pline = self.cur.line
                    ptype = self.parse_pointers(self.parse_base_type())
                    pname_tok = self.accept("ident")
                    pname = pname_tok.text if pname_tok else f"arg{len(params)}"
                    # Array parameters decay to pointers.
                    if self.cur.kind == "punct" and self.cur.text == "[":
                        self.advance()
                        self.accept("int")
                        self.expect("punct", "]")
                        ptype = A.PointerTo(ptype, pline)
                    params.append(A.Param(ptype, pname, pline))
                    if not self.accept("punct", ","):
                        break
            self.expect("punct", ")")
        if self.accept("punct", ";"):
            body = None
        else:
            body = self.parse_block()
        return A.FunctionDef(
            ret, name, params, body, is_static, is_extern, is_export, vararg, line
        )

    # -- statements ------------------------------------------------------------

    def parse_block(self) -> A.Block:
        line = self.expect("punct", "{").line
        stmts: list[A.Stmt] = []
        while not self.accept("punct", "}"):
            stmts.append(self.parse_statement())
        return A.Block(stmts, line)

    def parse_statement(self) -> A.Stmt:
        tok = self.cur
        line = tok.line
        if tok.kind == "punct" and tok.text == "{":
            return self.parse_block()
        if tok.kind == "kw":
            text = tok.text
            if text == "if":
                self.advance()
                self.expect("punct", "(")
                cond = self.parse_expression()
                self.expect("punct", ")")
                then = self.parse_statement()
                other = self.parse_statement() if self.accept("kw", "else") else None
                return A.If(cond, then, other, line)
            if text == "while":
                self.advance()
                self.expect("punct", "(")
                cond = self.parse_expression()
                self.expect("punct", ")")
                return A.While(cond, self.parse_statement(), line)
            if text == "do":
                self.advance()
                body = self.parse_statement()
                self.expect("kw", "while")
                self.expect("punct", "(")
                cond = self.parse_expression()
                self.expect("punct", ")")
                self.expect("punct", ";")
                return A.DoWhile(body, cond, line)
            if text == "for":
                self.advance()
                self.expect("punct", "(")
                init: Optional[A.Stmt] = None
                if not self.accept("punct", ";"):
                    if self.at_type():
                        init = self.parse_local_decl()
                    else:
                        init = A.ExprStmt(self.parse_expression(), line)
                        self.expect("punct", ";")
                cond = None
                if not self.accept("punct", ";"):
                    cond = self.parse_expression()
                    self.expect("punct", ";")
                step = None
                if not (self.cur.kind == "punct" and self.cur.text == ")"):
                    step = self.parse_expression()
                self.expect("punct", ")")
                return A.For(init, cond, step, self.parse_statement(), line)
            if text == "switch":
                return self.parse_switch()
            if text == "return":
                self.advance()
                value = None
                if not (self.cur.kind == "punct" and self.cur.text == ";"):
                    value = self.parse_expression()
                self.expect("punct", ";")
                return A.Return(value, line)
            if text == "break":
                self.advance()
                self.expect("punct", ";")
                return A.Break(line)
            if text == "continue":
                self.advance()
                self.expect("punct", ";")
                return A.Continue(line)
            if text == "__asm__":
                self.advance()
                self.expect("punct", "(")
                s = self.expect("string")
                self.expect("punct", ")")
                self.expect("punct", ";")
                return A.AsmStmt(s.value.decode(), line)
            if text in _TYPE_STARTERS or text == "static":
                return self.parse_local_decl()
        expr = self.parse_expression()
        self.expect("punct", ";")
        return A.ExprStmt(expr, line)

    def parse_local_decl(self) -> A.Stmt:
        line = self.cur.line
        self.accept("kw", "static")  # block-static treated as plain local
        base = self.parse_base_type()
        decls: list[A.Stmt] = []
        while True:
            dtype = self.parse_pointers(base)
            name = self.expect("ident").text
            dtype = self.parse_array_suffix(dtype)
            init = self.parse_assignment() if self.accept("punct", "=") else None
            decls.append(A.LocalDecl(dtype, name, init, line))
            if not self.accept("punct", ","):
                break
        self.expect("punct", ";")
        if len(decls) == 1:
            return decls[0]
        return A.Block(decls, line)

    def parse_switch(self) -> A.SwitchStmt:
        line = self.expect("kw", "switch").line
        self.expect("punct", "(")
        value = self.parse_expression()
        self.expect("punct", ")")
        self.expect("punct", "{")
        cases: list[A.SwitchCase] = []
        while not self.accept("punct", "}"):
            values: list[int] = []
            is_default = False
            cline = self.cur.line
            saw_label = False
            while True:
                if self.accept("kw", "case"):
                    values.append(self.parse_const_expr())
                    self.expect("punct", ":")
                    saw_label = True
                elif self.accept("kw", "default"):
                    self.expect("punct", ":")
                    is_default = True
                    saw_label = True
                else:
                    break
            if not saw_label:
                raise self.error("expected 'case' or 'default' in switch")
            body: list[A.Stmt] = []
            while not (
                (self.cur.kind == "kw" and self.cur.text in ("case", "default"))
                or (self.cur.kind == "punct" and self.cur.text == "}")
            ):
                body.append(self.parse_statement())
            cases.append(A.SwitchCase(values, body, is_default, cline))
        return A.SwitchStmt(value, cases, line)

    # -- expressions -------------------------------------------------------------

    def parse_expression(self) -> A.Expr:
        expr = self.parse_assignment()
        while self.accept("punct", ","):
            rhs = self.parse_assignment()
            expr = A.Binary(",", expr, rhs, rhs.line)
        return expr

    _ASSIGN_OPS = frozenset(
        {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}
    )

    def parse_assignment(self) -> A.Expr:
        lhs = self.parse_conditional()
        tok = self.cur
        if tok.kind == "punct" and tok.text in self._ASSIGN_OPS:
            self.advance()
            rhs = self.parse_assignment()
            return A.Assign(tok.text, lhs, rhs, tok.line)
        return lhs

    def parse_conditional(self) -> A.Expr:
        cond = self.parse_binary(0)
        if self.accept("punct", "?"):
            then = self.parse_expression()
            self.expect("punct", ":")
            other = self.parse_conditional()
            return A.Conditional(cond, then, other, cond.line)
        return cond

    _PRECEDENCE = [
        ("||",),
        ("&&",),
        ("|",),
        ("^",),
        ("&",),
        ("==", "!="),
        ("<", "<=", ">", ">="),
        ("<<", ">>"),
        ("+", "-"),
        ("*", "/", "%"),
    ]

    def parse_binary(self, level: int) -> A.Expr:
        if level >= len(self._PRECEDENCE):
            return self.parse_unary()
        ops = self._PRECEDENCE[level]
        lhs = self.parse_binary(level + 1)
        while self.cur.kind == "punct" and self.cur.text in ops:
            op = self.advance()
            rhs = self.parse_binary(level + 1)
            lhs = A.Binary(op.text, lhs, rhs, op.line)
        return lhs

    def parse_unary(self) -> A.Expr:
        tok = self.cur
        if tok.kind == "punct" and tok.text in ("!", "~", "-", "+", "*", "&"):
            self.advance()
            operand = self.parse_unary()
            if tok.text == "+":
                return operand
            return A.Unary(tok.text, operand, tok.line)
        if tok.kind == "punct" and tok.text in ("++", "--"):
            self.advance()
            return A.Unary(tok.text, self.parse_unary(), tok.line)
        if tok.kind == "kw" and tok.text == "sizeof":
            self.advance()
            self.expect("punct", "(")
            if self.at_type():
                target = self.parse_type()
                self.expect("punct", ")")
                return A.SizeofType(target, tok.line)
            operand = self.parse_expression()
            self.expect("punct", ")")
            return A.SizeofExpr(operand, tok.line)
        if tok.kind == "punct" and tok.text == "(":
            # Cast or parenthesized expression.
            save = self.pos
            self.advance()
            if self.at_type():
                target = self.parse_type()
                self.expect("punct", ")")
                operand = self.parse_unary()
                return A.CastExpr(target, operand, tok.line)
            self.pos = save
        return self.parse_postfix()

    def parse_postfix(self) -> A.Expr:
        expr = self.parse_primary()
        while True:
            tok = self.cur
            if tok.kind == "punct" and tok.text == "[":
                self.advance()
                index = self.parse_expression()
                self.expect("punct", "]")
                expr = A.Index(expr, index, tok.line)
            elif tok.kind == "punct" and tok.text == ".":
                self.advance()
                field = self.expect("ident").text
                expr = A.Member(expr, field, False, tok.line)
            elif tok.kind == "punct" and tok.text == "->":
                self.advance()
                field = self.expect("ident").text
                expr = A.Member(expr, field, True, tok.line)
            elif tok.kind == "punct" and tok.text in ("++", "--"):
                self.advance()
                expr = A.Unary("post" + tok.text, expr, tok.line)
            else:
                break
        return expr

    def parse_primary(self) -> A.Expr:
        tok = self.cur
        if tok.kind == "int":
            self.advance()
            text = tok.text.lower()
            return A.IntLit(
                tok.value, tok.line,
                is_long="l" in text, is_unsigned="u" in text,
            )
        if tok.kind == "float":
            self.advance()
            return A.FloatLit(tok.value, tok.line)
        if tok.kind == "char":
            self.advance()
            return A.IntLit(tok.value, tok.line)
        if tok.kind == "string":
            self.advance()
            return A.StringLit(tok.value, tok.line)
        if tok.kind == "kw" and tok.text == "null":
            self.advance()
            return A.NullLit(tok.line)
        if tok.kind == "ident":
            self.advance()
            if self.cur.kind == "punct" and self.cur.text == "(":
                self.advance()
                args: list[A.Expr] = []
                if not self.accept("punct", ")"):
                    while True:
                        args.append(self.parse_assignment())
                        if not self.accept("punct", ","):
                            break
                    self.expect("punct", ")")
                return A.CallExpr(tok.text, args, tok.line)
            if tok.text in self.enum_constants:
                return A.IntLit(self.enum_constants[tok.text], tok.line)
            return A.Ident(tok.text, tok.line)
        if tok.kind == "punct" and tok.text == "(":
            self.advance()
            expr = self.parse_expression()
            self.expect("punct", ")")
            return expr
        raise self.error(f"unexpected token {tok.text!r} in expression")


def parse(source: str) -> A.TranslationUnit:
    """Parse mini-C source into an AST."""
    return Parser(source).parse_unit()


__all__ = ["CParseError", "Parser", "parse"]
